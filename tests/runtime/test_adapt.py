"""Warmup adaptation primitives: dual averaging, windows, Welford."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.runtime.mcmc.adapt import (
    BASE_WINDOW,
    INIT_BUFFER,
    TERM_BUFFER,
    DiagMetric,
    DualAveraging,
    WarmupAdapter,
    WelfordVariance,
    find_reasonable_step_size,
    mass_matrix_windows,
)


# ----------------------------------------------------------------------
# Dual averaging.
# ----------------------------------------------------------------------


def test_dual_averaging_matches_closed_form_iterates():
    target, gamma, t0, kappa = 0.8, 0.05, 10.0, 0.75
    eps0 = 0.3
    accepts = [0.2, 0.95, 0.6, 1.0, 0.0, 0.85, 0.7]

    da = DualAveraging(target, gamma=gamma, t0=t0, kappa=kappa)
    da.restart(eps0)

    # Hand-rolled Hoffman & Gelman (2014) section 3.2 recursion.
    mu = math.log(10.0 * eps0)
    h_bar, log_bar = 0.0, 0.0
    for t, a in enumerate(accepts, start=1):
        frac = 1.0 / (t + t0)
        h_bar = (1.0 - frac) * h_bar + frac * (target - a)
        log_eps = mu - math.sqrt(t) / gamma * h_bar
        eta = t ** -kappa
        log_bar = eta * log_eps + (1.0 - eta) * log_bar
        stepped = da.update(a)
        assert stepped == pytest.approx(math.exp(log_eps), rel=1e-14)
        assert da.step_size == pytest.approx(math.exp(log_eps), rel=1e-14)
        assert da.step_size_bar == pytest.approx(math.exp(log_bar), rel=1e-14)


def test_dual_averaging_moves_step_toward_target():
    da = DualAveraging(0.8)
    da.restart(1.0)
    for _ in range(100):
        da.update(0.1)  # acceptance far below target -> shrink
    assert da.step_size < 1.0
    da2 = DualAveraging(0.8)
    da2.restart(1e-3)
    for _ in range(100):
        da2.update(1.0)  # perfect acceptance -> grow
    assert da2.step_size > 1e-3


def test_dual_averaging_clamps_bad_accept_stats():
    clean = DualAveraging(0.8)
    clean.restart(0.5)
    dirty = DualAveraging(0.8)
    dirty.restart(0.5)
    clean.update(0.0)
    dirty.update(float("nan"))  # NaN counts as zero acceptance
    assert dirty.step_size == clean.step_size
    clean.update(1.0)
    dirty.update(7.5)  # clamped into [0, 1]
    assert dirty.step_size == clean.step_size


def test_dual_averaging_state_round_trip():
    da = DualAveraging(0.9)
    da.restart(0.2)
    for a in (0.3, 0.8, 0.95):
        da.update(a)
    clone = DualAveraging(0.9)
    clone.load_state(da.state_dict())
    for a in (0.1, 0.99):
        assert clone.update(a) == da.update(a)


# ----------------------------------------------------------------------
# Window geometry.
# ----------------------------------------------------------------------


def test_windows_standard_stan_geometry():
    windows = mass_matrix_windows(1000)
    assert windows == [(75, 100), (100, 150), (150, 250), (250, 450),
                       (450, 950)]
    # Contiguous, doubling until the terminal extension, inside the
    # init/term buffers.
    assert windows[0][0] == INIT_BUFFER
    assert windows[-1][1] == 1000 - TERM_BUFFER
    for (s0, e0), (s1, _) in zip(windows, windows[1:]):
        assert e0 == s1
    assert windows[0][1] - windows[0][0] == BASE_WINDOW


def test_windows_shrink_proportionally_for_short_warmup():
    windows = mass_matrix_windows(140)
    # 15% init buffer, 10% terminal buffer, one slow window between.
    assert windows == [(21, 126)]


def test_windows_degenerate_warmups():
    assert mass_matrix_windows(0) == []
    assert mass_matrix_windows(-5) == []
    assert mass_matrix_windows(1) == []  # no room for a slow window


def test_windows_cover_no_sweep_twice():
    for warmup in (60, 151, 500, 1000, 2003):
        seen: set[int] = set()
        for start, end in mass_matrix_windows(warmup):
            span = set(range(start, end))
            assert not (seen & span)
            seen |= span
            assert 0 <= start < end <= warmup


# ----------------------------------------------------------------------
# Welford variance.
# ----------------------------------------------------------------------


def test_welford_matches_numpy_two_pass():
    rng = np.random.default_rng(3)
    xs = rng.normal(2.0, 3.0, size=(200, 7))
    w = WelfordVariance(7)
    for x in xs:
        w.observe(x)
    np.testing.assert_allclose(w.mean, xs.mean(axis=0), rtol=1e-12)
    np.testing.assert_allclose(
        w.variance(), xs.var(axis=0, ddof=1), rtol=1e-10
    )


def test_welford_regularization_shrinks_toward_identity_scale():
    rng = np.random.default_rng(4)
    xs = rng.normal(0.0, 10.0, size=(50, 3))
    w = WelfordVariance(3)
    for x in xs:
        w.observe(x)
    n = 50.0
    frac = n / (n + 5.0)
    expected = frac * xs.var(axis=0, ddof=1) + 1e-3 * (1.0 - frac) * 5.0
    np.testing.assert_allclose(w.regularized_variance(), expected, rtol=1e-10)
    # Degenerate: fewer than two observations falls back to identity.
    assert np.all(WelfordVariance(3).regularized_variance() == 1.0)


def test_welford_state_round_trip():
    w = WelfordVariance(2)
    for x in np.arange(10.0).reshape(5, 2):
        w.observe(x)
    clone = WelfordVariance.from_state(w.state_dict())
    extra = np.array([9.0, -1.0])
    w.observe(extra)
    clone.observe(extra)
    np.testing.assert_array_equal(clone.mean, w.mean)
    np.testing.assert_array_equal(clone.m2, w.m2)


# ----------------------------------------------------------------------
# Reasonable initial step size.
# ----------------------------------------------------------------------


def test_find_reasonable_step_size_halves_when_too_large():
    # log accept ratio -(2 eps)^2: crosses log(1/2) near eps ~ 0.416.
    eps = find_reasonable_step_size(lambda e: -((2.0 * e) ** 2), init=1.0)
    assert eps == 0.25
    assert -((2.0 * eps) ** 2) > math.log(0.5)


def test_find_reasonable_step_size_doubles_when_too_small():
    eps = find_reasonable_step_size(lambda e: -((2.0 * e) ** 2), init=0.01)
    # Doubled past the crossing, then stops one step beyond it.
    assert eps > 0.3
    assert -((2.0 * eps) ** 2) <= math.log(0.5)


def test_find_reasonable_step_size_survives_nan_log_accept():
    eps = find_reasonable_step_size(
        lambda e: float("nan") if e > 0.1 else 0.0, init=1.0
    )
    assert eps <= 0.1


# ----------------------------------------------------------------------
# WarmupAdapter lifecycle.
# ----------------------------------------------------------------------


def _drive(adapter: WarmupAdapter, rng: np.ndarray, sweeps: int) -> None:
    for s in range(sweeps):
        adapter.observe(0.7 + 0.2 * math.sin(s), rng[s % len(rng)])


def test_adapter_closes_windows_and_versions_metric():
    warmup = 200
    adapter = WarmupAdapter(warmup, 0.8)
    adapter.initialize(0.5)
    rng = np.random.default_rng(5).normal(size=(16, 4))
    windows = adapter.windows
    assert windows  # the geometry must produce at least one window
    _drive(adapter, rng, warmup)
    assert adapter.window_index == len(windows)
    assert adapter.metric_version == len(windows)
    assert adapter.metric is not None
    assert adapter.metric.inv_mass.shape == (4,)
    np.testing.assert_allclose(
        adapter.metric.momentum_scale,
        1.0 / np.sqrt(adapter.metric.inv_mass),
        rtol=1e-14,
    )


def test_adapter_finalize_freezes_averaged_step():
    adapter = WarmupAdapter(100, 0.8)
    adapter.initialize(0.5)
    rng = np.random.default_rng(6).normal(size=(8, 3))
    _drive(adapter, rng, 100)
    bar = adapter.step_size_bar
    adapter.finalize()
    assert adapter.finalized
    assert adapter.step_size == bar
    frozen = adapter.step_size
    adapter.observe(0.0, rng[0])  # no-op after finalize
    assert adapter.step_size == frozen
    adapter.finalize()  # idempotent
    assert adapter.step_size == frozen


def test_adapter_state_round_trip_resumes_bitwise():
    warmup = 160
    rng = np.random.default_rng(7).normal(size=(warmup, 5))
    full = WarmupAdapter(warmup, 0.8)
    full.initialize(0.3)
    for s in range(warmup):
        full.observe(0.5 + 0.4 * math.cos(s), rng[s])
    full.finalize()

    half = WarmupAdapter(warmup, 0.8)
    half.initialize(0.3)
    stop = warmup // 2
    for s in range(stop):
        half.observe(0.5 + 0.4 * math.cos(s), rng[s])
    resumed = WarmupAdapter(warmup, 0.8)
    resumed.load_state(half.state_dict())
    assert resumed.initialized and not resumed.finalized
    for s in range(stop, warmup):
        resumed.observe(0.5 + 0.4 * math.cos(s), rng[s])
    resumed.finalize()

    assert resumed.step_size == full.step_size
    assert resumed.da.state_dict() == full.da.state_dict()
    np.testing.assert_array_equal(resumed.inv_mass, full.inv_mass)


def test_adapter_without_metric_adaptation():
    adapter = WarmupAdapter(100, 0.8, adapt_metric=False)
    adapter.initialize(0.5)
    _drive(adapter, np.zeros((1, 2)), 100)
    assert adapter.windows == []
    assert adapter.metric is None
    assert adapter.inv_mass is None


def test_diag_metric_momentum_scale():
    m = DiagMetric(np.array([4.0, 0.25]))
    np.testing.assert_array_equal(m.momentum_scale, [0.5, 2.0])
