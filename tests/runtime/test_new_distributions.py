"""Binomial, Laplace, StudentT: densities, gradients, samplers, and the
Beta-Binomial conjugate Gibbs path end to end."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats as st

from repro.core.compiler import compile_model
from repro.runtime.distributions import lookup
from repro.runtime.rng import Rng


def finite_diff(f, x, eps=1e-6):
    return (f(x + eps) - f(x - eps)) / (2 * eps)


# ----------------------------------------------------------------------
# Densities vs. scipy.
# ----------------------------------------------------------------------


def test_binomial_logpmf():
    d = lookup("Binomial")
    assert d.logpdf(3, 10, 0.4) == pytest.approx(st.binom(10, 0.4).logpmf(3))
    assert d.logpdf(11, 10, 0.4) == -np.inf
    assert d.logpdf(-1, 10, 0.4) == -np.inf


def test_laplace_logpdf():
    d = lookup("Laplace")
    assert d.logpdf(0.7, 0.2, 1.5) == pytest.approx(
        st.laplace(0.2, 1.5).logpdf(0.7), rel=1e-10
    )


def test_student_t_logpdf():
    d = lookup("StudentT")
    assert d.logpdf(1.1, 5.0, 0.3, 2.0) == pytest.approx(
        st.t(5.0, 0.3, 2.0).logpdf(1.1), rel=1e-10
    )


# ----------------------------------------------------------------------
# Gradients vs. finite differences.
# ----------------------------------------------------------------------


def test_binomial_grad_p():
    d = lookup("Binomial")
    num = finite_diff(lambda p: d.logpdf(4, 10, p), 0.35)
    assert d.grad(2, 4, 10, 0.35) == pytest.approx(num, rel=1e-5)


def test_laplace_grads():
    d = lookup("Laplace")
    args = (0.2, 1.5)
    x = 0.9
    assert d.grad(0, x, *args) == pytest.approx(
        finite_diff(lambda v: d.logpdf(v, *args), x), rel=1e-5
    )
    assert d.grad(1, x, *args) == pytest.approx(
        finite_diff(lambda m: d.logpdf(x, m, 1.5), 0.2), rel=1e-5
    )
    assert d.grad(2, x, *args) == pytest.approx(
        finite_diff(lambda b: d.logpdf(x, 0.2, b), 1.5), rel=1e-5
    )


def test_student_t_grads():
    d = lookup("StudentT")
    x, nu, m, s = 0.8, 4.0, 0.1, 1.3
    assert d.grad(0, x, nu, m, s) == pytest.approx(
        finite_diff(lambda v: d.logpdf(v, nu, m, s), x), rel=1e-5
    )
    assert d.grad(1, x, nu, m, s) == pytest.approx(
        finite_diff(lambda n: d.logpdf(x, n, m, s), nu), rel=1e-4
    )
    assert d.grad(2, x, nu, m, s) == pytest.approx(
        finite_diff(lambda mm: d.logpdf(x, nu, mm, s), m), rel=1e-5
    )
    assert d.grad(3, x, nu, m, s) == pytest.approx(
        finite_diff(lambda ss: d.logpdf(x, nu, m, ss), s), rel=1e-5
    )


# ----------------------------------------------------------------------
# Samplers.
# ----------------------------------------------------------------------


def test_binomial_sampler_moments():
    d = lookup("Binomial")
    draws = d.sample(Rng(0), 20, 0.3, size=50_000)
    assert draws.mean() == pytest.approx(6.0, rel=0.02)


def test_laplace_sampler_moments():
    d = lookup("Laplace")
    draws = d.sample(Rng(1), 1.0, 2.0, size=100_000)
    assert draws.mean() == pytest.approx(1.0, abs=0.03)
    assert draws.var() == pytest.approx(2 * 4.0, rel=0.05)


def test_student_t_sampler_moments():
    d = lookup("StudentT")
    draws = d.sample(Rng(2), 10.0, 0.5, 2.0, size=100_000)
    assert draws.mean() == pytest.approx(0.5, abs=0.03)
    # var = s^2 * nu / (nu - 2)
    assert draws.var() == pytest.approx(4.0 * 10 / 8, rel=0.05)


# ----------------------------------------------------------------------
# Beta-Binomial conjugacy end to end.
# ----------------------------------------------------------------------

BETA_BINOMIAL = """
(N, a, b, trials) => {
  param p ~ Beta(a, b) ;
  data y[n] ~ Binomial(trials[n], p)
    for n <- 0 until N ;
}
"""


def test_beta_binomial_gibbs_posterior():
    rng = np.random.default_rng(3)
    trials = rng.integers(5, 20, size=30)
    y = rng.binomial(trials, 0.65)
    sampler = compile_model(
        BETA_BINOMIAL,
        {"N": 30, "a": 1.0, "b": 1.0, "trials": trials},
        {"y": y},
    )
    assert "Gibbs" in sampler.schedule_description()
    res = sampler.sample(num_samples=3000, seed=0)
    draws = res.array("p")
    a_post = 1.0 + y.sum()
    b_post = 1.0 + trials.sum() - y.sum()
    assert draws.mean() == pytest.approx(a_post / (a_post + b_post), abs=0.01)


def test_student_t_regression_via_hmc():
    # Robust location estimation with heavy-tailed noise.
    model = """
    (N, s) => {
      param loc ~ Normal(0.0, 100.0) ;
      data y[n] ~ StudentT(4.0, loc, s)
        for n <- 0 until N ;
    }
    """
    rng = np.random.default_rng(4)
    y = 3.0 + 0.5 * rng.standard_t(4, size=200)
    y[:5] += 50.0  # outliers the heavy tails should shrug off
    sampler = compile_model(
        model, {"N": 200, "s": 0.5}, {"y": y},
        schedule="HMC[steps=20, step_size=0.005] loc",
    )
    rng2 = Rng(5)
    init = sampler.init_state(rng2)
    init["loc"] = float(np.median(y))  # standard data-driven start
    res = sampler.sample(num_samples=200, burn_in=100, seed=rng2, init=init)
    acc = list(res.acceptance.values())[0]
    assert acc > 0.5
    assert res.array("loc").mean() == pytest.approx(2.95, abs=0.2)


def test_laplace_prior_slice_sampling():
    model = """
    (N, b) => {
      param w ~ Laplace(0.0, b) ;
      data y[n] ~ Normal(w, 1.0)
        for n <- 0 until N ;
    }
    """
    rng = np.random.default_rng(6)
    y = rng.normal(2.0, 1.0, size=50)
    sampler = compile_model(
        model, {"N": 50, "b": 1.0}, {"y": y}, schedule="Slice w"
    )
    res = sampler.sample(num_samples=500, burn_in=50, seed=7)
    assert res.array("w").mean() == pytest.approx(y.mean(), abs=0.1)
