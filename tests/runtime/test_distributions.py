"""Distribution correctness: log densities vs. scipy, gradients vs. finite
differences, and sampler moments vs. analytic moments."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats as st

from repro.runtime.distributions import lookup
from repro.runtime.distributions.base import GradUnsupported
from repro.runtime.rng import Rng


def finite_diff(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function of a scalar."""
    return (f(x + eps) - f(x - eps)) / (2 * eps)


# ----------------------------------------------------------------------
# logpdf agreement with scipy.
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,args,value,scipy_lp",
    [
        ("Normal", (1.5, 4.0), 0.3, lambda v: st.norm(1.5, 2.0).logpdf(v)),
        ("Exponential", (2.5,), 0.7, lambda v: st.expon(scale=1 / 2.5).logpdf(v)),
        ("Gamma", (3.0, 2.0), 1.3, lambda v: st.gamma(3.0, scale=0.5).logpdf(v)),
        ("Beta", (2.0, 5.0), 0.3, lambda v: st.beta(2.0, 5.0).logpdf(v)),
        ("Poisson", (4.2,), 3, lambda v: st.poisson(4.2).logpmf(v)),
        ("Bernoulli", (0.3,), 1, lambda v: st.bernoulli(0.3).logpmf(v)),
        ("Bernoulli", (0.3,), 0, lambda v: st.bernoulli(0.3).logpmf(v)),
        ("Uniform", (-1.0, 3.0), 0.5, lambda v: st.uniform(-1.0, 4.0).logpdf(v)),
    ],
)
def test_logpdf_matches_scipy(name, args, value, scipy_lp):
    dist = lookup(name)
    assert dist.logpdf(value, *args) == pytest.approx(scipy_lp(value), rel=1e-10)


def test_mvnormal_logpdf_matches_scipy():
    dist = lookup("MvNormal")
    mean = np.array([1.0, -2.0, 0.5])
    cov = np.array([[2.0, 0.3, 0.1], [0.3, 1.0, 0.2], [0.1, 0.2, 0.5]])
    x = np.array([0.7, -1.0, 0.0])
    expected = st.multivariate_normal(mean, cov).logpdf(x)
    assert dist.logpdf(x, mean, cov) == pytest.approx(expected, rel=1e-10)


def test_mvnormal_logpdf_batched():
    dist = lookup("MvNormal")
    mean = np.array([0.0, 0.0])
    cov = np.eye(2) * 2.0
    xs = np.array([[0.0, 0.0], [1.0, 1.0], [3.0, -1.0]])
    got = dist.logpdf(xs, mean, cov)
    expected = [st.multivariate_normal(mean, cov).logpdf(x) for x in xs]
    np.testing.assert_allclose(got, expected, rtol=1e-10)


def test_dirichlet_logpdf_matches_scipy():
    dist = lookup("Dirichlet")
    alpha = np.array([2.0, 3.0, 1.5])
    x = np.array([0.3, 0.5, 0.2])
    expected = st.dirichlet(alpha).logpdf(x)
    assert dist.logpdf(x, alpha) == pytest.approx(expected, rel=1e-10)


def test_categorical_logpmf():
    dist = lookup("Categorical")
    probs = np.array([0.1, 0.7, 0.2])
    assert dist.logpdf(1, probs) == pytest.approx(np.log(0.7))
    np.testing.assert_allclose(
        dist.logpdf(np.array([0, 2]), probs), np.log([0.1, 0.2])
    )


def test_inv_wishart_logpdf_matches_scipy():
    dist = lookup("InvWishart")
    psi = np.array([[2.0, 0.3], [0.3, 1.0]])
    x = np.array([[1.5, 0.1], [0.1, 0.8]])
    expected = st.invwishart(df=5, scale=psi).logpdf(x)
    assert dist.logpdf(x, 5.0, psi) == pytest.approx(expected, rel=1e-9)


# ----------------------------------------------------------------------
# Out-of-support values.
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "name,args,bad",
    [
        ("Exponential", (1.0,), -0.5),
        ("Gamma", (2.0, 1.0), -1.0),
        ("Beta", (2.0, 2.0), 1.5),
        ("Uniform", (0.0, 1.0), 2.0),
    ],
)
def test_logpdf_out_of_support_is_neg_inf(name, args, bad):
    assert lookup(name).logpdf(bad, *args) == -np.inf


# ----------------------------------------------------------------------
# Gradients vs. finite differences.
# ----------------------------------------------------------------------

GRAD_CASES = [
    ("Normal", (1.5, 4.0), 0.3),
    ("Exponential", (2.5,), 0.7),
    ("Gamma", (3.0, 2.0), 1.3),
    ("Beta", (2.0, 5.0), 0.3),
]


@pytest.mark.parametrize("name,args,value", GRAD_CASES)
def test_grad_value_matches_finite_diff(name, args, value):
    dist = lookup(name)
    expected = finite_diff(lambda v: dist.logpdf(v, *args), value)
    assert dist.grad(0, value, *args) == pytest.approx(expected, rel=1e-5)


@pytest.mark.parametrize("name,args,value", GRAD_CASES)
def test_grad_params_match_finite_diff(name, args, value):
    dist = lookup(name)
    for i in range(1, len(args) + 1):
        def lp(p):
            newargs = list(args)
            newargs[i - 1] = p
            return dist.logpdf(value, *newargs)

        expected = finite_diff(lp, args[i - 1])
        assert dist.grad(i, value, *args) == pytest.approx(expected, rel=1e-5), (
            f"{name} grad {i}"
        )


def test_mvnormal_grads_match_finite_diff():
    dist = lookup("MvNormal")
    mean = np.array([1.0, -0.5])
    cov = np.array([[1.5, 0.2], [0.2, 0.8]])
    x = np.array([0.3, 0.4])
    eps = 1e-6
    for j in range(2):
        dx = np.zeros(2)
        dx[j] = eps
        num = (dist.logpdf(x + dx, mean, cov) - dist.logpdf(x - dx, mean, cov)) / (
            2 * eps
        )
        assert dist.grad(0, x, mean, cov)[j] == pytest.approx(num, rel=1e-5)
        num_mu = (dist.logpdf(x, mean + dx, cov) - dist.logpdf(x, mean - dx, cov)) / (
            2 * eps
        )
        assert dist.grad(1, x, mean, cov)[j] == pytest.approx(num_mu, rel=1e-5)


def test_mvnormal_grad_cov_matches_finite_diff():
    dist = lookup("MvNormal")
    mean = np.array([0.0, 0.0])
    cov = np.array([[1.5, 0.2], [0.2, 0.8]])
    x = np.array([0.7, -0.3])
    g = dist.grad(2, x, mean, cov)
    eps = 1e-6
    for i in range(2):
        for j in range(2):
            # Perturb symmetrically (covariances are symmetric matrices);
            # the matching analytic derivative is g[i,j] + g[j,i] off the
            # diagonal and g[i,i] on it.
            d = np.zeros((2, 2))
            d[i, j] += eps
            if i != j:
                d[j, i] += eps
            num = (dist.logpdf(x, mean, cov + d) - dist.logpdf(x, mean, cov - d)) / (
                2 * eps
            )
            analytic = g[i, j] if i == j else g[i, j] + g[j, i]
            assert analytic == pytest.approx(num, rel=1e-4, abs=1e-8)


def test_bernoulli_grad_p():
    dist = lookup("Bernoulli")
    expected = finite_diff(lambda p: dist.logpdf(1, p), 0.3)
    assert dist.grad(1, 1, 0.3) == pytest.approx(expected, rel=1e-6)


def test_dirichlet_grad_alpha_matches_finite_diff():
    dist = lookup("Dirichlet")
    alpha = np.array([2.0, 3.0, 1.5])
    x = np.array([0.3, 0.5, 0.2])
    g = dist.grad(1, x, alpha)
    eps = 1e-6
    for i in range(3):
        d = np.zeros(3)
        d[i] = eps
        num = (dist.logpdf(x, alpha + d) - dist.logpdf(x, alpha - d)) / (2 * eps)
        assert g[i] == pytest.approx(num, rel=1e-5)


def test_discrete_grad_value_unsupported():
    with pytest.raises(GradUnsupported):
        lookup("Categorical").grad(0, 1, np.array([0.5, 0.5]))
    assert not lookup("Categorical").supports_grad(0)
    assert lookup("Normal").supports_grad(0)


# ----------------------------------------------------------------------
# Sampler moments.
# ----------------------------------------------------------------------


def test_normal_sampler_moments():
    dist = lookup("Normal")
    draws = dist.sample(Rng(0), 2.0, 9.0, size=200_000)
    assert np.mean(draws) == pytest.approx(2.0, abs=0.03)
    assert np.var(draws) == pytest.approx(9.0, rel=0.02)


def test_mvnormal_sampler_moments():
    dist = lookup("MvNormal")
    mean = np.array([1.0, -1.0])
    cov = np.array([[2.0, 0.5], [0.5, 1.0]])
    draws = dist.sample(Rng(1), mean, cov, size=100_000)
    np.testing.assert_allclose(draws.mean(axis=0), mean, atol=0.03)
    np.testing.assert_allclose(np.cov(draws.T), cov, atol=0.05)


def test_dirichlet_sampler_moments():
    dist = lookup("Dirichlet")
    alpha = np.array([2.0, 3.0, 5.0])
    draws = dist.sample(Rng(2), alpha, size=100_000)
    np.testing.assert_allclose(draws.mean(axis=0), alpha / alpha.sum(), atol=0.01)
    np.testing.assert_allclose(draws.sum(axis=1), 1.0, atol=1e-12)


def test_categorical_sampler_frequencies():
    dist = lookup("Categorical")
    probs = np.array([0.2, 0.5, 0.3])
    draws = dist.sample(Rng(3), probs, size=100_000)
    freq = np.bincount(draws, minlength=3) / draws.size
    np.testing.assert_allclose(freq, probs, atol=0.01)


def test_inv_wishart_sampler_mean():
    dist = lookup("InvWishart")
    psi = np.array([[2.0, 0.3], [0.3, 1.0]])
    nu = 7.0
    draws = dist.sample(Rng(4), nu, psi, size=20_000)
    # E[X] = Psi / (nu - d - 1) for nu > d + 1.
    expected = psi / (nu - 2 - 1)
    np.testing.assert_allclose(draws.mean(axis=0), expected, atol=0.03)


def test_gamma_sampler_moments():
    dist = lookup("Gamma")
    draws = dist.sample(Rng(5), 3.0, 2.0, size=200_000)
    assert np.mean(draws) == pytest.approx(1.5, rel=0.02)
    assert np.var(draws) == pytest.approx(0.75, rel=0.03)


def test_bernoulli_sampler_vectorised_params():
    dist = lookup("Bernoulli")
    p = np.array([0.1, 0.9])
    draws = np.array([dist.sample(Rng(i), p) for i in range(4000)])
    np.testing.assert_allclose(draws.mean(axis=0), p, atol=0.03)
