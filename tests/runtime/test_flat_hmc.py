"""Flat-state HMC: pack plans, momentum parity, and integrator parity.

The packed path must be a pure representation change: same RNG stream
consumption as the tree path, bitwise pack/unpack round trips, and
trajectories that agree with the dict-of-arrays integrator up to
floating-point summation order in the kinetic-energy dot products.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lowmm.size_inference import (
    PackPlan,
    PackSlot,
    build_pack_plan,
    build_plan,
)
from repro.runtime.mcmc.hmc import (
    FlatLogDensity,
    TransformedLogDensity,
    flat_gaussian,
    hmc_step,
    hmc_step_flat,
)
from repro.runtime.mcmc.tree import tree_gaussian
from repro.runtime.rng import Rng
from repro.runtime.transforms import (
    IdentityTransform,
    LogTransform,
    LogitTransform,
)

from tests.lowpp.conftest import make_setup


# ----------------------------------------------------------------------
# Pack plans.
# ----------------------------------------------------------------------


def _hlr_plan():
    fd, info = make_setup("hlr")
    rng = np.random.default_rng(1)
    env = {"N": 5, "D": 3, "lam": 1.0, "x": rng.normal(size=(5, 3)),
           "y": rng.integers(0, 2, size=5)}
    return build_plan(info, env, ())


def test_build_pack_plan_hlr_layout():
    plan = _hlr_plan()
    pp = build_pack_plan(plan, ("sigma2", "b", "theta"))
    assert pp is not None
    assert [s.name for s in pp.slots] == ["sigma2", "b", "theta"]
    assert [s.shape for s in pp.slots] == [(), (), (3,)]
    assert [s.size for s in pp.slots] == [1, 1, 3]
    assert pp.total == 5
    # Slots tile the vector contiguously, in order.
    off = 0
    for s in pp.slots:
        assert s.offset == off
        off += s.size


def test_pack_unpack_bitwise_round_trip():
    plan = _hlr_plan()
    pp = build_pack_plan(plan, ("sigma2", "b", "theta"))
    rng = np.random.default_rng(7)
    values = {
        "sigma2": 1.7,
        "b": float(rng.normal()),
        "theta": rng.normal(size=3),
    }
    flat = pp.pack(values)
    views = pp.unpack_views(flat)
    for k, v in values.items():
        np.testing.assert_array_equal(np.asarray(views[k]), np.asarray(v))
        assert views[k].shape == np.shape(v)
    # Views alias the flat buffer: writes through them land in ``flat``.
    views["theta"][...] = 42.0
    np.testing.assert_array_equal(flat[pp.slots[-1].slice], 42.0)


def test_build_pack_plan_rejects_ragged():
    fd, info = make_setup("lda")
    from repro.runtime.vectors import RaggedArray

    env = {
        "K": 4, "D": 3, "V": 7, "N": np.array([5, 2, 6]),
        "alpha": np.ones(4), "beta": np.ones(7),
        "w": RaggedArray.full([5, 2, 6], 0, dtype=np.int64),
    }
    plan = build_plan(info, env, ())
    assert build_pack_plan(plan, ("z",)) is None  # ragged
    assert build_pack_plan(plan, ("theta", "missing")) is None


# ----------------------------------------------------------------------
# Momentum draws consume the RNG stream identically on both paths.
# ----------------------------------------------------------------------


def _toy_layout():
    slots = (
        PackSlot("a", 0, 1, ()),
        PackSlot("b", 1, 3, (3,)),
        PackSlot("c", 4, 2, (2,)),
    )
    return PackPlan(slots=slots, total=6)


def test_flat_gaussian_matches_tree_gaussian():
    layout = _toy_layout()
    z_tree = {"a": np.float64(0.0), "b": np.zeros(3), "c": np.zeros(2)}
    p_tree = tree_gaussian(Rng(11).generator, z_tree)
    out = np.empty(6)
    flat_gaussian(Rng(11).generator, layout, out)
    np.testing.assert_array_equal(out, layout.pack(p_tree))


# ----------------------------------------------------------------------
# Integrator parity on an analytic target with all three elementwise
# transform kinds (identity / log / logit).
# ----------------------------------------------------------------------

_TRANSFORMS = {
    "a": LogTransform(),
    "b": IdentityTransform(),
    "c": LogitTransform(),
}


def _ll(x):
    # A smooth, fully analytic density on the constrained space:
    # Gamma(2,1)-ish in a > 0, Gaussian in b, Beta(2,2)-ish in c in (0,1).
    a = float(x["a"])
    b = np.asarray(x["b"])
    c = np.asarray(x["c"])
    return (
        np.log(a) - a
        - 0.5 * float(np.sum(b * b))
        + float(np.sum(np.log(c) + np.log1p(-c)))
    )


def _grad(x):
    a = float(x["a"])
    b = np.asarray(x["b"])
    c = np.asarray(x["c"])
    return {
        "a": 1.0 / a - 1.0,
        "b": -b,
        "c": 1.0 / c - 1.0 / (1.0 - c),
    }


def _make_flat():
    layout = _toy_layout()
    holder = {}

    def ll():
        return _ll(holder["views"])

    def grad():
        return _grad(holder["views"])

    fld = FlatLogDensity(ll, grad, _TRANSFORMS, layout)
    holder["views"] = fld.x_views
    return fld, layout


def _start_state():
    return {"a": 0.9, "b": np.array([0.3, -0.2, 1.1]), "c": np.array([0.4, 0.7])}


def test_flat_value_and_grad_match_tree():
    tree_target = TransformedLogDensity(_ll, _grad, _TRANSFORMS)
    fld, layout = _make_flat()
    x0 = _start_state()
    z_tree = tree_target.unconstrain(x0)
    z_flat = fld.unconstrain_into(x0, np.empty(layout.total))
    np.testing.assert_allclose(z_flat, layout.pack(z_tree))
    assert fld.value(z_flat) == pytest.approx(tree_target.logpdf(z_tree))
    np.testing.assert_allclose(
        fld.grad(z_flat), layout.pack(tree_target.grad(z_tree))
    )


def test_value_and_grad_fused_matches_pair():
    # With a fused callable supplied, value_and_grad must return exactly
    # what the separate value/grad pair computes.
    fld_pair, layout = _make_flat()
    holder = {}

    def ll():
        return _ll(holder["views"])

    def grad():
        return _grad(holder["views"])

    def ll_grad():
        return _ll(holder["views"]), _grad(holder["views"])

    fld_fused = FlatLogDensity(ll, grad, _TRANSFORMS, layout, ll_grad_fn=ll_grad)
    holder["views"] = fld_fused.x_views
    z = fld_pair.unconstrain_into(_start_state(), np.empty(layout.total))
    lp_f, g_f = fld_fused.value_and_grad(z.copy())
    lp_p, g_p = fld_pair.value_and_grad(z.copy())
    assert lp_f == lp_p
    np.testing.assert_array_equal(g_f, g_p)


def test_hmc_step_flat_matches_tree_step():
    tree_target = TransformedLogDensity(_ll, _grad, _TRANSFORMS)
    fld, layout = _make_flat()
    x0 = _start_state()
    z_tree = tree_target.unconstrain(x0)
    z_flat = fld.unconstrain_into(x0, np.empty(layout.total))

    for seed in range(6):
        info_t, info_f = {}, {}
        zt, acc_t = hmc_step(
            Rng(seed).generator, tree_target, z_tree, 0.05, 8, info=info_t
        )
        zf, acc_f = hmc_step_flat(
            Rng(seed).generator, fld, z_flat, 0.05, 8, info=info_f
        )
        fld.invalidate()
        assert acc_t == acc_f
        np.testing.assert_allclose(zf, layout.pack(zt), rtol=1e-12, atol=1e-12)
        assert info_f["log_alpha"] == pytest.approx(info_t["log_alpha"])
        assert info_f["n_leapfrog"] == info_t["n_leapfrog"]
        assert info_f["divergent"] == info_t["divergent"]


def test_hmc_step_flat_never_mutates_input():
    fld, layout = _make_flat()
    z = fld.unconstrain_into(_start_state(), np.empty(layout.total))
    z_before = z.copy()
    z1, accepted = hmc_step_flat(Rng(3).generator, fld, z, 0.05, 8)
    np.testing.assert_array_equal(z, z_before)
    if accepted:
        assert z1 is not z


def test_flat_point_cache_reuses_transforms():
    # value then grad at the same z runs the constrain pass once.
    calls = {"n": 0}

    class CountingLog(LogTransform):
        def to_constrained(self, z):
            calls["n"] += 1
            return super().to_constrained(z)

    transforms = dict(_TRANSFORMS)
    transforms["a"] = CountingLog()
    layout = _toy_layout()
    holder = {}
    fld = FlatLogDensity(
        lambda: _ll(holder["views"]),
        lambda: _grad(holder["views"]),
        transforms,
        layout,
    )
    holder["views"] = fld.x_views
    z = fld.unconstrain_into(_start_state(), np.empty(layout.total))
    fld.value(z)
    fld.grad(z)
    fld.value(z)
    assert calls["n"] == 1
    fld.invalidate()
    fld.value(z)
    assert calls["n"] == 2
