"""MCMC library routines tested directly on analytic targets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.mcmc.accept import mh_accept
from repro.runtime.mcmc.hmc import TransformedLogDensity, hmc_step, leapfrog
from repro.runtime.mcmc.mh import random_walk_step, user_proposal_step
from repro.runtime.mcmc.nuts import nuts_step
from repro.runtime.mcmc.slice_sampler import elliptical_slice, slice_coordinate
from repro.runtime.mcmc.tree import (
    tree_axpy,
    tree_copy,
    tree_dot,
    tree_gaussian,
    tree_scale,
)
from repro.runtime.rng import Rng
from repro.runtime.transforms import IdentityTransform, LogTransform


def gaussian_target(mean, var):
    """A diagonal Gaussian as a TransformedLogDensity over one variable."""
    mean = np.asarray(mean, dtype=np.float64)
    var = np.asarray(var, dtype=np.float64)

    def ll(x):
        v = np.asarray(x["x"])
        return float(np.sum(-0.5 * (v - mean) ** 2 / var))

    def grad(x):
        v = np.asarray(x["x"])
        return {"x": -(v - mean) / var}

    return TransformedLogDensity(ll, grad, {"x": IdentityTransform()})


# ----------------------------------------------------------------------
# Trees.
# ----------------------------------------------------------------------


def test_tree_arithmetic():
    a = {"u": np.array([1.0, 2.0]), "v": np.array(3.0)}
    b = {"u": np.array([0.5, -1.0]), "v": np.array(2.0)}
    assert tree_dot(a, b) == pytest.approx(1 * 0.5 - 2 + 6)
    s = tree_scale(a, 2.0)
    np.testing.assert_array_equal(s["u"], [2.0, 4.0])
    ax = tree_axpy(a, b, 2.0)
    np.testing.assert_array_equal(ax["u"], [2.0, 0.0])
    c = tree_copy(a)
    c["u"][0] = 99.0
    assert a["u"][0] == 1.0


def test_tree_gaussian_shapes(rng):
    like = {"u": np.zeros((3, 2)), "v": np.array(0.0)}
    g = tree_gaussian(rng, like)
    assert g["u"].shape == (3, 2)
    assert np.shape(g["v"]) == ()


# ----------------------------------------------------------------------
# Acceptance.
# ----------------------------------------------------------------------


def test_mh_accept_edge_cases(rng):
    assert mh_accept(rng, 0.0)
    assert mh_accept(rng, 10.0)
    assert not mh_accept(rng, float("nan"))
    accepts = sum(mh_accept(rng, np.log(0.3)) for _ in range(20_000))
    assert accepts / 20_000 == pytest.approx(0.3, abs=0.02)


# ----------------------------------------------------------------------
# Leapfrog / HMC.
# ----------------------------------------------------------------------


def test_leapfrog_is_reversible():
    target = gaussian_target(np.zeros(3), np.ones(3))
    rng = Rng(0)
    z = {"x": rng.normal(size=3)}
    p = {"x": rng.normal(size=3)}
    z1, p1 = leapfrog(target, z, p, 0.1, 10)
    # Negate momentum and integrate back.
    z2, p2 = leapfrog(target, z1, tree_scale(p1, -1.0), 0.1, 10)
    np.testing.assert_allclose(z2["x"], z["x"], atol=1e-10)
    np.testing.assert_allclose(p2["x"], -p["x"], atol=1e-10)


def test_leapfrog_conserves_energy_approximately():
    target = gaussian_target(np.zeros(2), np.ones(2))
    rng = Rng(1)
    z = {"x": rng.normal(size=2)}
    p = {"x": rng.normal(size=2)}
    h0 = -target.logpdf(z) + 0.5 * tree_dot(p, p)
    z1, p1 = leapfrog(target, z, p, 0.05, 50)
    h1 = -target.logpdf(z1) + 0.5 * tree_dot(p1, p1)
    assert abs(h1 - h0) < 0.05


def test_hmc_samples_gaussian_moments():
    target = gaussian_target(np.array([2.0, -1.0]), np.array([1.0, 4.0]))
    rng = Rng(2)
    z = {"x": np.zeros(2)}
    draws = []
    for _ in range(2000):
        z, _ = hmc_step(rng, target, z, step_size=0.3, n_steps=8)
        draws.append(z["x"].copy())
    draws = np.asarray(draws)[200:]
    np.testing.assert_allclose(draws.mean(axis=0), [2.0, -1.0], atol=0.2)
    np.testing.assert_allclose(draws.var(axis=0), [1.0, 4.0], rtol=0.25)


def test_hmc_with_log_transform_stays_positive():
    # Target: log-normal-ish via transform; underlying density on x > 0.
    def ll(x):
        v = float(np.asarray(x["x"]))
        return -0.5 * (np.log(v)) ** 2 - np.log(v) if v > 0 else -np.inf

    def grad(x):
        v = float(np.asarray(x["x"]))
        return {"x": np.asarray((-np.log(v) - 1.0) / v)}

    target = TransformedLogDensity(ll, grad, {"x": LogTransform()})
    rng = Rng(3)
    z = target.unconstrain({"x": np.asarray(1.0)})
    for _ in range(200):
        z, _ = hmc_step(rng, target, z, 0.2, 5)
        assert target.constrain(z)["x"] > 0


# ----------------------------------------------------------------------
# NUTS.
# ----------------------------------------------------------------------


def test_nuts_samples_gaussian_moments():
    target = gaussian_target(np.array([1.0]), np.array([2.0]))
    rng = Rng(4)
    z = {"x": np.zeros(1)}
    draws = []
    for _ in range(1500):
        z, leapfrogs, accept = nuts_step(rng, target, z, step_size=0.5)
        assert leapfrogs >= 1
        assert 0.0 <= accept <= 1.0
        draws.append(float(z["x"][0]))
    draws = np.asarray(draws)[200:]
    assert draws.mean() == pytest.approx(1.0, abs=0.15)
    assert draws.var() == pytest.approx(2.0, rel=0.25)


def test_nuts_tiny_step_gives_low_accept_stat():
    target = gaussian_target(np.zeros(1), np.ones(1))
    rng = Rng(5)
    _, _, accept_big = nuts_step(rng, target, {"x": np.zeros(1)}, step_size=10.0)
    _, _, accept_small = nuts_step(rng, target, {"x": np.zeros(1)}, step_size=0.1)
    assert accept_small > accept_big


# ----------------------------------------------------------------------
# Slice samplers.
# ----------------------------------------------------------------------


def test_slice_coordinate_gaussian_moments(np_rng):
    logp = lambda x: -0.5 * (x - 1.5) ** 2 / 0.25
    x = 0.0
    draws = []
    for _ in range(4000):
        x = slice_coordinate(np_rng, logp, x, width=1.0)
        draws.append(x)
    draws = np.asarray(draws)[400:]
    assert draws.mean() == pytest.approx(1.5, abs=0.05)
    assert draws.std() == pytest.approx(0.5, abs=0.05)


def test_slice_requires_positive_density_start(np_rng):
    with pytest.raises(ValueError):
        slice_coordinate(np_rng, lambda x: -np.inf, 0.0)


def test_elliptical_slice_conjugate_gaussian(np_rng):
    # Prior N(0, 1), likelihood N(y | x, s2): posterior is conjugate.
    y, s2 = 1.2, 0.5
    loglik = lambda x: float(-0.5 * (y - x) ** 2 / s2)
    x = 0.0
    draws = []
    for _ in range(6000):
        nu = np_rng.normal(0.0, 1.0)
        x = float(elliptical_slice(np_rng, loglik, x, 0.0, nu))
        draws.append(x)
    draws = np.asarray(draws)[500:]
    post_var = 1 / (1 + 1 / s2)
    post_mean = post_var * (y / s2)
    assert draws.mean() == pytest.approx(post_mean, abs=0.05)
    assert draws.var() == pytest.approx(post_var, rel=0.15)


# ----------------------------------------------------------------------
# MH proposals.
# ----------------------------------------------------------------------


def test_random_walk_gaussian_moments(np_rng):
    logp = lambda x: float(-0.5 * np.sum(x**2))
    x = np.zeros(1)
    draws = []
    for _ in range(8000):
        x, _ = random_walk_step(np_rng, logp, x, scale=1.0)
        draws.append(float(x[0]))
    draws = np.asarray(draws)[800:]
    assert draws.mean() == pytest.approx(0.0, abs=0.08)
    assert draws.var() == pytest.approx(1.0, rel=0.15)


def test_user_proposal_respects_q_ratio(np_rng):
    logp = lambda x: float(-0.5 * np.sum(np.asarray(x) ** 2))

    # A huge forward/backward proposal-density ratio kills acceptance
    # even for a density-neutral move...
    never = lambda x, rng: (x, 1e9)
    x = np.zeros(1)
    for _ in range(50):
        x, accepted = user_proposal_step(np_rng, logp, x, never)
        assert not accepted
    # ...and a hugely negative one forces acceptance even downhill.
    always = lambda x, rng: (x + 3.0, -1e9)
    x, accepted = user_proposal_step(np_rng, logp, np.zeros(1), always)
    assert accepted and x[0] == 3.0
