"""RaggedArray invariants, including hypothesis property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.runtime.vectors import RaggedArray, as_ragged

row_lists = hst.lists(
    hst.lists(hst.floats(-1e6, 1e6), min_size=0, max_size=8),
    min_size=1,
    max_size=10,
)


def test_from_rows_roundtrip():
    rows = [[1.0, 2.0], [3.0], [], [4.0, 5.0, 6.0]]
    ra = RaggedArray.from_rows(rows)
    assert ra.n_rows == 4
    assert ra.n_elems == 6
    for i, r in enumerate(rows):
        np.testing.assert_array_equal(ra[i], r)


def test_rows_are_views_of_flat_buffer():
    ra = RaggedArray.from_rows([[1.0, 2.0], [3.0]])
    ra.row(0)[0] = 99.0
    assert ra.flat[0] == 99.0


def test_offsets_validation():
    with pytest.raises(ValueError):
        RaggedArray(np.zeros(3), np.array([1, 3]))  # doesn't start at 0
    with pytest.raises(ValueError):
        RaggedArray(np.zeros(3), np.array([0, 2]))  # doesn't cover flat
    with pytest.raises(ValueError):
        RaggedArray(np.zeros(3), np.array([0, 2, 1, 3]))  # decreasing


def test_full_allocates_requested_lengths():
    ra = RaggedArray.full([2, 0, 3], fill_value=7.0)
    assert ra.row_lengths().tolist() == [2, 0, 3]
    assert np.all(ra.flat == 7.0)


def test_row_index_and_position_index():
    ra = RaggedArray.from_rows([[10.0, 11.0], [20.0], [30.0, 31.0, 32.0]])
    np.testing.assert_array_equal(ra.row_index(), [0, 0, 1, 2, 2, 2])
    np.testing.assert_array_equal(ra.position_index(), [0, 1, 0, 0, 1, 2])


def test_row_index_supports_gather_semantics():
    # The LDA pattern: per-row parameters gathered onto the flat axis.
    ra = RaggedArray.from_rows([[0.0, 0.0], [0.0, 0.0, 0.0]])
    per_row = np.array([5.0, 9.0])
    gathered = per_row[ra.row_index()]
    np.testing.assert_array_equal(gathered, [5.0, 5.0, 9.0, 9.0, 9.0])


@given(row_lists)
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(rows):
    ra = RaggedArray.from_rows(rows)
    back = ra.to_rows()
    assert len(back) == len(rows)
    for orig, got in zip(rows, back):
        np.testing.assert_allclose(got, np.asarray(orig, dtype=np.float64))


@given(row_lists)
@settings(max_examples=60, deadline=None)
def test_flat_is_concatenation_property(rows):
    ra = RaggedArray.from_rows(rows)
    expected = np.concatenate([np.asarray(r, dtype=np.float64) for r in rows]) if any(
        len(r) for r in rows
    ) else np.empty(0)
    np.testing.assert_array_equal(ra.flat, expected)
    assert ra.flat.flags["C_CONTIGUOUS"]


@given(row_lists)
@settings(max_examples=60, deadline=None)
def test_index_structure_invariants(rows):
    ra = RaggedArray.from_rows(rows)
    assert ra.offsets[0] == 0
    assert ra.offsets[-1] == ra.n_elems
    assert np.all(np.diff(ra.offsets) >= 0)
    # row_index is non-decreasing and covers only valid rows.
    ri = ra.row_index()
    assert ri.size == ra.n_elems
    if ri.size:
        assert ri.min() >= 0 and ri.max() < ra.n_rows
        assert np.all(np.diff(ri) >= 0)


def test_copy_is_independent():
    ra = RaggedArray.from_rows([[1.0], [2.0]])
    cp = ra.copy()
    cp.flat[0] = -1.0
    assert ra.flat[0] == 1.0
    assert ra.same_shape(cp)


def test_map_flat_preserves_structure():
    ra = RaggedArray.from_rows([[1.0, 4.0], [9.0]])
    sq = ra.map_flat(np.sqrt)
    np.testing.assert_allclose(sq.flat, [1.0, 2.0, 3.0])
    assert sq.same_shape(ra)


def test_as_ragged_passthrough_and_coercion():
    ra = RaggedArray.from_rows([[1.0]])
    assert as_ragged(ra) is ra
    ra2 = as_ragged([[1, 2], [3]])
    assert ra2.n_elems == 3
