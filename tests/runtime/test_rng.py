"""RNG substrate behaviour."""

from __future__ import annotations

import numpy as np

from repro.runtime.rng import Rng


def test_seeding_is_deterministic():
    a, b = Rng(42), Rng(42)
    assert a.uniform() == b.uniform()
    np.testing.assert_array_equal(a.normal(size=5), b.normal(size=5))


def test_fork_produces_independent_streams():
    children = Rng(7).fork(3)
    draws = [c.uniform(size=4) for c in children]
    assert not np.allclose(draws[0], draws[1])
    assert not np.allclose(draws[1], draws[2])


def test_fork_is_reproducible():
    a = [c.uniform() for c in Rng(7).fork(2)]
    b = [c.uniform() for c in Rng(7).fork(2)]
    assert a == b


def test_state_spec_roundtrip_continues_stream():
    rng = Rng(5)
    rng.normal(size=3)  # advance past the seed state
    clone = Rng.from_spec(rng.state_spec())
    np.testing.assert_array_equal(rng.normal(size=8), clone.normal(size=8))


def test_pickle_roundtrip_continues_stream():
    import pickle

    rng = Rng(6)
    rng.uniform(size=4)
    clone = pickle.loads(pickle.dumps(rng))
    np.testing.assert_array_equal(rng.normal(size=8), clone.normal(size=8))


def test_forked_streams_survive_pickling():
    import pickle

    direct = [c.uniform(size=3) for c in Rng(9).fork(3)]
    shipped = [
        pickle.loads(pickle.dumps(c)).uniform(size=3) for c in Rng(9).fork(3)
    ]
    for a, b in zip(direct, shipped):
        np.testing.assert_array_equal(a, b)


def test_categorical_logits_matches_probabilities():
    rng = Rng(0)
    logits = np.log(np.array([0.2, 0.5, 0.3]))
    draws = rng.categorical_logits(np.tile(logits, (100_000, 1)))
    freq = np.bincount(draws, minlength=3) / draws.size
    np.testing.assert_allclose(freq, [0.2, 0.5, 0.3], atol=0.01)


def test_categorical_logits_handles_extreme_values():
    rng = Rng(1)
    logits = np.array([-1e9, 0.0, -1e9])
    draws = rng.categorical_logits(np.tile(logits, (1000, 1)))
    assert np.all(draws == 1)


def test_categorical_batched_rows():
    rng = Rng(2)
    probs = np.array([[1.0, 0.0], [0.0, 1.0]])
    draws = rng.categorical(probs)
    np.testing.assert_array_equal(draws, [0, 1])


def test_dirichlet_batched():
    rng = Rng(3)
    out = rng.dirichlet(np.array([1.0, 2.0, 3.0]), size=10)
    assert out.shape == (10, 3)
    np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-12)
