"""Transform bijection and Jacobian correctness."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.runtime.transforms import (
    IdentityTransform,
    LogitTransform,
    LogTransform,
    StickBreakingTransform,
    transform_for_support,
)

finite_reals = hst.floats(-20.0, 20.0, allow_nan=False)


@pytest.mark.parametrize("t", [IdentityTransform(), LogTransform(), LogitTransform()])
@given(z=finite_reals)
@settings(max_examples=50, deadline=None)
def test_scalar_roundtrip(t, z):
    x = t.to_constrained(z)
    z2 = t.to_unconstrained(x)
    assert np.isclose(z2, z, atol=1e-6)


@pytest.mark.parametrize("t", [LogTransform(), LogitTransform()])
@given(z=hst.floats(-10.0, 10.0))
@settings(max_examples=50, deadline=None)
def test_log_jacobian_matches_numeric(t, z):
    eps = 1e-6
    numeric = np.log(
        abs(t.to_constrained(z + eps) - t.to_constrained(z - eps)) / (2 * eps)
    )
    assert np.isclose(t.log_jacobian(z), numeric, atol=1e-4)


@pytest.mark.parametrize("t", [LogTransform(), LogitTransform()])
@given(z=hst.floats(-8.0, 8.0))
@settings(max_examples=50, deadline=None)
def test_grad_log_jacobian_matches_numeric(t, z):
    eps = 1e-6
    numeric = (t.log_jacobian(z + eps) - t.log_jacobian(z - eps)) / (2 * eps)
    assert np.isclose(t.grad_log_jacobian(z), numeric, atol=1e-5)


def test_log_transform_positivity():
    t = LogTransform()
    zs = np.linspace(-5, 5, 11)
    assert np.all(t.to_constrained(zs) > 0)


def test_logit_transform_range():
    t = LogitTransform()
    zs = np.linspace(-10, 10, 21)
    x = t.to_constrained(zs)
    assert np.all((x > 0) & (x < 1))


class TestStickBreaking:
    def test_roundtrip(self):
        t = StickBreakingTransform(4)
        x = np.array([0.1, 0.2, 0.3, 0.4])
        z = t.to_unconstrained(x)
        np.testing.assert_allclose(t.to_constrained(z), x, atol=1e-10)

    def test_output_is_simplex(self):
        t = StickBreakingTransform(5)
        rng = np.random.default_rng(0)
        for _ in range(20):
            z = rng.normal(size=4) * 3
            x = t.to_constrained(z)
            assert np.all(x > 0)
            assert np.isclose(x.sum(), 1.0)

    def test_uniform_point_maps_to_zero(self):
        # Stan's offset convention: the barycentre maps to z = 0.
        t = StickBreakingTransform(3)
        z = t.to_unconstrained(np.full(3, 1.0 / 3.0))
        np.testing.assert_allclose(z, 0.0, atol=1e-10)

    def test_log_jacobian_matches_numeric_determinant(self):
        t = StickBreakingTransform(3)
        z = np.array([0.3, -0.5])
        eps = 1e-6
        jac = np.zeros((2, 2))
        for i in range(2):
            dz = np.zeros(2)
            dz[i] = eps
            diff = t.to_constrained(z + dz) - t.to_constrained(z - dz)
            jac[:, i] = diff[:2] / (2 * eps)
        numeric = np.log(abs(np.linalg.det(jac)))
        assert np.isclose(t.log_jacobian(z), numeric, atol=1e-4)

    def test_requires_dim_at_least_two(self):
        with pytest.raises(ValueError):
            StickBreakingTransform(1)


@pytest.mark.parametrize(
    "support,cls",
    [
        ("real", IdentityTransform),
        ("pos_real", LogTransform),
        ("unit_interval", LogitTransform),
    ],
)
def test_transform_for_support(support, cls):
    assert isinstance(transform_for_support(support), cls)


def test_transform_for_simplex_needs_dim():
    with pytest.raises(ValueError):
        transform_for_support("simplex")
    t = transform_for_support("simplex", dim=3)
    assert isinstance(t, StickBreakingTransform)


def test_transform_for_unknown_support():
    with pytest.raises(ValueError):
        transform_for_support("pos_def_mat")
