"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.rng import Rng


@pytest.fixture
def rng() -> Rng:
    return Rng(12345)


@pytest.fixture
def np_rng() -> np.random.Generator:
    return np.random.default_rng(98765)
