"""Diagnostics: trace summaries, ASCII plots, R-hat reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.diagnostics import (
    ascii_series,
    rhat_report,
    trace_plot,
    trace_summary,
)


def test_ascii_series_basic_shape():
    out = ascii_series(np.sin(np.linspace(0, 6, 200)), width=40, height=8)
    lines = out.splitlines()
    assert len(lines) == 9  # 8 rows + footer
    assert "*" in out
    assert "draws" in lines[-1]


def test_ascii_series_constant_and_empty():
    assert "(empty series)" == ascii_series([])
    out = ascii_series(np.ones(10))
    assert "*" in out  # constant series still renders


def test_ascii_series_ignores_nonfinite():
    vals = np.array([0.0, np.inf, 1.0, np.nan, 2.0])
    out = ascii_series(vals)
    assert "*" in out


def test_trace_summary_columns():
    rng = np.random.default_rng(0)
    samples = {"mu": rng.normal(2.0, 0.5, size=(500, 2)), "s": rng.gamma(2, size=500)}
    text = trace_summary(samples)
    assert "mu[0]" in text and "mu[1]" in text
    assert "ESS" in text
    # The reported means are sane.
    line = next(l for l in text.splitlines() if l.startswith("mu[0]"))
    assert float(line.split()[1]) == pytest.approx(2.0, abs=0.1)


def test_trace_summary_truncates_components():
    samples = {"big": np.zeros((50, 20))}
    text = trace_summary(samples, max_components=4)
    assert "more components" in text


def test_trace_plot_selects_component():
    draws = np.stack([np.linspace(0, 1, 30), np.linspace(5, 6, 30)], axis=1)
    out = trace_plot({"theta": draws}, "theta", component=(1,))
    assert "theta[1]" in out


def test_rhat_report_flags_divergence():
    rng = np.random.default_rng(1)
    good = [ {"mu": rng.normal(size=300)} for _ in range(3) ]
    text = rhat_report(good, "mu")
    assert "OK" in text
    bad = [
        {"mu": rng.normal(size=300)},
        {"mu": rng.normal(size=300) + 10.0},
    ]
    text = rhat_report(bad, "mu")
    assert "NOT CONVERGED" in text


def test_rhat_report_vector_parameter():
    rng = np.random.default_rng(2)
    chains = [{"theta": rng.normal(size=(200, 3))} for _ in range(2)]
    text = rhat_report(chains, "theta")
    assert "theta[0]" in text and "theta[2]" in text
