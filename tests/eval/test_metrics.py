"""Evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import multivariate_normal

from repro.eval.metrics import (
    bernoulli_log_predictive,
    effective_sample_size,
    ess_bulk,
    ess_tail,
    mixture_log_predictive,
    potential_scale_reduction,
    rank_normalize,
    split_chains,
    split_potential_scale_reduction,
)


def test_mixture_log_predictive_single_component_matches_mvn():
    rng = np.random.default_rng(0)
    pts = rng.normal(size=(20, 2))
    mu = np.array([[0.5, -0.5]])
    cov = np.eye(2) * 2.0
    got = mixture_log_predictive(pts, mu, cov)
    expected = multivariate_normal(mu[0], cov).logpdf(pts).sum()
    assert got == pytest.approx(expected, rel=1e-10)


def test_mixture_log_predictive_weights():
    pts = np.array([[10.0, 10.0]])
    mu = np.array([[10.0, 10.0], [-10.0, -10.0]])
    cov = np.eye(2)
    lp_uniform = mixture_log_predictive(pts, mu, cov)
    lp_right = mixture_log_predictive(pts, mu, cov, pi=np.array([0.99, 0.01]))
    lp_wrong = mixture_log_predictive(pts, mu, cov, pi=np.array([0.01, 0.99]))
    assert lp_right > lp_uniform > lp_wrong


def test_mixture_log_predictive_per_cluster_covs():
    pts = np.array([[0.0, 0.0]])
    mu = np.zeros((2, 2))
    sigmas = np.stack([np.eye(2), np.eye(2) * 100.0])
    lp = mixture_log_predictive(pts, mu, sigmas)
    tight = multivariate_normal(np.zeros(2), np.eye(2)).logpdf(pts[0])
    wide = multivariate_normal(np.zeros(2), np.eye(2) * 100).logpdf(pts[0])
    expected = np.logaddexp(np.log(0.5) + tight, np.log(0.5) + wide)
    assert lp == pytest.approx(float(expected), rel=1e-10)


def test_bernoulli_log_predictive():
    x = np.array([[1.0, 0.0], [0.0, 1.0]])
    theta = np.array([100.0, -100.0])
    # Point 0 has logit +100 (y=1 certain), point 1 logit -100 (y=0).
    got = bernoulli_log_predictive(x, np.array([1, 0]), theta, 0.0)
    assert got == pytest.approx(0.0, abs=1e-6)
    bad = bernoulli_log_predictive(x, np.array([0, 1]), theta, 0.0)
    assert bad < -50


def test_ess_iid_close_to_n():
    rng = np.random.default_rng(1)
    draws = rng.normal(size=4000)
    ess = effective_sample_size(draws)
    assert ess > 3000


def test_ess_correlated_chain_is_small():
    rng = np.random.default_rng(2)
    x = np.zeros(4000)
    for i in range(1, 4000):
        x[i] = 0.99 * x[i - 1] + rng.normal() * 0.1
    ess = effective_sample_size(x)
    assert ess < 400


def test_ess_degenerate_inputs():
    assert effective_sample_size(np.ones(100)) == 100.0
    assert effective_sample_size(np.array([1.0, 2.0])) == 2.0


def test_rhat_mixed_vs_unmixed():
    rng = np.random.default_rng(3)
    mixed = rng.normal(size=(4, 500))
    assert potential_scale_reduction(mixed) == pytest.approx(1.0, abs=0.05)
    unmixed = mixed + np.arange(4)[:, None] * 5.0
    assert potential_scale_reduction(unmixed) > 2.0


def test_rhat_requires_multiple_chains():
    with pytest.raises(ValueError):
        potential_scale_reduction(np.zeros((1, 100)))


# -- rank-normalized split diagnostics (Vehtari et al. 2021) ---------------


def test_split_chains_halves_and_drops_odd_middle():
    even = split_chains(np.arange(20.0).reshape(2, 10))
    assert even.shape == (4, 5)
    np.testing.assert_array_equal(even[0], np.arange(5.0))
    np.testing.assert_array_equal(even[2], np.arange(5.0, 10.0))
    odd = split_chains(np.arange(11.0)[None, :].repeat(2, axis=0))
    assert odd.shape == (4, 5)  # the middle draw is discarded
    with pytest.raises(ValueError):
        split_chains(np.zeros((2, 3)))


def test_rank_normalize_is_monotone_and_standardish():
    rng = np.random.default_rng(10)
    x = rng.standard_cauchy(size=(2, 500))  # infinite variance
    z = rank_normalize(x)
    assert z.shape == x.shape
    assert np.all(np.isfinite(z))
    assert abs(z.mean()) < 0.01
    assert z.std() == pytest.approx(1.0, abs=0.05)
    # Rank transform preserves ordering within the pooled draws.
    flat_x, flat_z = x.ravel(), z.ravel()
    order = np.argsort(flat_x)
    assert np.all(np.diff(flat_z[order]) >= 0)


def test_split_rhat_close_to_one_for_iid():
    rng = np.random.default_rng(11)
    chains = rng.normal(size=(4, 500))
    assert split_potential_scale_reduction(chains) == pytest.approx(1.0, abs=0.05)


def test_split_rhat_catches_within_chain_drift():
    rng = np.random.default_rng(12)
    drifting = rng.normal(size=(4, 500)) + np.linspace(0.0, 3.0, 500)
    # Every chain drifts identically, so the classic statistic sees
    # agreeing means and is blind to it; splitting is not.
    assert potential_scale_reduction(drifting) == pytest.approx(1.0, abs=0.05)
    assert split_potential_scale_reduction(drifting) > 1.1


def test_split_rhat_catches_scale_disagreement():
    rng = np.random.default_rng(13)
    chains = rng.normal(size=(4, 500))
    chains[0] *= 6.0  # same mean, very different spread
    assert split_potential_scale_reduction(chains) > 1.1


def test_split_rhat_robust_to_heavy_tails():
    rng = np.random.default_rng(14)
    chains = rng.standard_cauchy(size=(4, 500))
    r = split_potential_scale_reduction(chains)
    assert np.isfinite(r)
    assert r == pytest.approx(1.0, abs=0.05)


def test_split_rhat_constant_chains():
    assert split_potential_scale_reduction(np.ones((2, 8))) == 1.0


def test_ess_bulk_iid_near_total():
    rng = np.random.default_rng(15)
    chains = rng.normal(size=(4, 500))
    assert ess_bulk(chains) > 0.5 * chains.size


def test_ess_bulk_correlated_chains_much_smaller():
    rng = np.random.default_rng(16)
    m, n = 4, 2000
    x = np.zeros((m, n))
    for c in range(m):
        for i in range(1, n):
            x[c, i] = 0.95 * x[c, i - 1] + rng.normal()
    bulk = ess_bulk(x)
    # AR(0.95) has autocorrelation time ~ (1+rho)/(1-rho) = 39.
    assert bulk < 0.1 * x.size
    assert bulk == pytest.approx(x.size / 39, rel=0.7)


def test_ess_tail_within_total_and_positive():
    rng = np.random.default_rng(17)
    chains = rng.normal(size=(4, 500))
    tail = ess_tail(chains)
    assert 1.0 <= tail <= chains.size
    # Tail ESS also goes up with more iid draws.
    assert ess_tail(rng.normal(size=(4, 2000))) > tail
