"""Evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import multivariate_normal

from repro.eval.metrics import (
    bernoulli_log_predictive,
    effective_sample_size,
    mixture_log_predictive,
    potential_scale_reduction,
)


def test_mixture_log_predictive_single_component_matches_mvn():
    rng = np.random.default_rng(0)
    pts = rng.normal(size=(20, 2))
    mu = np.array([[0.5, -0.5]])
    cov = np.eye(2) * 2.0
    got = mixture_log_predictive(pts, mu, cov)
    expected = multivariate_normal(mu[0], cov).logpdf(pts).sum()
    assert got == pytest.approx(expected, rel=1e-10)


def test_mixture_log_predictive_weights():
    pts = np.array([[10.0, 10.0]])
    mu = np.array([[10.0, 10.0], [-10.0, -10.0]])
    cov = np.eye(2)
    lp_uniform = mixture_log_predictive(pts, mu, cov)
    lp_right = mixture_log_predictive(pts, mu, cov, pi=np.array([0.99, 0.01]))
    lp_wrong = mixture_log_predictive(pts, mu, cov, pi=np.array([0.01, 0.99]))
    assert lp_right > lp_uniform > lp_wrong


def test_mixture_log_predictive_per_cluster_covs():
    pts = np.array([[0.0, 0.0]])
    mu = np.zeros((2, 2))
    sigmas = np.stack([np.eye(2), np.eye(2) * 100.0])
    lp = mixture_log_predictive(pts, mu, sigmas)
    tight = multivariate_normal(np.zeros(2), np.eye(2)).logpdf(pts[0])
    wide = multivariate_normal(np.zeros(2), np.eye(2) * 100).logpdf(pts[0])
    expected = np.logaddexp(np.log(0.5) + tight, np.log(0.5) + wide)
    assert lp == pytest.approx(float(expected), rel=1e-10)


def test_bernoulli_log_predictive():
    x = np.array([[1.0, 0.0], [0.0, 1.0]])
    theta = np.array([100.0, -100.0])
    # Point 0 has logit +100 (y=1 certain), point 1 logit -100 (y=0).
    got = bernoulli_log_predictive(x, np.array([1, 0]), theta, 0.0)
    assert got == pytest.approx(0.0, abs=1e-6)
    bad = bernoulli_log_predictive(x, np.array([0, 1]), theta, 0.0)
    assert bad < -50


def test_ess_iid_close_to_n():
    rng = np.random.default_rng(1)
    draws = rng.normal(size=4000)
    ess = effective_sample_size(draws)
    assert ess > 3000


def test_ess_correlated_chain_is_small():
    rng = np.random.default_rng(2)
    x = np.zeros(4000)
    for i in range(1, 4000):
        x[i] = 0.99 * x[i - 1] + rng.normal() * 0.1
    ess = effective_sample_size(x)
    assert ess < 400


def test_ess_degenerate_inputs():
    assert effective_sample_size(np.ones(100)) == 100.0
    assert effective_sample_size(np.array([1.0, 2.0])) == 2.0


def test_rhat_mixed_vs_unmixed():
    rng = np.random.default_rng(3)
    mixed = rng.normal(size=(4, 500))
    assert potential_scale_reduction(mixed) == pytest.approx(1.0, abs=0.05)
    unmixed = mixed + np.arange(4)[:, None] * 5.0
    assert potential_scale_reduction(unmixed) > 2.0


def test_rhat_requires_multiple_chains():
    with pytest.raises(ValueError):
        potential_scale_reduction(np.zeros((1, 100)))
