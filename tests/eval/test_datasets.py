"""Synthetic dataset generators: shapes, determinism, structure."""

from __future__ import annotations

import numpy as np

from repro.eval.datasets import (
    adult_like,
    german_credit_like,
    hgmm_synthetic,
    kos_like,
    nips_like,
    synthetic_corpus,
)


def test_german_credit_shape():
    d = german_credit_like()
    assert d.x.shape == (1000, 24)
    assert set(np.unique(d.y)) <= {0, 1}
    # Standardised features.
    np.testing.assert_allclose(d.x.mean(axis=0), 0.0, atol=1e-9)


def test_adult_shape():
    d = adult_like(n=5000)
    assert d.x.shape == (5000, 14)


def test_classification_labels_follow_signal():
    d = german_credit_like(n=5000, d=6, seed=5)
    logits = d.x @ d.true_theta + d.true_bias
    # Labels should correlate with the generating logits.
    agreement = ((logits > 0).astype(int) == d.y).mean()
    # Better than chance (the sparsity mask can leave the signal weak).
    assert agreement > 0.55


def test_datasets_are_deterministic():
    a, b = german_credit_like(seed=9), german_credit_like(seed=9)
    np.testing.assert_array_equal(a.x, b.x)
    np.testing.assert_array_equal(a.y, b.y)


def test_hgmm_synthetic_clusters():
    d = hgmm_synthetic(k=4, d=3, n=500, seed=1)
    assert d.y.shape == (500, 3)
    assert d.mu.shape == (4, 3)
    assert d.holdout.shape[0] == 100
    # Points sit near their assigned centres.
    dists = np.linalg.norm(d.y - d.mu[d.z], axis=1)
    assert np.median(dists) < 3.0


def test_corpus_token_budget():
    c = synthetic_corpus("t", vocab_size=40, total_tokens=5000, n_docs=50, seed=2)
    assert c.n_tokens == 5000
    assert c.n_docs == 50
    assert c.w.flat.max() < 40
    assert c.w.flat.min() >= 0


def test_corpus_has_topic_structure():
    # Documents should reuse few words relative to the vocabulary
    # (peaked topics), unlike a uniform corpus.
    c = synthetic_corpus(
        "t", vocab_size=500, total_tokens=4000, n_docs=40,
        n_topics_true=5, seed=3, topic_concentration=0.02,
    )
    distinct_per_doc = np.mean([len(np.unique(c.w.row(i))) for i in range(c.n_docs)])
    assert distinct_per_doc < 60


def test_kos_nips_shapes():
    kos = kos_like(scale=0.01)
    nips = nips_like(scale=0.01)
    assert nips.n_tokens > kos.n_tokens
    assert nips.vocab_size > kos.vocab_size
    full_kos = kos_like(scale=1.0)
    assert full_kos.vocab_size == 6906
