"""Blk IL lowering and the Section 5.4 optimisations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blk.ir import LoopBlk, ParBlk, SeqBlk, SumBlk
from repro.core.blk.lower import lower_to_blk
from repro.core.blk.optimize import OptimizeConfig, optimize_blocks
from repro.core.density.conditionals import blocked_factors, conditional
from repro.core.exprs import Call, Gen, IntLit, RealLit, Var
from repro.core.kernel.conjugacy import detect_enumeration
from repro.core.lowpp.ad import gen_grad
from repro.core.lowpp.gen_gibbs import gen_gibbs_enumeration
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SLoop,
)

from tests.lowpp.conftest import make_setup


def simple_decl(body):
    return LDecl(name="f", params=(), body=tuple(body))


def test_lowering_splits_seq_and_par():
    body = [
        SAssign(LValue("a"), AssignOp.SET, RealLit(0.0)),
        SLoop(
            LoopKind.PAR,
            Gen("i", IntLit(0), Var("N")),
            (SAssign(LValue("x", (Var("i"),)), AssignOp.SET, Var("i")),),
        ),
        SAssign(LValue("b"), AssignOp.SET, RealLit(1.0)),
    ]
    blk = lower_to_blk(simple_decl(body))
    kinds = [type(b) for b in blk.blocks]
    assert kinds == [SeqBlk, ParBlk, SeqBlk]


def test_lowering_seq_loop_becomes_loop_blk():
    body = [
        SLoop(
            LoopKind.SEQ,
            Gen("k", IntLit(0), Var("K")),
            (
                SLoop(
                    LoopKind.PAR,
                    Gen("n", IntLit(0), Var("N")),
                    (SAssign(LValue("w", (Var("n"), Var("k"))), AssignOp.SET, Var("n")),),
                ),
            ),
        )
    ]
    blk = lower_to_blk(simple_decl(body))
    (lb,) = blk.blocks
    assert isinstance(lb, LoopBlk)
    assert isinstance(lb.blocks[0], ParBlk)


def inner_loop_block(outer_n, inner_n):
    return simple_decl(
        [
            SLoop(
                LoopKind.PAR,
                Gen("k", IntLit(0), Var("K")),
                (
                    SLoop(
                        LoopKind.PAR,
                        Gen("n", IntLit(0), Var("N")),
                        (
                            SAssign(
                                LValue("out", (Var("k"), Var("n"))),
                                AssignOp.SET,
                                Var("n"),
                            ),
                        ),
                    ),
                ),
            )
        ]
    )


def test_commute_when_inner_much_larger():
    decl = inner_loop_block(3, 10_000)
    blk = optimize_blocks(lower_to_blk(decl), {"K": 3, "N": 10_000})
    (b,) = blk.blocks
    assert isinstance(b, ParBlk)
    assert b.gen.var == "n"  # the big loop is now the parallel one
    assert isinstance(b.stmts[0], SLoop)
    assert b.stmts[0].gen.var == "k"


def test_no_commute_when_sizes_comparable():
    decl = inner_loop_block(100, 120)
    blk = optimize_blocks(lower_to_blk(decl), {"K": 100, "N": 120})
    (b,) = blk.blocks
    assert b.gen.var == "k"


def test_no_commute_when_inner_bound_depends_on_outer():
    decl = simple_decl(
        [
            SLoop(
                LoopKind.PAR,
                Gen("d", IntLit(0), Var("D")),
                (
                    SLoop(
                        LoopKind.PAR,
                        Gen("j", IntLit(0), Var("L")[Var("d")]),
                        (SAssign(LValue("o", (Var("d"), Var("j"))), AssignOp.SET, Var("j")),),
                    ),
                ),
            )
        ]
    )
    blk = optimize_blocks(
        lower_to_blk(decl), {"D": 2, "L": np.array([10_000, 10_000])}
    )
    (b,) = blk.blocks
    assert b.gen.var == "d"


def test_commute_disabled_by_config():
    decl = inner_loop_block(3, 10_000)
    cfg = OptimizeConfig(commute_loops=False)
    blk = optimize_blocks(lower_to_blk(decl), {"K": 3, "N": 10_000}, cfg)
    (b,) = blk.blocks
    assert b.gen.var == "k"


def contention_decl():
    # The paper's Section 5.4 example: adj_var += ... over N threads.
    return simple_decl(
        [
            SLoop(
                LoopKind.ATM_PAR,
                Gen("n", IntLit(0), Var("N")),
                (
                    SAssign(
                        LValue("t"),
                        AssignOp.SET,
                        Call("*", (Var("adj_ll"), Var("n"))),
                    ),
                    SAssign(LValue("adj_var"), AssignOp.INC, Var("t")),
                ),
            )
        ]
    )


def test_sum_block_conversion():
    blk = optimize_blocks(lower_to_blk(contention_decl()), {"N": 50_000})
    (b,) = blk.blocks
    assert isinstance(b, SumBlk)
    assert b.acc == LValue("adj_var")
    assert b.init == Var("adj_var")
    assert b.value == Var("t")


def test_no_conversion_below_contention_threshold():
    blk = optimize_blocks(lower_to_blk(contention_decl()), {"N": 8})
    (b,) = blk.blocks
    assert isinstance(b, ParBlk)


def test_conversion_disabled_by_config():
    cfg = OptimizeConfig(sum_block_conversion=False)
    blk = optimize_blocks(lower_to_blk(contention_decl()), {"N": 50_000}, cfg)
    (b,) = blk.blocks
    assert isinstance(b, ParBlk)


def test_fission_multiple_accumulators():
    decl = simple_decl(
        [
            SLoop(
                LoopKind.ATM_PAR,
                Gen("n", IntLit(0), Var("N")),
                (
                    SAssign(LValue("s1"), AssignOp.INC, Var("n")),
                    SAssign(LValue("s2"), AssignOp.INC, Call("*", (Var("n"), Var("n")))),
                ),
            )
        ]
    )
    blk = optimize_blocks(lower_to_blk(decl), {"N": 1000})
    assert len(blk.blocks) == 2
    assert all(isinstance(b, SumBlk) for b in blk.blocks)
    assert [b.acc.name for b in blk.blocks] == ["s1", "s2"]


def test_indexed_increment_not_converted():
    # adj_mu[z[n]] += ... : scatter, not a scalar reduction.
    decl = simple_decl(
        [
            SLoop(
                LoopKind.ATM_PAR,
                Gen("n", IntLit(0), Var("N")),
                (
                    SAssign(
                        LValue("adj_mu", (Var("z")[Var("n")],)),
                        AssignOp.INC,
                        Var("n"),
                    ),
                ),
            )
        ]
    )
    blk = optimize_blocks(lower_to_blk(decl), {"N": 50_000})
    (b,) = blk.blocks
    assert isinstance(b, ParBlk)


def test_hlr_gradient_converts_sigma2_adjoint():
    # End-to-end: the HLR gradient's shared-variance adjoint loop becomes
    # a summation block at Adult-income scale (the Section 7.2 story).
    fd, info = make_setup("hlr")
    blk_cond = blocked_factors(fd, ("sigma2", "b", "theta"))
    grad = gen_grad(blk_cond, fd.lets)
    lowered = lower_to_blk(grad)
    env = {"N": 50_000, "D": 14}
    optimized = optimize_blocks(lowered, env)
    assert any(isinstance(b, SumBlk) for b in optimized.blocks)


def test_enumeration_gibbs_lowering_shape():
    fd, info = make_setup("gmm")
    cond = conditional(fd, "z", info)
    enum = detect_enumeration(cond, info.info("z").dist_name)
    code = gen_gibbs_enumeration(enum, fd.lets)
    blk = lower_to_blk(code.decl)
    # Phase 1 is a loopBlk over the support; phase 2 a parBlk draw.
    assert isinstance(blk.blocks[0], LoopBlk)
    assert isinstance(blk.blocks[-1], ParBlk)
