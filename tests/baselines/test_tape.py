"""Tape AD: every operator checked against finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.stan.tape import T, backward, stack_last


def tape_grad(f, x: np.ndarray) -> np.ndarray:
    leaf = T(x)
    (g,) = backward(f(leaf), [leaf])
    return g


def numeric_grad(f, x: np.ndarray, eps=1e-6) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        for s in (1, -1):
            xx = x.copy()
            xx[it.multi_index] += s * eps
            val = float(f(T(xx)).value)
            if s == 1:
                hi = val
            else:
                lo = val
        g[it.multi_index] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


CASES = [
    ("add", lambda x: (x + 3.0).sum(), np.array([1.0, 2.0])),
    ("sub", lambda x: (5.0 - x).sum(), np.array([1.0, 2.0])),
    ("mul", lambda x: (x * x).sum(), np.array([1.5, -2.0])),
    ("div", lambda x: (1.0 / x).sum(), np.array([1.5, 2.0])),
    ("neg", lambda x: (-x).sum(), np.array([1.0, -1.0])),
    ("pow", lambda x: (x**3).sum(), np.array([1.2, 0.7])),
    ("exp", lambda x: x.exp().sum(), np.array([0.1, -0.5])),
    ("log", lambda x: x.log().sum(), np.array([1.1, 2.5])),
    ("sigmoid", lambda x: x.sigmoid().sum(), np.array([0.3, -1.0])),
    ("sum_axis", lambda x: (x.sum(axis=0) * np.array([1.0, 2.0])).sum(), np.ones((3, 2))),
    ("getitem", lambda x: x[1] * 2.0, np.array([1.0, 4.0, 9.0])),
    ("logsumexp", lambda x: x.logsumexp(axis=-1).sum(), np.array([[1.0, 2.0], [0.1, -3.0]])),
]


@pytest.mark.parametrize("name,f,x", CASES, ids=[c[0] for c in CASES])
def test_unary_grads(name, f, x):
    np.testing.assert_allclose(tape_grad(f, x), numeric_grad(f, x), rtol=1e-5, atol=1e-8)


def test_broadcast_grad():
    # (N, D) + (D,) broadcasting reduces correctly.
    const = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]])

    def f(x):  # x has shape (2,)
        return ((T(const) - x) ** 2).sum()

    x = np.array([0.5, -0.5])
    np.testing.assert_allclose(tape_grad(f, x), numeric_grad(f, x), rtol=1e-6)


@pytest.mark.parametrize(
    "ashape,bshape",
    [((3,), (3,)), ((4, 3), (3,)), ((4, 3), (3, 2))],
)
def test_dot_grads(ashape, bshape):
    rng = np.random.default_rng(0)
    a0, b0 = rng.normal(size=ashape), rng.normal(size=bshape)

    def fa(a):
        out = a.dot(T(b0))
        return out.sum() if out.value.ndim else out

    def fb(b):
        out = T(a0).dot(b)
        return out.sum() if out.value.ndim else out

    np.testing.assert_allclose(tape_grad(fa, a0), numeric_grad(fa, a0), rtol=1e-5)
    np.testing.assert_allclose(tape_grad(fb, b0), numeric_grad(fb, b0), rtol=1e-5)


def test_stack_last_grad():
    def f(x):
        parts = [x * 2.0, x.exp()]
        return stack_last(parts).logsumexp(axis=-1).sum()

    x = np.array([0.5, -1.0])
    np.testing.assert_allclose(tape_grad(f, x), numeric_grad(f, x), rtol=1e-5)


def test_shared_subexpression_accumulates():
    def f(x):
        y = x * 2.0
        return (y * y + y).sum()

    x = np.array([1.0, 3.0])
    np.testing.assert_allclose(tape_grad(f, x), numeric_grad(f, x), rtol=1e-6)


def test_multiple_leaves():
    a, b = T(np.array([1.0, 2.0])), T(np.array([3.0, 4.0]))
    out = (a * b).sum()
    ga, gb = backward(out, [a, b])
    np.testing.assert_allclose(ga, [3.0, 4.0])
    np.testing.assert_allclose(gb, [1.0, 2.0])
