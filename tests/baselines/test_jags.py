"""The JAGS-like graph engine: structure, sampler assignment, posteriors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.jags.ars import ars_sample
from repro.baselines.jags.engine import JagsEngine
from repro.eval import models


# ----------------------------------------------------------------------
# Adaptive rejection sampling.
# ----------------------------------------------------------------------


def test_ars_standard_normal_moments():
    rng = np.random.default_rng(0)
    logp = lambda x: -0.5 * x * x
    draws = np.array([ars_sample(rng, logp) for _ in range(4000)])
    assert draws.mean() == pytest.approx(0.0, abs=0.06)
    assert draws.std() == pytest.approx(1.0, abs=0.06)


def test_ars_shifted_normal():
    rng = np.random.default_rng(1)
    logp = lambda x: -0.5 * (x - 3.0) ** 2 / 0.25
    draws = np.array([ars_sample(rng, logp, init_points=[2.0, 3.0, 4.0]) for _ in range(2000)])
    assert draws.mean() == pytest.approx(3.0, abs=0.05)


def test_ars_bounded_support():
    rng = np.random.default_rng(2)
    # Gamma(3, 2) on (0, inf) -- log-concave for shape > 1.
    logp = lambda x: 2.0 * np.log(x) - 2.0 * x if x > 0 else -np.inf
    draws = np.array(
        [ars_sample(rng, logp, lower=0.0, init_points=[0.5, 1.5, 3.0]) for _ in range(3000)]
    )
    assert np.all(draws > 0)
    assert draws.mean() == pytest.approx(1.5, rel=0.05)


# ----------------------------------------------------------------------
# Graph structure.
# ----------------------------------------------------------------------


def gmm_inputs(seed=0, n=40):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-3.0, 0.0], [3.0, 0.0]])
    z = rng.integers(0, 2, size=n)
    x = true_mu[z] + rng.normal(0, 0.4, size=(n, 2))
    hypers = {
        "K": 2,
        "N": n,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 16.0,
        "pis": np.full(2, 0.5),
        "Sigma": np.eye(2) * 0.16,
    }
    return hypers, {"x": x}, true_mu


def test_graph_reifies_every_element():
    hypers, data, _ = gmm_inputs(n=40)
    eng = JagsEngine(models.GMM, hypers, data)
    assert len(eng.net.nodes_by_var["z"]) == 40
    assert len(eng.net.nodes_by_var["mu"]) == 2
    assert len(eng.net.nodes_by_var["x"]) == 40


def test_edge_classification():
    hypers, data, _ = gmm_inputs(n=10)
    eng = JagsEngine(models.GMM, hypers, data)
    # z[n] -> x[n] is aligned: exactly one child per z node.
    for node in eng.net.nodes_by_var["z"]:
        assert len(node.children) == 1
        assert node.children[0].idx == node.idx
    # mu[k] -> x[*] is dense (stochastic indexing).
    for node in eng.net.nodes_by_var["mu"]:
        assert len(node.children) == 10


def test_sampler_factory_assignments():
    hypers, data, _ = gmm_inputs(n=10)
    eng = JagsEngine(models.GMM, hypers, data)
    names = eng.sampler_names()
    assert names["mu"] == "MvNormalMeanSampler"
    assert names["z"] == "EnumerationSampler"


def test_hlr_falls_back_to_ars():
    rng = np.random.default_rng(3)
    n, d = 20, 3
    x = rng.normal(size=(n, d))
    y = rng.integers(0, 2, size=n)
    eng = JagsEngine(
        models.HLR, {"N": n, "D": d, "lam": 1.0, "x": x}, {"y": y}
    )
    names = eng.sampler_names()
    assert names["theta"] == "ARSSampler"
    assert names["b"] == "ARSSampler"
    assert names["sigma2"] == "ARSSampler"


def test_hgmm_assignments():
    rng = np.random.default_rng(4)
    y = rng.normal(size=(15, 2))
    hypers = {
        "K": 2, "N": 15, "alpha": np.ones(2), "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 9.0, "nu": 4.0, "Psi": np.eye(2),
    }
    eng = JagsEngine(models.HGMM, hypers, {"y": y})
    names = eng.sampler_names()
    assert names["pi"] == "DirichletCategoricalSampler"
    assert names["mu"] == "MvNormalMeanSampler"
    assert names["Sigma"] == "InvWishartSampler"
    assert names["z"] == "EnumerationSampler"


# ----------------------------------------------------------------------
# Posterior correctness.
# ----------------------------------------------------------------------


def test_jags_normal_normal_posterior():
    rng = np.random.default_rng(5)
    y = rng.normal(2.0, 1.0, size=30)
    eng = JagsEngine(
        models.NORMAL_NORMAL,
        {"N": 30, "mu_0": 0.0, "v_0": 100.0, "v": 1.0},
        {"y": y},
    )
    samples, _ = eng.sample(num_samples=1500, burn_in=20, seed=0)
    draws = np.asarray(samples["mu"])
    post_prec = 1 / 100.0 + 30
    post_mean = y.sum() / post_prec
    assert draws.mean() == pytest.approx(post_mean, abs=0.05)
    assert draws.var() == pytest.approx(1 / post_prec, rel=0.25)


def test_jags_gmm_recovers_clusters():
    hypers, data, true_mu = gmm_inputs(n=60)
    eng = JagsEngine(models.GMM, hypers, data)
    samples, _ = eng.sample(num_samples=40, burn_in=20, seed=1)
    mean_mu = np.asarray(samples["mu"])[10:].mean(axis=0)
    for t in true_mu:
        assert np.linalg.norm(mean_mu - t, axis=1).min() < 0.5


def test_jags_beta_bernoulli_posterior():
    y = np.array([1, 1, 0, 1, 1, 0, 1, 1])
    eng = JagsEngine(models.BETA_BERNOULLI, {"N": 8, "a": 2.0, "b": 2.0}, {"y": y})
    samples, _ = eng.sample(num_samples=2000, seed=2)
    draws = np.asarray(samples["p"])
    assert draws.mean() == pytest.approx(8 / 12, abs=0.02)


def test_jags_matches_augurv2_posterior():
    # The two systems must agree on the posterior (same model, same data).
    from repro.core.compiler import compile_model

    rng = np.random.default_rng(6)
    y = rng.normal(1.0, 1.0, size=25)
    hypers = {"N": 25, "mu_0": 0.0, "v_0": 4.0, "v": 1.0}
    eng = JagsEngine(models.NORMAL_NORMAL, hypers, {"y": y})
    jsamples, _ = eng.sample(num_samples=1500, burn_in=20, seed=0)
    sampler = compile_model(models.NORMAL_NORMAL, hypers, {"y": y})
    asamples = sampler.sample(num_samples=1500, burn_in=20, seed=0)
    assert np.mean(jsamples["mu"]) == pytest.approx(
        float(asamples.array("mu").mean()), abs=0.05
    )
