"""The Stan-like engine: taped posteriors, NUTS warmup, compile model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.stan.compilemodel import simulate_cpp_compile
from repro.baselines.stan.engine import StanSampler, _DualAveraging
from repro.baselines.stan.marginalize import (
    gmm_stan_data,
    hgmm_stan_data,
    hlr_model,
    marginalized_gmm_model,
    marginalized_hgmm_model,
)
from repro.baselines.stan.model import TapedPosterior


def hlr_data(seed=0, n=120, d=3):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    true_theta = np.array([2.0, -2.0, 0.5])
    p = 1 / (1 + np.exp(-(x @ true_theta)))
    y = (rng.uniform(size=n) < p).astype(np.float64)
    return {"x": x, "y": y, "lam": 1.0}, true_theta


def test_taped_posterior_grad_matches_numeric():
    data, _ = hlr_data(n=30)
    model = hlr_model(30, 3)
    post = TapedPosterior(model, data)
    rng = np.random.default_rng(1)
    z = {"sigma2": np.array(0.3), "b": np.array(0.2), "theta": rng.normal(size=3)}
    grads = post.grad(z)
    eps = 1e-6
    for name in z:
        base = np.asarray(z[name], dtype=np.float64)
        it = np.nditer(base, flags=["multi_index"]) if base.ndim else None
        idxs = [()] if base.ndim == 0 else list(np.ndindex(base.shape))
        for ix in idxs:
            zp = {k: np.array(v, copy=True) for k, v in z.items()}
            zm = {k: np.array(v, copy=True) for k, v in z.items()}
            zp[name][ix] += eps
            zm[name][ix] -= eps
            num = (post.logpdf(zp) - post.logpdf(zm)) / (2 * eps)
            got = grads[name][ix] if base.ndim else float(grads[name])
            assert got == pytest.approx(num, rel=1e-4, abs=1e-6), (name, ix)


def test_hlr_stan_recovers_signal():
    data, true_theta = hlr_data(n=200)
    model = hlr_model(200, 3)
    sampler = StanSampler(model, data, simulate_compile=False)
    samples, wall = sampler.sample(num_samples=150, warmup=80, seed=0)
    theta_mean = samples["theta"].mean(axis=0)
    assert theta_mean[0] > 0.8
    assert theta_mean[1] < -0.8
    assert np.all(samples["sigma2"] > 0)


def test_marginalized_gmm_grad_and_recovery():
    rng = np.random.default_rng(2)
    true_mu = np.array([[-3.0, 0.0], [3.0, 0.0]])
    z = rng.integers(0, 2, size=80)
    x = true_mu[z] + rng.normal(0, 0.4, size=(80, 2))
    data = gmm_stan_data(
        x, np.full(2, 0.5), np.eye(2) * 0.16, np.zeros(2), np.eye(2) * 16.0
    )
    model = marginalized_gmm_model(2, 2)
    post = TapedPosterior(model, data)
    # Gradient spot-check.
    z0 = {"mu": rng.normal(size=(2, 2))}
    g = post.grad(z0)["mu"]
    eps = 1e-6
    for ix in np.ndindex(2, 2):
        zp = {"mu": z0["mu"].copy()}
        zm = {"mu": z0["mu"].copy()}
        zp["mu"][ix] += eps
        zm["mu"][ix] -= eps
        num = (post.logpdf(zp) - post.logpdf(zm)) / (2 * eps)
        assert g[ix] == pytest.approx(num, rel=1e-4, abs=1e-6)
    # Recovery.
    sampler = StanSampler(model, data, simulate_compile=False)
    samples, _ = sampler.sample(num_samples=80, warmup=60, seed=3)
    mean_mu = samples["mu"][40:].mean(axis=0)
    for t in true_mu:
        assert np.linalg.norm(mean_mu - t, axis=1).min() < 0.5


def test_marginalized_hgmm_logp_finite_and_differentiable():
    rng = np.random.default_rng(4)
    y = rng.normal(size=(40, 2))
    data = hgmm_stan_data(y, np.ones(3), np.zeros(2), np.eye(2) * 9.0)
    model = marginalized_hgmm_model(3, 2)
    post = TapedPosterior(model, data)
    z = {
        "mu": rng.normal(size=(3, 2)),
        "pi_free": rng.normal(size=2),
        "log_s": rng.normal(size=(3, 2)) * 0.1,
    }
    lp = post.logpdf(z)
    assert np.isfinite(lp)
    g = post.grad(z)
    eps = 1e-6
    zp = {k: np.array(v, copy=True) for k, v in z.items()}
    zm = {k: np.array(v, copy=True) for k, v in z.items()}
    zp["pi_free"][0] += eps
    zm["pi_free"][0] -= eps
    num = (post.logpdf(zp) - post.logpdf(zm)) / (2 * eps)
    assert g["pi_free"][0] == pytest.approx(num, rel=1e-4, abs=1e-6)


def test_dual_averaging_shrinks_step_on_rejections():
    da = _DualAveraging(0.5)
    for _ in range(30):
        da.update(0.0)  # always rejecting
    assert da.finalize() < 0.5
    da2 = _DualAveraging(0.01)
    for _ in range(30):
        da2.update(1.0)  # always accepting
    assert da2.finalize() > 0.01


def test_compile_simulation_is_slower_than_augurv2():
    from repro.core.compiler import compile_model
    from repro.eval import models as zoo

    data, _ = hlr_data(n=40)
    model = hlr_model(40, 3)
    stan_compile = simulate_cpp_compile(model, data)

    import time

    t0 = time.perf_counter()
    compile_model(
        zoo.HLR,
        {"N": 40, "D": 3, "lam": 1.0, "x": data["x"]},
        {"y": data["y"].astype(np.int64)},
    )
    augur_compile = time.perf_counter() - t0
    assert stan_compile > 2 * augur_compile
