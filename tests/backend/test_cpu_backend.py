"""CPU backend: generated NumPy code differentially tested against the
Low++ interpreter and analytic oracles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backend.cpu import compile_cpu_module
from repro.core.density.conditionals import blocked_factors, conditional
from repro.core.density.interp import log_joint
from repro.core.kernel.conjugacy import detect_conjugacy, detect_enumeration
from repro.core.lowmm.ir import lower_decl
from repro.core.lowmm.size_inference import allocate
from repro.core.lowpp.ad import gen_grad
from repro.core.lowpp.gen_gibbs import gen_gibbs_conjugate, gen_gibbs_enumeration
from repro.core.lowpp.gen_ll import gen_block_ll, gen_cond_ll, gen_model_ll
from repro.core.lowpp.interp import run_decl
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray

from tests.lowpp.conftest import make_setup
from tests.lowpp.test_gen_gibbs import gmm_gibbs_env


def compile_one(decl, workspaces=(), writes=(), ragged=frozenset(), vectorize=True):
    low = lower_decl(decl, workspaces=tuple(w.name for w in workspaces), writes=writes)
    mod = compile_cpu_module([low], ragged_names=ragged, vectorize=vectorize)
    return mod


def lda_env(seed=0):
    rng = np.random.default_rng(seed)
    K, D, V = 3, 4, 6
    N = np.array([5, 3, 6, 2])
    return {
        "K": K,
        "D": D,
        "V": V,
        "N": N,
        "alpha": np.full(K, 0.5),
        "beta": np.full(V, 0.5),
        "theta": rng.dirichlet(np.full(K, 1.0), size=D),
        "phi": rng.dirichlet(np.full(V, 1.0), size=K),
        "z": RaggedArray.from_rows([rng.integers(0, K, size=n) for n in N]),
        "w": RaggedArray.from_rows([rng.integers(0, V, size=n) for n in N]),
    }


# ----------------------------------------------------------------------
# Log-likelihood functions.
# ----------------------------------------------------------------------


def test_model_ll_gmm_matches_oracle(gmm_env_fixture=None):
    fd, info = make_setup("gmm")
    decl = gen_model_ll(fd)
    mod = compile_one(decl)
    env = gmm_gibbs_env()
    (got,) = mod.fn("model_ll")(env, {}, Rng(0))
    assert float(got) == pytest.approx(log_joint(fd, env), rel=1e-10)


def test_model_ll_is_vectorized():
    fd, info = make_setup("gmm")
    mod = compile_one(gen_model_ll(fd))
    # No Python-level loop over the data should survive vectorisation.
    assert "for v_n in range" not in mod.source
    assert "np.arange" in mod.source


def test_model_ll_fallback_matches_vectorized():
    fd, info = make_setup("gmm")
    env = gmm_gibbs_env()
    vec = compile_one(gen_model_ll(fd))
    loop = compile_one(gen_model_ll(fd), vectorize=False)
    assert "for v_n in range" in loop.source
    (a,) = vec.fn("model_ll")(env, {}, Rng(0))
    (b,) = loop.fn("model_ll")(env, {}, Rng(0))
    assert float(a) == pytest.approx(float(b), rel=1e-10)


def test_model_ll_lda_ragged_pair(gmm_env_fixture=None):
    fd, info = make_setup("lda")
    decl = gen_model_ll(fd)
    mod = compile_one(decl, ragged=frozenset({"z", "w"}))
    env = lda_env()
    (got,) = mod.fn("model_ll")(env, {}, Rng(0))
    assert float(got) == pytest.approx(log_joint(fd, env), rel=1e-10)
    assert "_vops.pair_flat" in mod.source


def test_cond_ll_guarded_matches_interp():
    fd, info = make_setup("gmm")
    cond = conditional(fd, "mu", info)
    decl = gen_cond_ll(cond, fd.lets)
    mod = compile_one(decl)
    env = dict(gmm_gibbs_env(), k=1)
    env["mu"] = np.array([[0.5, -0.5], [1.0, 2.0]])
    (got,) = mod.fn(decl.name)(env, {}, Rng(0))
    (expected,) = run_decl(decl, env, Rng(0))
    assert float(got) == pytest.approx(float(expected), rel=1e-10)


def test_block_ll_hlr_matches_interp(hlr_env=None):
    fd, info = make_setup("hlr")
    rng = np.random.default_rng(5)
    env = {
        "N": 40,
        "D": 7,
        "lam": 1.0,
        "x": rng.normal(size=(40, 7)),
        "sigma2": 1.1,
        "b": -0.2,
        "theta": rng.normal(size=7),
        "y": rng.integers(0, 2, size=40),
    }
    blk = blocked_factors(fd, ("sigma2", "b", "theta"))
    decl = gen_block_ll(blk, fd.lets)
    mod = compile_one(decl)
    (got,) = mod.fn(decl.name)(env, {}, Rng(0))
    (expected,) = run_decl(decl, env, Rng(0))
    assert float(got) == pytest.approx(float(expected), rel=1e-10)


# ----------------------------------------------------------------------
# Gradients: compiled vs. interpreted (deterministic, exact).
# ----------------------------------------------------------------------


def test_grad_hlr_compiled_matches_interp():
    fd, info = make_setup("hlr")
    rng = np.random.default_rng(6)
    env = {
        "N": 25,
        "D": 4,
        "lam": 1.0,
        "x": rng.normal(size=(25, 4)),
        "sigma2": 0.9,
        "b": 0.3,
        "theta": rng.normal(size=4),
        "y": rng.integers(0, 2, size=25),
    }
    blk = blocked_factors(fd, ("sigma2", "b", "theta"))
    decl = gen_grad(blk, fd.lets)
    mod = compile_one(decl)
    got = mod.fn(decl.name)(env, {}, Rng(0))
    expected = run_decl(decl, env, Rng(0))
    for g, e in zip(got, expected):
        np.testing.assert_allclose(np.asarray(g), np.asarray(e), rtol=1e-10)


def test_grad_gmm_mu_scatter_compiled_matches_interp():
    fd, info = make_setup("gmm")
    env = gmm_gibbs_env()
    env["mu"] = np.array([[0.1, 0.2], [-0.3, 0.4]])
    blk = blocked_factors(fd, ("mu",))
    decl = gen_grad(blk, fd.lets)
    mod = compile_one(decl)
    (got,) = mod.fn(decl.name)(env, {}, Rng(0))
    (expected,) = run_decl(decl, env, Rng(0))
    np.testing.assert_allclose(got, expected, rtol=1e-10)


# ----------------------------------------------------------------------
# Gibbs updates.
# ----------------------------------------------------------------------


def test_gibbs_mu_statistics_match_manual():
    fd, info = make_setup("gmm")
    match = detect_conjugacy(conditional(fd, "mu", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    mod = compile_one(code.decl, workspaces=code.workspaces, writes=("mu",))
    env = gmm_gibbs_env()
    ws = allocate(code.workspaces, env)
    mod.fn(code.decl.name)(env, ws, Rng(0))
    counts = np.bincount(env["z"], minlength=2).astype(float)
    np.testing.assert_allclose(ws["ws_mu_cnt"], counts)
    sums = np.stack([env["x"][env["z"] == k].sum(axis=0) for k in range(2)])
    np.testing.assert_allclose(ws["ws_mu_sum"], sums, rtol=1e-12)


def test_gibbs_mu_compiled_posterior_moments():
    fd, info = make_setup("gmm")
    match = detect_conjugacy(conditional(fd, "mu", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    mod = compile_one(code.decl, workspaces=code.workspaces, writes=("mu",))
    base = gmm_gibbs_env()
    ws = allocate(code.workspaces, base)
    draws = []
    for i in range(400):
        env = dict(base, mu=base["mu"].copy())
        mod.fn(code.decl.name)(env, ws, Rng(i))
        draws.append(env["mu"].copy())
    means = np.stack(draws).mean(axis=0)
    emp0 = base["x"][base["z"] == 0].mean(axis=0)
    emp1 = base["x"][base["z"] == 1].mean(axis=0)
    np.testing.assert_allclose(means[0], emp0, atol=0.05)
    np.testing.assert_allclose(means[1], emp1, atol=0.05)


def test_gibbs_z_enumeration_compiled_frequencies():
    fd, info = make_setup("gmm")
    cond = conditional(fd, "z", info)
    enum = detect_enumeration(cond, info.info("z").dist_name)
    code = gen_gibbs_enumeration(enum, fd.lets)
    mod = compile_one(code.decl, workspaces=code.workspaces, writes=("z",))
    base = gmm_gibbs_env()
    base["mu"] = np.array([[-2.0, -2.0], [2.0, 2.0]])
    ws = allocate(code.workspaces, base)

    from scipy.stats import multivariate_normal as mvn

    logits = np.array(
        [np.log(0.5) + mvn(base["mu"][k], base["Sigma"]).logpdf(base["x"][0]) for k in range(2)]
    )
    probs = np.exp(logits - logits.max())
    probs /= probs.sum()

    hits = []
    for i in range(1500):
        env = dict(base, z=base["z"].copy())
        mod.fn(code.decl.name)(env, ws, Rng(i))
        hits.append(env["z"][0])
    freq = np.bincount(hits, minlength=2) / len(hits)
    np.testing.assert_allclose(freq, probs, atol=0.035)


def test_gibbs_lda_theta_counts():
    fd, info = make_setup("lda")
    match = detect_conjugacy(conditional(fd, "theta", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    mod = compile_one(
        code.decl,
        workspaces=code.workspaces,
        writes=("theta",),
        ragged=frozenset({"z", "w"}),
    )
    env = lda_env()
    ws = allocate(code.workspaces, env)
    mod.fn(code.decl.name)(env, ws, Rng(0))
    # Counts: per-document topic histogram.
    z = env["z"]
    expected = np.stack(
        [np.bincount(z.row(d), minlength=env["K"]) for d in range(env["D"])]
    ).astype(float)
    np.testing.assert_allclose(ws["ws_theta_cnt"], expected)
    np.testing.assert_allclose(env["theta"].sum(axis=1), 1.0, atol=1e-9)


def test_gibbs_lda_phi_guard_inverted_counts():
    fd, info = make_setup("lda")
    match = detect_conjugacy(conditional(fd, "phi", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    mod = compile_one(
        code.decl,
        workspaces=code.workspaces,
        writes=("phi",),
        ragged=frozenset({"z", "w"}),
    )
    env = lda_env()
    ws = allocate(code.workspaces, env)
    mod.fn(code.decl.name)(env, ws, Rng(0))
    z, w = env["z"].flat, env["w"].flat
    expected = np.zeros((env["K"], env["V"]))
    np.add.at(expected, (z, w), 1.0)
    np.testing.assert_allclose(ws["ws_phi_cnt"], expected)


def test_gibbs_lda_z_enumeration_runs_and_is_valid():
    fd, info = make_setup("lda")
    cond = conditional(fd, "z", info)
    enum = detect_enumeration(cond, info.info("z").dist_name)
    code = gen_gibbs_enumeration(enum, fd.lets)
    mod = compile_one(
        code.decl,
        workspaces=code.workspaces,
        writes=("z",),
        ragged=frozenset({"z", "w", "ws_z_logits"}),
    )
    env = lda_env()
    ws = allocate(code.workspaces, env)
    mod.fn(code.decl.name)(env, ws, Rng(0))
    assert env["z"].flat.min() >= 0
    assert env["z"].flat.max() < env["K"]


def test_scalar_state_write_back():
    fd, info = make_setup("beta_bernoulli")
    match = detect_conjugacy(conditional(fd, "p", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    mod = compile_one(code.decl, workspaces=code.workspaces, writes=("p",))
    y = np.array([1, 1, 1, 0])
    env = {"N": 4, "a": 1.0, "b": 1.0, "p": 0.5, "y": y}
    ws = allocate(code.workspaces, env)
    mod.fn(code.decl.name)(env, ws, Rng(0))
    assert env["p"] != 0.5
    assert 0.0 < env["p"] < 1.0


def test_compiled_module_exposes_source():
    fd, info = make_setup("gmm")
    mod = compile_one(gen_model_ll(fd))
    assert "def model_ll(env, ws, rng):" in mod.source
    assert mod.target == "cpu"
