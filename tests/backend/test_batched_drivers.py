"""Batched element-parallel drivers (PR 3).

Covers: acceptance-decision equivalence between the batched and scalar
MH paths under a controlled random stream, per-lane density agreement
between ``batch_cond_ll_*`` and the scalar ``cond_ll_*``, stat-schema
and label parity, and the fallback matrix (vector elements, user
proposals, ``batch=off``, ``batch_elements=False``, ragged gathers the
vectoriser declines).
"""

from __future__ import annotations

import numpy as np

from repro.core.backend.cpu import decl_vectorizes
from repro.core.backend.drivers import (
    ESliceDriver,
    MHDriver,
    SliceDriver,
    VectorizedESliceDriver,
    VectorizedMHDriver,
    VectorizedSliceDriver,
)
from repro.core.compiler import compile_model
from repro.core.exprs import Gen, IntLit, RealLit, Var
from repro.core.lowpp.ir import AssignOp, LDecl, LoopKind, LValue, SAssign, SLoop
from repro.core.lowmm.ir import lower_decl
from repro.core.options import CompileOptions
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray

NORMAL_ELEMENTS = """
(N, v0, v) => {
  param mu[n] ~ Normal(0.0, v0) for n <- 0 until N ;
  data y[n] ~ Normal(mu[n], v) for n <- 0 until N ;
}
"""

RAGGED_ELEMENTS = """
(D, L, v0, v) => {
  param t[d][j] ~ Normal(0.0, v0) for d <- 0 until D, j <- 0 until L[d] ;
  data y[d][j] ~ Normal(t[d][j], v) for d <- 0 until D, j <- 0 until L[d] ;
}
"""

# The data factor gathers ``t`` through ``c[d][0]`` -- a ragged read the
# vectoriser declines (not the flat pair layout), so the compile-time
# probe must reject the batched declaration and keep the scalar driver.
RAGGED_GATHER = """
(D, K, L, pi, v0, v) => {
  param t[k] ~ Normal(0.0, v0) for k <- 0 until K ;
  data c[d][j] ~ Categorical(pi) for d <- 0 until D, j <- 0 until L[d] ;
  data y[d] ~ Normal(t[c[d][0]], v) for d <- 0 until D ;
}
"""

GMM = """
(K, N, mu0, Sigma0, pis, Sigma) => {
  param mu[k] ~ MvNormal(mu0, Sigma0) for k <- 0 until K ;
  param z[n] ~ Categorical(pis) for n <- 0 until N ;
  data x[n] ~ MvNormal(mu[z[n]], Sigma) for n <- 0 until N ;
}
"""


def nn_inputs(n=8, seed=0):
    rng = np.random.default_rng(seed)
    hypers = {"N": n, "v0": 4.0, "v": 1.0}
    data = {"y": rng.normal(loc=1.0, size=n)}
    return hypers, data


def ragged_inputs(d=5, seed=0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 5, size=d)
    hypers = {"D": d, "L": lengths, "v0": 4.0, "v": 1.0}
    data = {"y": RaggedArray.from_rows([rng.normal(size=k) for k in lengths])}
    return hypers, data


def gmm_inputs(k=2, n=6, seed=0):
    rng = np.random.default_rng(seed)
    hypers = {
        "K": k,
        "N": n,
        "mu0": np.zeros(2),
        "Sigma0": np.eye(2) * 4.0,
        "pis": np.ones(k) / k,
        "Sigma": np.eye(2) * 0.5,
    }
    data = {"x": rng.normal(size=(n, 2))}
    return hypers, data


def only_update(sampler):
    assert len(sampler.updates) == 1
    return sampler.updates[0]


NO_BATCH = CompileOptions(batch_elements=False)


# ----------------------------------------------------------------------
# Driver selection and fallback matrix.
# ----------------------------------------------------------------------


def test_batched_drivers_selected_for_element_schedules():
    hypers, data = nn_inputs()
    for sched, cls in [
        ("MH mu", VectorizedMHDriver),
        ("Slice mu", VectorizedSliceDriver),
        ("ESlice mu", VectorizedESliceDriver),
    ]:
        upd = only_update(compile_model(NORMAL_ELEMENTS, hypers, data, schedule=sched))
        assert type(upd) is cls
        assert upd.is_batched


def test_batched_driver_selected_for_ragged_pair_model():
    hypers, data = ragged_inputs()
    upd = only_update(compile_model(RAGGED_ELEMENTS, hypers, data, schedule="MH t"))
    assert type(upd) is VectorizedMHDriver


def test_option_batch_elements_false_falls_back():
    hypers, data = nn_inputs()
    upd = only_update(
        compile_model(NORMAL_ELEMENTS, hypers, data, schedule="MH mu", options=NO_BATCH)
    )
    assert type(upd) is MHDriver
    assert not upd.is_batched


def test_schedule_batch_off_falls_back():
    hypers, data = nn_inputs()
    for sched, cls in [
        ("MH[batch=off] mu", MHDriver),
        ("Slice[batch=off] mu", SliceDriver),
        ("ESlice[batch=off] mu", ESliceDriver),
    ]:
        upd = only_update(compile_model(NORMAL_ELEMENTS, hypers, data, schedule=sched))
        assert type(upd) is cls


def test_user_proposal_mh_falls_back():
    hypers, data = nn_inputs()

    def prop(value, rng):
        return value + 0.3 * rng.standard_normal(), 0.0

    upd = only_update(
        compile_model(
            NORMAL_ELEMENTS,
            hypers,
            data,
            schedule="MH[proposal=user] mu",
            proposals={"mu": prop},
        )
    )
    assert type(upd) is MHDriver


def test_vector_element_mh_falls_back_but_eslice_batches():
    # MvNormal mu: event-shaped elements -- random-walk MH stays scalar,
    # elliptical slice supports event lanes and stays batched.
    hypers, data = gmm_inputs()
    mh = compile_model(GMM, hypers, data, schedule="MH mu (*) Gibbs z")
    slices = compile_model(GMM, hypers, data, schedule="ESlice mu (*) Gibbs z")
    assert type(mh.updates[0]) is MHDriver
    assert type(slices.updates[0]) is VectorizedESliceDriver


def test_ragged_gather_model_falls_back_to_scalar():
    # Statically eligible (single lane occurrence per factor) but the
    # generated scatter gathers ``c[d][0]`` out of a ragged array, which
    # the vectoriser declines -- the probe must engage the scalar path.
    rng = np.random.default_rng(3)
    d, k = 12, 3
    lengths = rng.integers(1, 4, size=d)
    hypers = {"D": d, "K": k, "L": lengths, "pi": np.ones(k) / k, "v0": 4.0, "v": 1.0}
    data = {
        "c": RaggedArray.from_rows([rng.integers(0, k, size=m) for m in lengths]),
        "y": rng.normal(size=d),
    }
    sampler = compile_model(RAGGED_GATHER, hypers, data, schedule="MH t")
    upd = only_update(sampler)
    assert type(upd) is MHDriver
    # ... and the scalar path still samples.
    state = sampler.init_state(Rng(0))
    r = Rng(1)
    for _ in range(20):
        sampler.step(state, r)
    assert np.all(np.isfinite(state["t"]))


def test_decl_vectorizes_probe():
    out_store = SAssign(
        LValue("out", (Var("i"), Var("j"))), AssignOp.SET, RealLit(1.0)
    )
    nested_par = SLoop(
        LoopKind.PAR,
        Gen("i", IntLit(0), Var("N")),
        (SLoop(LoopKind.PAR, Gen("j", IntLit(0), Var("M")), (out_store,)),),
    )
    bad = LDecl(
        name="probe_bad",
        params=("M", "N", "out"),
        body=(nested_par,),
        ret=(Var("out"),),
    )
    assert not decl_vectorizes(lower_decl(bad), frozenset())

    flat = SLoop(
        LoopKind.PAR,
        Gen("i", IntLit(0), Var("N")),
        (SAssign(LValue("out", (Var("i"),)), AssignOp.SET, RealLit(1.0)),),
    )
    good = LDecl(
        name="probe_good", params=("N", "out"), body=(flat,), ret=(Var("out"),)
    )
    assert decl_vectorizes(lower_decl(good), frozenset())


# ----------------------------------------------------------------------
# Per-lane density agreement.
# ----------------------------------------------------------------------


def _lane_densities_match(source, hypers, data, schedule, lanes):
    sampler = compile_model(source, hypers, data, schedule=schedule)
    upd = only_update(sampler)
    assert upd.is_batched
    state = sampler.init_state(Rng(7))
    env = dict(sampler.base_env)
    env.update(state)
    rng = Rng(8)
    batched = upd._lane_ll_fn(env, sampler.workspaces, rng)(upd._lane_values(env))
    assert batched.shape == (lanes,)
    for lane, idx in enumerate(upd._element_list()):
        upd._bind_idx(env, idx)
        (scalar,) = upd._ll_fn(env, sampler.workspaces, rng)
        assert np.isclose(batched[lane], float(scalar)), (idx, lane)


def test_batched_density_matches_scalar_dense():
    hypers, data = nn_inputs(n=8)
    _lane_densities_match(NORMAL_ELEMENTS, hypers, data, "MH mu", lanes=8)


def test_batched_density_matches_scalar_ragged():
    hypers, data = ragged_inputs(d=5)
    lanes = int(np.sum(hypers["L"]))
    _lane_densities_match(RAGGED_ELEMENTS, hypers, data, "MH t", lanes=lanes)


def test_batched_likelihood_matches_scalar_for_gathered_lanes():
    # GMM ESlice mu: guarded likelihood terms scatter into the lane the
    # categorical assignment selects.
    hypers, data = gmm_inputs()
    sampler = compile_model(GMM, hypers, data, schedule="ESlice mu (*) Gibbs z")
    upd = sampler.updates[0]
    assert type(upd) is VectorizedESliceDriver
    state = sampler.init_state(Rng(11))
    env = dict(sampler.base_env)
    env.update(state)
    rng = Rng(12)
    batched = upd._lane_ll_fn(env, sampler.workspaces, rng)(upd._lane_values(env))
    for lane, idx in enumerate(upd._element_list()):
        upd._bind_idx(env, idx)
        (scalar,) = upd._ll_fn(env, sampler.workspaces, rng)
        assert np.isclose(batched[lane], float(scalar)), idx


# ----------------------------------------------------------------------
# Acceptance-decision equivalence under a controlled random stream.
# ----------------------------------------------------------------------


class _ScriptedGen:
    """Deterministic generator stand-in: proposal noise comes from a
    fixed stream consumed in lane order, acceptance uniforms are a
    constant (so the scalar path's lazy uniform draw -- skipped for
    sure-accept elements -- cannot desynchronise the comparison)."""

    def __init__(self, normals, u=0.5):
        self._normals = list(normals)
        self._pos = 0
        self._u = u

    def standard_normal(self, size=None):
        if size is None or size == ():
            v = self._normals[self._pos]
            self._pos += 1
            return np.float64(v)
        n = int(np.prod(size))
        out = np.asarray(self._normals[self._pos : self._pos + n], dtype=np.float64)
        self._pos += n
        return out.reshape(size)

    def uniform(self, low=0.0, high=1.0, size=None):
        if size is None:
            return self._u * (high - low) + low
        return np.full(size, self._u * (high - low) + low)


class _ScriptedRng:
    def __init__(self, normals, u=0.5):
        self.generator = _ScriptedGen(normals, u=u)


def test_mh_accept_decisions_match_scalar():
    n = 12
    hypers, data = nn_inputs(n=n, seed=4)
    batched = compile_model(NORMAL_ELEMENTS, hypers, data, schedule="MH mu")
    scalar = compile_model(
        NORMAL_ELEMENTS, hypers, data, schedule="MH mu", options=NO_BATCH
    )
    assert only_update(batched).is_batched
    assert not only_update(scalar).is_batched

    noise = np.random.default_rng(99).normal(size=(5, n))
    for u in (0.15, 0.5, 0.95):
        mu0 = np.linspace(-2.0, 2.0, n)
        state_b = {"mu": mu0.copy()}
        state_s = {"mu": mu0.copy()}
        for sweep in range(noise.shape[0]):
            batched.step(state_b, _ScriptedRng(noise[sweep], u=u))
            scalar.step(state_s, _ScriptedRng(noise[sweep], u=u))
            np.testing.assert_allclose(
                state_b["mu"], state_s["mu"], rtol=1e-12, atol=1e-12,
                err_msg=f"sweep {sweep}, u={u}",
            )
        ub, us = only_update(batched), only_update(scalar)
        assert ub.stats.proposed == us.stats.proposed
        assert ub.stats.accepted == us.stats.accepted
        # Reset between uniform levels so counts stay comparable.
        ub.stats.accepted = ub.stats.proposed = 0
        us.stats.accepted = us.stats.proposed = 0


# ----------------------------------------------------------------------
# Stat schema, labels, and acceptance-rate parity.
# ----------------------------------------------------------------------


def test_stat_schema_and_label_parity():
    hypers, data = nn_inputs()
    for sched in ("MH mu", "Slice mu", "ESlice mu"):
        b = only_update(compile_model(NORMAL_ELEMENTS, hypers, data, schedule=sched))
        s = only_update(
            compile_model(
                NORMAL_ELEMENTS, hypers, data, schedule=sched, options=NO_BATCH
            )
        )
        assert b.stat_fields() == s.stat_fields(), sched
        assert b.label == s.label, sched


def test_sweep_records_lane_aggregated():
    n = 10
    hypers, data = nn_inputs(n=n)
    batched = compile_model(NORMAL_ELEMENTS, hypers, data, schedule="MH mu")
    scalar = compile_model(
        NORMAL_ELEMENTS, hypers, data, schedule="MH mu", options=NO_BATCH
    )
    res_b = batched.sample(60, seed=5, collect_stats=True)
    res_s = scalar.sample(60, seed=5, collect_stats=True)
    assert res_b.stats.update_labels == res_s.stats.update_labels == ("MH mu",)
    cols_b = res_b.stats["MH mu"]
    cols_s = res_s.stats["MH mu"]
    assert tuple(cols_b) == tuple(cols_s)
    assert res_b.stats.fields("MH mu") == res_s.stats.fields("MH mu")
    # One record per sweep, counting all lanes, on both paths.
    assert np.all(cols_b["n_proposed"] == n)
    assert np.all(cols_s["n_proposed"] == n)
    rate_b = float(np.mean(cols_b["accept_rate"]))
    rate_s = float(np.mean(cols_s["accept_rate"]))
    assert abs(rate_b - rate_s) < 0.12, (rate_b, rate_s)


def test_batched_posterior_matches_conjugate_mean():
    n = 40
    rng = np.random.default_rng(2)
    y = rng.normal(loc=1.5, size=n)
    hypers = {"N": n, "v0": 4.0, "v": 1.0}
    data = {"y": y}
    post_mean = y * (hypers["v0"] / (hypers["v0"] + hypers["v"]))
    for sched in ("MH mu", "Slice mu", "ESlice mu"):
        sampler = compile_model(NORMAL_ELEMENTS, hypers, data, schedule=sched)
        assert only_update(sampler).is_batched
        res = sampler.sample(1500, burn_in=300, seed=3)
        err = np.max(np.abs(res.samples["mu"].mean(axis=0) - post_mean))
        assert err < 0.35, (sched, err)
