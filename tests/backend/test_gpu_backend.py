"""GPU backend: numerics identical to CPU, device time charged per block."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backend.cpu import compile_cpu_module
from repro.core.backend.gpu import compile_gpu_module
from repro.core.blk.optimize import OptimizeConfig
from repro.core.density.conditionals import blocked_factors, conditional
from repro.core.kernel.conjugacy import detect_conjugacy
from repro.core.lowmm.ir import lower_decl
from repro.core.lowmm.size_inference import allocate
from repro.core.lowpp.ad import gen_grad
from repro.core.lowpp.gen_gibbs import gen_gibbs_conjugate
from repro.core.lowpp.gen_ll import gen_model_ll
from repro.gpusim import CostModel, Device
from repro.runtime.rng import Rng

from tests.lowpp.conftest import make_setup
from tests.lowpp.test_gen_gibbs import gmm_gibbs_env


def hlr_env(n=2000, d=8, seed=2):
    rng = np.random.default_rng(seed)
    return {
        "N": n,
        "D": d,
        "lam": 1.0,
        "x": rng.normal(size=(n, d)),
        "sigma2": 1.0,
        "b": 0.1,
        "theta": rng.normal(size=d),
        "y": rng.integers(0, 2, size=n),
    }


def gpu_compile(decl, env, workspaces=(), writes=(), cfg=None, ragged=frozenset()):
    low = lower_decl(decl, workspaces=tuple(w.name for w in workspaces), writes=writes)
    return compile_gpu_module([low], env, ragged_names=ragged, cfg=cfg)


def test_gpu_model_ll_matches_cpu():
    fd, info = make_setup("gmm")
    decl = gen_model_ll(fd)
    env = gmm_gibbs_env()
    cpu = compile_cpu_module([lower_decl(decl)])
    gpu = gpu_compile(decl, env)
    dev = Device()
    (a,) = cpu.fn("model_ll")(env, {}, Rng(0))
    (b,) = gpu.fn("model_ll")(env, {}, Rng(0), dev)
    assert float(a) == pytest.approx(float(b), rel=1e-12)
    assert dev.elapsed > 0


def test_gpu_charges_kernel_launches():
    fd, info = make_setup("gmm")
    decl = gen_model_ll(fd)
    env = gmm_gibbs_env()
    gpu = gpu_compile(decl, env)
    dev = Device()
    gpu.fn("model_ll")(env, {}, Rng(0), dev)
    assert dev.stats.kernels_launched + dev.stats.reduce_kernels >= 2


def test_gpu_gibbs_matches_cpu_statistics():
    fd, info = make_setup("gmm")
    match = detect_conjugacy(conditional(fd, "mu", info))
    from repro.core.lowpp.gen_gibbs import gen_gibbs_conjugate

    code = gen_gibbs_conjugate(match, fd.lets)
    env = gmm_gibbs_env()
    low = lower_decl(
        code.decl,
        workspaces=tuple(w.name for w in code.workspaces),
        writes=("mu",),
    )
    gpu = compile_gpu_module([low], env)
    ws = allocate(code.workspaces, env)
    dev = Device()
    gpu.fn(code.decl.name)(dict(env, mu=env["mu"].copy()), ws, Rng(0), dev)
    counts = np.bincount(env["z"], minlength=2).astype(float)
    np.testing.assert_allclose(ws["ws_mu_cnt"], counts)


def test_sum_block_conversion_reduces_atomic_time():
    # The HLR gradient at Adult-income-like scale: with conversion ON the
    # shared-variance adjoint becomes a reduction; with conversion OFF it
    # pays the atomic-contention penalty (the paper's Section 5.4/7.2
    # observation).
    fd, info = make_setup("hlr")
    env = hlr_env(n=50_000, d=14)
    blk = blocked_factors(fd, ("sigma2", "b", "theta"))
    decl = gen_grad(blk, fd.lets)

    on = gpu_compile(decl, env, cfg=OptimizeConfig())
    off = gpu_compile(decl, env, cfg=OptimizeConfig(sum_block_conversion=False))

    dev_on, dev_off = Device(), Device()
    on.fn(decl.name)(dict(env), {}, Rng(0), dev_on)
    off.fn(decl.name)(dict(env), {}, Rng(0), dev_off)

    assert dev_off.stats.atomic_time > 10 * dev_on.stats.atomic_time
    assert dev_off.elapsed > dev_on.elapsed
    # Gradients themselves are identical either way.
    g_on = on.fn(decl.name)(dict(env), {}, Rng(0), dev_on)
    g_off = off.fn(decl.name)(dict(env), {}, Rng(0), dev_off)
    for a, b in zip(g_on, g_off):
        np.testing.assert_allclose(a, b, rtol=1e-10)


def test_gpu_time_scales_with_data():
    fd, info = make_setup("hlr")
    blk = blocked_factors(fd, ("sigma2", "b", "theta"))
    decl = gen_grad(blk, fd.lets)
    times = {}
    for n in (1000, 100_000):
        env = hlr_env(n=n)
        gpu = gpu_compile(decl, env)
        dev = Device()
        gpu.fn(decl.name)(dict(env), {}, Rng(0), dev)
        times[n] = dev.elapsed
    assert times[100_000] > times[1000]
    # Sub-linear scaling: 100x the data costs far less than 100x the time.
    assert times[100_000] < 60 * times[1000]


def test_small_problem_dominated_by_launch_overhead():
    # The German-Credit observation: tiny problems don't amortise launches.
    fd, info = make_setup("hlr")
    env = hlr_env(n=50, d=4)
    blk = blocked_factors(fd, ("sigma2", "b", "theta"))
    decl = gen_grad(blk, fd.lets)
    gpu = gpu_compile(decl, env)
    dev = Device()
    gpu.fn(decl.name)(dict(env), {}, Rng(0), dev)
    launches = dev.stats.kernels_launched + dev.stats.reduce_kernels
    overhead = launches * dev.cost.launch_overhead
    assert overhead > 0.3 * dev.elapsed


def test_cost_model_basic_properties():
    cm = CostModel()
    assert cm.par_time(10_000, 10) > cm.par_time(100, 10)
    assert cm.atomic_penalty(10_000, 1) > cm.atomic_penalty(10_000, 10_000)
    assert cm.seq_time(100) > 100 * cm.op_time  # penalised
    assert cm.reduce_time(0, 5) == cm.launch_overhead
    assert cm.transfer_time(12e9) == pytest.approx(1.0)


def test_device_reset_and_snapshot():
    dev = Device()
    dev.par(100, 5)
    snap = dev.snapshot()
    assert snap.kernels_launched == 1
    dev.reset()
    assert dev.elapsed == 0.0
    assert snap.kernels_launched == 1
