"""Differential property test: vectorised codegen vs. the interpreter.

Hypothesis generates small Low++ programs from the shapes the update
generators actually emit (parallel loops over data with gathers,
guards, scalar reductions, and scatter increments); the compiled
vectorised module must agree with the reference interpreter exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core.backend.cpu import compile_cpu_module
from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Gen,
    IntLit,
    RealLit,
    Var,
)
from repro.core.lowmm.ir import lower_decl
from repro.core.lowpp.interp import run_decl_scope
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SIf,
    SLoop,
)
from repro.runtime.rng import Rng

#: Scalar expressions over the loop variable n and the environment
#: arrays: y[n] (floats), idx[n] (ints in [0, K)), plus constants.
def body_exprs():
    leaves = hst.one_of(
        hst.just(Var("y")[Var("n")]),
        hst.just(Var("c")),
        hst.floats(-2, 2, allow_nan=False).map(RealLit),
        hst.just(Var("w")[Var("idx")[Var("n")]]),
    )

    def extend(inner):
        return hst.one_of(
            hst.tuples(hst.sampled_from(["+", "-", "*"]), inner, inner).map(
                lambda t: Call(t[0], (t[1], t[2]))
            ),
            inner.map(lambda e: Call("sigmoid", (e,))),
            inner.map(
                lambda e: DistOp(
                    "Normal", (e, RealLit(2.0)), DistOpKind.LL, value=Var("y")[Var("n")]
                )
            ),
        )

    return hst.recursive(leaves, extend, max_leaves=8)


def statements():
    e = body_exprs()
    plain_acc = e.map(lambda rhs: SAssign(LValue("acc"), AssignOp.INC, rhs))
    scatter = e.map(
        lambda rhs: SAssign(
            LValue("buckets", (Var("idx")[Var("n")],)), AssignOp.INC, rhs
        )
    )
    store = e.map(
        lambda rhs: SAssign(LValue("out", (Var("n"),)), AssignOp.SET, rhs)
    )
    guarded = hst.tuples(hst.integers(0, 2), hst.one_of(plain_acc, scatter)).map(
        lambda t: SIf(Call("==", (Var("idx")[Var("n")], IntLit(t[0]))), (t[1],))
    )
    return hst.one_of(plain_acc, scatter, store, guarded)


programs = hst.lists(statements(), min_size=1, max_size=4)


@given(programs, hst.integers(0, 1000))
@settings(max_examples=60, deadline=None)
def test_vectorized_matches_interpreter(stmts, seed):
    rng_data = np.random.default_rng(seed)
    n, k = 7, 3
    env = {
        "N": n,
        "c": 0.7,
        "y": rng_data.normal(size=n),
        "w": rng_data.normal(size=k),
        "idx": rng_data.integers(0, k, size=n),
    }
    body = (
        SAssign(LValue("acc"), AssignOp.SET, RealLit(0.0)),
        SLoop(LoopKind.ATM_PAR, Gen("n", IntLit(0), Var("N")), tuple(stmts)),
    )
    decl = LDecl(
        name="prog",
        params=tuple(sorted(set(env))),
        body=body,
        ret=(Var("acc"),),
    )

    # Reference: the interpreter; buckets/out allocated fresh each run.
    def fresh():
        return {"buckets": np.zeros(k), "out": np.zeros(n)}

    ws_i = fresh()
    (expected,), _ = run_decl_scope(decl, env, Rng(0), workspaces=ws_i)

    mod = compile_cpu_module([lower_decl(decl, workspaces=("buckets", "out"))])
    assert "np.arange" in mod.source  # the loop really vectorised
    ws_v = fresh()
    (got,) = mod.fn("prog")(dict(env), ws_v, Rng(0))

    np.testing.assert_allclose(float(got), float(expected), rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(ws_v["buckets"], ws_i["buckets"], rtol=1e-10, atol=1e-12)
    np.testing.assert_allclose(ws_v["out"], ws_i["out"], rtol=1e-10, atol=1e-12)


@given(programs)
@settings(max_examples=20, deadline=None)
def test_fallback_matches_vectorized(stmts):
    rng_data = np.random.default_rng(1)
    n, k = 5, 3
    env = {
        "N": n,
        "c": -0.3,
        "y": rng_data.normal(size=n),
        "w": rng_data.normal(size=k),
        "idx": rng_data.integers(0, k, size=n),
    }
    body = (
        SAssign(LValue("acc"), AssignOp.SET, RealLit(0.0)),
        SLoop(LoopKind.ATM_PAR, Gen("n", IntLit(0), Var("N")), tuple(stmts)),
    )
    decl = LDecl(name="prog", params=tuple(sorted(set(env))), body=body, ret=(Var("acc"),))
    low = lower_decl(decl, workspaces=("buckets", "out"))
    vec = compile_cpu_module([low], vectorize=True)
    plain = compile_cpu_module([low], vectorize=False)
    ws_a = {"buckets": np.zeros(k), "out": np.zeros(n)}
    ws_b = {"buckets": np.zeros(k), "out": np.zeros(n)}
    (a,) = vec.fn("prog")(dict(env), ws_a, Rng(0))
    (b,) = plain.fn("prog")(dict(env), ws_b, Rng(0))
    np.testing.assert_allclose(float(a), float(b), rtol=1e-10)
    np.testing.assert_allclose(ws_a["buckets"], ws_b["buckets"], rtol=1e-10)
