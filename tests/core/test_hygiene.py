"""Repository hygiene: no dead imports, all modules importable."""

from __future__ import annotations

import compileall
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def test_no_unused_imports():
    sys.path.insert(0, str(SRC.parent / "tools"))
    try:
        from check_imports import unused_imports
    finally:
        sys.path.pop(0)
    problems = []
    for path in sorted(SRC.rglob("*.py")):
        problems.extend(unused_imports(path))
    assert not problems, "\n".join(problems)


def test_all_modules_compile():
    assert compileall.compile_dir(str(SRC), quiet=2, force=True)
