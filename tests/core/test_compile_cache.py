"""The keyed compile cache: hits skip codegen but share nothing mutable."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.chains import SamplerSpec
from repro.core.compiler import (
    clear_compile_cache,
    compile_cache_stats,
    compile_model,
)
from repro.core.options import CompileOptions
from repro.eval import models

HYPERS = {"N": 40, "mu_0": 0.0, "v_0": 25.0, "v": 1.0}


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    return {"y": rng.normal(2.0, 1.0, size=40)}


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def test_second_compile_is_a_hit(data):
    compile_model(models.NORMAL_NORMAL, HYPERS, data)
    stats = compile_cache_stats()
    assert (stats.hits, stats.misses) == (0, 1)
    compile_model(models.NORMAL_NORMAL, HYPERS, data)
    assert (stats.hits, stats.misses) == (1, 1)
    assert stats.hit_rate == pytest.approx(0.5)


def test_hit_shares_no_mutable_state(data):
    s1 = compile_model(models.NORMAL_NORMAL, HYPERS, data)
    s2 = compile_model(models.NORMAL_NORMAL, HYPERS, data)
    assert s1.workspaces is not s2.workspaces
    assert s1.module.namespace is not s2.module.namespace
    assert s1.updates[0] is not s2.updates[0]
    # ...and the cached compilation samples identically to the original.
    a = s1.sample(num_samples=25, seed=3)
    b = s2.sample(num_samples=25, seed=3)
    np.testing.assert_array_equal(a.array("mu"), b.array("mu"))


def test_changed_inputs_miss(data):
    compile_model(models.NORMAL_NORMAL, HYPERS, data)
    # A different schedule, different options, and different data each
    # key a fresh compilation.
    compile_model(models.NORMAL_NORMAL, HYPERS, data, schedule="Gibbs mu")
    compile_model(
        models.NORMAL_NORMAL, HYPERS, data, options=CompileOptions(vectorize=False)
    )
    other = {"y": data["y"] + 1.0}
    compile_model(models.NORMAL_NORMAL, HYPERS, other)
    stats = compile_cache_stats()
    assert stats.hits == 0
    assert stats.misses == 4


def test_gpu_target_bypasses_cache(data):
    opts = CompileOptions(target="gpu")
    compile_model(models.NORMAL_NORMAL, HYPERS, data, options=opts)
    compile_model(models.NORMAL_NORMAL, HYPERS, data, options=opts)
    stats = compile_cache_stats()
    assert stats.hits == 0 and stats.misses == 0


def test_sampler_spec_pickles_and_rebuilds(data):
    s1 = compile_model(models.NORMAL_NORMAL, HYPERS, data)
    spec = s1.spec
    assert isinstance(spec, SamplerSpec)
    rebuilt = pickle.loads(pickle.dumps(spec)).build()
    a = s1.sample(num_samples=20, seed=5)
    b = rebuilt.sample(num_samples=20, seed=5)
    np.testing.assert_array_equal(a.array("mu"), b.array("mu"))
