"""Expression-language invariants, including hypothesis property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Gen,
    Index,
    IntLit,
    RealLit,
    Var,
    children,
    free_vars,
    map_children,
    mentions,
    subst,
    walk,
)

names = hst.sampled_from(["a", "b", "c", "x", "y", "z"])


def expr_strategy():
    leaves = hst.one_of(
        names.map(Var),
        hst.integers(-100, 100).map(IntLit),
        hst.floats(-10, 10, allow_nan=False).map(RealLit),
    )

    def extend(inner):
        return hst.one_of(
            hst.tuples(inner, inner).map(lambda t: Index(t[0], t[1])),
            hst.tuples(hst.sampled_from(["+", "-", "*"]), inner, inner).map(
                lambda t: Call(t[0], (t[1], t[2]))
            ),
            hst.tuples(inner, inner).map(
                lambda t: DistOp("Normal", (t[0], t[1]), DistOpKind.LL, value=t[0])
            ),
        )

    return hst.recursive(leaves, extend, max_leaves=12)


exprs = expr_strategy()


@given(exprs)
@settings(max_examples=80, deadline=None)
def test_walk_covers_children_transitively(e):
    nodes = list(walk(e))
    assert nodes[0] is e
    for n in nodes:
        for c in children(n):
            assert c in nodes


@given(exprs)
@settings(max_examples=80, deadline=None)
def test_free_vars_matches_walk(e):
    via_walk = {n.name for n in walk(e) if isinstance(n, Var)}
    assert free_vars(e) == frozenset(via_walk)
    for v in via_walk:
        assert mentions(e, v)
    assert not mentions(e, "not_a_name")


@given(exprs)
@settings(max_examples=80, deadline=None)
def test_identity_map_children_preserves_equality(e):
    assert map_children(e, lambda c: c) == e


@given(exprs, names)
@settings(max_examples=80, deadline=None)
def test_subst_removes_variable(e, v):
    out = subst(e, {v: IntLit(0)})
    assert not mentions(out, v)


@given(exprs, names)
@settings(max_examples=80, deadline=None)
def test_subst_is_noop_without_occurrences(e, v):
    if not mentions(e, v):
        assert subst(e, {v: IntLit(0)}) == e


@given(exprs)
@settings(max_examples=50, deadline=None)
def test_str_is_total(e):
    assert isinstance(str(e), str)


def test_structural_equality_and_hashing():
    a = Call("+", (Var("x"), IntLit(1)))
    b = Call("+", (Var("x"), IntLit(1)))
    assert a == b
    assert hash(a) == hash(b)
    assert a != Call("+", (Var("y"), IntLit(1)))


def test_builder_helpers():
    from repro.core.exprs import add, index, lit, mul, var

    assert add(1, 2) == Call("+", (IntLit(1), IntLit(2)))
    assert mul("a", 2.0) == Call("*", (Var("a"), RealLit(2.0)))
    assert index("m", "i", "j") == Index(Index(Var("m"), Var("i")), Var("j"))
    assert lit(3) == IntLit(3)
    assert var("q") == Var("q")
    assert Var("v")[IntLit(0)] == Index(Var("v"), IntLit(0))


def test_gen_bounds_equal_is_syntactic():
    a = Gen("i", IntLit(0), Var("N"))
    b = Gen("j", IntLit(0), Var("N"))
    c = Gen("k", IntLit(0), Var("M"))
    assert a.bounds_equal(b)
    assert not a.bounds_equal(c)


def test_coerce_rejects_bad_values():
    with pytest.raises(TypeError):
        Var("x")[object()]
    with pytest.raises(TypeError):
        Var("x")[True]
