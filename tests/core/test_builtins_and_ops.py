"""Builtin operator table: typing rules and runtime implementations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builtins import BUILTINS, is_builtin, lookup_builtin
from repro.core.types import INT, MAT_REAL, REAL, VEC_REAL, VecTy
from repro.errors import TypeCheckError
from repro.runtime import ops


def test_every_builtin_has_a_runtime_implementation():
    for name, b in BUILTINS.items():
        if b.infix is not None:
            assert name in ops.TABLE
        else:
            assert b.py_name is not None
            assert getattr(ops, b.py_name, None) is not None


def test_arithmetic_typing():
    plus = lookup_builtin("+")
    assert plus.type_rule((INT, INT)) == INT
    assert plus.type_rule((INT, REAL)) == REAL
    with pytest.raises(TypeCheckError):
        plus.type_rule((VEC_REAL, REAL))
    div = lookup_builtin("/")
    assert div.type_rule((INT, INT)) == REAL  # division is real


def test_vector_op_typing():
    dotp = lookup_builtin("dotp")
    assert dotp.type_rule((VEC_REAL, VecTy(INT))) == REAL
    with pytest.raises(TypeCheckError):
        dotp.type_rule((REAL, VEC_REAL))
    norm = lookup_builtin("normalize")
    assert norm.type_rule((VEC_REAL,)) == VEC_REAL
    with pytest.raises(TypeCheckError):
        norm.type_rule((MAT_REAL,))
    ln = lookup_builtin("len")
    assert ln.type_rule((VEC_REAL,)) == INT


def test_neg_preserves_type():
    neg = lookup_builtin("neg")
    assert neg.type_rule((INT,)) == INT
    assert neg.type_rule((REAL,)) == REAL


def test_eq_returns_int():
    assert lookup_builtin("==").type_rule((INT, INT)) == INT


def test_lookup_unknown_raises():
    assert not is_builtin("frobnicate")
    with pytest.raises(TypeCheckError, match="unknown operator"):
        lookup_builtin("frobnicate")


# ----------------------------------------------------------------------
# Runtime implementations.
# ----------------------------------------------------------------------


def test_sigmoid_stability():
    assert ops.sigmoid(800.0) == pytest.approx(1.0)
    assert ops.sigmoid(-800.0) == pytest.approx(0.0)
    assert ops.sigmoid(0.0) == pytest.approx(0.5)
    out = ops.sigmoid(np.array([-800.0, 0.0, 800.0]))
    np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)


def test_dotp_batched():
    a = np.arange(6, dtype=float).reshape(2, 3)
    b = np.ones(3)
    np.testing.assert_allclose(ops.dotp(a, b), [3.0, 12.0])


def test_normalize_batched():
    a = np.array([[1.0, 3.0], [2.0, 2.0]])
    out = ops.normalize(a)
    np.testing.assert_allclose(out.sum(axis=1), 1.0)


def test_vlen():
    assert ops.vlen(np.zeros(5)) == 5
    assert ops.vlen(np.zeros((4, 7))) == 7  # last axis (batched rows)


def test_logsumexp_handles_neg_inf():
    out = ops.logsumexp(np.array([-np.inf, 0.0]))
    assert out == pytest.approx(0.0)
    all_inf = ops.logsumexp(np.array([-np.inf, -np.inf]))
    assert all_inf == -np.inf


def test_log_suppresses_warnings():
    with np.errstate(divide="raise"):
        # ops.log internally ignores the divide warning.
        assert ops.log(0.0) == -np.inf
