"""Heuristic kernel selection and user-schedule validation."""

from __future__ import annotations

import pytest

from repro.core.density.conditionals import BlockConditional, Conditional
from repro.core.density.lower import lower_and_factorize
from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import analyze_model
from repro.core.kernel.conjugacy import ConjugacyMatch, EnumerationMatch
from repro.core.kernel.heuristic import heuristic_schedule
from repro.core.kernel.ir import UpdateMethod, flatten
from repro.core.kernel.schedule import parse_schedule
from repro.core.kernel.validate import validate_schedule
from repro.errors import ScheduleError
from repro.eval import models

from tests.kernel.test_conjugacy import HYPERS


def setup(name):
    m = parse_model(models.ALL_MODELS[name])
    info = analyze_model(m, HYPERS[name])
    return lower_and_factorize(m), info


# ----------------------------------------------------------------------
# Heuristic selection (Section 4.2's three-step rule).
# ----------------------------------------------------------------------


def test_heuristic_gmm():
    fd, info = setup("gmm")
    updates = flatten(heuristic_schedule(fd, info))
    by_var = {u.unit.names: u for u in updates}
    assert by_var[("mu",)].method is UpdateMethod.GIBBS
    assert isinstance(by_var[("mu",)].payload, ConjugacyMatch)
    assert by_var[("z",)].method is UpdateMethod.GIBBS
    assert isinstance(by_var[("z",)].payload, EnumerationMatch)


def test_heuristic_hgmm_fully_conjugate():
    fd, info = setup("hgmm")
    updates = flatten(heuristic_schedule(fd, info))
    assert all(u.method is UpdateMethod.GIBBS for u in updates)
    assert {u.unit.names[0] for u in updates} == {"pi", "mu", "Sigma", "z"}


def test_heuristic_hlr_blocks_continuous_into_hmc():
    fd, info = setup("hlr")
    updates = flatten(heuristic_schedule(fd, info))
    assert len(updates) == 1
    (upd,) = updates
    assert upd.method is UpdateMethod.HMC
    assert set(upd.unit.names) == {"sigma2", "b", "theta"}
    assert isinstance(upd.payload, BlockConditional)


def test_heuristic_lda_all_gibbs():
    fd, info = setup("lda")
    updates = flatten(heuristic_schedule(fd, info))
    assert [u.method for u in updates] == [UpdateMethod.GIBBS] * 3
    assert {u.unit.names[0] for u in updates} == {"theta", "phi", "z"}


def test_heuristic_exp_normal_gives_hmc():
    # v ~ Exponential is not conjugate to a Normal variance: HMC it is.
    fd, info = setup("exp_normal")
    (upd,) = flatten(heuristic_schedule(fd, info))
    assert upd.method is UpdateMethod.HMC
    assert upd.unit.names == ("v",)


# ----------------------------------------------------------------------
# User-schedule validation.
# ----------------------------------------------------------------------


def test_validate_paper_schedule_on_gmm():
    fd, info = setup("gmm")
    k = validate_schedule(parse_schedule("ESlice mu (*) Gibbs z"), fd, info)
    updates = flatten(k)
    assert isinstance(updates[0].payload, Conditional)
    assert isinstance(updates[1].payload, EnumerationMatch)


def test_validate_gmm_three_ways():
    # The three Figure 10 AugurV2 configurations.
    fd, info = setup("gmm")
    for sched in ("Gibbs mu (*) Gibbs z", "ESlice mu (*) Gibbs z", "HMC mu (*) Gibbs z"):
        validate_schedule(parse_schedule(sched), fd, info)


def test_validate_rejects_unknown_variable():
    fd, info = setup("gmm")
    with pytest.raises(ScheduleError, match="unknown variable"):
        validate_schedule(parse_schedule("Gibbs ghost"), fd, info)


def test_validate_rejects_data_variable():
    fd, info = setup("gmm")
    with pytest.raises(ScheduleError, match="not a model parameter"):
        validate_schedule(parse_schedule("Gibbs x (*) Gibbs mu (*) Gibbs z"), fd, info)


def test_validate_rejects_uncovered_params():
    fd, info = setup("gmm")
    with pytest.raises(ScheduleError, match="unsampled"):
        validate_schedule(parse_schedule("Gibbs z"), fd, info)
    # ... unless partial schedules are explicitly allowed.
    validate_schedule(parse_schedule("Gibbs z"), fd, info, allow_partial=True)


def test_validate_rejects_nonconjugate_gibbs():
    fd, info = setup("hlr")
    with pytest.raises(ScheduleError, match="no conjugacy relation"):
        validate_schedule(
            parse_schedule("Gibbs sigma2 (*) HMC (b, theta)"), fd, info
        )


def test_validate_rejects_hmc_on_discrete():
    fd, info = setup("gmm")
    with pytest.raises(ScheduleError, match="discrete"):
        validate_schedule(parse_schedule("Gibbs mu (*) HMC z"), fd, info)


def test_validate_rejects_slice_on_discrete():
    fd, info = setup("gmm")
    with pytest.raises(ScheduleError, match="continuous"):
        validate_schedule(parse_schedule("Gibbs mu (*) Slice z"), fd, info)


def test_validate_rejects_eslice_without_gaussian_prior():
    fd, info = setup("hlr")
    with pytest.raises(ScheduleError, match="Gaussian prior"):
        validate_schedule(
            parse_schedule("ESlice sigma2 (*) HMC (b, theta)"), fd, info
        )


def test_validate_rejects_mh_on_discrete_without_proposal():
    fd, info = setup("gmm")
    with pytest.raises(ScheduleError, match="user-supplied proposal"):
        validate_schedule(parse_schedule("Gibbs mu (*) MH z"), fd, info)


def test_validate_rejects_blocked_gibbs():
    fd, info = setup("hgmm")
    with pytest.raises(ScheduleError, match="blocked Gibbs"):
        validate_schedule(
            parse_schedule("Gibbs (mu, Sigma) (*) Gibbs pi (*) Gibbs z"),
            fd,
            info,
        )


def test_validate_hmc_on_constrained_continuous_is_allowed():
    # sigma2 is positive: the log transform makes HMC legal.
    fd, info = setup("hlr")
    k = validate_schedule(parse_schedule("HMC (sigma2, b, theta)"), fd, info)
    (upd,) = flatten(k)
    assert isinstance(upd.payload, BlockConditional)
