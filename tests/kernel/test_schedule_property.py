"""Property test: schedule pretty-printing round-trips through the parser."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core.kernel.ir import KBase, KernelUnit, UpdateMethod, compose, flatten
from repro.core.kernel.schedule import parse_schedule

names = hst.sampled_from(["mu", "z", "theta", "pi", "sigma2", "b"])

units = hst.one_of(
    names.map(KernelUnit.single),
    hst.lists(names, min_size=2, max_size=3, unique=True).map(KernelUnit.block),
)

methods = hst.sampled_from(list(UpdateMethod))

updates = hst.tuples(methods, units).map(lambda t: KBase(t[0], t[1]))

kernels = hst.lists(updates, min_size=1, max_size=5).map(compose)


@given(kernels)
@settings(max_examples=100, deadline=None)
def test_schedule_roundtrip(kernel):
    reparsed = parse_schedule(str(kernel))
    a, b = flatten(kernel), flatten(reparsed)
    assert len(a) == len(b)
    for x, y in zip(a, b):
        assert x.method is y.method
        assert x.unit == y.unit


@given(kernels)
@settings(max_examples=50, deadline=None)
def test_flatten_preserves_order(kernel):
    updates = flatten(kernel)
    # Composition is associative in execution order: re-composing the
    # flat list yields the same flat list.
    assert flatten(compose(updates)) == updates
