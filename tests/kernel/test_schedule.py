"""Kernel IL construction and schedule-string parsing."""

from __future__ import annotations

import pytest

from repro.core.kernel.ir import (
    KBase,
    KComp,
    KernelUnit,
    UpdateMethod,
    compose,
    flatten,
)
from repro.core.kernel.schedule import parse_schedule
from repro.errors import ParseError


def test_parse_paper_example():
    # The Figure 2 schedule.
    k = parse_schedule("ESlice mu (*) Gibbs z")
    updates = flatten(k)
    assert len(updates) == 2
    assert updates[0].method is UpdateMethod.ESLICE
    assert updates[0].unit == KernelUnit.single("mu")
    assert updates[1].method is UpdateMethod.GIBBS
    assert updates[1].unit == KernelUnit.single("z")


def test_parse_block_unit():
    k = parse_schedule("HMC (theta, b, sigma2)")
    (upd,) = flatten(k)
    assert upd.unit == KernelUnit.block(["theta", "b", "sigma2"])
    assert not upd.unit.is_single


def test_parse_options():
    k = parse_schedule("HMC[steps=20, step_size=0.05] theta")
    (upd,) = flatten(k)
    assert upd.opt("steps") == 20
    assert upd.opt("step_size") == 0.05
    assert upd.opt("missing", "dflt") == "dflt"


def test_parse_negative_option():
    k = parse_schedule("MH[scale=-0.5] theta")
    (upd,) = flatten(k)
    assert upd.opt("scale") == -0.5


def test_parse_three_way_composition():
    k = parse_schedule("Gibbs pi (*) Gibbs mu (*) Gibbs z")
    assert [u.unit.names[0] for u in flatten(k)] == ["pi", "mu", "z"]


def test_composition_preserves_order():
    a = KBase(UpdateMethod.GIBBS, KernelUnit.single("a"))
    b = KBase(UpdateMethod.HMC, KernelUnit.single("b"))
    assert flatten(compose([a, b])) == (a, b)
    assert flatten(compose([b, a])) == (b, a)
    assert flatten(a @ b) == (a, b)


def test_kernel_str():
    k = parse_schedule("ESlice mu (*) Gibbs z")
    assert str(k) == "ESlice mu (*) Gibbs z"


@pytest.mark.parametrize(
    "bad",
    [
        "Gibs z",  # unknown method
        "Gibbs",  # missing unit
        "Gibbs z (*)",  # dangling compose
        "Gibbs z Gibbs y",  # missing compose operator
        "HMC (theta",  # unclosed block
        "HMC[steps] theta",  # option without value
    ],
)
def test_parse_errors(bad):
    with pytest.raises(ParseError):
        parse_schedule(bad)


def test_kernel_unit_requires_names():
    with pytest.raises(ValueError):
        KernelUnit(())


def test_flatten_rejects_non_kernel():
    with pytest.raises(TypeError):
        flatten("not a kernel")


def test_kcomp_structure():
    k = parse_schedule("Gibbs a (*) Gibbs b (*) Gibbs c")
    # compose is a left fold: ((a (*) b) (*) c).
    assert isinstance(k, KComp)
    assert isinstance(k.left, KComp)
    assert isinstance(k.right, KBase)


def test_method_capability_flags():
    assert UpdateMethod.HMC.needs_gradient
    assert not UpdateMethod.GIBBS.needs_likelihood
    assert UpdateMethod.GIBBS.needs_full_conditional
    assert UpdateMethod.SLICE.needs_likelihood
    assert not UpdateMethod.SLICE.needs_gradient
