"""Conjugacy table detection on the model zoo."""

from __future__ import annotations

import pytest

from repro.core.density.conditionals import conditional
from repro.core.density.lower import lower_and_factorize
from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import analyze_model
from repro.core.kernel.conjugacy import (
    detect_conjugacy,
    detect_enumeration,
    lik_factors_by_guard,
)
from repro.core.types import INT, MAT_REAL, REAL, VEC_REAL, VecTy
from repro.eval import models

HYPERS = {
    "gmm": {
        "K": INT, "N": INT, "mu_0": VEC_REAL, "Sigma_0": MAT_REAL,
        "pis": VEC_REAL, "Sigma": MAT_REAL,
    },
    "hgmm": {
        "K": INT, "N": INT, "alpha": VEC_REAL, "mu_0": VEC_REAL,
        "Sigma_0": MAT_REAL, "nu": REAL, "Psi": MAT_REAL,
    },
    "hlr": {"N": INT, "D": INT, "lam": REAL, "x": MAT_REAL},
    "lda": {
        "K": INT, "D": INT, "V": INT, "N": VecTy(INT),
        "alpha": VEC_REAL, "beta": VEC_REAL,
    },
    "normal_normal": {"N": INT, "mu_0": REAL, "v_0": REAL, "v": REAL},
    "beta_bernoulli": {"N": INT, "a": REAL, "b": REAL},
    "gamma_poisson": {"N": INT, "a": REAL, "b": REAL},
    "dirichlet_categorical": {"N": INT, "alpha": VEC_REAL},
    "exp_normal": {"N": INT, "lam": REAL},
}


def setup(name):
    m = parse_model(models.ALL_MODELS[name])
    info = analyze_model(m, HYPERS[name])
    return lower_and_factorize(m), info


def cond_of(name, var):
    fd, info = setup(name)
    return conditional(fd, var, info)


@pytest.mark.parametrize(
    "model,var,rule",
    [
        ("normal_normal", "mu", "normal_normal_mean"),
        ("beta_bernoulli", "p", "beta_bernoulli"),
        ("gamma_poisson", "rate", "gamma_poisson"),
        ("dirichlet_categorical", "pi", "dirichlet_categorical"),
        ("gmm", "mu", "mvnormal_mvnormal_mean"),
        ("hgmm", "mu", "mvnormal_mvnormal_mean"),
        ("hgmm", "pi", "dirichlet_categorical"),
        ("hgmm", "Sigma", "invwishart_mvnormal_cov"),
        ("lda", "theta", "dirichlet_categorical"),
        ("lda", "phi", "dirichlet_categorical"),
    ],
)
def test_conjugacy_detected(model, var, rule):
    match = detect_conjugacy(cond_of(model, var))
    assert match is not None
    assert match.rule == rule


@pytest.mark.parametrize(
    "model,var",
    [
        ("hlr", "sigma2"),  # Exponential prior, Normal likelihood: no rule
        ("hlr", "theta"),  # vector dependence through dotp
        ("hlr", "b"),  # mean inside a sigmoid: beyond pattern matching
        ("exp_normal", "v"),  # variance position, not mean: no rule
        ("gmm", "z"),  # discrete mixture assignment: enumeration, not table
    ],
)
def test_conjugacy_not_detected(model, var):
    assert detect_conjugacy(cond_of(model, var)) is None


def test_enumeration_for_mixture_assignments():
    fd, info = setup("gmm")
    cond = conditional(fd, "z", info)
    enum = detect_enumeration(cond, info.info("z").dist_name)
    assert enum is not None
    assert enum.probs_arg is not None  # the pis vector gives the support


def test_enumeration_rejects_imprecise():
    m = parse_model(
        """
        (N, M, idx) => {
          param z[n] ~ Categorical(idx) for n <- 0 until N ;
          param w[i] ~ Normal(0.0, 1.0) for i <- 0 until M ;
          data y[n] ~ Normal(w[0] + w[1], 1.0) for n <- 0 until N ;
        }
        """
    )
    info = analyze_model(m, {"N": INT, "M": INT, "idx": VEC_REAL})
    fd = lower_and_factorize(m)
    cond = conditional(fd, "w", info)
    assert cond.imprecise
    assert detect_conjugacy(cond) is None


def test_conjugacy_rejected_when_prior_args_depend_on_target():
    # p ~ Beta(p-ish, ...) cannot be written directly; emulate via a model
    # where the likelihood variance mentions the target.
    m = parse_model(
        """
        (N) => {
          param mu ~ Normal(0.0, 1.0) ;
          data y[n] ~ Normal(mu, mu * mu) for n <- 0 until N ;
        }
        """
    )
    info = analyze_model(m, {"N": INT})
    cond = conditional(lower_and_factorize(m), "mu", info)
    assert detect_conjugacy(cond) is None


def test_lik_factors_by_guard_split():
    fd, info = setup("gmm")
    cond = conditional(fd, "mu", info)
    unguarded, guarded = lik_factors_by_guard(cond)
    assert len(unguarded) == 0
    assert len(guarded) == 1

    fd2, info2 = setup("normal_normal")
    cond2 = conditional(fd2, "mu", info2)
    unguarded2, guarded2 = lik_factors_by_guard(cond2)
    assert len(unguarded2) == 1
    assert len(guarded2) == 0
