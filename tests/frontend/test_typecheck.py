"""Frontend type checking on the paper models and on error cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import analyze_model
from repro.core.frontend.typecheck import type_of_value, typecheck_model
from repro.core.types import (
    INT,
    MAT_REAL,
    REAL,
    VEC_REAL,
    MatTy,
    VecTy,
    parse_type,
)
from repro.errors import TypeCheckError
from repro.eval import models
from repro.runtime.vectors import RaggedArray


def gmm_hyper_types():
    return {
        "K": INT,
        "N": INT,
        "mu_0": VEC_REAL,
        "Sigma_0": MAT_REAL,
        "pis": VEC_REAL,
        "Sigma": MAT_REAL,
    }


def test_type_of_value():
    assert type_of_value(3) == INT
    assert type_of_value(3.5) == REAL
    assert type_of_value(np.zeros(4)) == VEC_REAL
    assert type_of_value(np.zeros((2, 2))) == MAT_REAL
    assert type_of_value(np.zeros(3, dtype=np.int64)) == VecTy(INT)
    assert type_of_value(np.zeros((2, 3, 3))) == VecTy(MAT_REAL)
    assert type_of_value(RaggedArray.from_rows([[1.0, 2.0], [3.0]])) == VecTy(VEC_REAL)


def test_gmm_types():
    m = parse_model(models.GMM)
    tys = typecheck_model(m, gmm_hyper_types())
    assert tys["mu"] == VecTy(VEC_REAL)
    assert tys["z"] == VecTy(INT)
    assert tys["x"] == VecTy(VEC_REAL)


def test_hlr_types():
    m = parse_model(models.HLR)
    tys = typecheck_model(
        m, {"N": INT, "D": INT, "lam": REAL, "x": MAT_REAL}
    )
    assert tys["sigma2"] == REAL
    assert tys["theta"] == VEC_REAL
    assert tys["y"] == VecTy(INT)


def test_lda_types_with_ragged_bounds():
    m = parse_model(models.LDA)
    tys = typecheck_model(
        m,
        {
            "K": INT,
            "D": INT,
            "V": INT,
            "N": VecTy(INT),
            "alpha": VEC_REAL,
            "beta": VEC_REAL,
        },
    )
    assert tys["theta"] == VecTy(VEC_REAL)
    assert tys["z"] == VecTy(VecTy(INT))


def test_hgmm_types():
    m = parse_model(models.HGMM)
    tys = typecheck_model(
        m,
        {
            "K": INT,
            "N": INT,
            "alpha": VEC_REAL,
            "mu_0": VEC_REAL,
            "Sigma_0": MAT_REAL,
            "nu": REAL,
            "Psi": MAT_REAL,
        },
    )
    assert tys["Sigma"] == VecTy(MAT_REAL)
    assert tys["pi"] == VEC_REAL


def test_int_promotes_to_real_in_dist_args():
    m = parse_model("(N) => { param mu ~ Normal(0, 1) ; }")
    tys = typecheck_model(m, {"N": INT})
    assert tys["mu"] == REAL


def test_wrong_dist_arg_type_rejected():
    m = parse_model("(v) => { param mu ~ Normal(v, 1.0) ; }")
    with pytest.raises(TypeCheckError, match="argument mean"):
        typecheck_model(m, {"v": VEC_REAL})


def test_noninteger_bound_rejected():
    m = parse_model(
        "(N) => { param mu[k] ~ Normal(0.0, 1.0) for k <- 0 until N ; }"
    )
    with pytest.raises(TypeCheckError, match="expected Int"):
        typecheck_model(m, {"N": REAL})


def test_missing_hyper_type_rejected():
    m = parse_model(models.NORMAL_NORMAL)
    with pytest.raises(TypeCheckError, match="missing types"):
        typecheck_model(m, {"N": INT})


def test_indexing_noncompound_rejected():
    m = parse_model("(s) => { param mu ~ Normal(s[0], 1.0) ; }")
    with pytest.raises(TypeCheckError, match="cannot index"):
        typecheck_model(m, {"s": REAL})


def test_parse_type_helper():
    assert parse_type("Vec Vec Real") == VecTy(VEC_REAL)
    assert parse_type("Mat Real") == MAT_REAL
    with pytest.raises(TypeCheckError):
        parse_type("Mat Vec Real")  # matrices of vectors are rejected


def test_analyze_model_symbol_table():
    m = parse_model(models.GMM)
    mi = analyze_model(m, gmm_hyper_types())
    assert mi.param_names() == ("mu", "z")
    assert mi.data_names() == ("x",)
    assert mi.discrete_params() == ("z",)
    assert mi.continuous_params() == ("mu",)
    assert mi.info("z").dist_name == "Categorical"
    assert mi.info("mu").support == "real_vec"
    with pytest.raises(TypeCheckError):
        mi.info("nonexistent")
