"""Lexer behaviour."""

from __future__ import annotations

import pytest

from repro.core.frontend.lexer import TokKind, tokenize
from repro.errors import ParseError


def kinds_and_texts(src):
    return [(t.kind, t.text) for t in tokenize(src) if t.kind is not TokKind.EOF]


def test_keywords_vs_identifiers():
    toks = kinds_and_texts("param data let for until params")
    assert toks[:5] == [
        (TokKind.KEYWORD, "param"),
        (TokKind.KEYWORD, "data"),
        (TokKind.KEYWORD, "let"),
        (TokKind.KEYWORD, "for"),
        (TokKind.KEYWORD, "until"),
    ]
    assert toks[5] == (TokKind.IDENT, "params")


def test_numbers():
    toks = kinds_and_texts("0 42 3.14 1e3 2.5e-2")
    assert toks == [
        (TokKind.INT, "0"),
        (TokKind.INT, "42"),
        (TokKind.REAL, "3.14"),
        (TokKind.REAL, "1e3"),
        (TokKind.REAL, "2.5e-2"),
    ]


def test_multi_char_punct_is_greedy():
    toks = kinds_and_texts("(*) => <- ==")
    assert [t for _, t in toks] == ["(*)", "=>", "<-", "=="]


def test_paren_star_paren_only_as_unit():
    # '( *)' with a space is three tokens, not the compose operator.
    toks = kinds_and_texts("( *)")
    assert [t for _, t in toks] == ["(", "*", ")"]


def test_comments_are_skipped():
    toks = kinds_and_texts("a # comment\nb // another\nc")
    assert [t for _, t in toks] == ["a", "b", "c"]


def test_positions_track_lines_and_columns():
    toks = tokenize("a\n  bb")
    assert (toks[0].line, toks[0].col) == (1, 1)
    assert (toks[1].line, toks[1].col) == (2, 3)


def test_unexpected_character_raises():
    with pytest.raises(ParseError) as exc:
        tokenize("a $ b")
    assert "unexpected character" in str(exc.value)


def test_index_brackets():
    toks = kinds_and_texts("mu[z[n]]")
    assert [t for _, t in toks] == ["mu", "[", "z", "[", "n", "]", "]"]


def test_underscore_identifiers():
    toks = kinds_and_texts("mu_0 _x")
    assert [t for _, t in toks] == ["mu_0", "_x"]
