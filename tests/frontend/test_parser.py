"""Parser behaviour on the paper's models and on error cases."""

from __future__ import annotations

import pytest

from repro.core.exprs import Call, DistCall, Gen, Index, IntLit, Var
from repro.core.frontend.ast import DeclKind
from repro.core.frontend.parser import parse_expr, parse_model
from repro.errors import ParseError
from repro.eval import models


def test_parse_gmm_shape():
    m = parse_model(models.GMM)
    assert m.hypers == ("K", "N", "mu_0", "Sigma_0", "pis", "Sigma")
    assert [d.name for d in m.decls] == ["mu", "z", "x"]
    assert [d.kind for d in m.decls] == [DeclKind.PARAM, DeclKind.PARAM, DeclKind.DATA]
    mu = m.decl("mu")
    assert mu.gens == (Gen("k", IntLit(0), Var("K")),)
    assert mu.dist == DistCall("MvNormal", (Var("mu_0"), Var("Sigma_0")))


def test_parse_gmm_indexed_argument():
    m = parse_model(models.GMM)
    x = m.decl("x")
    mean_arg = x.dist.args[0]
    assert mean_arg == Index(Var("mu"), Index(Var("z"), Var("n")))


@pytest.mark.parametrize("name", sorted(models.ALL_MODELS))
def test_all_zoo_models_parse(name):
    m = parse_model(models.ALL_MODELS[name])
    assert m.decls


def test_parse_lda_ragged_comprehension():
    m = parse_model(models.LDA)
    z = m.decl("z")
    assert z.idx_vars == ("d", "j")
    assert z.gens[1].hi == Index(Var("N"), Var("d"))


def test_parse_scalar_declaration():
    m = parse_model(models.NORMAL_NORMAL)
    mu = m.decl("mu")
    assert mu.idx_vars == ()
    assert mu.gens == ()


def test_parse_hlr_builtin_calls():
    m = parse_model(models.HLR)
    y = m.decl("y")
    (p,) = y.dist.args
    assert isinstance(p, Call) and p.fn == "sigmoid"
    inner = p.args[0]
    assert isinstance(inner, Call) and inner.fn == "+"
    assert isinstance(inner.args[0], Call) and inner.args[0].fn == "dotp"


def test_let_declaration():
    m = parse_model(
        """
        (N, s) => {
          let t = s * 2.0 ;
          param mu ~ Normal(0.0, t) ;
          data y[n] ~ Normal(mu, 1.0) for n <- 0 until N ;
        }
        """
    )
    t = m.decl("t")
    assert t.kind is DeclKind.LET


def test_str_roundtrips_through_parser():
    m = parse_model(models.HGMM)
    m2 = parse_model(str(m))
    assert m2 == m


# ----------------------------------------------------------------------
# Error cases.
# ----------------------------------------------------------------------


def test_stochastic_decl_requires_distribution():
    with pytest.raises(ParseError, match="must be a distribution"):
        parse_model("(N) => { param mu ~ 3.0 + 1.0 ; }")


def test_unknown_function_rejected():
    with pytest.raises(ParseError, match="unknown function or distribution"):
        parse_model("(N) => { param mu ~ Normall(0.0, 1.0) ; }")


def test_index_vars_must_match_generators():
    with pytest.raises(ParseError, match="do not match"):
        parse_model(
            "(K) => { param mu[j] ~ Normal(0.0, 1.0) for k <- 0 until K ; }"
        )


def test_missing_semicolon():
    with pytest.raises(ParseError):
        parse_model("(N) => { param mu ~ Normal(0.0, 1.0) }")


def test_duplicate_declaration_rejected():
    with pytest.raises(ParseError, match="duplicate"):
        parse_model(
            "(N) => { param mu ~ Normal(0.0, 1.0) ; param mu ~ Normal(0.0, 1.0) ; }"
        )


def test_bounds_cannot_mention_params():
    # The fixed-structure restriction (paper Section 2.2).
    with pytest.raises(ParseError, match="fixed-structure"):
        parse_model(
            """
            (N) => {
              param m ~ Poisson(3.0) ;
              param w[i] ~ Normal(0.0, 1.0) for i <- 0 until m ;
            }
            """
        )


def test_unknown_name_rejected():
    with pytest.raises(ParseError, match="unknown name"):
        parse_model("(N) => { param mu ~ Normal(ghost, 1.0) ; }")


def test_trailing_input_rejected():
    with pytest.raises(ParseError, match="trailing"):
        parse_model("(N) => { param mu ~ Normal(0.0, 1.0) ; } extra")


# ----------------------------------------------------------------------
# Expression parsing.
# ----------------------------------------------------------------------


def test_expr_precedence():
    e = parse_expr("a + b * c")
    assert e == Call("+", (Var("a"), Call("*", (Var("b"), Var("c")))))


def test_expr_parens_override():
    e = parse_expr("(a + b) * c")
    assert e == Call("*", (Call("+", (Var("a"), Var("b"))), Var("c")))


def test_expr_unary_minus():
    e = parse_expr("-a + b")
    assert e == Call("+", (Call("neg", (Var("a"),)), Var("b")))


def test_expr_chained_indexing():
    e = parse_expr("w[d][j]")
    assert e == Index(Index(Var("w"), Var("d")), Var("j"))
