"""Lowering models to the Density IL and its factor form."""

from __future__ import annotations

import pytest

from repro.core.density.ir import DistPdf, ProdComp, ProdSeq
from repro.core.density.lower import factorize, lower_and_factorize, lower_model
from repro.core.exprs import Call, Gen, Index, IntLit, RealLit, Var
from repro.core.frontend.parser import parse_model
from repro.errors import LoweringError
from repro.eval import models


def test_gmm_density_tree_shape():
    dm = lower_model(parse_model(models.GMM))
    assert dm.binders == ("K", "N", "mu_0", "Sigma_0", "pis", "Sigma", "mu", "z", "x")
    assert isinstance(dm.fn, ProdSeq)
    assert len(dm.fn.fns) == 3
    mu_term = dm.fn.fns[0]
    assert isinstance(mu_term, ProdComp)
    assert mu_term.gen == Gen("k", IntLit(0), Var("K"))
    assert isinstance(mu_term.body, DistPdf)
    assert mu_term.body.at == Index(Var("mu"), Var("k"))


def test_gmm_factor_form():
    fd = lower_and_factorize(parse_model(models.GMM))
    assert len(fd.factors) == 3
    assert [f.source for f in fd.factors] == ["mu", "z", "x"]
    x_factor = fd.factors_of("x")[0]
    assert x_factor.gens == (Gen("n", IntLit(0), Var("N")),)
    assert x_factor.guards == ()
    assert x_factor.dist == "MvNormal"


def test_lda_factor_nested_gens():
    fd = lower_and_factorize(parse_model(models.LDA))
    z = fd.factors_of("z")[0]
    assert len(z.gens) == 2
    assert z.gens[1].hi == Index(Var("N"), Var("d"))


def test_scalar_decl_has_no_gens():
    fd = lower_and_factorize(parse_model(models.NORMAL_NORMAL))
    mu = fd.factors_of("mu")[0]
    assert mu.gens == ()
    assert mu.at == Var("mu")


def test_let_floats_to_top():
    m = parse_model(
        """
        (N, s) => {
          let t = s * 2.0 ;
          param mu ~ Normal(0.0, t) ;
          data y[n] ~ Normal(mu, 1.0) for n <- 0 until N ;
        }
        """
    )
    fd = lower_and_factorize(m)
    assert fd.lets == (("t", Call("*", (Var("s"), RealLit(2.0)))),)
    assert len(fd.factors) == 2


def test_comprehension_let_rejected():
    m = parse_model(
        """
        (N, s) => {
          let t[i] = s * 2.0 for i <- 0 until N ;
          param mu ~ Normal(0.0, 1.0) ;
        }
        """
    )
    with pytest.raises(LoweringError, match="comprehension 'let'"):
        lower_model(m)


def test_factor_mentions_and_free_names():
    fd = lower_and_factorize(parse_model(models.GMM))
    x_factor = fd.factors_of("x")[0]
    assert x_factor.mentions("mu")
    assert x_factor.mentions("z")
    assert not x_factor.mentions("mu_0")
    assert x_factor.free_names() >= {"mu", "z", "x", "Sigma", "N"}
    assert "n" not in x_factor.free_names()  # bound by the generator


def test_factor_rename_gen():
    fd = lower_and_factorize(parse_model(models.GMM))
    x_factor = fd.factors_of("x")[0]
    renamed = x_factor.rename_gen("n", "m")
    assert renamed.gens[0].var == "m"
    assert renamed.at == Index(Var("x"), Var("m"))
    assert x_factor.rename_gen("n", "n") is x_factor


def test_mentioning_query():
    fd = lower_and_factorize(parse_model(models.GMM))
    assert {f.source for f in fd.mentioning("mu")} == {"mu", "x"}
    assert {f.source for f in fd.mentioning("z")} == {"z", "x"}


def test_density_tree_pretty_prints():
    dm = lower_model(parse_model(models.GMM))
    text = str(dm)
    assert "prod[k <- 0 until K]" in text
    assert "pMvNormal" in text


def test_factorize_roundtrip_factor_count_all_models():
    for name, src in models.ALL_MODELS.items():
        fd = lower_and_factorize(parse_model(src))
        m = parse_model(src)
        stochastic = [d for d in m.decls if d.is_stochastic]
        assert len(fd.factors) == len(stochastic), name
