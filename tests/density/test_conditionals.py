"""Symbolic conditional computation: the Section 3.3 rewrite rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.density.conditionals import (
    blocked_factors,
    conditional,
    markov_blanket,
    occurrences_in_factor,
    replace_expr,
)
from repro.core.density.interp import factor_logpdf, log_joint
from repro.core.density.lower import lower_and_factorize
from repro.core.exprs import Call, Index, IntLit, Var
from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import analyze_model
from repro.core.types import INT, MAT_REAL, REAL, VEC_REAL, VecTy
from repro.eval import models


def gmm_setup():
    m = parse_model(models.GMM)
    info = analyze_model(
        m,
        {
            "K": INT,
            "N": INT,
            "mu_0": VEC_REAL,
            "Sigma_0": MAT_REAL,
            "pis": VEC_REAL,
            "Sigma": MAT_REAL,
        },
    )
    return lower_and_factorize(m), info


def hlr_setup():
    m = parse_model(models.HLR)
    info = analyze_model(m, {"N": INT, "D": INT, "lam": REAL, "x": MAT_REAL})
    return lower_and_factorize(m), info


def lda_setup():
    m = parse_model(models.LDA)
    info = analyze_model(
        m,
        {
            "K": INT,
            "D": INT,
            "V": INT,
            "N": VecTy(INT),
            "alpha": VEC_REAL,
            "beta": VEC_REAL,
        },
    )
    return lower_and_factorize(m), info


def hgmm_setup():
    m = parse_model(models.HGMM)
    info = analyze_model(
        m,
        {
            "K": INT,
            "N": INT,
            "alpha": VEC_REAL,
            "mu_0": VEC_REAL,
            "Sigma_0": MAT_REAL,
            "nu": REAL,
            "Psi": MAT_REAL,
        },
    )
    return lower_and_factorize(m), info


# ----------------------------------------------------------------------
# The categorical-indexing rule (mixture pattern).
# ----------------------------------------------------------------------


def test_gmm_mu_conditional_uses_categorical_indexing():
    fd, info = gmm_setup()
    cond = conditional(fd, "mu", info)
    assert cond.idx_vars == ("k",)
    assert not cond.imprecise
    assert cond.prior.dist == "MvNormal"
    assert cond.prior.at == Index(Var("mu"), Var("k"))
    (lik,) = cond.likelihood
    # The inner product over n remains; the mixture index became a guard.
    assert [g.var for g in lik.gens] == ["n"]
    assert lik.guards == ((Index(Var("z"), Var("n")), Var("k")),)
    # Under the guard, mu[z[n]] was rewritten to mu[k].
    assert lik.args[0] == Index(Var("mu"), Var("k"))


def test_hgmm_sigma_conditional_rewrites_all_mixture_indices():
    fd, info = hgmm_setup()
    cond = conditional(fd, "Sigma", info)
    (lik,) = cond.likelihood
    # Conditioning on Sigma rewrites BOTH mu[z[n]] and Sigma[z[n]].
    assert lik.args == (Index(Var("mu"), Var("k")), Index(Var("Sigma"), Var("k")))
    assert lik.guards == ((Index(Var("z"), Var("n")), Var("k")),)


def test_lda_phi_conditional_guard_on_topic_assignment():
    fd, info = lda_setup()
    cond = conditional(fd, "phi", info)
    (lik,) = cond.likelihood
    assert [g.var for g in lik.gens] == ["d", "j"]
    guard_lhs, guard_rhs = lik.guards[0]
    assert guard_lhs == Index(Index(Var("z"), Var("d")), Var("j"))
    assert guard_rhs == Var("k")
    assert lik.args[0] == Index(Var("phi"), Var("k"))


# ----------------------------------------------------------------------
# The factoring rule (matching comprehension bounds).
# ----------------------------------------------------------------------


def test_gmm_z_conditional_absorbs_matching_product():
    fd, info = gmm_setup()
    cond = conditional(fd, "z", info)
    assert cond.idx_vars == ("n",)
    (lik,) = cond.likelihood
    assert lik.gens == ()  # absorbed into the outer product over n
    assert lik.at == Index(Var("x"), Var("n"))


def test_factoring_aligns_differently_named_generators():
    m = parse_model(
        """
        (N) => {
          param w[i] ~ Normal(0.0, 1.0) for i <- 0 until N ;
          data y[m] ~ Normal(w[m], 1.0) for m <- 0 until N ;
        }
        """
    )
    info = analyze_model(m, {"N": INT})
    cond = conditional(lower_and_factorize(m), "w", info)
    (lik,) = cond.likelihood
    assert lik.gens == ()
    # The factor's binder m was renamed to the target's binder i.
    assert lik.at == Index(Var("y"), Var("i"))
    assert lik.args[0] == Index(Var("w"), Var("i"))


def test_lda_theta_conditional():
    fd, info = lda_setup()
    cond = conditional(fd, "theta", info)
    (lik,) = cond.likelihood
    # d is absorbed; the ragged token loop j remains.
    assert [g.var for g in lik.gens] == ["j"]
    assert lik.args[0] == Index(Var("theta"), Var("d"))


def test_lda_z_conditional_fully_absorbed():
    fd, info = lda_setup()
    cond = conditional(fd, "z", info)
    assert cond.idx_vars == ("d", "j")
    (lik,) = cond.likelihood
    assert lik.gens == ()
    assert lik.at == Index(Index(Var("w"), Var("d")), Var("j"))


def test_mismatched_bounds_are_not_factored():
    m = parse_model(
        """
        (N, M) => {
          param w[i] ~ Normal(0.0, 1.0) for i <- 0 until N ;
          data y[m] ~ Normal(w[0], 1.0) for m <- 0 until M ;
        }
        """
    )
    info = analyze_model(m, {"N": INT, "M": INT})
    cond = conditional(lower_and_factorize(m), "w", info)
    (lik,) = cond.likelihood
    # w[0]: constant index, not a generator and not categorical => imprecise.
    assert cond.imprecise
    assert [g.var for g in lik.gens] == ["m"]


# ----------------------------------------------------------------------
# Scalar targets, whole-vector dependence, blanket queries.
# ----------------------------------------------------------------------


def test_scalar_target_keeps_inner_generators():
    fd, info = hgmm_setup()
    cond = conditional(fd, "pi", info)
    assert cond.idx_vars == ()
    (lik,) = cond.likelihood
    assert [g.var for g in lik.gens] == ["n"]
    assert lik.dist == "Categorical"


def test_hlr_theta_has_vector_dependence():
    fd, info = hlr_setup()
    cond = conditional(fd, "theta", info)
    assert cond.vector_dependence
    assert not cond.imprecise
    (lik,) = cond.likelihood
    assert [g.var for g in lik.gens] == ["n"]


def test_hlr_sigma2_conditional_drops_data_factor():
    fd, info = hlr_setup()
    cond = conditional(fd, "sigma2", info)
    # Dependent factors: its own prior plus the two Normal priors; the
    # Bernoulli data factor has no dependence on sigma2 and cancels.
    assert {f.source for f in cond.likelihood} == {"b", "theta"}


def test_markov_blanket_gmm():
    fd, info = gmm_setup()
    assert "x" in markov_blanket(fd, "mu")
    assert "z" in markov_blanket(fd, "mu")
    assert "mu_0" in markov_blanket(fd, "mu")
    assert "pis" not in markov_blanket(fd, "mu")


def test_blocked_factors_union():
    fd, info = hlr_setup()
    blk = blocked_factors(fd, ("theta", "b"))
    assert {f.source for f in blk.factors} == {"theta", "b", "y"}


# ----------------------------------------------------------------------
# Semantic correctness: the conditional is the joint up to a constant.
# ----------------------------------------------------------------------


def gmm_env(K=2, N=5, D=2, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "K": K,
        "N": N,
        "mu_0": np.zeros(D),
        "Sigma_0": np.eye(D),
        "pis": np.full(K, 1.0 / K),
        "Sigma": np.eye(D),
        "mu": rng.normal(size=(K, D)),
        "z": rng.integers(0, K, size=N),
        "x": rng.normal(size=(N, D)),
    }


def conditional_logp(cond, env, idx_binding):
    scope = dict(env) | idx_binding
    return sum(factor_logpdf(f, scope) for f in cond.all_factors)


def test_gmm_mu_conditional_matches_joint_ratio():
    fd, info = gmm_setup()
    cond = conditional(fd, "mu", info)
    env = gmm_env()
    env2 = dict(env)
    mu2 = env["mu"].copy()
    mu2[1] = np.array([3.0, -1.0])
    env2["mu"] = mu2

    joint_ratio = log_joint(fd, env2) - log_joint(fd, env)
    cond_ratio = conditional_logp(cond, env2, {"k": 1}) - conditional_logp(
        cond, env, {"k": 1}
    )
    assert cond_ratio == pytest.approx(joint_ratio, rel=1e-10)


def test_gmm_z_conditional_matches_joint_ratio():
    fd, info = gmm_setup()
    cond = conditional(fd, "z", info)
    env = gmm_env()
    env2 = dict(env)
    z2 = env["z"].copy()
    z2[3] = 1 - z2[3]
    env2["z"] = z2

    joint_ratio = log_joint(fd, env2) - log_joint(fd, env)
    cond_ratio = conditional_logp(cond, env2, {"n": 3}) - conditional_logp(
        cond, env, {"n": 3}
    )
    assert cond_ratio == pytest.approx(joint_ratio, rel=1e-10)


def test_hlr_sigma2_conditional_matches_joint_ratio():
    fd, info = hlr_setup()
    cond = conditional(fd, "sigma2", info)
    rng = np.random.default_rng(1)
    env = {
        "N": 4,
        "D": 3,
        "lam": 1.0,
        "x": rng.normal(size=(4, 3)),
        "sigma2": 1.5,
        "b": 0.3,
        "theta": rng.normal(size=3),
        "y": rng.integers(0, 2, size=4),
    }
    env2 = dict(env, sigma2=2.5)
    joint_ratio = log_joint(fd, env2) - log_joint(fd, env)
    cond_ratio = conditional_logp(cond, env2, {}) - conditional_logp(cond, env, {})
    assert cond_ratio == pytest.approx(joint_ratio, rel=1e-10)


# ----------------------------------------------------------------------
# Helper-level tests.
# ----------------------------------------------------------------------


def test_occurrences_in_factor():
    fd, info = gmm_setup()
    x_factor = fd.factors_of("x")[0]
    occs = occurrences_in_factor(x_factor, "mu")
    assert occs == [(Index(Var("z"), Var("n")),)]
    assert occurrences_in_factor(x_factor, "z") == [(Var("n"),)]


def test_replace_expr_structural():
    e = Call("+", (Index(Var("z"), Var("n")), IntLit(1)))
    out = replace_expr(e, Index(Var("z"), Var("n")), Var("k"))
    assert out == Call("+", (Var("k"), IntLit(1)))
