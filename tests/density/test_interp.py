"""Reference density interpreter against hand-computed values."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats as st

from repro.core.density.interp import bind_lets, eval_expr, log_joint
from repro.core.density.lower import lower_and_factorize
from repro.core.frontend.parser import parse_expr, parse_model
from repro.errors import RuntimeFailure
from repro.eval import models
from repro.runtime.vectors import RaggedArray


def test_eval_expr_arithmetic():
    env = {"a": 2.0, "b": 3.0}
    assert eval_expr(parse_expr("a + b * 2.0"), env) == 8.0
    assert eval_expr(parse_expr("-a"), env) == -2.0


def test_eval_expr_indexing_and_builtins():
    env = {"x": np.array([1.0, 2.0, 3.0]), "w": np.array([0.5, 0.5, 0.0])}
    assert eval_expr(parse_expr("x[1]"), env) == 2.0
    assert eval_expr(parse_expr("dotp(x, w)"), env) == 1.5
    assert eval_expr(parse_expr("sigmoid(0.0)"), env) == 0.5


def test_eval_expr_ragged_indexing():
    env = {"w": RaggedArray.from_rows([[1, 2], [3, 4, 5]]), "d": 1}
    assert eval_expr(parse_expr("w[d][2]"), env) == 5


def test_eval_expr_unbound_raises():
    with pytest.raises(RuntimeFailure, match="unbound"):
        eval_expr(parse_expr("ghost"), {})


def test_log_joint_normal_normal_manual():
    fd = lower_and_factorize(parse_model(models.NORMAL_NORMAL))
    env = {
        "N": 3,
        "mu_0": 0.0,
        "v_0": 4.0,
        "v": 1.0,
        "mu": 0.7,
        "y": np.array([0.5, 1.0, -0.2]),
    }
    expected = st.norm(0.0, 2.0).logpdf(0.7) + st.norm(0.7, 1.0).logpdf(
        env["y"]
    ).sum()
    assert log_joint(fd, env) == pytest.approx(expected, rel=1e-12)


def test_log_joint_beta_bernoulli_manual():
    fd = lower_and_factorize(parse_model(models.BETA_BERNOULLI))
    env = {"N": 4, "a": 2.0, "b": 3.0, "p": 0.4, "y": np.array([1, 0, 1, 1])}
    expected = st.beta(2, 3).logpdf(0.4) + sum(
        st.bernoulli(0.4).logpmf(env["y"])
    )
    assert log_joint(fd, env) == pytest.approx(expected, rel=1e-12)


def test_log_joint_out_of_support_is_neg_inf():
    fd = lower_and_factorize(parse_model(models.BETA_BERNOULLI))
    env = {"N": 1, "a": 2.0, "b": 3.0, "p": 1.4, "y": np.array([1])}
    assert log_joint(fd, env) == -np.inf


def test_log_joint_lda_ragged():
    fd = lower_and_factorize(parse_model(models.LDA))
    env = {
        "K": 2,
        "D": 2,
        "V": 3,
        "N": np.array([2, 1]),
        "alpha": np.full(2, 1.0),
        "beta": np.full(3, 1.0),
        "theta": np.array([[0.5, 0.5], [0.2, 0.8]]),
        "phi": np.array([[0.3, 0.3, 0.4], [0.1, 0.8, 0.1]]),
        "z": RaggedArray.from_rows([[0, 1], [1]]),
        "w": RaggedArray.from_rows([[0, 2], [1]]),
    }
    theta, phi = env["theta"], env["phi"]
    expected = (
        st.dirichlet([1.0, 1.0]).logpdf(theta[0])
        + st.dirichlet([1.0, 1.0]).logpdf(theta[1])
        + st.dirichlet([1.0, 1.0, 1.0]).logpdf(phi[0])
        + st.dirichlet([1.0, 1.0, 1.0]).logpdf(phi[1])
        # z: doc 0 tokens 0,1 ; doc 1 token 0.
        + np.log(theta[0][0]) + np.log(theta[0][1]) + np.log(theta[1][1])
        # w given z.
        + np.log(phi[0][0]) + np.log(phi[1][2]) + np.log(phi[1][1])
    )
    assert log_joint(fd, env) == pytest.approx(float(expected), rel=1e-12)


def test_bind_lets_in_order():
    m = parse_model(
        """
        (s) => {
          let t = s * 2.0 ;
          let u = t + 1.0 ;
          param mu ~ Normal(u, 1.0) ;
        }
        """
    )
    fd = lower_and_factorize(m)
    scope = bind_lets(fd, {"s": 3.0})
    assert scope["t"] == 6.0
    assert scope["u"] == 7.0


def test_log_joint_with_lets():
    m = parse_model(
        """
        (s) => {
          let t = s * 2.0 ;
          param mu ~ Normal(0.0, t) ;
        }
        """
    )
    fd = lower_and_factorize(m)
    got = log_joint(fd, {"s": 2.0, "mu": 1.0})
    assert got == pytest.approx(st.norm(0, 2.0).logpdf(1.0))
