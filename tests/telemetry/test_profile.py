"""The sweep profiler: attribution, draw identity, wrapper hygiene."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.eval import models


def gmm_inputs(k=2, n=40, seed=0):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-3.0, 0.0], [3.0, 0.0]])
    z = rng.integers(0, k, size=n)
    x = true_mu[z] + rng.normal(0, 0.4, size=(n, 2))
    hypers = {
        "K": k,
        "N": n,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 16.0,
        "pis": np.full(k, 1.0 / k),
        "Sigma": np.eye(2) * 0.16,
    }
    return hypers, {"x": x}


def gmm_sampler(schedule=None):
    hypers, data = gmm_inputs()
    return compile_model(models.GMM, hypers, data, schedule=schedule)


def test_profile_attributes_sweep_time_per_update_and_statement():
    sampler = gmm_sampler("ESlice mu (*) Gibbs z")
    res = sampler.sample(num_samples=60, burn_in=10, seed=0, profile=True)
    prof = res.profile
    assert prof is not None
    assert prof.n_sweeps == 70
    labels = {u["name"] for u in prof.updates}
    assert labels == {"ESlice mu", "Gibbs z"}
    for u in prof.updates:
        assert u["calls"] == 70
        assert u["seconds"] >= 0.0
    # >= 95% of in-sweep wall time lands on some update.
    assert prof.attributed_fraction >= 0.95
    # Every update row carries its model-statement provenance, and the
    # by-statement rollup covers both scheduled variables.
    stmts = {s["stmt"] for s in prof.statements}
    assert {"mu", "z"} <= stmts
    # Decl rows nest under their owning update and count calls.
    decl_updates = {d["update"] for d in prof.decls}
    assert decl_updates <= labels
    assert any(d["calls"] > 0 for d in prof.decls)


def test_profile_reports_op_throughput():
    sampler = gmm_sampler("ESlice mu (*) Gibbs z")
    res = sampler.sample(num_samples=40, seed=0, profile=True)
    with_ops = [d for d in res.profile.decls if d["ops_per_sec"]]
    assert with_ops, "no decl produced an op-count estimate"
    for d in with_ops:
        assert d["ops_per_sec"] > 0.0


def test_profiling_does_not_change_draws():
    sampler = gmm_sampler("MH mu (*) Gibbs z")
    plain = sampler.sample(num_samples=30, burn_in=5, seed=42)
    profiled = sampler.sample(num_samples=30, burn_in=5, seed=42, profile=True)
    np.testing.assert_array_equal(plain.array("mu"), profiled.array("mu"))
    np.testing.assert_array_equal(plain.array("z"), profiled.array("z"))
    assert plain.profile is None and profiled.profile is not None


def test_profile_composes_with_collect_stats():
    sampler = gmm_sampler("MH mu (*) Gibbs z")
    res = sampler.sample(
        num_samples=20, seed=3, profile=True, collect_stats=True
    )
    assert res.profile is not None and res.stats is not None
    assert res.stats.n_sweeps == 20


def test_wrappers_are_removed_after_sampling():
    sampler = gmm_sampler("MH mu (*) Gibbs z")
    before = [
        {attr: getattr(upd, attr, None) for attr in upd.profile_fns}
        for upd in sampler.updates
    ]
    sampler.sample(num_samples=10, seed=0, profile=True)
    after = [
        {attr: getattr(upd, attr, None) for attr in upd.profile_fns}
        for upd in sampler.updates
    ]
    assert before == after
    for upd in sampler.updates:
        assert upd._saved_fns is None


def test_fused_gradient_path_is_attributed():
    sampler = gmm_sampler("HMC[steps=3, step_size=0.05] mu (*) Gibbs z")
    res = sampler.sample(num_samples=25, seed=0, profile=True)
    by_name = {d["name"]: d for d in res.profile.decls}
    fused = [n for n in by_name if n.startswith("ll_grad_")]
    assert fused, f"no fused decl row in {sorted(by_name)}"
    assert by_name[fused[0]]["calls"] > 0


def test_profile_table_and_dict_round_trip():
    sampler = gmm_sampler("ESlice mu (*) Gibbs z")
    res = sampler.sample(num_samples=15, seed=0, profile=True)
    text = res.profile.table(sampler.source_map)
    assert "sweep profile" in text
    assert "ESlice mu" in text and "Gibbs z" in text
    d = res.profile.to_dict()
    assert set(d) >= {
        "n_sweeps", "sweep_seconds", "attributed_fraction",
        "updates", "decls", "statements",
    }


def test_profile_through_sample_chains():
    sampler = gmm_sampler("MH mu (*) Gibbs z")
    results = sampler.sample_chains(2, num_samples=12, seed=5, profile=True)
    assert all(r.profile is not None for r in results)
    plain = sampler.sample_chains(2, num_samples=12, seed=5)
    for a, b in zip(plain, results):
        np.testing.assert_array_equal(a.array("mu"), b.array("mu"))
