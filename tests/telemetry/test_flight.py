"""The per-request flight recorder: ring, divergence trigger, dumps."""

from __future__ import annotations

import json
from types import SimpleNamespace

from repro.telemetry.flight import FlightRecorder
from repro.telemetry.obslog import ObsEvent


def _chunk(chain=0, start=0, stop=5, info=None):
    return SimpleNamespace(chain=chain, start=start, stop=stop, info=info)


def _info(divergent=0, n_sweeps=5, step_size=None, phase=None):
    entry = {
        "accept_rate": 0.8,
        "n_proposed": n_sweeps,
        "nan_rejects": 0,
        "divergent": divergent,
        "n_sweeps": n_sweeps,
    }
    if step_size is not None:
        entry["step_size"] = step_size
    info = {"HMC mu": entry}
    if phase is not None:
        info["__phase__"] = phase
    return info


def test_ring_is_bounded():
    fr = FlightRecorder("req", capacity=3)
    for i in range(10):
        fr.record_chunk(_chunk(start=i * 5, stop=i * 5 + 5, info=_info()))
    snap = fr.snapshot()
    assert len(snap["entries"]) == 3
    assert snap["entries"][-1]["stop"] == 50
    assert snap["capacity"] == 3
    # Accounting spans every chunk, not just the ring's survivors.
    assert snap["divergence"]["sweeps"] == 50


def test_entry_captures_stats_phase_and_rhat():
    fr = FlightRecorder("req")
    phase = {"phase": "warmup", "sweep": 3, "warmup": 10, "step_size": 0.25}
    fr.record_chunk(
        _chunk(info=_info(step_size=0.25, phase=phase)), worst_rhat=1.07
    )
    entry = fr.snapshot()["entries"][0]
    assert entry["phase"] == "warmup"
    assert entry["step_size"] == 0.25
    assert entry["worst_rhat"] == 1.07
    stats = entry["stats"]["HMC mu"]
    assert stats["accept_rate"] == 0.8
    assert stats["n_sweeps"] == 5


def test_non_finite_rhat_is_nulled():
    fr = FlightRecorder("req")
    fr.record_chunk(_chunk(info=_info()), worst_rhat=float("nan"))
    assert fr.snapshot()["entries"][0]["worst_rhat"] is None


def test_divergence_trigger_fires_exactly_once():
    fr = FlightRecorder("req", divergence_warn=0.05)
    # Below the minimum sweep count nothing fires even at 100% rate.
    assert fr.record_chunk(_chunk(info=_info(divergent=5, n_sweeps=5))) is False
    # Crossing 20 sweeps with a high rate fires once...
    assert fr.record_chunk(_chunk(info=_info(divergent=15, n_sweeps=15))) is True
    assert fr.exceeded is True
    # ...and never again.
    assert fr.record_chunk(_chunk(info=_info(divergent=5, n_sweeps=5))) is False
    assert fr.divergence_rate == 1.0


def test_clean_run_never_triggers():
    fr = FlightRecorder("req")
    for i in range(20):
        assert fr.record_chunk(_chunk(info=_info(divergent=0))) is False
    assert fr.exceeded is False
    assert fr.divergence_rate == 0.0


def test_dump_writes_post_mortem_artifact(tmp_path):
    fr = FlightRecorder("req-9", capacity=8)
    fr.record_chunk(_chunk(info=_info(divergent=1)))
    events = [
        ObsEvent("request.accepted", "info", 1.0, "req-9", 100, {}),
        ObsEvent("chunk.emitted", "info", 2.0, "req-9", 200, {"chain": 0}),
    ]
    path = str(tmp_path / "req-9.flight.json")
    try:
        raise ValueError("step size blew up")
    except ValueError as exc:
        doc = fr.dump(path, "error", error=exc, events=events)
    assert doc["reason"] == "error"
    assert doc["error"]["type"] == "ValueError"
    assert "step size blew up" in doc["error"]["traceback"]
    on_disk = json.load(open(path))
    assert on_disk["request_id"] == "req-9"
    assert on_disk["reason"] == "error"
    assert [e["event"] for e in on_disk["events"]] == [
        "request.accepted", "chunk.emitted",
    ]
    # The embedded trail spans both pids under the one rid.
    assert {e["pid"] for e in on_disk["events"]} == {100, 200}
    assert {e["rid"] for e in on_disk["events"]} == {"req-9"}


def test_dump_without_error_or_events(tmp_path):
    fr = FlightRecorder("req")
    path = str(tmp_path / "f.json")
    doc = fr.dump(path, "deadline")
    assert doc["reason"] == "deadline"
    assert "error" not in doc and "events" not in doc
    assert json.load(open(path))["divergence"]["exceeded"] is False
