"""The streaming progress line and the service metrics aggregates."""

from __future__ import annotations

import io

from repro.core.chains import ChainChunk
from repro.telemetry.progress import StreamProgress
from repro.telemetry.requests import ServiceMetrics


def _chunk(chain, start, stop, info=None):
    return ChainChunk(chain=chain, start=start, stop=stop, samples={},
                      info=info)


class TestStreamProgress:
    def test_renders_single_refreshing_line(self):
        out = io.StringIO()
        ticks = iter([0.0, 1.0, 2.0])
        progress = StreamProgress(2, 10, out=out, clock=lambda: next(ticks))
        progress.update(_chunk(0, 0, 5))
        progress.update(_chunk(1, 0, 5))
        progress.close()
        text = out.getvalue()
        assert text.count("\r") == 2  # one refresh per chunk
        assert text.endswith("\n")
        last = text.rstrip("\n").rsplit("\r", 1)[-1]
        assert "c0:5/10" in last and "c1:5/10" in last
        assert "5.0 draws/s" in last  # 10 draws over 2 ticks
        assert "R-hat -" in last  # no monitor attached

    def test_info_digest_feeds_the_line(self):
        out = io.StringIO()
        progress = StreamProgress(1, 10, out=out, clock=lambda: 1.0)
        progress.update(
            _chunk(0, 0, 5, info={
                "HMC theta": {
                    "accept_rate": 0.8, "n_proposed": 5,
                    "nan_rejects": 2, "divergent": 1,
                },
            })
        )
        line = out.getvalue()
        assert "accept 0.80" in line
        assert "divergent 1" in line
        assert "nan-rejects 2" in line

    def test_monitor_rhat_is_shown(self):
        class FakeMonitor:
            def worst_rhat(self):
                return 1.0421

        out = io.StringIO()
        progress = StreamProgress(1, 4, out=out, clock=lambda: 1.0)
        progress.update(_chunk(0, 0, 2), FakeMonitor())
        assert "R-hat 1.042" in out.getvalue()


class TestServiceMetrics:
    def test_aggregates_and_recent_ring(self):
        metrics = ServiceMetrics(recent=2)
        for i in range(3):
            metrics.record(
                request_id=f"r{i}", queue_wait_s=0.5, compile_s=0.1,
                sampling_s=2.0, cache_hit=i > 0, sweeps=100, draws=50,
                stop_reason="deadline" if i == 0 else None,
                resumed=i == 2, checkpointed=i == 0,
            )
        metrics.record_error()
        snap = metrics.snapshot()
        assert snap["requests"] == 3
        assert snap["errors"] == 1
        assert snap["compile_cache"] == {"hits": 2, "misses": 1}
        assert snap["stops"]["deadline"] == 1
        assert snap["checkpoints_saved"] == 1
        assert snap["resumed_requests"] == 1
        assert snap["mean_queue_wait_s"] == 0.5
        assert snap["sweeps_per_s"] == 50.0
        assert [r["request_id"] for r in snap["recent"]] == ["r1", "r2"]
