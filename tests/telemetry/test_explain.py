"""The compiler decision ledger: coverage, fallback reasons, cache replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.eval import models
from repro.runtime.vectors import RaggedArray

NORMAL_ELEMENTS = """
(N, v0, v) => {
  param mu[n] ~ Normal(0.0, v0) for n <- 0 until N ;
  data y[n] ~ Normal(mu[n], v) for n <- 0 until N ;
}
"""

RAGGED_ELEMENTS = """
(D, L, v0, v) => {
  param t[d][j] ~ Normal(0.0, v0) for d <- 0 until D, j <- 0 until L[d] ;
  data y[d][j] ~ Normal(t[d][j], v) for d <- 0 until D, j <- 0 until L[d] ;
}
"""


def nn_inputs(n=8, seed=0):
    rng = np.random.default_rng(seed)
    return {"N": n, "v0": 4.0, "v": 1.0}, {"y": rng.normal(loc=1.0, size=n)}


def ragged_inputs(d=4, seed=0):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, 5, size=d)
    hypers = {"D": d, "L": lengths, "v0": 4.0, "v": 1.0}
    data = {"y": RaggedArray.from_rows([rng.normal(size=k) for k in lengths])}
    return hypers, data


def gmm_inputs(k=2, n=30, seed=0):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-3.0, 0.0], [3.0, 0.0]])
    z = rng.integers(0, k, size=n)
    x = true_mu[z] + rng.normal(0, 0.4, size=(n, 2))
    hypers = {
        "K": k,
        "N": n,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 16.0,
        "pis": np.full(k, 1.0 / k),
        "Sigma": np.eye(2) * 0.16,
    }
    return hypers, {"x": x}


def entries(sampler, decision=None, subject=None):
    out = []
    for e in sampler.explain_json():
        if decision is not None and e["decision"] != decision:
            continue
        if subject is not None and e["subject"] != subject:
            continue
        out.append(e)
    return out


# -- coverage: every decl and every update appears -------------------------


def test_every_decl_has_an_emit_entry_and_every_update_a_kernel_entry():
    hypers, data = gmm_inputs()
    sampler = compile_model(models.GMM, hypers, data)
    emit_subjects = {e["subject"] for e in entries(sampler, "emit.vectorize")}
    assert emit_subjects == set(sampler.op_count_exprs)
    kernel_subjects = {e["subject"] for e in entries(sampler, "kernel.update")}
    # One kernel.update entry per scheduled model variable.
    assert {"mu", "z"} <= kernel_subjects
    # Exactly one compile.cache entry, appended at assembly time.
    assert len(entries(sampler, "compile.cache")) == 1
    # Every entry is human-readable: non-empty choice and reason.
    for e in sampler.explain_json():
        assert e["choice"] and e["reason"], e


def test_explain_renders_with_provenance_origins():
    hypers, data = gmm_inputs()
    sampler = compile_model(models.GMM, hypers, data)
    text = sampler.explain()
    assert "compiler decision ledger" in text
    # The origin suffix maps a decision back to the model statement that
    # caused it, with its source line.
    assert "<- mu (line" in text
    assert "emit.vectorize" in text and "kernel.update" in text


# -- the fallback matrix: each gate names itself in the reason -------------


def test_batch_elements_option_gate_is_explained():
    hypers, data = nn_inputs()
    sampler = compile_model(
        NORMAL_ELEMENTS, hypers, data, schedule="MH mu",
        options=CompileOptions(batch_elements=False),
    )
    (e,) = entries(sampler, "batch.elements")
    assert e["choice"] == "scalar"
    assert "batch_elements=False" in e["reason"]


def test_batch_off_schedule_gate_is_explained():
    hypers, data = nn_inputs()
    sampler = compile_model(
        NORMAL_ELEMENTS, hypers, data, schedule="MH[batch=off] mu"
    )
    (e,) = entries(sampler, "batch.elements")
    assert e["choice"] == "scalar"
    assert "batch=off" in e["reason"]


def test_user_proposal_gate_is_explained():
    hypers, data = nn_inputs()

    def prop(value, rng):
        return value + rng.standard_normal(np.shape(value)), 0.0

    sampler = compile_model(
        NORMAL_ELEMENTS, hypers, data, schedule="MH mu",
        proposals={"mu": prop},
    )
    (e,) = entries(sampler, "batch.elements")
    assert e["choice"] == "scalar"
    assert "user proposal" in e["reason"]


def test_fuse_gradient_option_gate_is_explained():
    hypers, data = gmm_inputs()
    sampler = compile_model(
        models.GMM, hypers, data,
        schedule="HMC[steps=3, step_size=0.05] mu (*) Gibbs z",
        options=CompileOptions(fuse_gradient=False),
    )
    (e,) = entries(sampler, "gradient.fusion")
    assert e["choice"] == "pair"
    assert "fuse_gradient=False" in e["reason"]
    # With the option on, the same block fuses.
    fused = compile_model(
        models.GMM, hypers, data,
        schedule="HMC[steps=3, step_size=0.05] mu (*) Gibbs z",
    )
    (e,) = entries(fused, "gradient.fusion")
    assert e["choice"] == "fused"


def test_flat_state_option_gate_is_explained():
    hypers, data = gmm_inputs()
    sched = "HMC[steps=3, step_size=0.05] mu (*) Gibbs z"
    sampler = compile_model(
        models.GMM, hypers, data, schedule=sched,
        options=CompileOptions(flat_state=False),
    )
    (e,) = entries(sampler, "leapfrog.state")
    assert e["choice"] == "tree"
    assert "flat_state=False" in e["reason"]
    flat = compile_model(models.GMM, hypers, data, schedule=sched)
    (e,) = entries(flat, "leapfrog.state")
    assert e["choice"] == "flat"
    assert "contiguous slots" in e["reason"]


def test_ragged_block_gate_is_explained():
    hypers, data = ragged_inputs()
    sampler = compile_model(
        RAGGED_ELEMENTS, hypers, data,
        schedule="HMC[steps=3, step_size=0.05] t",
    )
    (e,) = entries(sampler, "leapfrog.state")
    assert e["choice"] == "tree"
    assert "ragged" in e["reason"]


# -- cache replay ----------------------------------------------------------


def test_cache_hit_replays_codegen_decisions():
    hypers, data = gmm_inputs(seed=123)  # unique data -> fresh cache key
    first = compile_model(models.GMM, hypers, data)
    second = compile_model(models.GMM, hypers, data)
    (miss,) = entries(first, "compile.cache")
    (hit,) = entries(second, "compile.cache")
    assert miss["choice"] == "miss" and hit["choice"] == "hit"
    # All codegen-time entries are replayed verbatim from the cache.
    strip = lambda es: [e for e in es if e["decision"] != "compile.cache"]
    assert strip(second.explain_json()) == strip(first.explain_json())
    # Per-sampler clones stay independent: the hit entry did not leak
    # into the first sampler's ledger.
    assert entries(first, "compile.cache")[0]["choice"] == "miss"


def test_ledger_json_is_serialisable():
    import json

    hypers, data = gmm_inputs()
    sampler = compile_model(models.GMM, hypers, data)
    payload = json.dumps(sampler.explain_json())
    assert "kernel.update" in payload
