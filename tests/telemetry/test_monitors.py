"""Online monitors: streaming moments, split R-hat/ESS, divergences,
NaN-reject warnings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.eval import models
from repro.eval.metrics import potential_scale_reduction, split_chains
from repro.telemetry.monitors import (
    ConvergenceMonitor,
    DivergenceMonitor,
    OnlineEss,
    SplitRhat,
    Welford,
)


# -- Welford ---------------------------------------------------------------


def test_welford_matches_numpy():
    rng = np.random.default_rng(0)
    x = rng.normal(3.0, 2.0, size=500)
    w = Welford()
    for v in x:
        w.update(float(v))
    assert w.mean == pytest.approx(x.mean())
    assert w.var == pytest.approx(x.var(ddof=1))


def test_welford_merge_equals_single_stream():
    rng = np.random.default_rng(1)
    a, b = rng.normal(size=300), rng.normal(1.0, 3.0, size=200)
    wa, wb, w_all = Welford(), Welford(), Welford()
    for v in a:
        wa.update(float(v))
        w_all.update(float(v))
    for v in b:
        wb.update(float(v))
        w_all.update(float(v))
    wa.merge(wb)
    assert wa.n == w_all.n
    assert wa.mean == pytest.approx(w_all.mean)
    assert wa.var == pytest.approx(w_all.var)
    # Merging an empty accumulator is the identity either way.
    assert Welford().merge(wa).mean == pytest.approx(w_all.mean)
    assert wa.merge(Welford()).mean == pytest.approx(w_all.mean)


# -- online split R-hat ----------------------------------------------------


def test_online_split_rhat_matches_offline():
    rng = np.random.default_rng(2)
    chains = rng.normal(size=(3, 200))
    chains[1] += 0.8  # some disagreement
    sr = SplitRhat(n_chains=3, total_draws=200)
    for c in range(3):
        for d in range(200):
            sr.update(c, d, float(chains[c, d]))
    offline = potential_scale_reduction(split_chains(chains))
    assert sr.rhat() == pytest.approx(offline, rel=1e-12)


def test_online_split_rhat_detects_disagreement():
    rng = np.random.default_rng(3)
    good = SplitRhat(2, 100)
    bad = SplitRhat(2, 100)
    for d in range(100):
        good.update(0, d, float(rng.normal()))
        good.update(1, d, float(rng.normal()))
        bad.update(0, d, float(rng.normal()))
        bad.update(1, d, float(rng.normal(5.0)))
    assert good.rhat() < 1.1
    assert bad.rhat() > 1.5


def test_online_split_rhat_needs_data():
    sr = SplitRhat(2, 10)
    assert np.isnan(sr.rhat())
    with pytest.raises(ValueError):
        SplitRhat(2, 3)


# -- online ESS ------------------------------------------------------------


def test_online_ess_near_n_for_iid():
    rng = np.random.default_rng(4)
    ess = OnlineEss(batch_size=20)
    n = 2000
    for _ in range(n):
        ess.update(float(rng.normal()))
    assert 0.3 * n <= ess.ess() <= n


def test_online_ess_low_for_sticky_chain():
    rng = np.random.default_rng(5)
    ess = OnlineEss(batch_size=20)
    x = 0.0
    n = 2000
    for _ in range(n):
        x = 0.97 * x + rng.normal()
        ess.update(float(x))
    assert ess.ess() < 0.2 * n


def test_online_ess_warmup_is_nan():
    ess = OnlineEss(batch_size=10)
    for v in range(15):
        ess.update(float(v))
    assert np.isnan(ess.ess())  # only one full batch so far


# -- divergence monitor ----------------------------------------------------


def test_divergence_monitor_threshold():
    mon = DivergenceMonitor("HMC mu", warn_rate=0.1)
    for i in range(20):
        mon.update(divergent=(i % 4 == 0), nan_rejects=0)
    assert mon.rate == pytest.approx(0.25)
    assert "decrease the step size" in mon.warning
    quiet = DivergenceMonitor("HMC mu", warn_rate=0.5)
    quiet.update(divergent=False)
    assert quiet.warning is None


# -- the composed ConvergenceMonitor over real chains ----------------------


@pytest.fixture(scope="module")
def nn_sampler():
    rng = np.random.default_rng(0)
    y = rng.normal(2.0, 1.0, size=40)
    return compile_model(
        models.NORMAL_NORMAL,
        {"N": 40, "mu_0": 0.0, "v_0": 25.0, "v": 1.0},
        {"y": y},
    )


def make_monitor(n_chains, draws, emit=None):
    return ConvergenceMonitor(
        param_names=("mu",),
        n_chains=n_chains,
        total_draws=draws,
        emit=emit,
    )


def test_monitor_streams_during_sequential_chains(nn_sampler):
    lines = []
    monitor = make_monitor(3, 120, emit=lines.append)
    nn_sampler.sample_chains(
        3, num_samples=120, burn_in=20, seed=1,
        collect_stats=True, monitor=monitor,
    )
    assert len(lines) == 3  # one progress line per finished chain
    assert "worst split R-hat" in lines[-1]
    assert monitor.worst_rhat() < 1.1  # conjugate Gibbs mixes immediately
    assert monitor.min_ess() > 50
    assert monitor.warnings() == []
    report = monitor.report()
    assert "mu" in report and "all monitors within thresholds" in report
    # Stats flowed into the divergence monitors too.
    assert "Gibbs mu" in report


def test_parallel_monitor_agrees_with_sequential(nn_sampler):
    seq = make_monitor(3, 60)
    nn_sampler.sample_chains(
        3, num_samples=60, seed=7, collect_stats=True, monitor=seq
    )
    par = make_monitor(3, 60)
    nn_sampler.sample_chains(
        3, num_samples=60, seed=7, collect_stats=True, monitor=par,
        executor="threads", n_workers=2,
    )
    # The replay path feeds identical draws, so the online diagnostics
    # agree exactly with the live-streamed sequential ones.
    assert par.worst_rhat() == pytest.approx(seq.worst_rhat(), rel=1e-12)
    assert par.min_ess() == pytest.approx(seq.min_ess(), rel=1e-12)


def test_monitor_flags_nonconverged_chains():
    monitor = make_monitor(2, 50)
    rng = np.random.default_rng(6)
    for d in range(50):
        monitor.observe(0, d, {"mu": rng.normal(0.0, 0.1)})
        monitor.observe(1, d, {"mu": rng.normal(8.0, 0.1)})
    assert monitor.worst_rhat() > 1.05
    assert any("not converged" in w for w in monitor.warnings())


def test_monitor_caps_vector_components():
    monitor = ConvergenceMonitor(
        param_names=("theta",), n_chains=1, total_draws=10, max_components=2
    )
    for d in range(10):
        monitor.observe(0, d, {"theta": np.arange(5.0) + d})
    assert set(monitor._rhat) == {"theta[0]", "theta[1]"}


# -- NaN-rejection accounting ----------------------------------------------


def nan_proposal(value, rng):
    """A broken user proposal that sometimes proposes NaN; the Normal
    log density of NaN is NaN, so the acceptance ratio comes out NaN."""
    if rng.uniform() < 0.5:
        return np.nan, 0.0
    return value + rng.normal(), 0.0


def mh_mu_sampler(proposal):
    rng = np.random.default_rng(0)
    y = rng.normal(2.0, 1.0, size=25)
    return compile_model(
        models.NORMAL_NORMAL,
        {"N": 25, "mu_0": 0.0, "v_0": 25.0, "v": 1.0},
        {"y": y},
        schedule="MH[proposal=user] mu",
        proposals={"mu": proposal},
    )


def test_nan_proposals_warn_and_count_without_stats():
    sampler = mh_mu_sampler(nan_proposal)
    with pytest.warns(RuntimeWarning, match="NaN log-acceptance"):
        sampler.sample(num_samples=30, seed=0)
    # The counter runs even with collect_stats off: silent NaN
    # rejection is a correctness hazard, not a telemetry feature.
    mh = sampler.updates[0]
    assert mh.stats.nan_rejected > 0
    assert mh.stats.nan_reject_rate > 0.01


def test_nan_rejects_surface_as_a_stat_column():
    sampler = mh_mu_sampler(nan_proposal)
    with pytest.warns(RuntimeWarning):
        res = sampler.sample(num_samples=30, seed=0, collect_stats=True)
    col = res.sample_stats["MH mu.nan_rejects"]
    assert col.sum() > 0
    text = "\n".join(res.stats.summary_lines())
    assert "nan-rejects" in text


def test_healthy_proposals_do_not_warn():
    def gaussian(value, rng):
        return value + rng.normal(), 0.0

    sampler = mh_mu_sampler(gaussian)
    import warnings as _warnings

    with _warnings.catch_warnings():
        _warnings.simplefilter("error", RuntimeWarning)
        sampler.sample(num_samples=20, seed=0)
