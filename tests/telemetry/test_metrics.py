"""Histograms, the exposition renderer, and ServiceMetrics' two views."""

from __future__ import annotations

import math

import pytest

from repro.telemetry.metrics import (
    Histogram,
    format_le,
    render_prometheus,
)
from repro.telemetry.requests import ServiceMetrics


def test_format_le():
    assert format_le(float("inf")) == "+Inf"
    assert format_le(10.0) == "10"
    assert format_le(0.005) == "0.005"


def test_histogram_requires_increasing_buckets():
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("h", (1.0, 1.0, 2.0))
    with pytest.raises(ValueError, match="strictly increasing"):
        Histogram("h", (2.0, 1.0))


def test_histogram_observe_and_cumulative():
    h = Histogram("h", (1.0, 5.0, 10.0))
    for v in (0.5, 0.9, 3.0, 7.0, 100.0):
        h.observe(v)
    cum = h.cumulative()
    assert cum == [("1", 2), ("5", 3), ("10", 4), ("+Inf", 5)]
    counts = [n for _, n in cum]
    assert counts == sorted(counts)  # cumulative counts are monotone
    assert h.count == 5
    assert h.sum == pytest.approx(111.4)


def test_histogram_skips_nan():
    h = Histogram("h", (1.0,))
    h.observe(float("nan"))
    assert h.count == 0 and h.sum == 0.0


def test_histogram_boundary_is_inclusive():
    h = Histogram("h", (1.0, 2.0))
    h.observe(1.0)  # le="1" bucket includes its upper bound
    assert h.cumulative()[0] == ("1", 1)


def test_to_dict_matches_cumulative():
    h = Histogram("h", (1.0, 2.0))
    h.observe(1.5)
    d = h.to_dict()
    assert d["buckets"] == {"1": 0, "2": 1, "+Inf": 1}
    assert d["count"] == 1 and d["sum"] == 1.5


def test_render_prometheus_shape():
    h = Histogram("repro_latency_seconds", (0.1, 1.0), "Latency")
    h.observe(0.05)
    text = render_prometheus(
        counters=[("repro_requests_total", "Requests", [(None, 3)])],
        histograms=[h],
        gauges=[("repro_in_flight", "In flight", [(None, 1)])],
    )
    assert text.endswith("# EOF\n")
    lines = text.splitlines()
    assert "# TYPE repro_requests_total counter" in lines
    assert "repro_requests_total 3" in lines
    assert "# TYPE repro_in_flight gauge" in lines
    assert 'repro_latency_seconds_bucket{le="0.1"} 1' in lines
    assert 'repro_latency_seconds_bucket{le="+Inf"} 1' in lines
    assert "repro_latency_seconds_sum 0.05" in lines
    assert "repro_latency_seconds_count 1" in lines


def test_service_metrics_histograms_in_snapshot():
    m = ServiceMetrics()
    m.record(
        request_id="r1", queue_wait_s=0.01, compile_s=0.1, sampling_s=2.0,
        cache_hit=False, sweeps=1000, draws=500, stop_reason=None,
        resumed=False, checkpointed=False, total_s=2.5, divergence_rate=0.02,
    )
    snap = m.snapshot()
    hists = snap["histograms"]
    assert set(hists) == {
        "repro_request_latency_seconds",
        "repro_request_queue_wait_seconds",
        "repro_request_sweeps_per_second",
        "repro_request_draws",
        "repro_request_divergence_rate",
    }
    for d in hists.values():
        assert set(d) == {"buckets", "sum", "count"}
        assert "+Inf" in d["buckets"]
        counts = list(d["buckets"].values())
        assert counts == sorted(counts)
    assert hists["repro_request_latency_seconds"]["count"] == 1
    assert hists["repro_request_divergence_rate"]["count"] == 1
    # sweeps/s = 1000 / 2.0 = 500
    assert hists["repro_request_sweeps_per_second"]["sum"] == 500.0


def test_service_metrics_recent_errors_ring():
    m = ServiceMetrics(recent_errors=2)
    m.record_error()  # old no-argument form still counts
    m.record_error(error=ValueError("bad data"), request_id="r2")
    m.record_error(error=RuntimeError("boom"), request_id="r3")
    snap = m.snapshot()
    assert snap["errors"] == 3
    recent = snap["recent_errors"]
    assert len(recent) == 2  # bounded ring
    assert recent[-1]["error"] == "RuntimeError"
    assert recent[-1]["message"] == "boom"
    assert recent[-1]["request_id"] == "r3"
    assert isinstance(recent[-1]["time"], float)


def test_service_metrics_prometheus_counters():
    m = ServiceMetrics()
    m.record(
        request_id=None, queue_wait_s=0.0, compile_s=0.1, sampling_s=0.5,
        cache_hit=True, sweeps=100, draws=50, stop_reason="deadline",
        resumed=False, checkpointed=True,
    )
    m.record_error(error=ValueError("x"), request_id="r")
    m.record_flight_dump()
    text = m.prometheus(in_flight=2)
    lines = text.splitlines()
    assert "repro_requests_total 1" in lines
    assert "repro_request_errors_total 1" in lines
    assert 'repro_compile_cache_total{result="hit"} 1' in lines
    assert 'repro_request_stops_total{reason="deadline"} 1' in lines
    assert "repro_checkpoints_saved_total 1" in lines
    assert "repro_flight_dumps_total 1" in lines
    assert "repro_sweeps_total 100" in lines
    assert "repro_in_flight_requests 2" in lines
    assert text.endswith("# EOF\n")


def test_json_and_prometheus_views_agree():
    m = ServiceMetrics()
    for i in range(5):
        m.record(
            request_id=f"r{i}", queue_wait_s=0.001 * i, compile_s=0.01,
            sampling_s=0.1, cache_hit=bool(i), sweeps=10, draws=5,
            stop_reason=None, resumed=False, checkpointed=False,
            total_s=0.2, divergence_rate=0.0,
        )
    snap = m.snapshot()
    text = m.prometheus()
    assert f"repro_requests_total {snap['requests']}" in text.splitlines()
    lat = snap["histograms"]["repro_request_latency_seconds"]
    assert (
        f"repro_request_latency_seconds_count {lat['count']}"
        in text.splitlines()
    )
    assert math.isclose(lat["sum"], 5 * 0.2)
