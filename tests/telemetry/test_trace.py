"""Pipeline tracing: the Tracer itself, compiler spans, runtime spans."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.eval import models
from repro.telemetry.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    tracing_enabled,
)

COMPILE_STAGES = [
    "cache.lookup",
    "frontend.parse",
    "frontend.analyze",
    "density.extract",
    "kernel.select",
    "codegen.updates",
    "codegen.verify",
    "backend.plan",
    "backend.emit",
    "backend.exec",
]


@pytest.fixture
def tracing():
    """Enable the process-wide tracer for one test, always disable after."""
    tracer = enable_tracing()
    yield tracer
    disable_tracing()


def nn_sampler(n=30, v0=25.0, seed=0):
    rng = np.random.default_rng(seed)
    y = rng.normal(2.0, 1.0, size=n)
    return compile_model(
        models.NORMAL_NORMAL,
        {"N": n, "mu_0": 0.0, "v_0": v0, "v": 1.0},
        {"y": y},
    )


# -- the Tracer itself -----------------------------------------------------


def test_disabled_tracer_records_nothing():
    t = Tracer()
    with t.span("x"):
        pass
    t.instant("y")
    t.add_complete("z", "c", 0.0, 1.0)
    assert t.events == []


def test_span_and_instant_events():
    t = Tracer()
    t.enable()
    with t.span("work", cat="compile", detail=3):
        t.instant("marker")
    names = {e.name for e in t.events}
    assert names == {"work", "marker"}
    work = next(e for e in t.events if e.name == "work")
    assert work.phase == "X" and work.dur >= 0.0 and work.args == {"detail": 3}
    marker = next(e for e in t.events if e.name == "marker")
    assert marker.phase == "i" and marker.dur == 0.0


def test_tracer_is_bounded():
    t = Tracer(max_events=3)
    t.enable()
    for i in range(5):
        t.instant(f"e{i}")
    assert len(t.events) == 3
    assert t.dropped == 2
    t.reset()
    assert t.events == [] and t.dropped == 0


def test_chrome_export_format(tmp_path):
    t = Tracer()
    t.enable()
    with t.span("stage", cat="compile"):
        pass
    t.instant("hit", cat="cache")
    path = tmp_path / "trace.json"
    t.write(str(path))
    doc = json.loads(path.read_text())
    assert "traceEvents" in doc and doc["displayTimeUnit"] == "ms"
    by_name = {e["name"]: e for e in doc["traceEvents"]}
    stage = by_name["stage"]
    assert stage["ph"] == "X" and "dur" in stage and "ts" in stage
    assert stage["pid"] > 0 and "tid" in stage
    assert by_name["hit"]["ph"] == "i" and by_name["hit"]["s"] == "t"


# -- compiler + runtime instrumentation ------------------------------------


def test_compile_emits_one_span_per_stage(tracing):
    nn_sampler(v0=17.5)  # unique hyper -> guaranteed cache miss
    names = [e.name for e in tracing.events]
    for stage in COMPILE_STAGES:
        assert names.count(stage) == 1, stage
    assert names.count("cache.miss") == 1
    assert "cache.hit" not in names


def test_recompile_hits_the_cache(tracing):
    nn_sampler(v0=19.25)
    tracing.reset()
    nn_sampler(v0=19.25)  # same ingredients -> cache hit
    names = [e.name for e in tracing.events]
    assert "cache.hit" in names
    # Hot path skips codegen entirely.
    assert "codegen.updates" not in names
    # Exec/wiring still runs (the cache stores source, not live objects).
    assert "backend.exec" in names


def test_runtime_spans_cover_init_sweeps_collect(tracing):
    sampler = nn_sampler(v0=21.125)
    tracing.reset()
    sampler.sample(num_samples=6, burn_in=2, thin=2, seed=0)
    events = tracing.events
    names = [e.name for e in events]
    assert names.count("init") == 1
    assert names.count("sample") == 1
    assert names.count("sweep") == 2 + 6 * 2
    assert names.count("collect") == 6
    sweeps = [e for e in events if e.name == "sweep"]
    assert sorted(e.args["index"] for e in sweeps) == list(range(14))
    sam = next(e for e in events if e.name == "sample")
    assert sam.args == {"num_samples": 6, "burn_in": 2, "thin": 2}


def test_process_executor_merges_worker_traces(tracing, tmp_path):
    import os

    sampler = nn_sampler(v0=23.0625)
    tracing.reset()
    sampler.sample_chains(
        2, num_samples=4, seed=0, executor="processes", n_workers=2
    )
    events = tracing.events
    # The parent's own events are stamped pid=0 until export; the
    # adopted worker events arrive pre-stamped with the worker's pid.
    worker_pids = {e.pid for e in events if e.pid}
    assert worker_pids, "no worker events were merged"
    assert os.getpid() not in worker_pids
    # Each worker ran one whole chain: init + per-sweep spans.
    worker_sweeps = [e for e in events if e.name == "sweep" and e.pid]
    assert len(worker_sweeps) == 2 * 4
    assert sum(1 for e in events if e.name == "init" and e.pid) == 2
    # The chrome export keeps the rows distinct per process.
    path = tmp_path / "trace.json"
    tracing.write(str(path))
    doc = json.loads(path.read_text())
    pids = {e["pid"] for e in doc["traceEvents"]}
    assert len(pids) >= 2  # parent row + at least one worker row


def test_export_events_stamps_own_pid():
    import os

    t = Tracer()
    t.enable()
    t.instant("local")
    shipped = t.export_events()
    assert [e.pid for e in shipped] == [os.getpid()]
    # adopt() appends even onto a disabled tracer's recording predicate
    # -- the parent decides by enabling before the run.
    t2 = Tracer()
    t2.enable()
    t2.adopt(shipped)
    assert [e.name for e in t2.events] == ["local"]


def test_tracing_toggle_is_global():
    assert not tracing_enabled()
    enable_tracing()
    try:
        assert tracing_enabled()
        assert get_tracer().enabled
    finally:
        disable_tracing()
    assert not tracing_enabled()
