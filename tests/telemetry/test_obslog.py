"""The structured event log: levels, correlation ids, capture/adopt."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.telemetry.obslog import (
    EventLog,
    current_rid,
    get_event_log,
    log_event,
    request_context,
)


@pytest.fixture(autouse=True)
def _reset_global_log():
    yield
    get_event_log().close()


def test_disabled_log_is_a_noop():
    log = EventLog()
    log.log("request.accepted", rid="r1", chains=2)
    assert log.recent() == []


def test_stream_sink_writes_json_lines():
    buf = io.StringIO()
    log = EventLog()
    log.configure(stream=buf, level="info")
    log.log("request.accepted", rid="job-1", chains=2)
    log.log("chunk.emitted", rid="job-1", chain=0, start=0, stop=5)
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert [rec["event"] for rec in lines] == [
        "request.accepted", "chunk.emitted",
    ]
    rec = lines[0]
    assert rec["rid"] == "job-1"
    assert rec["pid"] == os.getpid()
    assert rec["level"] == "info"
    assert rec["chains"] == 2
    assert isinstance(rec["ts"], float)


def test_level_threshold_filters_events():
    buf = io.StringIO()
    log = EventLog()
    log.configure(stream=buf, level="warning")
    log.log("sample.finished", level="debug")
    log.log("request.accepted", level="info")
    log.log("worker.died", level="error", worker_pid=1234)
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert [rec["event"] for rec in lines] == ["worker.died"]


def test_unknown_level_is_rejected():
    with pytest.raises(ValueError, match="unknown log level"):
        EventLog().configure(stream=io.StringIO(), level="loud")


def test_request_context_supplies_rid():
    buf = io.StringIO()
    log = EventLog()
    log.configure(stream=buf)
    assert current_rid() is None
    with request_context("job-7"):
        assert current_rid() == "job-7"
        log.log("request.compiled", cache_hit=True)
        log.log("budget.stop", rid="other", reason="deadline")
    assert current_rid() is None
    recs = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert recs[0]["rid"] == "job-7"  # from the ambient context
    assert recs[1]["rid"] == "other"  # explicit rid wins


def test_file_sink_appends_parseable_lines(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = EventLog()
    log.configure(path=path, level="debug")
    log.log("request.accepted", rid="r", chains=1)
    log.log("sample.finished", level="debug", kept=10)
    log.close()
    with open(path) as f:
        recs = [json.loads(line) for line in f]
    assert len(recs) == 2
    assert log.sink_path is None  # close() drops the sink


def test_capture_drain_adopt_round_trip():
    worker = EventLog()
    worker.begin_capture(level="info")
    worker.log("chunk.emitted", rid="r9", chain=0, start=0, stop=5)
    worker.log("chain.finished", rid="r9", chain=0, kept=5)
    shipped = worker.drain_capture()
    assert worker.drain_capture() == []  # drain empties the buffer
    worker.end_capture()
    assert not worker.enabled

    buf = io.StringIO()
    parent = EventLog()
    parent.configure(stream=buf)
    parent.adopt(shipped)
    recs = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert [r["event"] for r in recs] == ["chunk.emitted", "chain.finished"]
    assert all(r["rid"] == "r9" for r in recs)
    assert parent.recent(rid="r9")  # adopted events enter the ring


def test_capture_buffer_is_bounded():
    log = EventLog()
    log.begin_capture()
    from repro.telemetry import obslog

    for i in range(obslog.CAPTURE_CAP + 10):
        log.log("chunk.emitted", chain=0, start=i, stop=i + 1)
    assert len(log.drain_capture()) == obslog.CAPTURE_CAP
    assert log.dropped == 10
    log.end_capture()


def test_ring_is_bounded_and_filterable():
    log = EventLog(ring=4)
    log.configure(stream=io.StringIO())
    for i in range(10):
        log.log("chunk.emitted", rid="a" if i % 2 else "b", index=i)
    recent = log.recent()
    assert len(recent) == 4
    assert all(e.rid == "a" for e in log.recent(rid="a"))


def test_reset_after_fork_clears_inherited_state():
    log = EventLog()
    log.configure(stream=io.StringIO())
    log.log("request.accepted", rid="r")
    assert log.recent()
    log.reset_after_fork()
    assert not log.enabled
    assert log.recent() == []
    assert log.sink_path is None


def test_module_level_helpers_drive_the_singleton(tmp_path):
    path = str(tmp_path / "mod.jsonl")
    from repro.telemetry.obslog import configure_event_log

    configure_event_log(path=path, level="info")
    log_event("worker.spawned", worker_pid=4321)
    get_event_log().close()
    with open(path) as f:
        rec = json.loads(f.readline())
    assert rec["event"] == "worker.spawned"
    assert rec["worker_pid"] == 4321
