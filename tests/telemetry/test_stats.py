"""Per-sweep sampler statistics: capture, typing, and cross-chain merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.eval import models
from repro.telemetry.stats import (
    BASE_FIELDS,
    SampleStats,
    StatField,
    UpdateStatsBuffer,
    allocate_stat_buffers,
    stack_chain_stats,
)


def gmm_inputs(seed=0, n=40):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-3.0, 0.0], [3.0, 0.0]])
    z = rng.integers(0, 2, size=n)
    x = true_mu[z] + rng.normal(0, 0.4, size=(n, 2))
    hypers = {
        "K": 2,
        "N": n,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 16.0,
        "pis": np.array([0.5, 0.5]),
        "Sigma": np.eye(2) * 0.16,
    }
    return hypers, {"x": x}


def gmm_sampler(schedule):
    hypers, data = gmm_inputs()
    return compile_model(models.GMM, hypers, data, schedule=schedule)


#: (schedule, label of the mu update, extra fields it must report)
KERNEL_CASES = [
    ("MH mu (*) Gibbs z", "MH mu", {"mean_log_alpha"}),
    ("Slice mu (*) Gibbs z", "Slice mu", {"expansions", "shrinks"}),
    ("ESlice mu (*) Gibbs z", "ESlice mu", {"shrinks"}),
    (
        "HMC[steps=5, step_size=0.05] mu (*) Gibbs z",
        "HMC mu",
        {
            "log_alpha", "energy", "divergent", "n_leapfrog",
            "accept_stat", "step_size", "step_size_bar", "adapt_window",
        },
    ),
    (
        "NUTS[step_size=0.05] mu (*) Gibbs z",
        "NUTS mu",
        {
            "energy", "divergent", "n_leapfrog", "tree_depth",
            "accept_stat", "step_size", "step_size_bar", "adapt_window",
        },
    ),
]


@pytest.mark.parametrize("schedule,label,extra", KERNEL_CASES)
def test_every_base_kernel_reports_typed_stats(schedule, label, extra):
    sampler = gmm_sampler(schedule)
    res = sampler.sample(num_samples=10, burn_in=4, seed=0, collect_stats=True)
    stats = res.stats
    assert stats is not None
    assert set(stats.update_labels) == {label, "Gibbs z"}
    base = {f.name for f in BASE_FIELDS}
    assert set(stats[label]) == base | extra
    # Stats cover every sweep, burn-in included.
    assert stats.n_sweeps == 14
    cols = stats[label]
    assert np.all(cols["accept_rate"] >= 0.0)
    assert np.all(cols["accept_rate"] <= 1.0)
    assert np.all(cols["n_proposed"] >= 1)
    assert cols["n_proposed"].dtype == np.int64
    assert cols["accept_rate"].dtype == np.float64


def test_hmc_and_nuts_specific_columns():
    res = gmm_sampler(
        "HMC[steps=5, step_size=0.05] mu (*) Gibbs z"
    ).sample(num_samples=12, seed=1, collect_stats=True)
    cols = res.stats["HMC mu"]
    assert np.all(cols["n_leapfrog"] == 5)
    assert np.all(np.isfinite(cols["energy"]))

    res = gmm_sampler("NUTS[step_size=0.05] mu (*) Gibbs z").sample(
        num_samples=12, seed=1, collect_stats=True
    )
    cols = res.stats["NUTS mu"]
    assert np.all(cols["tree_depth"] >= 1)
    # A depth-d doubling tree uses 2^d - 1 leapfrog steps at most.
    assert np.all(cols["n_leapfrog"] <= 2 ** cols["tree_depth"])


def test_stats_off_by_default():
    res = gmm_sampler("ESlice mu (*) Gibbs z").sample(num_samples=5, seed=0)
    assert res.stats is None
    assert res.sample_stats == {}


def test_sample_stats_flat_dict_and_kept_slice():
    res = gmm_sampler("ESlice mu (*) Gibbs z").sample(
        num_samples=6, burn_in=4, thin=2, seed=0, collect_stats=True
    )
    flat = res.sample_stats
    assert set(flat) >= {"ESlice mu.accept_rate", "Gibbs z.accept_rate"}
    # burn_in + num_samples * thin sweeps recorded in full...
    assert flat["ESlice mu.accept_rate"].shape == (16,)
    # ...and kept_slice picks exactly the sweeps with stored draws.
    kept = flat["Gibbs z.n_proposed"][res.stats.kept_slice]
    assert kept.shape == (6,)


def test_summary_lines_mention_kernel_specifics():
    res = gmm_sampler(
        "NUTS[step_size=0.05] mu (*) Gibbs z"
    ).sample(num_samples=8, seed=0, collect_stats=True)
    text = "\n".join(res.stats.summary_lines())
    assert "NUTS mu" in text and "mean depth" in text
    assert "Gibbs z" in text


def test_duplicate_labels_get_distinct_buffers():
    class Fake:
        label = "Slice mu"

        def stat_fields(self):
            return BASE_FIELDS

    bufs = allocate_stat_buffers([Fake(), Fake()], n_sweeps=3)
    assert [b.label for b in bufs] == ["Slice mu", "Slice mu#1"]
    bufs[0]["accept_rate"][0] = 0.5
    assert bufs[1]["accept_rate"][0] == 0.0  # storage not shared


def test_buffer_write_ignores_unknown_fields():
    buf = UpdateStatsBuffer("u", BASE_FIELDS, 2)
    buf.write(0, {"accept_rate": 0.25, "not_a_field": 9.0})
    assert buf["accept_rate"][0] == 0.25


def test_divergence_rate_reduction():
    buf = UpdateStatsBuffer(
        "HMC mu", BASE_FIELDS + (StatField("divergent", "i8"),), 4
    )
    buf["divergent"][:] = [0, 1, 0, 1]
    stats = SampleStats([buf], burn_in=0, thin=1)
    assert stats.divergence_rate("HMC mu") == pytest.approx(0.5)
    assert stats.divergence_rate("HMC mu") >= 0.0


def test_stack_chain_stats_shapes_and_empty_case():
    sampler = gmm_sampler("ESlice mu (*) Gibbs z")
    results = sampler.sample_chains(
        3, num_samples=6, burn_in=2, seed=0, collect_stats=True
    )
    merged = stack_chain_stats(results)
    assert merged["ESlice mu.accept_rate"].shape == (3, 8)
    assert merged["Gibbs z.n_proposed"].shape == (3, 8)
    # Without collect_stats there is nothing to merge.
    plain = sampler.sample_chains(2, num_samples=4, seed=0)
    assert stack_chain_stats(plain) == {}
