"""The HTML/JSON inference report and acceptance-range summaries."""

from __future__ import annotations

import json

import numpy as np

from repro.core.compiler import compile_model
from repro.eval import models
from repro.telemetry.monitors import ConvergenceMonitor
from repro.telemetry.report import render_html, report_data, write_report
from repro.telemetry.stats import acceptance_ranges


def gmm_sampler(schedule="MH mu (*) Gibbs z", n=30, seed=0):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-3.0, 0.0], [3.0, 0.0]])
    z = rng.integers(0, 2, size=n)
    x = true_mu[z] + rng.normal(0, 0.4, size=(n, 2))
    hypers = {
        "K": 2,
        "N": n,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 16.0,
        "pis": np.array([0.5, 0.5]),
        "Sigma": np.eye(2) * 0.16,
    }
    return compile_model(models.GMM, hypers, {"x": x}, schedule=schedule)


def test_report_data_bundles_every_surface():
    sampler = gmm_sampler()
    results = sampler.sample_chains(
        2, num_samples=20, burn_in=5, seed=0, collect_stats=True, profile=True
    )
    data = report_data(sampler, results)
    assert data["model_source"].strip().startswith("(")
    assert {s["name"] for s in data["statements"]} == {"mu", "z", "x"}
    assert all(s["line"] > 0 and s["text"] for s in data["statements"])
    assert data["ledger"], "report carries no decision ledger"
    assert len(data["chains"]) == 2
    assert all(c["n_draws"] == 20 for c in data["chains"])
    assert len(data["profiles"]) == 2
    assert "MH mu" in data["acceptance_ranges"]
    r = data["acceptance_ranges"]["MH mu"]
    assert 0.0 <= r["min"] <= r["mean"] <= r["max"] <= 1.0
    json.dumps(data)  # fully serialisable


def test_render_html_is_self_contained():
    sampler = gmm_sampler()
    res = sampler.sample(
        num_samples=15, seed=0, collect_stats=True, profile=True
    )
    html = render_html(report_data(sampler, [res]))
    assert html.startswith("<!DOCTYPE html>")
    for marker in (
        "Compiler decision ledger",
        "Sweep profile",
        "Acceptance rates",
        "param mu",
    ):
        assert marker in html, marker
    # Self-contained: no external scripts or stylesheets.
    assert "<script src" not in html and "<link" not in html


def test_write_report_emits_html_and_json_twin(tmp_path):
    sampler = gmm_sampler()
    res = sampler.sample(num_samples=10, seed=0, profile=True)
    out = tmp_path / "run.html"
    data = write_report(str(out), sampler, res)
    assert out.stat().st_size > 0
    twin = json.loads((tmp_path / "run.json").read_text())
    assert twin["ledger"] == data["ledger"]
    assert twin["profiles"] and twin["chains"]


def test_acceptance_ranges_cover_all_chains():
    sampler = gmm_sampler()
    results = sampler.sample_chains(
        3, num_samples=15, seed=1, collect_stats=True
    )
    ranges = acceptance_ranges(results)
    assert set(ranges) == {"MH mu", "Gibbs z"}
    lo, hi, mean = ranges["Gibbs z"]
    assert lo == hi == mean == 1.0  # Gibbs always accepts
    lo, hi, mean = ranges["MH mu"]
    assert 0.0 <= lo <= mean <= hi <= 1.0


def test_monitor_summary_agrees_with_stats_ranges():
    sampler = gmm_sampler()
    monitor = ConvergenceMonitor(("mu",), n_chains=2, total_draws=15)
    results = sampler.sample_chains(
        2, num_samples=15, seed=2, collect_stats=True, monitor=monitor
    )
    summary = monitor.acceptance_summary()
    ranges = acceptance_ranges(results)
    assert set(summary) == set(ranges)
    for label in ranges:
        np.testing.assert_allclose(summary[label], ranges[label])
    text = monitor.report()
    assert "accept mean" in text and "range" in text
