"""Low++ well-formedness checking."""

from __future__ import annotations

import pytest

from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Gen,
    IntLit,
    RealLit,
    Var,
)
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SLoop,
    SMultiAssign,
)
from repro.core.lowpp.verify import verify_decl
from repro.errors import CodegenError

from tests.lowpp.conftest import make_setup


def test_generated_decls_all_verify():
    # Every declaration the real code generators produce must pass.
    from repro.core.density.conditionals import blocked_factors, conditional
    from repro.core.kernel.conjugacy import detect_conjugacy, detect_enumeration
    from repro.core.lowpp.ad import gen_grad
    from repro.core.lowpp.gen_gibbs import gen_gibbs_conjugate, gen_gibbs_enumeration
    from repro.core.lowpp.gen_init import gen_init
    from repro.core.lowpp.gen_ll import gen_block_ll, gen_cond_ll, gen_model_ll

    for name in ("gmm", "hgmm", "lda", "hlr"):
        fd, info = make_setup(name)
        verify_decl(gen_model_ll(fd))
        verify_decl(gen_init(info, fd))
        for p in info.param_names():
            cond = conditional(fd, p, info)
            verify_decl(gen_cond_ll(cond, fd.lets))
            m = detect_conjugacy(cond)
            if m is not None:
                code = gen_gibbs_conjugate(m, fd.lets)
                verify_decl(code.decl)
            elif info.info(p).is_discrete:
                e = detect_enumeration(cond, info.info(p).dist_name)
                if e is not None:
                    verify_decl(gen_gibbs_enumeration(e, fd.lets).decl)
        cont = info.continuous_params()
        if cont:
            blk = blocked_factors(fd, cont)
            try:
                verify_decl(gen_grad(blk, fd.lets))
            except CodegenError as err:
                # Some blocks legitimately have no gradient (InvWishart);
                # only "unavailable gradient" is acceptable here.
                assert "unavailable" in str(err)


def test_unbound_read_rejected():
    decl = LDecl("f", params=(), body=(SAssign(LValue("a"), AssignOp.SET, Var("ghost")),))
    with pytest.raises(CodegenError, match="unbound variable 'ghost'"):
        verify_decl(decl)


def test_unbound_indexed_store_rejected():
    decl = LDecl(
        "f",
        params=(),
        body=(SAssign(LValue("buf", (IntLit(0),)), AssignOp.SET, RealLit(1.0)),),
    )
    with pytest.raises(CodegenError, match="unbound buffer 'buf'"):
        verify_decl(decl)


def test_increment_before_set_rejected():
    decl = LDecl("f", params=(), body=(SAssign(LValue("acc"), AssignOp.INC, RealLit(1.0)),))
    with pytest.raises(CodegenError, match="unbound buffer 'acc'"):
        verify_decl(decl)


def test_loop_binder_shadowing_rejected():
    decl = LDecl(
        "f",
        params=("n",),
        body=(
            SLoop(LoopKind.PAR, Gen("n", IntLit(0), IntLit(3)), ()),
        ),
    )
    with pytest.raises(CodegenError, match="shadows"):
        verify_decl(decl)


def test_loop_binder_out_of_scope_after_loop():
    decl = LDecl(
        "f",
        params=("N",),
        body=(
            SLoop(LoopKind.PAR, Gen("i", IntLit(0), Var("N")), ()),
            SAssign(LValue("a"), AssignOp.SET, Var("i")),
        ),
    )
    with pytest.raises(CodegenError, match="unbound variable 'i'"):
        verify_decl(decl)


def test_dist_arity_checked():
    decl = LDecl(
        "f",
        params=(),
        body=(
            SAssign(
                LValue("a"),
                AssignOp.SET,
                DistOp("Normal", (RealLit(0.0),), DistOpKind.SAMP),
            ),
        ),
    )
    with pytest.raises(CodegenError, match="takes 2 arguments"):
        verify_decl(decl)


def test_grad_index_range_checked():
    decl = LDecl(
        "f",
        params=(),
        body=(
            SAssign(
                LValue("a"),
                AssignOp.SET,
                DistOp(
                    "Normal",
                    (RealLit(0.0), RealLit(1.0)),
                    DistOpKind.GRAD,
                    value=RealLit(0.5),
                    grad_index=7,
                ),
            ),
        ),
    )
    with pytest.raises(CodegenError, match="out of range"):
        verify_decl(decl)


def test_samp_with_value_rejected():
    decl = LDecl(
        "f",
        params=(),
        body=(
            SAssign(
                LValue("a"),
                AssignOp.SET,
                DistOp(
                    "Normal",
                    (RealLit(0.0), RealLit(1.0)),
                    DistOpKind.SAMP,
                    value=RealLit(0.0),
                ),
            ),
        ),
    )
    with pytest.raises(CodegenError, match="no evaluation point"):
        verify_decl(decl)


def test_ll_without_value_rejected():
    decl = LDecl(
        "f",
        params=(),
        body=(
            SAssign(
                LValue("a"),
                AssignOp.SET,
                DistOp("Normal", (RealLit(0.0), RealLit(1.0)), DistOpKind.LL),
            ),
        ),
    )
    with pytest.raises(CodegenError, match="needs an evaluation point"):
        verify_decl(decl)


def test_multiassign_binds_targets():
    decl = LDecl(
        "f",
        params=("p",),
        body=(
            SMultiAssign(
                (LValue("a"), LValue("b")),
                Call("lib.normal_normal_post", (Var("p"), Var("p"), Var("p"), Var("p"))),
            ),
            SAssign(LValue("c"), AssignOp.SET, Call("+", (Var("a"), Var("b")))),
        ),
        ret=(Var("c"),),
    )
    verify_decl(decl)  # no error
