"""Low++ interpreter semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Gen,
    IntLit,
    RealLit,
    Var,
)
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SIf,
    SLoop,
    SMultiAssign,
)
from repro.core.lowpp.interp import run_decl, run_decl_scope
from repro.errors import RuntimeFailure
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray


def test_scalar_assign_and_return(rng):
    decl = LDecl(
        name="f",
        params=("a",),
        body=(
            SAssign(LValue("t"), AssignOp.SET, Call("*", (Var("a"), RealLit(2.0)))),
            SAssign(LValue("t"), AssignOp.INC, RealLit(1.0)),
        ),
        ret=(Var("t"),),
    )
    assert run_decl(decl, {"a": 3.0}, rng) == (7.0,)


def test_loop_accumulation(rng):
    decl = LDecl(
        name="sum_sq",
        params=("n",),
        body=(
            SAssign(LValue("acc"), AssignOp.SET, RealLit(0.0)),
            SLoop(
                LoopKind.ATM_PAR,
                Gen("i", IntLit(0), Var("n")),
                (SAssign(LValue("acc"), AssignOp.INC, Call("*", (Var("i"), Var("i")))),),
            ),
        ),
        ret=(Var("acc"),),
    )
    assert run_decl(decl, {"n": 5}, rng) == (0 + 1 + 4 + 9 + 16,)


def test_indexed_store_mutates_array(rng):
    arr = np.zeros(4)
    decl = LDecl(
        name="fill",
        params=("out", "n"),
        body=(
            SLoop(
                LoopKind.PAR,
                Gen("i", IntLit(0), Var("n")),
                (SAssign(LValue("out", (Var("i"),)), AssignOp.SET, Var("i")),),
            ),
        ),
    )
    run_decl(decl, {"out": arr, "n": 4}, rng)
    np.testing.assert_array_equal(arr, [0, 1, 2, 3])


def test_scatter_increment(rng):
    counts = np.zeros(3)
    idx = np.array([0, 2, 2, 1, 2])
    decl = LDecl(
        name="count",
        params=("counts", "idx", "n"),
        body=(
            SLoop(
                LoopKind.ATM_PAR,
                Gen("i", IntLit(0), Var("n")),
                (
                    SAssign(
                        LValue("counts", (Var("idx")[Var("i")],)),
                        AssignOp.INC,
                        RealLit(1.0),
                    ),
                ),
            ),
        ),
    )
    run_decl(decl, {"counts": counts, "idx": idx, "n": 5}, rng)
    np.testing.assert_array_equal(counts, [1, 1, 3])


def test_if_branches(rng):
    decl = LDecl(
        name="branch",
        params=("a",),
        body=(
            SIf(
                Call("==", (Var("a"), IntLit(1))),
                (SAssign(LValue("out"), AssignOp.SET, RealLit(10.0)),),
                (SAssign(LValue("out"), AssignOp.SET, RealLit(20.0)),),
            ),
        ),
        ret=(Var("out"),),
    )
    assert run_decl(decl, {"a": 1}, rng) == (10.0,)
    assert run_decl(decl, {"a": 0}, rng) == (20.0,)


def test_multi_assign_from_lib_call(rng):
    decl = LDecl(
        name="post",
        params=("mu0", "v0", "p", "m"),
        body=(
            SMultiAssign(
                (LValue("pm"), LValue("pv")),
                Call("lib.normal_normal_post", (Var("mu0"), Var("v0"), Var("p"), Var("m"))),
            ),
        ),
        ret=(Var("pm"), Var("pv")),
    )
    pm, pv = run_decl(decl, {"mu0": 0.0, "v0": 1.0, "p": 1.0, "m": 2.0}, rng)
    assert pv == pytest.approx(0.5)
    assert pm == pytest.approx(1.0)


def test_distop_ll_and_samp(rng):
    decl = LDecl(
        name="d",
        params=("mu",),
        body=(
            SAssign(
                LValue("lp"),
                AssignOp.SET,
                DistOp("Normal", (Var("mu"), RealLit(1.0)), DistOpKind.LL, value=RealLit(0.0)),
            ),
            SAssign(
                LValue("draw"),
                AssignOp.SET,
                DistOp("Normal", (Var("mu"), RealLit(1.0)), DistOpKind.SAMP),
            ),
        ),
        ret=(Var("lp"), Var("draw")),
    )
    lp, draw = run_decl(decl, {"mu": 0.0}, Rng(0))
    assert lp == pytest.approx(-0.5 * np.log(2 * np.pi))
    assert isinstance(float(draw), float)


def test_ragged_store(rng):
    ws = RaggedArray.full([2, 3], 0.0)
    decl = LDecl(
        name="r",
        params=("ws",),
        body=(SAssign(LValue("ws", (IntLit(1), IntLit(2))), AssignOp.SET, RealLit(9.0)),),
    )
    run_decl(decl, {"ws": ws}, rng)
    assert ws.row(1)[2] == 9.0


def test_missing_param_raises(rng):
    decl = LDecl(name="f", params=("a",), body=(), ret=())
    with pytest.raises(RuntimeFailure, match="missing parameters"):
        run_decl(decl, {}, rng)


def test_store_to_unallocated_buffer_raises(rng):
    decl = LDecl(
        name="f",
        params=(),
        body=(SAssign(LValue("buf", (IntLit(0),)), AssignOp.SET, RealLit(1.0)),),
    )
    with pytest.raises(RuntimeFailure, match="unallocated"):
        run_decl(decl, {}, rng)


def test_scope_exposes_locals(rng):
    decl = LDecl(
        name="f",
        params=(),
        body=(SAssign(LValue("local"), AssignOp.SET, RealLit(5.0)),),
    )
    _, scope = run_decl_scope(decl, {}, rng)
    assert scope["local"] == 5.0
