"""Source-to-source AD: generated adjoint code vs. finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.density.conditionals import blocked_factors
from repro.core.lowpp.ad import gen_grad
from repro.core.lowpp.gen_ll import gen_block_ll
from repro.core.lowpp.interp import run_decl
from repro.errors import CodegenError
from repro.runtime.rng import Rng

from tests.lowpp.conftest import make_setup


def numeric_grad(ll_decl, env, name, rng, eps=1e-6):
    """Finite-difference gradient of the generated ll w.r.t. env[name]."""
    base = np.asarray(env[name], dtype=np.float64)
    grad = np.zeros_like(base)
    it = np.nditer(base, flags=["multi_index"])
    while not it.finished:
        for sign, store in ((1, "hi"), (-1, "lo")):
            bumped = base.copy()
            bumped[it.multi_index] += sign * eps
            env2 = dict(env)
            env2[name] = bumped if base.ndim else float(bumped)
            (val,) = run_decl(ll_decl, env2, rng)
            if store == "hi":
                hi = val
            else:
                lo = val
        grad[it.multi_index] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def check_block_grad(model_name, targets, env, rtol=1e-4):
    fd, info = make_setup(model_name)
    blk = blocked_factors(fd, targets)
    ll_decl = gen_block_ll(blk, fd.lets)
    grad_decl = gen_grad(blk, fd.lets)
    rng = Rng(0)
    grads = run_decl(grad_decl, env, rng)
    assert len(grads) == len(targets)
    for t, g in zip(targets, grads):
        expected = numeric_grad(ll_decl, env, t, rng)
        np.testing.assert_allclose(
            np.asarray(g, dtype=np.float64), expected, rtol=rtol, atol=1e-6,
            err_msg=f"gradient mismatch for {t}",
        )


def test_hlr_block_gradient(hlr_env):
    # The full Figure 8 pipeline on HLR: gradients flow through sigmoid,
    # dotp, indexing, and the shared variance of the priors.
    check_block_grad("hlr", ("sigma2", "b", "theta"), hlr_env)


def test_hlr_single_target_gradient(hlr_env):
    check_block_grad("hlr", ("theta",), hlr_env)


def test_gmm_mu_gradient_with_mixture_indexing(gmm_env):
    # The paper's grad_mu_k example: adjoints scatter through z[n].
    check_block_grad("gmm", ("mu",), gmm_env)


def test_exp_normal_gradient():
    # The Section 5.4 running example: a scale parameter shared by all
    # observations, whose adjoint is a high-contention accumulation.
    rng = np.random.default_rng(3)
    env = {"N": 6, "lam": 1.0, "v": 0.8, "y": rng.normal(size=6)}
    check_block_grad("exp_normal", ("v",), env)


def test_adjoint_code_uses_atomic_increments():
    # Structural check: the GMM mu adjoint is an AtmPar loop containing
    # adj_mu[z[n]] += ..., as in the paper's excerpt.
    from repro.core.lowpp.ir import SAssign, SLoop, walk_stmts, AssignOp, LoopKind

    fd, info = make_setup("gmm")
    blk = blocked_factors(fd, ("mu",))
    decl = gen_grad(blk, fd.lets)
    atm_loops = [
        s for s in walk_stmts(decl.body)
        if isinstance(s, SLoop) and s.kind is LoopKind.ATM_PAR
    ]
    assert atm_loops, "expected AtmPar adjoint loops"
    incs = [
        s for s in walk_stmts(decl.body)
        if isinstance(s, SAssign)
        and s.op is AssignOp.INC
        and s.lhs.name == "adj_mu"
        and s.lhs.indices
    ]
    assert incs, "expected indexed adjoint increments adj_mu[...] += ..."


def test_gradient_through_discrete_index_is_rejected():
    # Differentiating w.r.t. a variable used as an index must fail.
    from repro.core.density.conditionals import BlockConditional
    from repro.core.density.ir import Factor
    from repro.core.exprs import Index, Var

    f = Factor(
        gens=(),
        guards=(),
        dist="Normal",
        args=(Index(Var("t"), Var("t2")), Var("v")),
        at=Var("y"),
        source="y",
    )
    blk = BlockConditional(targets=("t2",), factors=(f,))
    with pytest.raises(CodegenError, match="index"):
        gen_grad(blk)


def test_gradient_return_order_matches_targets(hlr_env):
    fd, info = make_setup("hlr")
    blk = blocked_factors(fd, ("b", "sigma2"))
    decl = gen_grad(blk, fd.lets)
    assert [str(r) for r in decl.ret] == ["adj_b", "adj_sigma2"]
