"""Shared model setups for Low++ codegen tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.density.lower import lower_and_factorize
from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import analyze_model
from repro.eval import models

from tests.kernel.test_conjugacy import HYPERS


def make_setup(name):
    m = parse_model(models.ALL_MODELS[name])
    info = analyze_model(m, HYPERS[name])
    return lower_and_factorize(m), info


@pytest.fixture
def gmm():
    return make_setup("gmm")


@pytest.fixture
def hlr():
    return make_setup("hlr")


@pytest.fixture
def gmm_env():
    rng = np.random.default_rng(0)
    K, N, D = 2, 6, 2
    return {
        "K": K,
        "N": N,
        "mu_0": np.zeros(D),
        "Sigma_0": np.eye(D) * 4.0,
        "pis": np.full(K, 0.5),
        "Sigma": np.eye(D) * 0.5,
        "mu": rng.normal(size=(K, D)),
        "z": rng.integers(0, K, size=N),
        "x": rng.normal(size=(N, D)),
    }


@pytest.fixture
def hlr_env():
    rng = np.random.default_rng(1)
    N, D = 5, 3
    x = rng.normal(size=(N, D))
    return {
        "N": N,
        "D": D,
        "lam": 1.0,
        "x": x,
        "sigma2": 1.2,
        "b": 0.4,
        "theta": rng.normal(size=D),
        "y": rng.integers(0, 2, size=N),
    }
