"""Generated Gibbs updates: statistics and posterior correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.density.conditionals import conditional
from repro.core.kernel.conjugacy import detect_conjugacy, detect_enumeration
from repro.core.lowpp.gen_gibbs import gen_gibbs_conjugate, gen_gibbs_enumeration
from repro.core.lowpp.interp import run_decl_scope
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray

from tests.lowpp.conftest import make_setup


def alloc_ws(specs, env):
    """Hand allocation of workspaces (size inference is tested separately)."""
    from repro.core.density.interp import eval_expr

    out = {}
    for spec in specs:
        dims = []
        scope = dict(env)
        ragged = False
        for g in spec.gens:
            hi = eval_expr(g.hi, scope)
            if isinstance(hi, np.ndarray):
                ragged = True
            dims.append(hi)
        trailing = [int(eval_expr(t, scope)) for t in spec.trailing]
        if ragged:
            raise NotImplementedError("ragged workspaces allocated in size-inference tests")
        shape = tuple(int(d) for d in dims) + tuple(trailing)
        out[spec.name] = np.zeros(shape)
    return out


def run_gibbs(code, env, seed=0):
    ws = alloc_ws(code.workspaces, env)
    _, scope = run_decl_scope(code.decl, env, Rng(seed), workspaces=ws)
    return scope


# ----------------------------------------------------------------------
# Normal-Normal: the posterior is known in closed form.
# ----------------------------------------------------------------------


def normal_normal_env(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "N": 20,
        "mu_0": 1.0,
        "v_0": 4.0,
        "v": 0.5,
        "mu": 0.0,
        "y": rng.normal(2.0, 0.7, size=20),
    }


def test_normal_normal_gibbs_matches_analytic_posterior():
    fd, info = make_setup("normal_normal")
    match = detect_conjugacy(conditional(fd, "mu", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    env = normal_normal_env()
    y, v, mu0, v0 = env["y"], env["v"], env["mu_0"], env["v_0"]
    post_prec = 1 / v0 + len(y) / v
    post_mean = (mu0 / v0 + y.sum() / v) / post_prec

    draws = np.array([run_gibbs(code, dict(env), seed=i)["mu"] for i in range(4000)])
    assert draws.mean() == pytest.approx(post_mean, abs=0.01)
    assert draws.var() == pytest.approx(1 / post_prec, rel=0.1)


# ----------------------------------------------------------------------
# Beta-Bernoulli / Gamma-Poisson: posterior parameters via statistics.
# ----------------------------------------------------------------------


def test_beta_bernoulli_gibbs_posterior_moments():
    fd, info = make_setup("beta_bernoulli")
    match = detect_conjugacy(conditional(fd, "p", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    y = np.array([1, 1, 0, 1, 0, 1, 1, 1])
    env = {"N": len(y), "a": 2.0, "b": 2.0, "p": 0.5, "y": y}
    a_post, b_post = 2.0 + y.sum(), 2.0 + (len(y) - y.sum())
    draws = np.array([run_gibbs(code, dict(env), seed=i)["p"] for i in range(4000)])
    assert draws.mean() == pytest.approx(a_post / (a_post + b_post), abs=0.01)


def test_gamma_poisson_gibbs_posterior_moments():
    fd, info = make_setup("gamma_poisson")
    match = detect_conjugacy(conditional(fd, "rate", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    y = np.array([3, 5, 4, 2, 6, 3])
    env = {"N": len(y), "a": 1.0, "b": 1.0, "rate": 1.0, "y": y}
    a_post, b_post = 1.0 + y.sum(), 1.0 + len(y)
    draws = np.array([run_gibbs(code, dict(env), seed=i)["rate"] for i in range(4000)])
    assert draws.mean() == pytest.approx(a_post / b_post, rel=0.02)


# ----------------------------------------------------------------------
# Dirichlet-Categorical: scalar and guarded (mixture) variants.
# ----------------------------------------------------------------------


def test_dirichlet_categorical_gibbs_counts():
    fd, info = make_setup("dirichlet_categorical")
    match = detect_conjugacy(conditional(fd, "pi", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    y = np.array([0, 1, 1, 2, 1, 1, 0, 1])
    alpha = np.ones(3)
    env = {"N": len(y), "alpha": alpha, "pi": np.full(3, 1 / 3), "y": y}
    counts = np.bincount(y, minlength=3)
    expected_mean = (alpha + counts) / (alpha + counts).sum()
    draws = np.array([run_gibbs(code, dict(env), seed=i)["pi"] for i in range(3000)])
    np.testing.assert_allclose(draws.mean(axis=0), expected_mean, atol=0.015)


def gmm_gibbs_env(seed=0):
    rng = np.random.default_rng(seed)
    K, N, D = 2, 30, 2
    z = np.array([0] * 15 + [1] * 15)
    x = np.concatenate(
        [rng.normal(-2.0, 0.3, size=(15, D)), rng.normal(2.0, 0.3, size=(15, D))]
    )
    return {
        "K": K,
        "N": N,
        "mu_0": np.zeros(D),
        "Sigma_0": np.eye(D) * 100.0,
        "pis": np.full(K, 0.5),
        "Sigma": np.eye(D) * 0.09,
        "mu": np.zeros((K, D)),
        "z": z,
        "x": x,
    }


def test_gmm_mu_gibbs_uses_guard_inversion():
    # Structural: the statistics loop is a single AtmPar pass over n that
    # scatters by z[n]; there is no loop over k in the statistics phase.
    from repro.core.lowpp.ir import SAssign, SLoop, walk_stmts

    fd, info = make_setup("gmm")
    match = detect_conjugacy(conditional(fd, "mu", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    text = str(code.decl)
    assert "ws_mu_cnt[z[n]]" in text
    assert "ws_mu_sum[z[n]]" in text


def test_gmm_mu_gibbs_posterior_concentrates_on_cluster_means():
    fd, info = make_setup("gmm")
    match = detect_conjugacy(conditional(fd, "mu", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    env = gmm_gibbs_env()
    draws = np.stack(
        [run_gibbs(code, dict(env, mu=env["mu"].copy()), seed=i)["mu"] for i in range(300)]
    )
    means = draws.mean(axis=0)
    # With a nearly-flat prior, the posterior mean is close to each
    # cluster's empirical mean.
    emp0 = env["x"][env["z"] == 0].mean(axis=0)
    emp1 = env["x"][env["z"] == 1].mean(axis=0)
    np.testing.assert_allclose(means[0], emp0, atol=0.05)
    np.testing.assert_allclose(means[1], emp1, atol=0.05)


# ----------------------------------------------------------------------
# Enumeration Gibbs for the mixture assignment.
# ----------------------------------------------------------------------


def test_gmm_z_enumeration_matches_analytic_probabilities():
    fd, info = make_setup("gmm")
    cond = conditional(fd, "z", info)
    enum = detect_enumeration(cond, info.info("z").dist_name)
    code = gen_gibbs_enumeration(enum, fd.lets)

    env = gmm_gibbs_env()
    env["mu"] = np.array([[-2.0, -2.0], [2.0, 2.0]])
    # Analytic conditional for point n: prop.to pi_k * N(x_n | mu_k, Sigma).
    from scipy.stats import multivariate_normal as mvn

    n_probe = 0
    logits = np.array(
        [
            np.log(0.5) + mvn(env["mu"][k], env["Sigma"]).logpdf(env["x"][n_probe])
            for k in range(2)
        ]
    )
    probs = np.exp(logits - logits.max())
    probs /= probs.sum()

    draws = np.array(
        [run_gibbs(code, dict(env, z=env["z"].copy()), seed=i)["z"][n_probe] for i in range(2000)]
    )
    freq = np.bincount(draws, minlength=2) / draws.size
    np.testing.assert_allclose(freq, probs, atol=0.03)


def test_enumeration_workspace_shape():
    fd, info = make_setup("gmm")
    cond = conditional(fd, "z", info)
    enum = detect_enumeration(cond, info.info("z").dist_name)
    code = gen_gibbs_enumeration(enum, fd.lets)
    (spec,) = code.workspaces
    assert spec.name == "ws_z_logits"
    assert [g.var for g in spec.gens] == ["n"]
    assert len(spec.trailing) == 1


def test_gibbs_decl_params_exclude_workspaces_and_loopvars():
    fd, info = make_setup("gmm")
    match = detect_conjugacy(conditional(fd, "mu", info))
    code = gen_gibbs_conjugate(match, fd.lets)
    assert "ws_mu_cnt" not in code.decl.params
    assert "n" not in code.decl.params
    assert "k" not in code.decl.params
    assert "mu" in code.decl.params
    assert "z" in code.decl.params
