"""Generated likelihood code agrees with the density-interpreter oracle."""

from __future__ import annotations

import pytest

from repro.core.density.conditionals import blocked_factors, conditional
from repro.core.density.interp import factor_logpdf, log_joint
from repro.core.density.lower import lower_and_factorize
from repro.core.frontend.parser import parse_model
from repro.core.lowpp.gen_ll import gen_block_ll, gen_cond_ll, gen_model_ll
from repro.core.lowpp.interp import run_decl
from repro.runtime.rng import Rng

from tests.lowpp.conftest import make_setup


def subset_env(env, params):
    return {k: env[k] for k in params if k in env}


def test_model_ll_matches_log_joint_gmm(gmm, gmm_env):
    fd, info = gmm
    decl = gen_model_ll(fd)
    (got,) = run_decl(decl, gmm_env, Rng(0))
    assert got == pytest.approx(log_joint(fd, gmm_env), rel=1e-12)


def test_model_ll_matches_log_joint_hlr(hlr, hlr_env):
    fd, info = hlr
    decl = gen_model_ll(fd)
    (got,) = run_decl(decl, hlr_env, Rng(0))
    assert got == pytest.approx(log_joint(fd, hlr_env), rel=1e-12)


def test_cond_ll_gmm_mu_element(gmm, gmm_env):
    fd, info = gmm
    cond = conditional(fd, "mu", info)
    decl = gen_cond_ll(cond, fd.lets)
    assert "k" in decl.params
    env = dict(gmm_env, k=1)
    (got,) = run_decl(decl, env, Rng(0))
    expected = sum(factor_logpdf(f, env) for f in cond.all_factors)
    assert got == pytest.approx(expected, rel=1e-12)


def test_cond_ll_without_prior(gmm, gmm_env):
    fd, info = gmm
    cond = conditional(fd, "mu", info)
    full = gen_cond_ll(cond, fd.lets)
    lik_only = gen_cond_ll(cond, fd.lets, include_prior=False, suffix="_lik")
    env = dict(gmm_env, k=0)
    (f,) = run_decl(full, env, Rng(0))
    (l,) = run_decl(lik_only, env, Rng(0))
    prior = factor_logpdf(cond.prior, env)
    assert f == pytest.approx(l + prior, rel=1e-10)


def test_cond_ll_responds_to_state_change(gmm, gmm_env):
    # The decl reads the live state arrays: changing mu changes the value.
    fd, info = gmm
    cond = conditional(fd, "mu", info)
    decl = gen_cond_ll(cond, fd.lets)
    env = dict(gmm_env, k=0)
    (before,) = run_decl(decl, env, Rng(0))
    env["mu"] = env["mu"].copy()
    env["mu"][0] += 5.0
    (after,) = run_decl(decl, env, Rng(0))
    assert before != after


def test_block_ll_matches_factor_sum(hlr, hlr_env):
    fd, info = hlr
    blk = blocked_factors(fd, ("sigma2", "b", "theta"))
    decl = gen_block_ll(blk, fd.lets)
    (got,) = run_decl(decl, hlr_env, Rng(0))
    expected = sum(factor_logpdf(f, hlr_env) for f in blk.factors)
    assert got == pytest.approx(expected, rel=1e-12)


def test_ll_decl_with_lets():
    fd, info = make_setup("normal_normal")
    # Rebuild with a let in the variance position.
    from repro.core.frontend.parser import parse_model as pm
    from repro.core.frontend.symbols import analyze_model
    from repro.core.types import INT, REAL

    m = pm(
        """
        (N, s) => {
          let t = s * 2.0 ;
          param mu ~ Normal(0.0, t) ;
          data y[n] ~ Normal(mu, 1.0) for n <- 0 until N ;
        }
        """
    )
    info = analyze_model(m, {"N": INT, "s": REAL})
    fd = lower_and_factorize(m)
    decl = gen_model_ll(fd)
    import numpy as np

    env = {"N": 2, "s": 2.0, "mu": 0.5, "y": np.array([0.1, -0.2])}
    (got,) = run_decl(decl, env, Rng(0))
    assert got == pytest.approx(log_joint(fd, env), rel=1e-12)
    # 't' is computed inside the decl, not a parameter.
    assert "t" not in decl.params
    assert "s" in decl.params


def test_guarded_factor_ll(gmm, gmm_env):
    # The mu conditional's likelihood factor carries a z[n]==k guard; the
    # generated code must honour it.
    fd, info = gmm
    cond = conditional(fd, "mu", info)
    decl = gen_cond_ll(cond, fd.lets)
    env0 = dict(gmm_env, k=0)
    env1 = dict(gmm_env, k=1)
    (lp0,) = run_decl(decl, env0, Rng(0))
    (lp1,) = run_decl(decl, env1, Rng(0))
    exp0 = sum(factor_logpdf(f, env0) for f in cond.all_factors)
    exp1 = sum(factor_logpdf(f, env1) for f in cond.all_factors)
    assert lp0 == pytest.approx(exp0, rel=1e-12)
    assert lp1 == pytest.approx(exp1, rel=1e-12)
    assert lp0 != lp1
