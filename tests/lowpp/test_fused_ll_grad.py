"""Fused value+gradient codegen: one pass, same numbers as the pair.

``gen_ll_grad`` shares the forward let-bindings between the likelihood
accumulation and the adjoint statements and accumulates into
preallocated workspace buffers.  These tests pin the contract: the fused
declaration returns *bitwise* the same log density and gradients as the
separate ``gen_block_ll``/``gen_grad`` pair, agrees with finite
differences, zeroes its workspaces on entry (so reuse across calls is
safe), and fails exactly when ``gen_grad`` would.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.density.conditionals import blocked_factors
from repro.core.lowpp.ad import gen_grad, gen_ll_grad
from repro.core.lowpp.gen_ll import gen_block_ll
from repro.core.lowpp.interp import run_decl
from repro.errors import CodegenError
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray

from tests.lowpp.conftest import make_setup
from tests.lowpp.test_ad import numeric_grad


def _adjoint_workspaces(targets, env):
    return {f"_adj_{t}": np.zeros_like(np.asarray(env[t], dtype=np.float64))
            for t in targets}


def run_fused(model_name, targets, env):
    fd, info = make_setup(model_name)
    blk = blocked_factors(fd, targets)
    decl, specs = gen_ll_grad(blk, fd.lets)
    assert decl.name == "ll_grad_" + "_".join(targets)
    assert [s.name for s in specs] == [f"_adj_{t}" for t in targets]
    assert [s.like for s in specs] == list(targets)
    vals = run_decl(decl, env, Rng(0), workspaces=_adjoint_workspaces(targets, env))
    return fd, blk, vals[0], vals[1:]


def check_fused_block(model_name, targets, env, rtol=1e-4):
    fd, blk, ll, grads = run_fused(model_name, targets, env)

    # Bitwise agreement with the separate pair the compiler falls back to.
    (ll_sep,) = run_decl(gen_block_ll(blk, fd.lets), env, Rng(0))
    grads_sep = run_decl(gen_grad(blk, fd.lets), env, Rng(0))
    assert float(ll) == float(ll_sep)
    for t, g, gs in zip(targets, grads, grads_sep):
        if isinstance(g, RaggedArray):
            g, gs = g.flat, gs.flat
        np.testing.assert_array_equal(
            np.asarray(g), np.asarray(gs),
            err_msg=f"fused vs separate gradient mismatch for {t}",
        )

    # Agreement with finite differences of the generated log density.
    ll_decl = gen_block_ll(blk, fd.lets)
    for t, g in zip(targets, grads):
        if isinstance(np.asarray(env[t]), np.ndarray) and isinstance(
            env[t], RaggedArray
        ):
            continue  # finite differencing a ragged target is out of scope
        expected = numeric_grad(ll_decl, env, t, Rng(0))
        np.testing.assert_allclose(
            np.asarray(g, dtype=np.float64), expected, rtol=rtol, atol=1e-6,
            err_msg=f"fused gradient vs finite differences mismatch for {t}",
        )


def test_hlr_fused_block(hlr_env):
    # Scalar + vector targets sharing forward lets (sigmoid, dotp).
    check_fused_block("hlr", ("sigma2", "b", "theta"), hlr_env)


def test_hlr_single_target(hlr_env):
    check_fused_block("hlr", ("theta",), hlr_env)


def test_gmm_gathered_indices(gmm_env):
    # Adjoints scatter through the mixture assignment z[n].
    check_fused_block("gmm", ("mu",), gmm_env)


def test_exp_normal_scalar_accumulation():
    rng = np.random.default_rng(3)
    env = {"N": 6, "lam": 1.0, "v": 0.8, "y": rng.normal(size=6)}
    check_fused_block("exp_normal", ("v",), env)


def _lda_env():
    rng = np.random.default_rng(2)
    K, D, V = 3, 2, 5
    n_words = np.array([4, 3])
    return {
        "K": K,
        "D": D,
        "V": V,
        "N": n_words,
        "alpha": np.ones(K),
        "beta": np.ones(V),
        "theta": rng.dirichlet(np.ones(K), size=D),
        "phi": rng.dirichlet(np.ones(V), size=K),
        "z": RaggedArray.from_rows([rng.integers(0, K, size=n) for n in n_words]),
        "w": RaggedArray.from_rows([rng.integers(0, V, size=n) for n in n_words]),
    }


def test_lda_ragged_block():
    # Ragged data/assignment arrays flow through both the likelihood and
    # the adjoint loops; the dense theta gradient must match the pair.
    env = _lda_env()
    fd, blk, ll, grads = run_fused("lda", ("theta",), env)
    grads_sep = run_decl(gen_grad(blk, fd.lets), env, Rng(0))
    (ll_sep,) = run_decl(gen_block_ll(blk, fd.lets), env, Rng(0))
    assert float(ll) == float(ll_sep)
    np.testing.assert_array_equal(np.asarray(grads[0]), np.asarray(grads_sep[0]))


def test_workspaces_zeroed_per_call(hlr_env):
    # The adjoint buffers are zeroed in place on entry: garbage left from
    # a previous call must not leak into the result.
    fd, info = make_setup("hlr")
    blk = blocked_factors(fd, ("theta",))
    decl, _ = gen_ll_grad(blk, fd.lets)
    ws = _adjoint_workspaces(("theta",), hlr_env)
    ll0, g0 = run_decl(decl, hlr_env, Rng(0), workspaces=ws)
    g0 = np.array(g0, copy=True)
    ws["_adj_theta"].fill(123.0)
    ll1, g1 = run_decl(decl, hlr_env, Rng(0), workspaces=ws)
    assert float(ll0) == float(ll1)
    np.testing.assert_array_equal(g0, np.asarray(g1))


def test_return_order_is_ll_then_targets(hlr_env):
    fd, info = make_setup("hlr")
    blk = blocked_factors(fd, ("b", "sigma2"))
    decl, specs = gen_ll_grad(blk, fd.lets)
    assert [str(r) for r in decl.ret] == ["ll", "_adj_b", "_adj_sigma2"]
    assert [s.like for s in specs] == ["b", "sigma2"]


def test_rejects_gradient_through_discrete_index():
    # Same gating as gen_grad: the compiler falls back to the separate
    # pair exactly when the adjoint pass is unsupported.
    from repro.core.density.conditionals import BlockConditional
    from repro.core.density.ir import Factor
    from repro.core.exprs import Index, Var

    f = Factor(
        gens=(),
        guards=(),
        dist="Normal",
        args=(Index(Var("t"), Var("t2")), Var("v")),
        at=Var("y"),
        source="y",
    )
    blk = BlockConditional(targets=("t2",), factors=(f,))
    with pytest.raises(CodegenError, match="index"):
        gen_ll_grad(blk)
