"""Prior-sampling initialisation codegen."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lowmm.size_inference import allocate_state, infer_state_layout
from repro.core.lowpp.gen_init import gen_init
from repro.core.lowpp.interp import run_decl_scope
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray

from tests.lowpp.conftest import make_setup
from tests.lowmm.test_size_inference import gmm_env, lda_env


def init_state(name, env, seed=0):
    fd, info = make_setup(name)
    layout = infer_state_layout(info, env)
    state = allocate_state(layout)
    decl = gen_init(info, fd)
    scope_env = dict(env)
    scope_env.update(state)
    _, scope = run_decl_scope(decl, scope_env, Rng(seed))
    return {name: scope[name] for name in info.param_names()}, info


def test_gmm_init_shapes_and_ranges():
    state, info = init_state("gmm", gmm_env())
    assert state["mu"].shape == (3, 2)
    assert state["z"].shape == (10,)
    assert state["z"].min() >= 0 and state["z"].max() < 3
    assert not np.allclose(state["mu"], 0.0)  # actually drawn


def test_lda_init_ragged_assignments():
    state, info = init_state("lda", lda_env())
    assert isinstance(state["z"], RaggedArray)
    z = state["z"]
    assert z.flat.min() >= 0 and z.flat.max() < 4
    theta = state["theta"]
    np.testing.assert_allclose(theta.sum(axis=1), 1.0, atol=1e-9)


def test_init_respects_declaration_order():
    # z is drawn from Categorical(pi) with the freshly drawn pi.
    fd, info = make_setup("hgmm")
    decl = gen_init(info, fd)
    body_text = str(decl)
    assert body_text.index("pi =") < body_text.index("z[n] = Categorical(pi)")


def test_init_is_deterministic_under_seed():
    a, _ = init_state("gmm", gmm_env(), seed=7)
    b, _ = init_state("gmm", gmm_env(), seed=7)
    np.testing.assert_array_equal(a["mu"], b["mu"])
    np.testing.assert_array_equal(a["z"], b["z"])


def test_init_scalar_param():
    state, _ = init_state(
        "normal_normal", {"N": 3, "mu_0": 5.0, "v_0": 0.0001, "v": 1.0, "y": np.zeros(3)}
    )
    assert state["mu"] == pytest.approx(5.0, abs=0.1)
