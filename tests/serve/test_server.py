"""The asyncio front end, exercised over real sockets."""

from __future__ import annotations

import copy
import http.client
import json
import threading

import pytest

from repro.serve.server import ReproServer


@pytest.fixture
def server(tmp_path):
    srv = ReproServer(
        port=0,
        checkpoint_dir=str(tmp_path / "ckpt"),
        artifact_dir=str(tmp_path / "art"),
    )
    ready = threading.Event()
    thread = threading.Thread(
        target=srv.run, kwargs={"announce": lambda s: ready.set()},
        daemon=True,
    )
    thread.start()
    assert ready.wait(15), "server did not come up"
    yield srv
    _call(srv.port, "POST", "/v1/shutdown")
    thread.join(15)


def _call(port, method, path, body=None, raw=False):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(
            method, path, body=json.dumps(body) if body is not None else None
        )
        resp = conn.getresponse()
        data = resp.read()
    finally:
        conn.close()
    return (resp.status, data) if raw else (resp.status, json.loads(data))


def test_health_and_metrics(server):
    status, body = _call(server.port, "GET", "/v1/health")
    assert status == 200 and body["status"] == "ok"
    status, body = _call(server.port, "GET", "/v1/metrics")
    assert status == 200 and body["requests"] == 0


def test_infer_roundtrip_and_artifacts(server, nn_payload):
    payload = copy.deepcopy(nn_payload)
    payload["request_id"] = "over-http"
    status, body = _call(server.port, "POST", "/v1/infer", payload)
    assert status == 200
    assert body["complete"] is True
    assert "mu" in body["summary"]

    status, second = _call(server.port, "POST", "/v1/infer", payload)
    assert status == 200
    assert second["cache"]["compile_cache_hit"] is True

    status, tracked = _call(server.port, "GET", "/v1/requests/over-http")
    assert status == 200 and tracked["state"] == "done"

    status, html = _call(
        server.port, "GET", "/v1/report/over-http", raw=True
    )
    assert status == 200
    assert html.lstrip().startswith(b"<!DOCTYPE html>")


def test_error_mapping(server):
    status, body = _call(server.port, "POST", "/v1/infer", {"data": {}})
    assert status == 400 and "model_source" in body["error"]
    status, _ = _call(server.port, "GET", "/v1/infer")
    assert status == 405
    status, _ = _call(server.port, "GET", "/nope")
    assert status == 404
    status, _ = _call(server.port, "GET", "/v1/requests/ghost")
    assert status == 404
    status, _ = _call(server.port, "GET", "/v1/report/ghost")
    assert status == 404


def test_compile_errors_return_400(server, nn_payload):
    payload = copy.deepcopy(nn_payload)
    payload["model_source"] = "this is not a model"
    status, body = _call(server.port, "POST", "/v1/infer", payload)
    assert status == 400 and body["status"] == "error"
    # The service stays healthy afterwards.
    status, body = _call(server.port, "GET", "/v1/health")
    assert status == 200 and body["status"] == "ok"
