"""The request engine: budgets, checkpoints, cache reuse, verdicts."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.serve.protocol import ProtocolError, parse_infer_request
from repro.serve.session import InferenceService, summarize_chains


@pytest.fixture
def service(tmp_path):
    return InferenceService(
        checkpoint_dir=str(tmp_path / "ckpt"),
        artifact_dir=str(tmp_path / "art"),
    )


def _handle(service, payload, **kwargs):
    return service.handle(parse_infer_request(payload), **kwargs)


def test_complete_run(service, nn_payload):
    resp = _handle(service, nn_payload)
    assert resp["status"] == "ok"
    assert resp["complete"] is True
    assert resp["stopped_early"] is False
    assert resp["draws"]["kept"] == [24, 24]
    assert resp["verdict"] in ("converged", "not_converged")
    assert "mu" in resp["summary"]
    comp = resp["summary"]["mu"]["components"]["mu"]
    assert "rhat" in comp and np.isfinite(comp["rhat"])


def test_second_identical_request_hits_compile_cache(service, nn_payload):
    first = _handle(service, nn_payload)
    second = _handle(service, nn_payload)
    # First call may or may not hit (other tests share the process-wide
    # cache); the second must.
    assert second["cache"]["compile_cache_hit"] is True
    assert second["cache"]["spec_key"] == first["cache"]["spec_key"]
    ledger = second["cache"]["ledger"]
    assert ledger and ledger[0]["decision"] == "compile.cache"
    assert ledger[0]["choice"] == "hit"


def test_draw_budget_checkpoints_and_resumes_bitwise(service, nn_payload):
    direct = copy.deepcopy(nn_payload)
    direct["return_draws"] = True
    reference = _handle(service, direct)

    capped = copy.deepcopy(nn_payload)
    capped["request_id"] = "budgeted"
    capped["budget"] = {"max_draws": 10}
    partial = _handle(service, capped)
    assert partial["stopped_early"] is True
    assert partial["stop_reason"] == "draw_budget"
    assert partial["checkpointed"] is True
    assert min(partial["draws"]["kept"]) < 24

    capped["budget"] = {}
    capped["return_draws"] = True
    finished = _handle(service, capped)
    assert finished["complete"] is True
    assert finished["resumed"] is True
    for chain_ref, chain_res in zip(
        reference["draws_data"], finished["draws_data"]
    ):
        for name in chain_ref:
            np.testing.assert_array_equal(
                np.asarray(chain_res[name]), np.asarray(chain_ref[name])
            )
    # Completion consumes the checkpoint.
    assert service.checkpoints.load("budgeted") is None


def test_deadline_stops_early(service, nn_payload):
    payload = copy.deepcopy(nn_payload)
    payload["request_id"] = "deadline"
    payload["query"]["samples"] = 5000
    payload["query"]["chunk_size"] = 50
    payload["budget"] = {"deadline_s": 0.001}
    resp = _handle(service, payload)
    assert resp["stop_reason"] == "deadline"
    assert resp["stopped_early"] is True
    assert resp["checkpointed"] is True
    assert min(resp["draws"]["kept"]) < 5000


def test_target_rhat_converges_early(service, nn_payload):
    payload = copy.deepcopy(nn_payload)
    payload["query"]["samples"] = 4000
    payload["query"]["chunk_size"] = 25
    payload["budget"] = {"target_rhat": 1.2}
    resp = _handle(service, payload)
    assert resp["stop_reason"] == "converged"
    assert resp["verdict"] == "converged"
    assert resp["monitor"]["worst_rhat"] <= 1.2
    assert min(resp["draws"]["kept"]) < 4000


def test_checkpoint_mismatch_is_rejected(service, nn_payload):
    payload = copy.deepcopy(nn_payload)
    payload["request_id"] = "strict"
    payload["budget"] = {"max_draws": 8}
    _handle(service, payload)
    payload["query"]["seed"] = 99
    payload["budget"] = {}
    with pytest.raises(ProtocolError, match="seed"):
        _handle(service, payload)
    # Opting out of resume starts over instead.
    payload["resume"] = False
    resp = _handle(service, payload)
    assert resp["resumed"] is False


def test_progress_events_carry_chunk_info(service, nn_payload):
    events = []
    resp = _handle(service, nn_payload, progress_cb=events.append)
    assert resp["complete"] is True
    assert len(events) >= 2
    chunk_infos = [e["info"] for e in events if "info" in e]
    assert chunk_infos, "chunks should carry per-update stat digests"
    entry = next(iter(chunk_infos[0].values()))
    assert "accept_rate" in entry and "n_proposed" in entry


def test_report_artifact_written(service, nn_payload, tmp_path):
    payload = copy.deepcopy(nn_payload)
    payload["request_id"] = "reported"
    resp = _handle(service, payload)
    report = resp["report"]
    html = open(report["html"]).read()
    assert html.lstrip().startswith("<!DOCTYPE html>")
    assert open(report["json"]).read().startswith("{")


def test_metrics_aggregate(service, nn_payload):
    _handle(service, nn_payload)
    snap = service.metrics.snapshot()
    assert snap["requests"] == 1
    assert snap["total_draws"] == 48
    assert snap["sweeps_per_s"] > 0
    assert snap["recent"][0]["stop_reason"] is None


def test_summarize_handles_multidim_and_ragged():
    chains = [
        {
            "theta": np.arange(40.0).reshape(10, 2, 2),
            "z": [[1, 2], [3]],
        },
        {
            "theta": np.arange(40.0).reshape(10, 2, 2) + 0.5,
            "z": [[1], [2, 3]],
        },
    ]
    out = summarize_chains(chains)
    assert out["z"] == {"draws": 2, "ragged": True}
    comps = out["theta"]["components"]
    assert set(comps) == {"theta[0]", "theta[1]", "theta[2]", "theta[3]"}
    assert out["theta"]["worst_rhat"] >= 1.0
