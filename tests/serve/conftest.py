"""Shared fixtures for the inference-service tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.chains import shutdown_worker_pools
from repro.core.compiler import compile_model
from repro.eval import models

HYPERS = {"N": 40, "mu_0": 0.0, "v_0": 25.0, "v": 1.0}


def make_y() -> np.ndarray:
    rng = np.random.default_rng(0)
    return rng.normal(2.0, 1.0, size=40)


@pytest.fixture(scope="module")
def nn_sampler():
    return compile_model(models.NORMAL_NORMAL, HYPERS, {"y": make_y()})


@pytest.fixture
def nn_payload():
    """A service request body for the normal-normal model."""
    return {
        "model_source": models.NORMAL_NORMAL,
        "data": {**HYPERS, "y": make_y().tolist()},
        "query": {"samples": 24, "chains": 2, "seed": 7, "chunk_size": 6},
    }


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()
