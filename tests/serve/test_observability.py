"""Observability end to end: the two /v1/metrics views, the event log's
cross-process correlation ids, and the flight-recorder lifecycle."""

from __future__ import annotations

import copy
import http.client
import json
import os
import re
import threading

import pytest

from repro.serve.checkpoint import _safe_name
from repro.serve.protocol import parse_infer_request
from repro.serve.server import ReproServer
from repro.serve.session import InferenceService
from repro.telemetry.obslog import configure_event_log, get_event_log


@pytest.fixture(scope="module")
def obs_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs")
    srv = ReproServer(
        port=0,
        checkpoint_dir=str(root / "ckpt"),
        artifact_dir=str(root / "art"),
        log_path=str(root / "events.jsonl"),
        log_level="info",
    )
    ready = threading.Event()
    thread = threading.Thread(
        target=srv.run, kwargs={"announce": lambda s: ready.set()},
        daemon=True,
    )
    thread.start()
    assert ready.wait(15), "server did not come up"
    yield srv
    _call(srv.port, "POST", "/v1/shutdown")
    thread.join(15)
    get_event_log().close()


def _call(port, method, path, body=None, raw=False):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=120)
    try:
        conn.request(
            method, path, body=json.dumps(body) if body is not None else None
        )
        resp = conn.getresponse()
        data = resp.read()
    finally:
        conn.close()
    if raw:
        return resp.status, resp.getheader("Content-Type"), data
    return resp.status, json.loads(data)


def _infer(srv, nn_payload, request_id, **overrides):
    payload = copy.deepcopy(nn_payload)
    payload["request_id"] = request_id
    for key, value in overrides.items():
        if key in ("budget",):
            payload[key] = value
        else:
            payload["query"][key] = value
    return _call(srv.port, "POST", "/v1/infer", payload)


# -- JSON snapshot -----------------------------------------------------------


def test_metrics_json_fields_present_and_typed(obs_server, nn_payload):
    status, _ = _infer(obs_server, nn_payload, "json-view")
    assert status == 200
    status, snap = _call(obs_server.port, "GET", "/v1/metrics")
    assert status == 200
    for field in (
        "requests", "errors", "checkpoints_saved", "resumed_requests",
        "flight_dumps", "total_sweeps", "total_draws",
    ):
        assert isinstance(snap[field], int), field
    for field in ("mean_queue_wait_s", "total_sampling_s", "sweeps_per_s"):
        assert isinstance(snap[field], float), field
    assert snap["requests"] >= 1
    assert isinstance(snap["recent"], list)
    assert isinstance(snap["recent_errors"], list)
    hists = snap["histograms"]
    assert isinstance(hists, dict) and len(hists) >= 4
    for name, d in hists.items():
        assert name.startswith("repro_"), name
        assert isinstance(d["count"], int)
        assert isinstance(d["sum"], (int, float))
        assert "+Inf" in d["buckets"]
        counts = list(d["buckets"].values())
        assert all(isinstance(n, int) for n in counts)
        assert counts == sorted(counts), f"{name} buckets not monotone"
    assert hists["repro_request_latency_seconds"]["count"] >= 1


# -- Prometheus exposition ---------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})? (?P<value>[^ ]+)$"
)


def _parse_prometheus(text):
    """Hand-rolled exposition parser: returns (types, samples) where
    ``samples`` maps (name, labels-string) -> float."""
    types: dict[str, str] = {}
    samples: dict[tuple[str, str], float] = {}
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    for line in lines[:-1]:
        assert line, "no blank lines inside the exposition"
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
            continue
        m = _SAMPLE_RE.match(line)
        assert m, f"unparseable sample line: {line!r}"
        samples[(m.group("name"), m.group("labels") or "")] = float(
            m.group("value")
        )
    return types, samples


def test_prometheus_exposition_parses(obs_server, nn_payload):
    status, _ = _infer(obs_server, nn_payload, "prom-view")
    assert status == 200
    status, ctype, body = _call(
        obs_server.port, "GET", "/v1/metrics?format=prometheus", raw=True
    )
    assert status == 200
    assert ctype.startswith("application/openmetrics-text")
    types, samples = _parse_prometheus(body.decode())

    assert samples[("repro_requests_total", "")] >= 1
    assert types["repro_requests_total"] == "counter"
    assert types["repro_in_flight_requests"] == "gauge"

    hist_families = [n for n, kind in types.items() if kind == "histogram"]
    assert len(hist_families) >= 4
    for family in hist_families:
        buckets = [
            (labels, value)
            for (name, labels), value in samples.items()
            if name == family + "_bucket"
        ]
        assert buckets, f"{family} has no _bucket series"
        # Cumulative counts are monotone in declaration order and the
        # +Inf bucket equals _count.
        counts = [v for _, v in buckets]
        assert counts == sorted(counts), f"{family} buckets not monotone"
        inf = dict(buckets)['le="+Inf"']
        assert inf == samples[(family + "_count", "")]


def test_unknown_metrics_format_is_rejected(obs_server):
    status, body = _call(obs_server.port, "GET", "/v1/metrics?format=xml")
    assert status == 400 and "format" in body["error"]


# -- flight recorder ---------------------------------------------------------


def test_deadline_kill_dumps_flight_artifact(obs_server, nn_payload):
    status, resp = _infer(
        obs_server, nn_payload, "flight-dl",
        samples=5000, chunk_size=50, budget={"deadline_s": 0.001},
    )
    assert status == 200 and resp["stop_reason"] == "deadline"
    path = os.path.join(
        obs_server.service.artifact_dir,
        _safe_name("flight-dl") + ".flight.json",
    )
    assert os.path.exists(path), "deadline kill must dump the recorder"
    doc = json.load(open(path))
    assert doc["reason"] == "deadline"
    assert doc["request_id"] == "flight-dl"
    assert doc["entries"], "the ring should hold the last sweep digests"
    assert {e["rid"] for e in doc["events"]} == {"flight-dl"}

    status, body = _call(
        obs_server.port, "GET", "/v1/requests/flight-dl/flightrecorder"
    )
    assert status == 200 and body["reason"] == "deadline"


def test_failed_request_dumps_flight_with_error(obs_server, nn_payload):
    payload = copy.deepcopy(nn_payload)
    payload["request_id"] = "flight-err"
    payload["model_source"] = "this is not a model"
    status, body = _call(obs_server.port, "POST", "/v1/infer", payload)
    assert status == 400
    path = os.path.join(
        obs_server.service.artifact_dir,
        _safe_name("flight-err") + ".flight.json",
    )
    doc = json.load(open(path))
    assert doc["reason"] == "error"
    assert doc["error"]["type"]
    assert "Traceback" in doc["error"]["traceback"]
    # The error also lands in the metrics ring.
    status, snap = _call(obs_server.port, "GET", "/v1/metrics")
    assert snap["errors"] >= 1
    assert any(
        e["request_id"] == "flight-err" for e in snap["recent_errors"]
    )
    assert snap["flight_dumps"] >= 1


def test_live_request_serves_flight_snapshot(obs_server, nn_payload):
    status, _ = _infer(obs_server, nn_payload, "flight-live")
    assert status == 200
    # No dump happened (clean completion), so the route answers from the
    # live recorder ring.
    status, body = _call(
        obs_server.port, "GET", "/v1/requests/flight-live/flightrecorder"
    )
    assert status == 200
    assert "reason" not in body
    assert body["request_id"] == "flight-live"
    assert body["entries"]
    assert body["divergence"]["exceeded"] is False
    status, _ = _call(
        obs_server.port, "GET", "/v1/requests/ghost/flightrecorder"
    )
    assert status == 404


def test_event_log_records_request_lifecycle(obs_server, nn_payload):
    status, _ = _infer(obs_server, nn_payload, "lifecycle")
    assert status == 200
    events = get_event_log().recent(rid="lifecycle")
    names = [e.event for e in events]
    assert "request.accepted" in names
    assert "request.compiled" in names
    assert "request.completed" in names


# -- cross-process correlation ----------------------------------------------
# NOTE: this test reconfigures the process-wide event log, so it must
# run after every test that relies on the module server's sink.


def test_worker_events_carry_parent_rid_across_processes(
    tmp_path, nn_payload
):
    log_path = tmp_path / "events.jsonl"
    configure_event_log(path=str(log_path), level="info")
    try:
        service = InferenceService(artifact_dir=str(tmp_path / "art"))
        payload = copy.deepcopy(nn_payload)
        payload["request_id"] = "xproc"
        payload["query"]["executor"] = "processes"
        resp = service.handle(parse_infer_request(payload), rid="xproc")
        assert resp["status"] == "ok"
    finally:
        get_event_log().close()
    recs = [json.loads(line) for line in open(log_path)]
    parent = os.getpid()
    worker = [r for r in recs if r["pid"] != parent and r["rid"] == "xproc"]
    assert worker, "worker-origin events must ship to the parent's log"
    assert {r["event"] for r in worker} >= {"chunk.emitted", "chain.finished"}
    assert len({r["pid"] for r in worker}) >= 1
    local = [r for r in recs if r["pid"] == parent and r["rid"] == "xproc"]
    assert {r["event"] for r in local} >= {
        "request.compiled", "request.completed",
    }
    # One grep for the rid reconstructs the request across processes.
    pids = {r["pid"] for r in recs if r["rid"] == "xproc"}
    assert len(pids) >= 2
