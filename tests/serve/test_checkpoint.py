"""Checkpoint round-trips and bitwise-identical resume.

The load-bearing guarantee: a run interrupted at any chunk boundary,
checkpointed through a pickle round-trip, and resumed by a second call
produces draws bitwise identical to one uninterrupted run — on every
executor.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.chains import stream_chains
from repro.errors import ReproError
from repro.serve.checkpoint import Checkpoint, CheckpointStore

N_CHAINS = 2
SAMPLES = 24
PARTIAL = 10
RUN = dict(
    n_chains=N_CHAINS, burn_in=4, thin=2, seed=11, chunk_size=5,
)


def _drain(stream):
    for _ in stream:
        pass
    return stream.results


def _full_run(nn_sampler, executor):
    return _drain(
        stream_chains(
            nn_sampler, executor=executor, num_samples=SAMPLES, **RUN
        )
    )


def _partial_run(nn_sampler, executor):
    """The first leg: stop deterministically after PARTIAL kept draws
    (what the service's draw budget produces, minus the stop-flag race
    of ``request_stop`` on fast models)."""
    return _drain(
        stream_chains(
            nn_sampler, executor=executor, num_samples=PARTIAL, **RUN
        )
    )


@pytest.mark.parametrize("executor", ["sequential", "threads", "processes"])
def test_resume_is_bitwise_identical(nn_sampler, executor, tmp_path):
    reference = _full_run(nn_sampler, executor)
    partial = _partial_run(nn_sampler, executor)
    assert min(r.n_kept for r in partial) < SAMPLES

    store = CheckpointStore(str(tmp_path))
    store.save(
        Checkpoint.from_results(
            "job", "speckey", partial,
            seed=RUN["seed"], num_samples=SAMPLES,
            burn_in=RUN["burn_in"], thin=RUN["thin"],
        )
    )
    loaded = store.load("job")
    assert loaded is not None and not loaded.complete

    resumed = _drain(
        stream_chains(
            nn_sampler, executor=executor, num_samples=SAMPLES,
            resume=loaded.resume_points(), **RUN,
        )
    )
    for ref, res in zip(reference, resumed):
        assert res.n_kept == SAMPLES
        for name in ref.samples:
            np.testing.assert_array_equal(
                np.asarray(res.samples[name]), np.asarray(ref.samples[name])
            )


def test_checkpoint_requires_resume_fields(nn_sampler):
    results = _full_run(nn_sampler, "sequential")
    results[0].final_state = None
    with pytest.raises(ReproError):
        Checkpoint.from_results(
            "job", "k", results, seed=0, num_samples=SAMPLES
        )


def test_complete_flag(nn_sampler):
    results = _full_run(nn_sampler, "sequential")
    ckpt = Checkpoint.from_results(
        "job", "k", results, seed=11, num_samples=SAMPLES
    )
    assert ckpt.complete
    assert ckpt.min_kept == SAMPLES
    assert len(ckpt.chain_samples()) == N_CHAINS


class TestStore:
    def test_missing_returns_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path)).load("ghost") is None

    def test_delete_is_idempotent(self, tmp_path):
        CheckpointStore(str(tmp_path)).delete("ghost")

    def test_odd_request_ids_stay_on_filesystem(self, tmp_path, nn_sampler):
        store = CheckpointStore(str(tmp_path))
        results = _full_run(nn_sampler, "sequential")
        rid = "../evil /job\x00name" + "x" * 300
        path = store.save(
            Checkpoint.from_results(
                rid, "k", results, seed=11, num_samples=SAMPLES
            )
        )
        assert os.path.dirname(path) == str(tmp_path)
        assert store.load(rid).request_id == rid
        assert store.list_ids() == [rid]
        store.delete(rid)
        assert store.list_ids() == []

    def test_distinct_ids_do_not_collide(self, tmp_path):
        store = CheckpointStore(str(tmp_path))
        a = "x" * 100 + "a"
        b = "x" * 100 + "b"
        assert store.path(a) != store.path(b)
