"""Protocol parsing and the hand-rolled HTTP layer."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.protocol import (
    Budget,
    ProtocolError,
    error_response,
    http_response,
    json_response,
    parse_infer_request,
    read_http_request,
)


def _minimal(**over):
    payload = {"model_source": "x ~ Normal(0, 1)", "data": {}}
    payload.update(over)
    return payload


class TestParseInferRequest:
    def test_defaults(self):
        req = parse_infer_request(_minimal())
        assert req.samples == 500
        assert req.chains == 1
        assert req.executor == "sequential"
        assert req.budget == Budget()
        assert req.resume is True
        assert req.return_draws is False

    def test_full_request(self):
        req = parse_infer_request(
            _minimal(
                request_id="job-1",
                query={
                    "samples": 10,
                    "burn_in": 2,
                    "thin": 2,
                    "chains": 3,
                    "seed": 9,
                    "collect": ["mu"],
                    "executor": "threads",
                    "chunk_size": 4,
                },
                budget={
                    "deadline_s": 1.5,
                    "max_draws": 5,
                    "target_rhat": 1.01,
                },
                return_draws=True,
            )
        )
        assert req.request_id == "job-1"
        assert req.samples == 10
        assert req.collect == ("mu",)
        assert req.executor == "threads"
        assert req.budget == Budget(1.5, 5, 1.01)
        assert req.return_draws is True

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"model_source": "", "data": {}},
            {"model_source": 3, "data": {}},
            _minimal(data=[1, 2]),
            _minimal(request_id=""),
            _minimal(query={"samples": 0}),
            _minimal(query={"samples": "many"}),
            _minimal(query={"thin": 0}),
            _minimal(query={"executor": "gpu"}),
            _minimal(query={"collect": "mu"}),
            _minimal(budget={"deadline_s": -1}),
            _minimal(budget={"max_draws": 0}),
            _minimal(budget={"target_rhat": 0.9}),
            _minimal(resume="yes"),
        ],
    )
    def test_rejects_bad_requests(self, payload):
        with pytest.raises(ProtocolError):
            parse_infer_request(payload)

    def test_booleans_are_not_integers(self):
        with pytest.raises(ProtocolError):
            parse_infer_request(_minimal(query={"samples": True}))


class TestHttp:
    def _parse(self, raw: bytes):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_http_request(reader)

        return asyncio.run(go())

    def test_request_roundtrip(self):
        body = json.dumps({"a": 1}).encode()
        raw = (
            b"POST /v1/infer HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        req = self._parse(raw)
        assert req.method == "POST"
        assert req.path == "/v1/infer"
        assert req.headers["content-type"] == "application/json"
        assert json.loads(req.body) == {"a": 1}

    def test_empty_connection_returns_none(self):
        assert self._parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            self._parse(b"nonsense\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(ProtocolError):
            self._parse(b"POST / HTTP/1.1\r\nContent-Length: soup\r\n\r\n")

    def test_response_builders(self):
        raw = json_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Connection: close" in head
        assert json.loads(body) == {"ok": True}
        assert b"404" in error_response(404, "nope")
        html = http_response(200, b"<html/>", content_type="text/html")
        assert b"Content-Type: text/html" in html

    def test_numpy_serialization(self):
        import numpy as np

        raw = json_response(
            200, {"arr": np.arange(3), "scalar": np.float64(1.5)}
        )
        body = raw.partition(b"\r\n\r\n")[2]
        assert json.loads(body) == {"arr": [0, 1, 2], "scalar": 1.5}
