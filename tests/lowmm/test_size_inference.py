"""Size inference: state layouts, workspace allocation, memory bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exprs import Call, Gen, Index, IntLit, Var
from repro.core.lowmm.size_inference import (
    allocate,
    allocate_state,
    build_plan,
    infer_state_layout,
    resolve_workspace,
)
from repro.core.workspace import WorkspaceSpec
from repro.errors import SizeInferenceError
from repro.runtime.vectors import RaggedArray

from tests.lowpp.conftest import make_setup


def gmm_env():
    return {
        "K": 3,
        "N": 10,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2),
        "pis": np.full(3, 1 / 3),
        "Sigma": np.eye(2),
        "x": np.zeros((10, 2)),
    }


def lda_env():
    return {
        "K": 4,
        "D": 3,
        "V": 7,
        "N": np.array([5, 2, 6]),
        "alpha": np.ones(4),
        "beta": np.ones(7),
        "w": RaggedArray.full([5, 2, 6], 0, dtype=np.int64),
    }


def test_gmm_state_layout():
    fd, info = make_setup("gmm")
    layout = infer_state_layout(info, gmm_env())
    assert layout["mu"].lead == (3,)
    assert layout["mu"].event == (2,)
    assert layout["mu"].dtype == "f8"
    assert layout["z"].lead == (10,)
    assert layout["z"].event == ()
    assert layout["z"].dtype == "i8"


def test_hgmm_state_layout_includes_matrices():
    fd, info = make_setup("hgmm")
    env = {
        "K": 3,
        "N": 8,
        "alpha": np.ones(3),
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2),
        "nu": 4.0,
        "Psi": np.eye(2),
        "y": np.zeros((8, 2)),
    }
    layout = infer_state_layout(info, env)
    assert layout["Sigma"].lead == (3,)
    assert layout["Sigma"].event == (2, 2)
    assert layout["pi"].lead == ()
    assert layout["pi"].event == (3,)


def test_lda_state_layout_is_ragged():
    fd, info = make_setup("lda")
    layout = infer_state_layout(info, lda_env())
    z = layout["z"]
    assert z.is_ragged
    np.testing.assert_array_equal(z.row_lengths, [5, 2, 6])
    assert z.dtype == "i8"
    assert layout["theta"].lead == (3,)
    assert layout["theta"].event == (4,)


def test_allocate_state_buffers():
    fd, info = make_setup("lda")
    layout = infer_state_layout(info, lda_env())
    state = allocate_state(layout)
    assert isinstance(state["z"], RaggedArray)
    assert state["z"].n_elems == 13
    assert state["theta"].shape == (3, 4)
    assert state["phi"].shape == (4, 7)


def test_scalar_state_is_scalar():
    fd, info = make_setup("normal_normal")
    layout = infer_state_layout(info, {"N": 4, "mu_0": 0.0, "v_0": 1.0, "v": 1.0})
    assert layout["mu"].lead == ()
    assert layout["mu"].event == ()
    state = allocate_state(layout)
    assert np.ndim(state["mu"]) == 0


def test_workspace_dense():
    spec = WorkspaceSpec(
        "ws", gens=(Gen("k", IntLit(0), Var("K")),), trailing=(Var("D"),)
    )
    bufs = allocate([spec], {"K": 3, "D": 2})
    assert bufs["ws"].shape == (3, 2)
    assert bufs["ws"].dtype == np.float64


def test_workspace_ragged():
    spec = WorkspaceSpec(
        "ws_logits",
        gens=(
            Gen("d", IntLit(0), Var("D")),
            Gen("j", IntLit(0), Index(Var("N"), Var("d"))),
        ),
        trailing=(Var("K"),),
    )
    bufs = allocate([spec], {"D": 3, "N": np.array([5, 2, 6]), "K": 4})
    ws = bufs["ws_logits"]
    assert isinstance(ws, RaggedArray)
    assert ws.row(0).shape == (5, 4)
    assert ws.row(2).shape == (6, 4)


def test_workspace_trailing_len_expression():
    spec = WorkspaceSpec("ws", gens=(), trailing=(Call("len", (Var("alpha"),)),))
    bufs = allocate([spec], {"alpha": np.ones(5)})
    assert bufs["ws"].shape == (5,)


def test_ragged_outer_dimension_rejected():
    spec = WorkspaceSpec(
        "bad",
        gens=(
            Gen("d", IntLit(0), Var("D")),
            Gen("j", IntLit(0), Index(Var("N"), Var("d"))),
            Gen("l", IntLit(0), Var("M")),
        ),
    )
    with pytest.raises(SizeInferenceError, match="innermost"):
        resolve_workspace(spec, {"D": 2, "N": np.array([1, 2]), "M": 2})


def test_plan_total_bytes():
    fd, info = make_setup("gmm")
    spec = WorkspaceSpec("ws", gens=(Gen("k", IntLit(0), Var("K")),))
    plan = build_plan(info, gmm_env(), (spec,))
    # mu: 3x2 f8 = 48; z: 10 i8 = 80; ws: 3 f8 = 24.
    assert plan.state["mu"].nbytes() == 48
    assert plan.state["z"].nbytes() == 80
    assert plan.workspaces["ws"].nbytes() == 24
    assert plan.total_bytes() == 48 + 80 + 24
    assert "allocation plan" in plan.describe()


def test_plan_deduplicates_workspaces():
    fd, info = make_setup("gmm")
    spec = WorkspaceSpec("ws", gens=(Gen("k", IntLit(0), Var("K")),))
    plan = build_plan(info, gmm_env(), (spec, spec))
    assert list(plan.workspaces) == ["ws"]


def test_state_layout_uses_earlier_params_for_shapes():
    # A model whose second parameter's event shape depends on the first
    # parameter's buffer (via len), exercising incremental allocation.
    from repro.core.frontend.parser import parse_model
    from repro.core.frontend.symbols import analyze_model
    from repro.core.types import INT, VEC_REAL

    m = parse_model(
        """
        (N, alpha) => {
          param pi ~ Dirichlet(alpha) ;
          param q ~ Dirichlet(pi) ;
          data y[n] ~ Categorical(q) for n <- 0 until N ;
        }
        """
    )
    info = analyze_model(m, {"N": INT, "alpha": VEC_REAL})
    layout = infer_state_layout(info, {"N": 2, "alpha": np.ones(4), "y": np.zeros(2, dtype=np.int64)})
    assert layout["q"].event == (4,)
