"""Compiled fused-gradient / flat-state parity on a real model.

The acceptance contract for the fused codegen path: with the same seed,
HMC and NUTS trajectories are *bitwise identical* with fusion on vs.
off (both run the packed flat-state integrator; fusion only changes how
many compiled calls produce the same numbers), and the legacy
dict-of-arrays path agrees to floating-point summation order.  Sweep
telemetry must not change shape or meaning under either option.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.eval import models
from repro.eval.datasets import german_credit_like
from repro.eval.experiments.hlr import _hlr_inputs

HMC_SCHED = "HMC[steps=5, step_size=0.05] (sigma2, b, theta)"
NUTS_SCHED = "NUTS[step_size=0.05] (sigma2, b, theta)"


@pytest.fixture(scope="module")
def hlr_inputs():
    data = german_credit_like(n=40, d=3)
    return _hlr_inputs(data)


def _compile(hlr_inputs, schedule, **opts):
    hypers, observed = hlr_inputs
    options = CompileOptions(**opts) if opts else None
    return compile_model(
        models.HLR, hypers, observed, schedule=schedule, options=options
    )


@pytest.mark.parametrize("schedule", [HMC_SCHED, NUTS_SCHED])
def test_fused_draws_bitwise_identical(hlr_inputs, schedule):
    s_fused = _compile(hlr_inputs, schedule)
    s_plain = _compile(hlr_inputs, schedule, fuse_gradient=False)
    r_fused = s_fused.sample(num_samples=12, seed=7)
    r_plain = s_plain.sample(num_samples=12, seed=7)
    for k in ("sigma2", "b", "theta"):
        np.testing.assert_array_equal(
            r_fused.array(k), r_plain.array(k),
            err_msg=f"fused vs unfused draws differ for {k} ({schedule})",
        )


@pytest.mark.parametrize("schedule", [HMC_SCHED, NUTS_SCHED])
def test_flat_state_matches_tree_path(hlr_inputs, schedule):
    s_flat = _compile(hlr_inputs, schedule, fuse_gradient=False)
    s_tree = _compile(hlr_inputs, schedule, fuse_gradient=False, flat_state=False)
    r_flat = s_flat.sample(num_samples=12, seed=7)
    r_tree = s_tree.sample(num_samples=12, seed=7)
    for k in ("sigma2", "b", "theta"):
        np.testing.assert_allclose(
            r_flat.array(k), r_tree.array(k), rtol=1e-7, atol=1e-9,
            err_msg=f"flat vs tree draws differ for {k} ({schedule})",
        )


def test_fused_decl_in_generated_source(hlr_inputs):
    s_fused = _compile(hlr_inputs, HMC_SCHED)
    s_plain = _compile(hlr_inputs, HMC_SCHED, fuse_gradient=False)
    assert "ll_grad_sigma2_b_theta" in s_fused.source
    assert "ll_grad_" not in s_plain.source


@pytest.mark.parametrize("schedule", [HMC_SCHED, NUTS_SCHED])
def test_telemetry_unchanged_under_fusion(hlr_inputs, schedule):
    s_fused = _compile(hlr_inputs, schedule)
    s_tree = _compile(hlr_inputs, schedule, fuse_gradient=False, flat_state=False)
    r_fused = s_fused.sample(num_samples=12, seed=7, collect_stats=True)
    r_tree = s_tree.sample(num_samples=12, seed=7, collect_stats=True)
    st_fused = r_fused.stats.to_dict()
    st_tree = r_tree.stats.to_dict()
    assert st_fused.keys() == st_tree.keys()
    for k in st_fused:
        np.testing.assert_allclose(
            st_fused[k], st_tree[k], rtol=1e-7, atol=1e-9, equal_nan=True,
            err_msg=f"stat {k} changed under the fused path",
        )


def test_mixed_schedule_with_discrete_block_still_runs(hlr_inputs):
    # GMM: HMC on mu rides the fused path; the discrete z block stays on
    # its own update.  Smoke-checks the decl-level fallback wiring.
    rng = np.random.default_rng(0)
    K, N, D = 2, 12, 2
    hypers = {
        "K": K, "N": N,
        "mu_0": np.zeros(D), "Sigma_0": np.eye(D) * 4.0,
        "pis": np.full(K, 0.5), "Sigma": np.eye(D) * 0.5,
    }
    observed = {"x": rng.normal(size=(N, D))}
    sched = "HMC[steps=4, step_size=0.02] mu (*) Gibbs z"
    s_fused = compile_model(models.GMM, hypers, observed, schedule=sched)
    s_plain = compile_model(
        models.GMM, hypers, observed, schedule=sched,
        options=CompileOptions(fuse_gradient=False),
    )
    r1 = s_fused.sample(num_samples=8, seed=3)
    r2 = s_plain.sample(num_samples=8, seed=3)
    np.testing.assert_array_equal(r1.array("mu"), r2.array("mu"))
    np.testing.assert_array_equal(r1.array("z"), r2.array("z"))
