"""Sigmoid belief network + user-supplied MH proposals.

The SBN's hidden units appear as a whole vector inside the sigmoid
link, so neither conjugacy nor enumeration applies; the paper's
user-supplied-proposal MH update (Section 4.4) is the right tool.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro as AugurV2Lib
from repro.core.compiler import compile_model
from repro.errors import ReproError, ScheduleError
from repro.eval import models


def bit_flip(value, rng):
    """Symmetric single-bit proposal for a binary scalar element."""
    return 1.0 - np.round(value), 0.0


def sbn_inputs(seed=0, h=4, v=12):
    rng = np.random.default_rng(seed)
    w = rng.normal(scale=2.0, size=(v, h))
    b = rng.normal(scale=0.3, size=v)
    h_true = rng.integers(0, 2, size=h)
    p = 1 / (1 + np.exp(-(w @ h_true + b)))
    x = (rng.uniform(size=v) < p).astype(np.int64)
    return {"H": h, "V": v, "ph": 0.5, "W": w, "b": b}, {"x": x}, h_true


def test_sbn_heuristic_has_no_automatic_update():
    hypers, data, _ = sbn_inputs()
    with pytest.raises(ScheduleError, match="cannot derive an update"):
        compile_model(models.SBN, hypers, data)


def test_sbn_enumeration_rejected_for_vector_dependence():
    from repro.core.density.conditionals import conditional
    from repro.core.density.lower import lower_and_factorize
    from repro.core.frontend.parser import parse_model
    from repro.core.frontend.symbols import analyze_model
    from repro.core.frontend.typecheck import type_of_value
    from repro.core.kernel.conjugacy import detect_enumeration

    hypers, data, _ = sbn_inputs()
    m = parse_model(models.SBN)
    info = analyze_model(m, {k: type_of_value(v) for k, v in hypers.items()})
    fd = lower_and_factorize(m)
    cond = conditional(fd, "h", info)
    assert cond.vector_dependence
    assert detect_enumeration(cond, "Bernoulli") is None


def test_sbn_user_proposal_mh_recovers_hidden_units():
    hypers, data, h_true = sbn_inputs()
    sampler = compile_model(
        models.SBN,
        hypers,
        data,
        schedule="MH[proposal=user] h",
        proposals={"h": bit_flip},
    )
    res = sampler.sample(num_samples=150, burn_in=100, seed=1)
    h_mean = res.array("h").mean(axis=0)
    # With strong weights the posterior concentrates on the generating
    # configuration (or stays uncertain only where the data is weak).
    recovered = (np.round(h_mean) == h_true).mean()
    assert recovered >= 0.75


def test_user_proposal_via_infer_api():
    hypers, data, _ = sbn_inputs()
    aug = AugurV2Lib.Infer(models.SBN)
    aug.setUserSched("MH[proposal=user] h")
    aug.setProposal("h", bit_flip)
    aug.compile(*[hypers[k] for k in ("H", "V", "ph", "W", "b")])(data["x"])
    res = aug.sample(numSamples=10)
    assert res.array("h").shape == (10, 4)
    assert set(np.unique(res.array("h"))) <= {0, 1}


def test_discrete_mh_without_proposal_rejected():
    hypers, data, _ = sbn_inputs()
    with pytest.raises(ScheduleError, match="user-supplied proposal"):
        compile_model(models.SBN, hypers, data, schedule="MH h")


def test_unused_proposal_rejected():
    rng = np.random.default_rng(2)
    y = rng.normal(size=10)
    with pytest.raises(ReproError, match="without an MH update"):
        compile_model(
            models.NORMAL_NORMAL,
            {"N": 10, "mu_0": 0.0, "v_0": 1.0, "v": 1.0},
            {"y": y},
            proposals={"mu": bit_flip},
        )


def test_continuous_user_proposal_changes_behaviour():
    # A user proposal on a continuous variable replaces the random walk.
    rng = np.random.default_rng(3)
    y = rng.normal(3.0, 1.0, size=60)

    def prior_independence_proposal(value, rng):
        cand = rng.normal(0.0, 10.0)
        # q ratio for the independence proposal N(0, 100).
        lq = (-0.5 * (cand**2) / 100.0) - (-0.5 * (value**2) / 100.0)
        return cand, float(lq)

    sampler = compile_model(
        models.NORMAL_NORMAL,
        {"N": 60, "mu_0": 0.0, "v_0": 100.0, "v": 1.0},
        {"y": y},
        schedule="MH[proposal=user] mu",
        proposals={"mu": prior_independence_proposal},
    )
    res = sampler.sample(num_samples=3000, burn_in=100, seed=4)
    assert res.array("mu").mean() == pytest.approx(y.mean(), abs=0.15)
