"""Geweke joint-distribution tests of compiled samplers.

These catch acceptance-ratio, statistics, and transform bugs that
posterior-moment spot checks can miss.  |z| thresholds are generous
(the test functions are correlated) but a genuinely broken update
produces |z| in the tens.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval import models
from repro.eval.geweke import geweke_test

Z_LIMIT = 4.5


def test_geweke_normal_normal_gibbs():
    res = geweke_test(
        models.NORMAL_NORMAL,
        {"N": 5, "mu_0": 0.5, "v_0": 2.0, "v": 1.0},
        {"y": np.zeros(5)},
        {
            "mu": lambda s, d: s["mu"],
            "mu^2": lambda s, d: s["mu"] ** 2,
            "mean(y)": lambda s, d: d["y"].mean(),
            "mu*mean(y)": lambda s, d: s["mu"] * d["y"].mean(),
        },
        n_marginal=3000,
        n_successive=3000,
        seed=0,
    )
    assert res.max_abs_z() < Z_LIMIT, f"\n{res}"


def test_geweke_beta_bernoulli_gibbs():
    res = geweke_test(
        models.BETA_BERNOULLI,
        {"N": 6, "a": 2.0, "b": 3.0},
        {"y": np.zeros(6, dtype=np.int64)},
        {
            "p": lambda s, d: s["p"],
            "p^2": lambda s, d: s["p"] ** 2,
            "sum(y)": lambda s, d: float(np.sum(d["y"])),
        },
        n_marginal=3000,
        n_successive=3000,
        seed=1,
    )
    assert res.max_abs_z() < Z_LIMIT, f"\n{res}"


def test_geweke_gmm_composed_kernel():
    # The full composed kernel: conjugate MvNormal Gibbs + enumeration
    # Gibbs, with mixture indexing, on a tiny GMM.
    res = geweke_test(
        models.GMM,
        {
            "K": 2,
            "N": 4,
            "mu_0": np.zeros(2),
            "Sigma_0": np.eye(2) * 2.0,
            "pis": np.array([0.6, 0.4]),
            "Sigma": np.eye(2) * 0.5,
        },
        {"x": np.zeros((4, 2))},
        {
            "mu[0,0]": lambda s, d: s["mu"][0, 0],
            "mean|mu|^2": lambda s, d: float(np.mean(s["mu"] ** 2)),
            "mean(z)": lambda s, d: float(np.mean(s["z"])),
            "mean(x)": lambda s, d: float(np.mean(d["x"])),
            "cov(mu,x)": lambda s, d: float(np.mean(s["mu"]) * np.mean(d["x"])),
        },
        n_marginal=2500,
        n_successive=2500,
        seed=2,
    )
    assert res.max_abs_z() < Z_LIMIT, f"\n{res}"


def test_geweke_hmc_exp_normal():
    # Gradient-based update with a log transform: the acceptance ratio
    # and Jacobian terms must both be right for this to pass.
    res = geweke_test(
        models.EXP_NORMAL,
        {"N": 4, "lam": 1.5},
        {"y": np.zeros(4)},
        {
            "v": lambda s, d: s["v"],
            "log v": lambda s, d: np.log(s["v"]),
            "mean(y^2)": lambda s, d: float(np.mean(d["y"] ** 2)),
        },
        n_marginal=2500,
        n_successive=4000,
        schedule="HMC[steps=10, step_size=0.2] v",
        seed=3,
    )
    assert res.max_abs_z() < Z_LIMIT, f"\n{res}"


def test_geweke_detects_a_broken_kernel():
    # Sanity check on the test itself: an MH update with a deliberately
    # wrong proposal ratio must be flagged.  The biased kernel needs a
    # registered proposal, so run the successive-conditional loop by hand.
    from repro.core.compiler import compile_model
    from repro.runtime.rng import Rng

    def biased_proposal(value, rng):
        # Drifts upward but claims symmetry: violates detailed balance.
        return value + abs(rng.normal(0.0, 0.8)), 0.0

    sampler = compile_model(
        models.NORMAL_NORMAL,
        {"N": 4, "mu_0": 0.0, "v_0": 1.0, "v": 1.0},
        {"y": np.zeros(4)},
        schedule="MH[proposal=user] mu",
        proposals={"mu": biased_proposal},
    )
    rng = Rng(5)
    state = sampler.init_state(rng)
    data = sampler.posterior_predictive(state, rng)
    mus = []
    for _ in range(1500):
        sampler.base_env["y"] = data["y"]
        sampler.step(state, rng)
        data = sampler.posterior_predictive(state, rng)
        mus.append(state["mu"])
    # Under the correct joint, E[mu] = 0; the biased kernel drifts.
    drift = abs(np.mean(mus)) / (np.std(mus) / np.sqrt(100))
    assert drift > 4.5
