"""Multi-chain sampling and cross-chain diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.errors import RuntimeFailure
from repro.eval import models
from repro.eval.metrics import effective_sample_size, potential_scale_reduction


@pytest.fixture(scope="module")
def nn_sampler():
    rng = np.random.default_rng(0)
    y = rng.normal(2.0, 1.0, size=40)
    return compile_model(
        models.NORMAL_NORMAL,
        {"N": 40, "mu_0": 0.0, "v_0": 25.0, "v": 1.0},
        {"y": y},
    )


def test_chains_are_independent_and_converge(nn_sampler):
    results = nn_sampler.sample_chains(n_chains=4, num_samples=400, burn_in=50, seed=1)
    chains = np.stack([r.array("mu") for r in results])
    assert chains.shape == (4, 400)
    # Different streams produce different draws...
    assert not np.allclose(chains[0], chains[1])
    # ...but the chains mix: R-hat near 1.
    assert potential_scale_reduction(chains) < 1.1


def test_chains_seed_reproducibility(nn_sampler):
    a = nn_sampler.sample_chains(2, num_samples=20, seed=7)
    b = nn_sampler.sample_chains(2, num_samples=20, seed=7)
    np.testing.assert_array_equal(a[0].array("mu"), b[0].array("mu"))
    np.testing.assert_array_equal(a[1].array("mu"), b[1].array("mu"))


def test_chains_validate_count(nn_sampler):
    with pytest.raises(RuntimeFailure):
        nn_sampler.sample_chains(0, num_samples=5)


def test_chains_validate_executor(nn_sampler):
    with pytest.raises(RuntimeFailure):
        nn_sampler.sample_chains(2, num_samples=5, executor="fibers")


def test_process_executor_is_bitwise_identical(nn_sampler):
    seq = nn_sampler.sample_chains(3, num_samples=25, burn_in=5, seed=11)
    par = nn_sampler.sample_chains(
        3, num_samples=25, burn_in=5, seed=11, executor="processes", n_workers=2
    )
    assert len(par) == 3
    for a, b in zip(seq, par):
        np.testing.assert_array_equal(a.array("mu"), b.array("mu"))


def test_thread_executor_is_bitwise_identical(nn_sampler):
    seq = nn_sampler.sample_chains(3, num_samples=25, seed=13)
    thr = nn_sampler.sample_chains(
        3, num_samples=25, seed=13, executor="threads", n_workers=2
    )
    for a, b in zip(seq, thr):
        np.testing.assert_array_equal(a.array("mu"), b.array("mu"))


def test_parallel_chains_feed_rhat(nn_sampler):
    results = nn_sampler.sample_chains(
        4, num_samples=200, burn_in=50, seed=2, executor="processes", n_workers=2
    )
    chains = np.stack([r.array("mu") for r in results])
    assert chains.shape == (4, 200)
    assert potential_scale_reduction(chains) < 1.1


def test_dense_draw_storage_is_preallocated(nn_sampler):
    res = nn_sampler.sample(num_samples=30, seed=0)
    # Dense parameters live in one (num_samples, *shape) array written
    # in place per kept sweep, and array() is a view of it, not a
    # re-stack.
    store = res.samples["mu"]
    assert isinstance(store, np.ndarray)
    assert store.shape == (30,)
    view = res.array("mu")
    assert np.shares_memory(view, store)
    assert view.base is store


def lda_ragged_sampler():
    """LDA with unequal document lengths: ``z`` has ragged shape, so its
    draw storage must take the list-of-copies fallback."""
    from repro.runtime.vectors import RaggedArray

    rng = np.random.default_rng(0)
    k, v = 2, 6
    lengths = [5, 9, 3, 7]
    docs = [rng.integers(0, v, size=n) for n in lengths]
    hypers = {
        "K": k,
        "D": len(docs),
        "V": v,
        "N": np.array(lengths),
        "alpha": np.full(k, 0.5),
        "beta": np.full(v, 0.5),
    }
    return compile_model(models.LDA, hypers, {"w": RaggedArray.from_rows(docs)})


def test_ragged_draw_storage_falls_back_to_copies():
    from repro.runtime.vectors import RaggedArray

    sampler = lda_ragged_sampler()
    res = sampler.sample(num_samples=12, burn_in=3, seed=0)
    store = res.samples["z"]
    # Ragged parameters cannot use the dense preallocated path.
    assert isinstance(store, list)
    assert len(store) == 12
    assert all(isinstance(d, RaggedArray) for d in store)
    # Each stored draw is an independent copy, not a view of the live
    # state the sweep loop keeps mutating.
    assert len({id(d.flat) for d in store}) == 12
    flats = np.stack([d.flat for d in store])
    assert not np.array_equal(flats[0], flats[-1])  # the chain moved
    # array() flattens ragged draws to (draws, total_tokens).
    assert res.array("z").shape == (12, sum([5, 9, 3, 7]))
    np.testing.assert_array_equal(res.array("z"), flats)
    # Dense parameters in the same run still use preallocated storage.
    assert isinstance(res.samples["theta"], np.ndarray)
    assert res.samples["theta"].shape == (12, 4, 2)


def test_ragged_storage_respects_burn_in_and_thin():
    sampler = lda_ragged_sampler()
    res = sampler.sample(num_samples=4, burn_in=5, thin=3, seed=1)
    assert len(res.samples["z"]) == 4
    assert res.samples["theta"].shape[0] == 4


def _flat_stats(results):
    from repro.telemetry.stats import stack_chain_stats

    return stack_chain_stats(results)


def test_stat_buffers_bitwise_equal_across_executors(nn_sampler):
    kwargs = dict(num_samples=20, burn_in=5, seed=17, collect_stats=True)
    seq = _flat_stats(nn_sampler.sample_chains(3, **kwargs))
    par = _flat_stats(
        nn_sampler.sample_chains(
            3, executor="processes", n_workers=2, **kwargs
        )
    )
    thr = _flat_stats(
        nn_sampler.sample_chains(3, executor="threads", n_workers=2, **kwargs)
    )
    assert seq and set(seq) == set(par) == set(thr)
    for key in seq:
        assert seq[key].shape == (3, 25)
        np.testing.assert_array_equal(seq[key], par[key])
        np.testing.assert_array_equal(seq[key], thr[key])


def test_gibbs_chain_has_high_ess(nn_sampler):
    res = nn_sampler.sample(num_samples=500, burn_in=50, seed=3)
    # A conjugate Gibbs chain on a single parameter draws exact
    # conditionals: near-iid samples.
    ess = effective_sample_size(res.array("mu"))
    assert ess > 300


def test_sample_result_metadata(nn_sampler):
    res = nn_sampler.sample(num_samples=25, seed=0)
    assert res.wall_time > 0
    assert res.sweep_times.shape == (25,)
    assert len(res.acceptance) == 1
    assert list(res.acceptance.values())[0] == pytest.approx(1.0)  # Gibbs
    assert res.device_time is None  # CPU target


def test_sample_rejects_nonpositive_count(nn_sampler):
    with pytest.raises(RuntimeFailure):
        nn_sampler.sample(num_samples=0)
