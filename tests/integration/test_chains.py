"""Multi-chain sampling and cross-chain diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.errors import RuntimeFailure
from repro.eval import models
from repro.eval.metrics import effective_sample_size, potential_scale_reduction


@pytest.fixture(scope="module")
def nn_sampler():
    rng = np.random.default_rng(0)
    y = rng.normal(2.0, 1.0, size=40)
    return compile_model(
        models.NORMAL_NORMAL,
        {"N": 40, "mu_0": 0.0, "v_0": 25.0, "v": 1.0},
        {"y": y},
    )


def test_chains_are_independent_and_converge(nn_sampler):
    results = nn_sampler.sample_chains(n_chains=4, num_samples=400, burn_in=50, seed=1)
    chains = np.stack([r.array("mu") for r in results])
    assert chains.shape == (4, 400)
    # Different streams produce different draws...
    assert not np.allclose(chains[0], chains[1])
    # ...but the chains mix: R-hat near 1.
    assert potential_scale_reduction(chains) < 1.1


def test_chains_seed_reproducibility(nn_sampler):
    a = nn_sampler.sample_chains(2, num_samples=20, seed=7)
    b = nn_sampler.sample_chains(2, num_samples=20, seed=7)
    np.testing.assert_array_equal(a[0].array("mu"), b[0].array("mu"))
    np.testing.assert_array_equal(a[1].array("mu"), b[1].array("mu"))


def test_chains_validate_count(nn_sampler):
    with pytest.raises(RuntimeFailure):
        nn_sampler.sample_chains(0, num_samples=5)


def test_chains_validate_executor(nn_sampler):
    with pytest.raises(RuntimeFailure):
        nn_sampler.sample_chains(2, num_samples=5, executor="fibers")


def test_process_executor_is_bitwise_identical(nn_sampler):
    seq = nn_sampler.sample_chains(3, num_samples=25, burn_in=5, seed=11)
    par = nn_sampler.sample_chains(
        3, num_samples=25, burn_in=5, seed=11, executor="processes", n_workers=2
    )
    assert len(par) == 3
    for a, b in zip(seq, par):
        np.testing.assert_array_equal(a.array("mu"), b.array("mu"))


def test_thread_executor_is_bitwise_identical(nn_sampler):
    seq = nn_sampler.sample_chains(3, num_samples=25, seed=13)
    thr = nn_sampler.sample_chains(
        3, num_samples=25, seed=13, executor="threads", n_workers=2
    )
    for a, b in zip(seq, thr):
        np.testing.assert_array_equal(a.array("mu"), b.array("mu"))


def test_parallel_chains_feed_rhat(nn_sampler):
    results = nn_sampler.sample_chains(
        4, num_samples=200, burn_in=50, seed=2, executor="processes", n_workers=2
    )
    chains = np.stack([r.array("mu") for r in results])
    assert chains.shape == (4, 200)
    assert potential_scale_reduction(chains) < 1.1


def test_dense_draw_storage_is_preallocated(nn_sampler):
    res = nn_sampler.sample(num_samples=30, seed=0)
    # Dense parameters live in one (num_samples, *shape) array written
    # in place per kept sweep, and array() is a view of it, not a
    # re-stack.
    store = res.samples["mu"]
    assert isinstance(store, np.ndarray)
    assert store.shape == (30,)
    view = res.array("mu")
    assert np.shares_memory(view, store)
    assert view.base is store


def test_gibbs_chain_has_high_ess(nn_sampler):
    res = nn_sampler.sample(num_samples=500, burn_in=50, seed=3)
    # A conjugate Gibbs chain on a single parameter draws exact
    # conditionals: near-iid samples.
    ess = effective_sample_size(res.array("mu"))
    assert ess > 300


def test_sample_result_metadata(nn_sampler):
    res = nn_sampler.sample(num_samples=25, seed=0)
    assert res.wall_time > 0
    assert res.sweep_times.shape == (25,)
    assert len(res.acceptance) == 1
    assert list(res.acceptance.values())[0] == pytest.approx(1.0)  # Gibbs
    assert res.device_time is None  # CPU target


def test_sample_rejects_nonpositive_count(nn_sampler):
    with pytest.raises(RuntimeFailure):
        nn_sampler.sample(num_samples=0)
