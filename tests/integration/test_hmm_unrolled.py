"""The paper's unrolled-HMM claim, validated against exact inference.

Section 2.2: sequential models must be written "by unfolding the entire
model".  We unfold a binary-state HMM, let the heuristic derive
enumeration-Gibbs updates for every hidden state, and compare the
sampled posterior marginals against brute-force exact enumeration over
all hidden paths.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from scipy.stats import norm

from repro.core.compiler import compile_model
from repro.core.kernel.ir import UpdateMethod
from repro.eval.models import make_unrolled_hmm


def hmm_setup(t_steps=4, seed=0):
    pi0 = np.array([0.6, 0.4])
    trans = np.array([[0.8, 0.2], [0.3, 0.7]])
    means = np.array([-1.0, 1.5])
    v = 1.0
    rng = np.random.default_rng(seed)
    h = [rng.choice(2, p=pi0)]
    for _ in range(t_steps - 1):
        h.append(rng.choice(2, p=trans[h[-1]]))
    y = means[h] + rng.normal(0, np.sqrt(v), size=t_steps)
    hypers = {"pi0": pi0, "trans": trans, "means": means, "v": v}
    data = {f"y{t}": float(y[t]) for t in range(t_steps)}
    return hypers, data, (pi0, trans, means, v, y)


def exact_marginals(pi0, trans, means, v, y):
    """Posterior P(h_t = k | y) by brute force over all paths."""
    t_steps = len(y)
    post = np.zeros((t_steps, 2))
    total = 0.0
    for path in itertools.product(range(2), repeat=t_steps):
        p = pi0[path[0]]
        for t in range(1, t_steps):
            p *= trans[path[t - 1], path[t]]
        for t in range(t_steps):
            p *= norm(means[path[t]], np.sqrt(v)).pdf(y[t])
        total += p
        for t in range(t_steps):
            post[t, path[t]] += p
    return post / total


def test_unrolled_hmm_source_shape():
    src = make_unrolled_hmm(3)
    assert "param h0 ~ Categorical(pi0)" in src
    assert "param h2 ~ Categorical(trans[h1])" in src
    assert "data y2 ~ Normal(means[h2], v)" in src
    with pytest.raises(ValueError):
        make_unrolled_hmm(0)


def test_heuristic_gives_enumeration_gibbs_everywhere():
    hypers, data, _ = hmm_setup()
    sampler = compile_model(make_unrolled_hmm(4), hypers, data)
    desc = sampler.schedule_description()
    assert desc.count("Gibbs") == 4


def test_hmm_posterior_matches_exact_enumeration():
    hypers, data, params = hmm_setup(t_steps=4, seed=1)
    exact = exact_marginals(*params)
    sampler = compile_model(make_unrolled_hmm(4), hypers, data)
    res = sampler.sample(num_samples=6000, burn_in=200, seed=2)
    for t in range(4):
        draws = res.array(f"h{t}")
        freq1 = float(np.mean(draws == 1))
        assert freq1 == pytest.approx(exact[t, 1], abs=0.03), f"t={t}"


def test_hmm_smoothing_uses_both_neighbours():
    # The conditional of an interior state must involve the previous
    # state (its prior) and the next state (a likelihood factor).
    from repro.core.density.conditionals import conditional
    from repro.core.density.lower import lower_and_factorize
    from repro.core.frontend.parser import parse_model
    from repro.core.frontend.symbols import analyze_model
    from repro.core.frontend.typecheck import type_of_value

    hypers, data, _ = hmm_setup()
    m = parse_model(make_unrolled_hmm(4))
    info = analyze_model(m, {k: type_of_value(v) for k, v in hypers.items()})
    fd = lower_and_factorize(m)
    cond = conditional(fd, "h1", info)
    sources = {f.source for f in cond.all_factors}
    assert sources == {"h1", "h2", "y1"}
