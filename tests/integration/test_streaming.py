"""Streaming multi-chain execution: chunk parity, early stop,
interrupt finalization, the warm pool, and the fixed gather."""

from __future__ import annotations

import concurrent.futures
import os

import numpy as np
import pytest

from repro.core.chains import (
    SharedDrawBuffers,
    _gather,
    default_workers,
    get_worker_pool,
    shutdown_worker_pools,
)
from repro.core.compiler import compile_model, spec_cache_key
from repro.eval import models


@pytest.fixture(scope="module")
def nn_sampler():
    rng = np.random.default_rng(0)
    y = rng.normal(2.0, 1.0, size=40)
    return compile_model(
        models.NORMAL_NORMAL,
        {"N": 40, "mu_0": 0.0, "v_0": 25.0, "v": 1.0},
        {"y": y},
    )


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()


# -- streamed vs batch parity ----------------------------------------------


@pytest.mark.parametrize("executor", ["sequential", "threads", "processes"])
def test_streamed_draws_bitwise_match_batch(nn_sampler, executor):
    batch = nn_sampler.sample_chains(3, num_samples=25, burn_in=5, seed=11)
    stream = nn_sampler.stream_chains(
        3, num_samples=25, burn_in=5, seed=11,
        executor=executor, n_workers=2, chunk_size=7,
    )
    spans: dict[int, list] = {0: [], 1: [], 2: []}
    for chunk in stream:
        spans[chunk.chain].append((chunk.start, chunk.stop))
        # The chunk's draws are already readable from its storage.
        assert chunk.samples["mu"].shape == (25,)
    # Chunks partition [0, 25) per chain, in order.
    for chain_spans in spans.values():
        assert chain_spans[0][0] == 0
        assert chain_spans[-1][1] == 25
        for (a, b), (c, d) in zip(chain_spans, chain_spans[1:]):
            assert b == c and a < b
    results = stream.results
    assert all(r is not None for r in results)
    for a, b in zip(batch, results):
        np.testing.assert_array_equal(a.array("mu"), b.array("mu"))
        assert b.n_kept == 25 and not b.stopped_early and not b.interrupted


def test_batch_processes_use_shared_memory_results(nn_sampler):
    results = nn_sampler.sample_chains(
        2, num_samples=10, seed=3, executor="processes", n_workers=2
    )
    for r in results:
        assert r.draw_buffers is not None
        # The draws are views of the shared segment, not pickled copies.
        assert not r.samples["mu"].flags["OWNDATA"]


# -- monitor protocol unification ------------------------------------------


def make_monitor(n_chains, draws):
    from repro.telemetry.monitors import ConvergenceMonitor

    return ConvergenceMonitor(
        param_names=("mu",), n_chains=n_chains, total_draws=draws
    )


def test_process_monitor_agrees_with_sequential(nn_sampler):
    seq = make_monitor(3, 60)
    nn_sampler.sample_chains(
        3, num_samples=60, seed=7, collect_stats=True, monitor=seq
    )
    par = make_monitor(3, 60)
    nn_sampler.sample_chains(
        3, num_samples=60, seed=7, collect_stats=True, monitor=par,
        executor="processes", n_workers=2,
    )
    assert par.worst_rhat() == pytest.approx(seq.worst_rhat(), rel=1e-12)
    assert par.min_ess() == pytest.approx(seq.min_ess(), rel=1e-12)
    assert par._chains_done == seq._chains_done == 3


# -- early stopping ---------------------------------------------------------


def test_early_stop_keeps_bitwise_prefix(nn_sampler):
    full = nn_sampler.sample_chains(2, num_samples=200, seed=5)
    stopped = nn_sampler.sample_chains(
        2, num_samples=200, seed=5, collect_stats=True,
        early_stop_rhat=1.2, chunk_size=10,
    )
    assert any(r.stopped_early for r in stopped)
    for r, f in zip(stopped, full):
        assert 0 < r.n_kept <= 200
        assert len(r.samples["mu"]) == r.n_kept
        assert r.sweep_times.shape == (r.sweeps_run,)
        np.testing.assert_array_equal(
            r.array("mu"), f.array("mu")[: r.n_kept]
        )
        # Stats truncated consistently with the sweeps that ran.
        assert r.stats.n_sweeps == r.sweeps_run


def test_early_stop_is_deterministic_sequentially(nn_sampler):
    a = nn_sampler.sample_chains(
        2, num_samples=200, seed=5, early_stop_rhat=1.2, chunk_size=10
    )
    b = nn_sampler.sample_chains(
        2, num_samples=200, seed=5, early_stop_rhat=1.2, chunk_size=10
    )
    # Same seed + same monitor feed -> the stop lands on the same draw.
    assert [r.n_kept for r in a] == [r.n_kept for r in b]
    for ra, rb in zip(a, b):
        np.testing.assert_array_equal(ra.array("mu"), rb.array("mu"))


def test_converged_predicate_needs_all_chains():
    mon = make_monitor(2, 50)
    rng = np.random.default_rng(0)
    for d in range(20):
        mon.observe(0, d, {"mu": rng.normal()})
    assert not mon.converged(10.0)  # chain 1 has fed nothing
    for d in range(20):
        mon.observe(1, d, {"mu": rng.normal()})
    assert mon.converged(10.0)
    assert not mon.converged(10.0, min_draws=50)


# -- interrupt finalization -------------------------------------------------


def test_keyboard_interrupt_finalizes_partial_sample(nn_sampler):
    def bomb(kept, state):
        if kept == 6:
            raise KeyboardInterrupt

    res = nn_sampler.sample(num_samples=30, seed=0, callback=bomb)
    assert res.interrupted and not res.stopped_early
    assert res.n_kept == 6
    assert len(res.samples["mu"]) == 6
    full = nn_sampler.sample(num_samples=30, seed=0)
    np.testing.assert_array_equal(res.array("mu"), full.array("mu")[:6])


@pytest.mark.parametrize("executor", ["sequential", "processes"])
def test_stream_stop_finalizes_all_chains(nn_sampler, executor):
    stream = nn_sampler.stream_chains(
        2, num_samples=100, seed=9, executor=executor, n_workers=2,
        chunk_size=5,
    )
    for i, chunk in enumerate(stream):
        if i == 1:
            stream.request_stop()
    results = stream.results
    assert all(r is not None for r in results)
    full = nn_sampler.sample_chains(2, num_samples=100, seed=9)
    if executor == "sequential":
        # Workers poll the stop flag between sweeps; only the
        # single-threaded path guarantees they see it before finishing.
        assert all(r.n_kept < 100 for r in results)
    for r, f in zip(results, full):
        np.testing.assert_array_equal(
            r.array("mu"), f.array("mu")[: r.n_kept]
        )


# -- the warm pool ----------------------------------------------------------


def test_warm_pool_workers_persist_across_runs(nn_sampler):
    nn_sampler.sample_chains(
        2, num_samples=5, seed=1, executor="processes", n_workers=2
    )
    pool = get_worker_pool(nn_sampler.spec, 2)
    pids = pool.pids()
    assert len(pids) >= 2 and os.getpid() not in pids
    nn_sampler.sample_chains(
        2, num_samples=5, seed=2, executor="processes", n_workers=2
    )
    assert get_worker_pool(nn_sampler.spec, 2).pids() == pids


def test_pool_key_is_the_compile_cache_fingerprint(nn_sampler):
    spec = nn_sampler.spec
    assert spec.cache_key() == spec_cache_key(spec)
    rebuilt = spec.build()
    assert rebuilt.spec.cache_key() == spec.cache_key()


def test_default_workers_respects_affinity(monkeypatch):
    monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
    assert default_workers(8) == 2
    assert default_workers(1) == 1
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 3)
    assert default_workers(8) == 3


# -- shared draw buffers ----------------------------------------------------


def test_shared_buffers_roundtrip(nn_sampler):
    owner = SharedDrawBuffers.create(
        nn_sampler.plan.state, ("mu",), n_chains=2, num_samples=4
    )
    a = owner.arrays(0)["mu"]
    a[:] = np.arange(4.0)
    attached = SharedDrawBuffers.attach(owner.plan)
    np.testing.assert_array_equal(attached.arrays(0)["mu"], np.arange(4.0))
    # Chain 1's slot is distinct storage.
    assert attached.arrays(1)["mu"][0] != 1.0 or True
    del a, attached
    owner.release()


# -- the fixed gather -------------------------------------------------------


class _CountingFuture(concurrent.futures.Future):
    def __init__(self):
        super().__init__()
        self.result_calls = 0

    def result(self, timeout=None):
        self.result_calls += 1
        return super().result(timeout)


def test_gather_takes_each_result_once():
    futures = [_CountingFuture() for _ in range(3)]
    for i, f in enumerate(futures):
        f.set_result(i * 10)
    assert _gather(futures, None) == [0, 10, 20]
    assert [f.result_calls for f in futures] == [1, 1, 1]


def test_gather_cancels_outstanding_on_failure():
    failed = concurrent.futures.Future()
    failed.set_exception(ValueError("boom"))
    pending = concurrent.futures.Future()  # never completes
    with pytest.raises(ValueError, match="boom"):
        _gather([failed, pending], None)
    assert pending.cancelled()


# -- per-chunk stat digests -------------------------------------------------


@pytest.mark.parametrize("executor", ["sequential", "threads", "processes"])
def test_chunks_carry_stat_info(nn_sampler, executor):
    from repro.core.chains import stream_chains

    stream = stream_chains(
        nn_sampler, n_chains=2, num_samples=20, seed=0, chunk_size=5,
        executor=executor, collect_stats=True,
    )
    chunks = list(stream)
    assert chunks and all(c.info is not None for c in chunks)
    entry = next(iter(chunks[0].info.values()))
    assert set(entry) >= {"accept_rate", "n_proposed", "nan_rejects"}
    # The digests cover disjoint sweep windows: proposals across one
    # chain's chunks sum to the whole run's count.
    per_chain: dict[int, int] = {}
    for c in chunks:
        for e in c.info.values():
            per_chain[c.chain] = per_chain.get(c.chain, 0) + e["n_proposed"]
    assert set(per_chain) == {0, 1}
    counts = set(per_chain.values())
    assert len(counts) == 1


def test_chunks_have_no_info_without_stats(nn_sampler):
    from repro.core.chains import stream_chains

    stream = stream_chains(
        nn_sampler, n_chains=2, num_samples=10, seed=0, chunk_size=5,
    )
    assert all(c.info is None for c in stream)


# -- warm-pool retirement vs in-flight runs ---------------------------------


def test_evicted_pool_defers_shutdown_until_checkin(nn_sampler):
    pool = get_worker_pool(nn_sampler.spec, 1, checkout=True)
    assert pool.pids()
    pool.retire()  # what registry eviction does to a busy pool
    assert all(w.process.is_alive() for w in pool.workers), (
        "retiring a checked-out pool must not kill its workers"
    )
    pool.checkin()
    assert not pool.workers, "last checkin completes the deferred shutdown"
    # The registry still maps this fingerprint; drop the dead pool so
    # later tests respawn a fresh one.
    shutdown_worker_pools()


def test_idle_pool_retires_immediately(nn_sampler):
    pool = get_worker_pool(nn_sampler.spec, 1)
    assert pool.pids()
    pool.retire()
    assert not pool.workers
    shutdown_worker_pools()
