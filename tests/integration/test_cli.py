"""The command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import load_inputs, main, save_draws, split_inputs
from repro.errors import ReproError
from repro.eval import models
from repro.runtime.vectors import RaggedArray


@pytest.fixture
def gmm_files(tmp_path):
    model = tmp_path / "gmm.augur"
    model.write_text(models.GMM)
    rng = np.random.default_rng(0)
    true_mu = np.array([[-3.0, 0.0], [3.0, 0.0]])
    z = rng.integers(0, 2, size=50)
    x = true_mu[z] + rng.normal(0, 0.4, size=(50, 2))
    inputs = tmp_path / "inputs.json"
    inputs.write_text(
        json.dumps(
            {
                "K": 2,
                "N": 50,
                "mu_0": [0.0, 0.0],
                "Sigma_0": [[16.0, 0.0], [0.0, 16.0]],
                "pis": [0.5, 0.5],
                "Sigma": [[0.16, 0.0], [0.0, 0.16]],
                "x": x.tolist(),
            }
        )
    )
    return str(model), str(inputs), tmp_path


def test_sample_command(gmm_files, capsys):
    model, inputs, tmp = gmm_files
    out = tmp / "draws.npz"
    code = main(
        [
            "sample", model, inputs,
            "--samples", "20", "--burn-in", "5", "--seed", "1",
            "--collect", "mu", "--out", str(out), "--summary",
            "--trace-plot", "mu",
        ]
    )
    assert code == 0
    text = capsys.readouterr().out
    assert "schedule:" in text
    assert "samples/s" in text
    assert "trace of mu" in text
    with np.load(out) as draws:
        assert draws["mu"].shape == (20, 2, 2)


def test_sample_trace_writes_chrome_json(gmm_files, capsys):
    model, inputs, tmp = gmm_files
    # Unique hyper value -> a guaranteed compile-cache miss, so every
    # compiler stage actually runs (a hit would skip codegen spans).
    vals = json.loads(open(inputs).read())
    vals["Sigma_0"] = [[17.125, 0.0], [0.0, 17.125]]
    fresh = tmp / "inputs_fresh.json"
    fresh.write_text(json.dumps(vals))
    trace = tmp / "trace.json"
    code = main(
        ["sample", model, str(fresh), "--samples", "8", "--trace", str(trace)]
    )
    assert code == 0
    assert "wrote pipeline trace" in capsys.readouterr().out
    doc = json.loads(trace.read_text())
    names = [e["name"] for e in doc["traceEvents"]]
    for stage in [
        "frontend.parse", "density.extract", "kernel.select",
        "codegen.updates", "backend.plan", "backend.emit", "backend.exec",
    ]:
        assert names.count(stage) == 1, stage
    assert names.count("sweep") == 8
    assert "sample" in names


def test_sample_stats_flag_prints_summary(gmm_files, capsys):
    model, inputs, _ = gmm_files
    code = main(["sample", model, inputs, "--samples", "6", "--stats"])
    assert code == 0
    text = capsys.readouterr().out
    assert "sample stats" in text
    assert "Gibbs z: accept" in text


def test_sample_chains_with_monitor_and_stats(gmm_files, capsys):
    model, inputs, _ = gmm_files
    code = main(
        [
            "sample", model, inputs, "--samples", "30", "--chains", "2",
            "--executor", "sequential", "--collect", "mu",
            "--monitor", "--stats",
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "online convergence report" in captured.out
    assert "split R-hat" in captured.out
    assert "cross-chain per-sweep means" in captured.out
    # Incremental progress lines stream to stderr as chains finish.
    assert captured.err.count("[monitor]") == 2


def test_inspect_command(gmm_files, capsys):
    model, inputs, _ = gmm_files
    code = main(["inspect", model, inputs, "--source"])
    assert code == 0
    text = capsys.readouterr().out
    assert "allocation plan" in text
    assert "def gibbs_mu" in text


def test_sample_with_user_schedule(gmm_files, capsys):
    model, inputs, _ = gmm_files
    code = main(
        ["sample", model, inputs, "--samples", "5",
         "--schedule", "ESlice mu (*) Gibbs z"]
    )
    assert code == 0
    assert "ESlice" in capsys.readouterr().out


def test_bad_schedule_reports_error(gmm_files, capsys):
    model, inputs, _ = gmm_files
    code = main(["sample", model, inputs, "--schedule", "Gibbs nothere"])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_missing_input_value(gmm_files, tmp_path):
    model, _, _ = gmm_files
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"K": 2}))
    code = main(["sample", model, str(bad), "--samples", "2"])
    assert code == 2


def test_load_inputs_json_ragged(tmp_path):
    p = tmp_path / "in.json"
    p.write_text(json.dumps({"w": [[1, 2, 3], [4]], "N": [3, 1]}))
    vals = load_inputs(str(p))
    assert isinstance(vals["w"], RaggedArray)
    assert vals["w"].n_elems == 4
    np.testing.assert_array_equal(vals["N"], [3, 1])


def test_load_inputs_npz(tmp_path):
    p = tmp_path / "in.npz"
    np.savez(p, a=np.arange(3), s=np.float64(2.5), n=np.int64(7))
    vals = load_inputs(str(p))
    assert vals["s"] == 2.5
    assert vals["n"] == 7
    np.testing.assert_array_equal(vals["a"], [0, 1, 2])


def test_load_inputs_rejects_unknown_format(tmp_path):
    p = tmp_path / "in.txt"
    p.write_text("x")
    with pytest.raises(ReproError, match="unsupported inputs format"):
        load_inputs(str(p))


def test_split_inputs_missing():
    with pytest.raises(ReproError, match="missing values"):
        split_inputs(models.NORMAL_NORMAL, {"N": 3})


def test_save_draws_ragged(tmp_path):
    draws = [RaggedArray.from_rows([[1, 2], [3]]) for _ in range(4)]
    out = tmp_path / "d.npz"
    save_draws(str(out), {"z": draws})
    with np.load(out) as data:
        assert data["z__flat"].shape == (4, 3)
        np.testing.assert_array_equal(data["z__offsets"], [0, 2, 3])
