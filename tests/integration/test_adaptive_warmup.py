"""Adaptive warmup end to end: determinism, checkpointing, executors.

The contract under test: warmup adaptation (dual-averaging step size +
windowed mass matrix) is bitwise deterministic across every executor
and across mid-warmup checkpoint/resume, and a run with ``warmup=0``
is byte-for-byte the pre-adaptation fixed-step sampler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.eval import models
from repro.runtime.rng import Rng

WARMUP = 120
SAMPLES = 40


def _nn_inputs():
    rng = np.random.default_rng(0)
    y = rng.normal(2.0, 1.0, size=40)
    return {"N": 40, "mu_0": 0.0, "v_0": 25.0, "v": 1.0}, {"y": y}


@pytest.fixture(scope="module")
def nuts_sampler():
    hypers, data = _nn_inputs()
    return compile_model(
        models.NORMAL_NORMAL, hypers, data, schedule="NUTS mu"
    )


@pytest.fixture(scope="module")
def hmc_sampler():
    hypers, data = _nn_inputs()
    return compile_model(models.NORMAL_NORMAL, hypers, data, schedule="HMC mu")


# ----------------------------------------------------------------------
# Adaptation works and lands near the target.
# ----------------------------------------------------------------------


def test_adapted_nuts_tracks_target_acceptance(nuts_sampler):
    result = nuts_sampler.sample(
        num_samples=100, seed=3, warmup=300, collect_stats=True
    )
    (label,) = result.stats.update_labels
    accept = result.stats[label]["accept_stat"][result.stats.kept_slice]
    assert 0.6 <= float(np.mean(accept)) <= 1.0
    # Posterior recovered: mu ~ N(~2, small).
    assert abs(float(np.mean(result.array("mu"))) - 2.0) < 0.5
    # The adaptation state made it out of the run.
    st = result.adapt_state[label]
    assert st["finalized"] and st["step_size"] > 0
    assert st["window_index"] == st["n_windows"] > 0


def test_hmc_emits_accept_stat_consistent_with_log_alpha(hmc_sampler):
    result = hmc_sampler.sample(
        num_samples=30, seed=5, warmup=80, collect_stats=True
    )
    (label,) = result.stats.update_labels
    cols = result.stats[label]
    log_alpha = cols["log_alpha"]
    accept = cols["accept_stat"]
    finite = np.isfinite(log_alpha)
    np.testing.assert_allclose(
        accept[finite],
        np.minimum(1.0, np.exp(np.minimum(0.0, log_alpha[finite]))),
        rtol=1e-12,
    )
    assert np.all(accept[~finite] == 0.0)


# ----------------------------------------------------------------------
# Fixed-step identity: warmup=0 is exactly the old sampler.
# ----------------------------------------------------------------------


def test_warmup_zero_is_bitwise_identical_to_default(nuts_sampler):
    plain = nuts_sampler.sample(num_samples=SAMPLES, seed=9)
    zero = nuts_sampler.sample(num_samples=SAMPLES, seed=9, warmup=0)
    np.testing.assert_array_equal(plain.array("mu"), zero.array("mu"))


def test_warmup_rejects_negative(nuts_sampler):
    from repro.errors import RuntimeFailure

    with pytest.raises(RuntimeFailure, match="warmup"):
        nuts_sampler.sample(num_samples=4, seed=0, warmup=-1)


# ----------------------------------------------------------------------
# Executor parity + warm pool reuse.
# ----------------------------------------------------------------------


def test_adapted_chains_bitwise_across_executors(nuts_sampler):
    kwargs = dict(num_samples=SAMPLES, seed=11, warmup=WARMUP)
    seq = nuts_sampler.sample_chains(3, **kwargs)
    thr = nuts_sampler.sample_chains(
        3, executor="threads", n_workers=2, **kwargs
    )
    proc = nuts_sampler.sample_chains(
        3, executor="processes", n_workers=2, **kwargs
    )
    # Warm pool reuse: a second process-executor run lands on the
    # already-forked workers and must reproduce the same draws.
    proc2 = nuts_sampler.sample_chains(
        3, executor="processes", n_workers=2, **kwargs
    )
    for other in (thr, proc, proc2):
        for a, b in zip(seq, other):
            np.testing.assert_array_equal(a.array("mu"), b.array("mu"))
    for a, b in zip(seq, proc):
        assert a.adapt_state.keys() == b.adapt_state.keys()
        for label in a.adapt_state:
            assert (
                a.adapt_state[label]["step_size"]
                == b.adapt_state[label]["step_size"]
            )


# ----------------------------------------------------------------------
# Mid-warmup checkpoint / resume.
# ----------------------------------------------------------------------


def test_mid_warmup_stop_resume_is_bitwise(nuts_sampler):
    chunk = 10
    full = nuts_sampler.sample_iter(
        SAMPLES, seed=21, warmup=WARMUP, chunk_size=chunk
    ).drain()

    run = nuts_sampler.sample_iter(
        SAMPLES, seed=21, warmup=WARMUP, chunk_size=chunk
    )
    for _ in run:  # first chunk boundary falls inside warmup
        run.request_stop()
        break
    part = run.drain()
    assert part.n_kept == 0, "the stop should land mid-warmup"
    assert part.sweeps_run < WARMUP
    assert part.adapt_state is not None

    resumed = nuts_sampler.sample_iter(
        SAMPLES,
        seed=Rng.from_spec(part.rng_state),
        warmup=WARMUP,
        chunk_size=chunk,
        init=part.final_state,
        start_sweep=part.sweeps_run,
        start_kept=part.n_kept,
        adapt_state=part.adapt_state,
    ).drain()

    np.testing.assert_array_equal(resumed.array("mu"), full.array("mu"))
    assert (
        resumed.adapt_state.keys() == full.adapt_state.keys()
    )
    for label in full.adapt_state:
        assert (
            resumed.adapt_state[label]["step_size"]
            == full.adapt_state[label]["step_size"]
        )
        np.testing.assert_array_equal(
            resumed.adapt_state[label]["inv_mass"],
            full.adapt_state[label]["inv_mass"],
        )


@pytest.mark.parametrize("executor", ["sequential", "threads", "processes"])
def test_mid_warmup_checkpoint_resume_through_chains(nuts_sampler, executor):
    from repro.core.chains import ChainResume

    kwargs = dict(num_samples=SAMPLES, seed=31, warmup=WARMUP)
    full = nuts_sampler.sample_chains(2, **kwargs)

    # Freeze each chain mid-warmup (sequentially, for determinism),
    # using the same per-chain fork of the seed the chain engine uses...
    frozen = []
    rngs = Rng(31).fork(2)
    for i in range(2):
        run = nuts_sampler.sample_iter(
            SAMPLES, seed=rngs[i], warmup=WARMUP, chunk_size=15
        )
        for _ in run:
            run.request_stop()
            break
        r = run.drain()
        assert r.n_kept == 0 and r.sweeps_run < WARMUP
        frozen.append(r)

    # ...then finish both on the executor under test.
    resume = [
        ChainResume(
            init=r.final_state,
            rng_spec=r.rng_state,
            start_sweep=r.sweeps_run,
            start_kept=r.n_kept,
            draws={k: v[: r.n_kept] for k, v in r.samples.items()},
            adapt_state=r.adapt_state,
        )
        for r in frozen
    ]
    finished = nuts_sampler.sample_chains(
        2, executor=executor, n_workers=2, resume=resume, **kwargs
    )
    for a, b in zip(full, finished):
        np.testing.assert_array_equal(a.array("mu"), b.array("mu"))


# ----------------------------------------------------------------------
# Tree fallback path.
# ----------------------------------------------------------------------


def test_tree_fallback_adapts_and_keeps_fixed_step_identity():
    hypers, data = _nn_inputs()
    tree = compile_model(
        models.NORMAL_NORMAL, hypers, data, schedule="NUTS mu",
        options=CompileOptions(flat_state=False),
    )
    adapted = tree.sample(num_samples=SAMPLES, seed=41, warmup=WARMUP)
    (label,) = adapted.adapt_state.keys()
    assert adapted.adapt_state[label]["step_size"] > 0
    assert abs(float(np.mean(adapted.array("mu"))) - 2.0) < 0.6
    # warmup=0 on the tree path is also the pre-adaptation sampler.
    plain = tree.sample(num_samples=SAMPLES, seed=41)
    zero = tree.sample(num_samples=SAMPLES, seed=41, warmup=0)
    np.testing.assert_array_equal(plain.array("mu"), zero.array("mu"))
