"""The Figure-2 user interface."""

from __future__ import annotations

import numpy as np
import pytest

import repro as AugurV2Lib
from repro.errors import ReproError
from repro.eval import models


def gmm_inputs(seed=0, n=60):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-3.0, 0.0], [3.0, 0.0]])
    z = rng.integers(0, 2, size=n)
    x = true_mu[z] + rng.normal(0, 0.4, size=(n, 2))
    return (2, n, np.zeros(2), np.eye(2) * 16.0, np.full(2, 0.5), np.eye(2) * 0.16), x


def test_figure2_workflow(tmp_path):
    # Mirrors the paper's Figure 2, including loading the model from a file.
    model_path = tmp_path / "gmm.augur"
    model_path.write_text(models.GMM)
    hypers, x = gmm_inputs()
    with AugurV2Lib.Infer(str(model_path)) as aug:
        opt = AugurV2Lib.Opt(target="cpu")
        aug.setCompileOpt(opt)
        aug.setUserSched("ESlice mu (*) Gibbs z")
        aug.compile(*hypers)(x)
        samples = aug.sample(numSamples=40, burnIn=10)
    assert samples.array("mu").shape == (40, 2, 2)
    assert samples.array("z").shape == (40, 60)


def test_infer_accepts_inline_source():
    hypers, x = gmm_inputs()
    with AugurV2Lib.Infer(models.GMM) as aug:
        aug.compile(*hypers)(x)
        samples = aug.sample(numSamples=5)
    assert samples.array("mu").shape[0] == 5


def test_infer_missing_file():
    with pytest.raises(ReproError, match="not found"):
        AugurV2Lib.Infer("/nonexistent/model.augur")


def test_compile_arity_checks():
    aug = AugurV2Lib.Infer(models.GMM)
    with pytest.raises(ReproError, match="closes over 6"):
        aug.compile(1, 2, 3)
    hypers, x = gmm_inputs()
    with pytest.raises(ReproError, match="observes 1"):
        aug.compile(*hypers)()


def test_sample_before_compile_raises():
    aug = AugurV2Lib.Infer(models.GMM)
    with pytest.raises(ReproError, match="before sampling"):
        aug.sample(numSamples=1)


def test_seed_controls_reproducibility():
    hypers, x = gmm_inputs()
    results = []
    for _ in range(2):
        aug = AugurV2Lib.Infer(models.GMM)
        aug.setSeed(42)
        aug.compile(*hypers)(x)
        results.append(aug.sample(numSamples=5).array("mu"))
    np.testing.assert_array_equal(results[0], results[1])


def test_gpu_opt_round_trip():
    hypers, x = gmm_inputs(n=30)
    aug = AugurV2Lib.Infer(models.GMM)
    aug.setCompileOpt(AugurV2Lib.Opt(target="gpu"))
    aug.compile(*hypers)(x)
    res = aug.sample(numSamples=5)
    assert res.device_time is not None and res.device_time > 0


def test_schedule_description_and_source():
    hypers, x = gmm_inputs(n=20)
    aug = AugurV2Lib.Infer(models.GMM)
    aug.compile(*hypers)(x)
    desc = aug.schedule_description()
    assert "Gibbs" in desc
    assert "def gibbs_z" in aug.source
    assert aug.compile_seconds < 5.0


def test_opt_rejects_unknown_target():
    with pytest.raises(ValueError, match="unknown target"):
        AugurV2Lib.Opt(target="tpu")
