"""End-to-end: compile_model produces samplers that target the right
posterior, across schedules and backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.core.options import CompileOptions
from repro.errors import ReproError
from repro.eval import models


def gmm_problem(seed=0, n=120, separation=4.0):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-separation, 0.0], [separation, 0.0]])
    z = rng.integers(0, 2, size=n)
    x = true_mu[z] + rng.normal(0, 0.5, size=(n, 2))
    hypers = {
        "K": 2,
        "N": n,
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 25.0,
        "pis": np.full(2, 0.5),
        "Sigma": np.eye(2) * 0.25,
    }
    return hypers, {"x": x}, true_mu


def recovered_means(result, burl=20):
    mu = result.array("mu")[burl:]
    return mu.mean(axis=0)


def assert_recovers_clusters(mean_mu, true_mu, atol=0.4):
    # Label-invariant check: each true centre has a recovered centre nearby.
    for t in true_mu:
        dists = np.linalg.norm(mean_mu - t, axis=1)
        assert dists.min() < atol, f"no recovered centre near {t}: {mean_mu}"


# ----------------------------------------------------------------------
# Conjugate models: analytic posterior checks.
# ----------------------------------------------------------------------


def test_normal_normal_posterior():
    rng = np.random.default_rng(1)
    y = rng.normal(3.0, 1.0, size=50)
    sampler = compile_model(
        models.NORMAL_NORMAL,
        {"N": 50, "mu_0": 0.0, "v_0": 100.0, "v": 1.0},
        {"y": y},
    )
    res = sampler.sample(num_samples=2000, burn_in=50, seed=0)
    draws = res.array("mu")
    post_prec = 1 / 100.0 + 50 / 1.0
    post_mean = (y.sum() / 1.0) / post_prec
    assert draws.mean() == pytest.approx(post_mean, abs=0.03)
    assert draws.var() == pytest.approx(1 / post_prec, rel=0.2)


def test_beta_bernoulli_posterior():
    y = np.array([1, 1, 0, 1, 1, 1, 0, 1, 1, 0])
    sampler = compile_model(
        models.BETA_BERNOULLI, {"N": 10, "a": 2.0, "b": 2.0}, {"y": y}
    )
    res = sampler.sample(num_samples=3000, seed=1)
    draws = res.array("p")
    a_post, b_post = 2 + 7, 2 + 3
    assert draws.mean() == pytest.approx(a_post / (a_post + b_post), abs=0.02)


def test_gamma_poisson_posterior():
    y = np.array([4, 6, 3, 5, 7, 4, 5])
    sampler = compile_model(
        models.GAMMA_POISSON, {"N": 7, "a": 1.0, "b": 1.0}, {"y": y}
    )
    res = sampler.sample(num_samples=3000, seed=2)
    draws = res.array("rate")
    assert draws.mean() == pytest.approx((1 + y.sum()) / (1 + 7), rel=0.05)


# ----------------------------------------------------------------------
# GMM under the three Figure-10 schedules.
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "schedule",
    [
        None,  # heuristic: Gibbs mu (*) Gibbs z
        "Gibbs mu (*) Gibbs z",
        "ESlice mu (*) Gibbs z",
        "HMC[steps=10, step_size=0.05] mu (*) Gibbs z",
        "Slice mu (*) Gibbs z",
        "MH[scale=0.3] mu (*) Gibbs z",
    ],
)
def test_gmm_recovers_cluster_means(schedule):
    hypers, data, true_mu = gmm_problem()
    sampler = compile_model(models.GMM, hypers, data, schedule=schedule)
    from repro.runtime.rng import Rng

    rng = Rng(3)
    # Standard practice: initialise the centres at random data points so
    # slow-mixing updates (random-walk MH) aren't testing burn-in luck.
    init = sampler.init_state(rng)
    init["mu"] = data["x"][np.array([5, 60])].copy()
    res = sampler.sample(num_samples=80, burn_in=20, seed=rng, init=init)
    assert_recovers_clusters(recovered_means(res), true_mu)


def test_gmm_gpu_target_matches_cpu_quality():
    hypers, data, true_mu = gmm_problem()
    sampler = compile_model(
        models.GMM, hypers, data, options=CompileOptions(target="gpu")
    )
    res = sampler.sample(num_samples=60, burn_in=20, seed=4)
    assert_recovers_clusters(recovered_means(res), true_mu)
    assert sampler.device is not None
    assert res.device_time is not None and res.device_time > 0


def test_gmm_unvectorized_fallback_works():
    hypers, data, true_mu = gmm_problem(n=40)
    sampler = compile_model(
        models.GMM, hypers, data, options=CompileOptions(vectorize=False)
    )
    res = sampler.sample(num_samples=40, burn_in=10, seed=5)
    assert_recovers_clusters(recovered_means(res, burl=10), true_mu)
    assert "for v_n in range" in sampler.source


# ----------------------------------------------------------------------
# HMC on constrained / hierarchical models.
# ----------------------------------------------------------------------


def test_exp_normal_posterior_via_hmc():
    # v ~ Exponential(1), y ~ Normal(0, v): heuristic gives HMC with a
    # log transform; the posterior of v should track the empirical second
    # moment of the data.
    rng = np.random.default_rng(6)
    y = rng.normal(0, np.sqrt(2.0), size=400)
    sampler = compile_model(
        models.EXP_NORMAL, {"N": 400, "lam": 1.0}, {"y": y},
        schedule="HMC[steps=15, step_size=0.02] v",
    )
    res = sampler.sample(num_samples=400, burn_in=100, seed=7)
    draws = res.array("v")
    assert np.all(draws > 0)  # the transform keeps v positive
    assert draws.mean() == pytest.approx(np.mean(y**2), rel=0.15)
    acc = list(res.acceptance.values())[0]
    assert acc > 0.5


def test_hlr_recovers_signal_direction():
    rng = np.random.default_rng(8)
    n, d = 250, 4
    x = rng.normal(size=(n, d))
    true_theta = np.array([2.0, -2.0, 0.0, 1.0])
    p = 1 / (1 + np.exp(-(x @ true_theta)))
    y = (rng.uniform(size=n) < p).astype(np.int64)
    sampler = compile_model(
        models.HLR,
        {"N": n, "D": d, "lam": 1.0, "x": x},
        {"y": y},
        schedule="HMC[steps=20, step_size=0.03] (sigma2, b, theta)",
    )
    res = sampler.sample(num_samples=300, burn_in=150, seed=9)
    theta_mean = res.array("theta").mean(axis=0)
    # Directions recovered: large positive, large negative, near zero.
    assert theta_mean[0] > 0.8
    assert theta_mean[1] < -0.8
    assert abs(theta_mean[2]) < 0.6
    assert np.all(res.array("sigma2") > 0)


def test_hlr_nuts_prototype_runs():
    rng = np.random.default_rng(10)
    n, d = 80, 3
    x = rng.normal(size=(n, d))
    y = (rng.uniform(size=n) < 0.5).astype(np.int64)
    sampler = compile_model(
        models.HLR,
        {"N": n, "D": d, "lam": 1.0, "x": x},
        {"y": y},
        schedule="NUTS[step_size=0.1] (sigma2, b, theta)",
    )
    res = sampler.sample(num_samples=30, burn_in=10, seed=11)
    assert res.array("theta").shape == (30, d)


# ----------------------------------------------------------------------
# HGMM and LDA: the paper's bigger models.
# ----------------------------------------------------------------------


def hgmm_problem(seed=0, n=90):
    rng = np.random.default_rng(seed)
    true_mu = np.array([[-3.0, -3.0], [3.0, 3.0], [0.0, 4.0]])
    z = rng.integers(0, 3, size=n)
    y = true_mu[z] + rng.normal(0, 0.4, size=(n, 2))
    hypers = {
        "K": 3,
        "N": n,
        "alpha": np.full(3, 1.0),
        "mu_0": np.zeros(2),
        "Sigma_0": np.eye(2) * 25.0,
        "nu": 5.0,
        "Psi": np.eye(2),
    }
    return hypers, {"y": y}, true_mu


def test_hgmm_fully_conjugate_gibbs():
    hypers, data, true_mu = hgmm_problem()
    sampler = compile_model(models.HGMM, hypers, data)
    assert all("Gibbs" in k for k in sampler.schedule_description().split(" (*) "))
    res = sampler.sample(num_samples=60, burn_in=30, seed=12)
    mean_mu = res.array("mu")[20:].mean(axis=0)
    assert_recovers_clusters(mean_mu, true_mu, atol=0.6)
    pis = res.array("pi")
    np.testing.assert_allclose(pis.sum(axis=1), 1.0, atol=1e-8)


def lda_problem(seed=0, d=12, v=21, k=3, tokens=40):
    rng = np.random.default_rng(seed)
    # Three sharply-peaked topics over disjoint vocabulary thirds.
    phi = np.zeros((k, v))
    for t in range(k):
        block = slice(t * (v // k), (t + 1) * (v // k))
        phi[t, block] = 1.0
    phi /= phi.sum(axis=1, keepdims=True)
    docs = []
    for _ in range(d):
        topic = rng.integers(0, k)
        docs.append(rng.choice(v, size=tokens, p=phi[topic]))
    from repro.runtime.vectors import RaggedArray

    w = RaggedArray.from_rows(docs)
    hypers = {
        "K": k,
        "D": d,
        "V": v,
        "N": np.full(d, tokens),
        "alpha": np.full(k, 0.5),
        "beta": np.full(v, 0.5),
    }
    return hypers, {"w": w}


def test_lda_gibbs_improves_log_joint_and_finds_structure():
    hypers, data = lda_problem(d=18, tokens=60)
    sampler = compile_model(models.LDA, hypers, data)
    from repro.runtime.rng import Rng

    rng = Rng(13)
    state = sampler.init_state(rng)
    lp0 = sampler.log_joint(state)
    for _ in range(80):
        sampler.step(state, rng)
    lp1 = sampler.log_joint(state)
    assert lp1 > lp0 + 50  # massive improvement on structured data
    phi = state["phi"]
    np.testing.assert_allclose(phi.sum(axis=1), 1.0, atol=1e-9)
    # The three disjoint vocabulary blocks are each dominated by some
    # learned topic (label-permutation and topic-merge tolerant).
    blocks = phi.reshape(3, 3, 7).sum(axis=2)  # topic x block mass
    dominant = set(np.argmax(blocks, axis=1))
    assert dominant == {0, 1, 2} or (blocks.max(axis=1) > 0.6).all()


# ----------------------------------------------------------------------
# Compiler-level behaviours.
# ----------------------------------------------------------------------


def test_missing_hyper_value_raises():
    with pytest.raises(ReproError, match="missing hyper"):
        compile_model(models.NORMAL_NORMAL, {"N": 3}, {"y": np.zeros(3)})


def test_missing_data_raises():
    with pytest.raises(ReproError, match="missing data"):
        compile_model(
            models.NORMAL_NORMAL,
            {"N": 3, "mu_0": 0.0, "v_0": 1.0, "v": 1.0},
            {},
        )


def test_categorical_rule_ablation_breaks_gibbs_mu():
    hypers, data, _ = gmm_problem(n=30)
    from repro.errors import ScheduleError

    with pytest.raises(ScheduleError):
        compile_model(
            models.GMM,
            hypers,
            data,
            options=CompileOptions(categorical_rule=False),
            schedule="Gibbs mu (*) Gibbs z",
        )


def test_compile_reports_time_and_source():
    hypers, data, _ = gmm_problem(n=20)
    sampler = compile_model(models.GMM, hypers, data)
    assert sampler.compile_seconds < 5.0
    assert "def gibbs_mu" in sampler.source
    assert "def init_state" in sampler.source
    assert sampler.plan.total_bytes() > 0


def test_sample_collect_and_thin():
    hypers, data, _ = gmm_problem(n=20)
    sampler = compile_model(models.GMM, hypers, data)
    res = sampler.sample(num_samples=10, thin=2, collect=("mu",), seed=0)
    assert set(res.samples) == {"mu"}
    assert res.array("mu").shape[0] == 10
    with pytest.raises(ReproError):
        sampler.sample(num_samples=5, collect=("nope",))
