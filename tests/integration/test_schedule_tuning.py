"""The schedule autotuner: tournaments, parity, and the verdict cache."""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.core.chains import shutdown_worker_pools
from repro.core.compiler import compile_model, shape_cache_key
from repro.core.kernel.schedule import format_schedule, parse_schedule
from repro.tune import (
    autotune,
    clear_tuning_cache,
    load_tuning_cache,
    render_tournament,
    save_tuning_cache,
    tuning_cache_stats,
)

# Grouped means: the heuristic picks a scalar (non-vectorized) Gibbs
# update for ``mu`` here, while the batched element-wise MH twin
# advances every group per sweep in a handful of vector calls -- so
# the tournament has a real, measurable winner even at test scale.
GROUPED = """
(N, J, v0, v) => {
  param mu[n] ~ Normal(0.0, v0)
    for n <- 0 until N ;
  data y[n][j] ~ Normal(mu[n], v)
    for n <- 0 until N, j <- 0 until J ;
}
"""

N, J = 120, 4


def make_data():
    rng = np.random.default_rng(0)
    return {"y": rng.normal(1.0, 1.0, size=(N, J))}


HYPERS = {"N": N, "J": J, "v0": 25.0, "v": 1.0}

TUNE_KW = dict(probe_sweeps=3, trial_sweeps=8)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()


@pytest.fixture()
def tuned():
    clear_tuning_cache()
    return autotune(GROUPED, HYPERS, make_data(), **TUNE_KW)


def test_tournament_report_shape(tuned):
    report = tuned.tune_report
    assert report["cache"] == "miss"
    assert report["baseline_schedule"] == "Gibbs mu"
    cands = report["candidates"]
    assert cands[0]["label"] == "baseline"
    labels = [c["label"] for c in cands]
    assert len(labels) == len(set(labels))
    assert {"MH mu", "Slice mu", "ESlice mu"} <= set(labels)
    verdicts = {c["verdict"] for c in cands}
    assert "winner" in verdicts or "baseline" in verdicts
    # The ledger carries the tournament too.
    decisions = {e.decision for e in tuned.ledger.entries}
    assert {"tune.candidate", "tune.winner", "tune.cache"} <= decisions


def test_tuned_sampler_is_bitwise_identical_to_pinned_winner(tuned):
    direct = compile_model(
        GROUPED, HYPERS, make_data(),
        schedule=tuned.spec.schedule, options=tuned.spec.options,
    )
    a = tuned.sample(num_samples=12, seed=3)
    b = direct.sample(num_samples=12, seed=3)
    np.testing.assert_array_equal(a.array("mu"), b.array("mu"))


@pytest.mark.parametrize("executor", ["sequential", "threads", "processes"])
def test_tune_flag_parity_across_executors(tuned, executor):
    direct = compile_model(
        GROUPED, HYPERS, make_data(),
        schedule=tuned.spec.schedule, options=tuned.spec.options,
    )
    ref = direct.sample_chains(
        2, num_samples=10, seed=5, executor=executor, n_workers=2
    )
    via_flag = compile_model(GROUPED, HYPERS, make_data()).sample_chains(
        2, num_samples=10, seed=5, executor=executor, n_workers=2,
        tune=True,
    )
    for r, v in zip(ref, via_flag):
        np.testing.assert_array_equal(r.array("mu"), v.array("mu"))


def test_sample_tune_flag_matches_direct_winner(tuned):
    via_flag = compile_model(GROUPED, HYPERS, make_data()).sample(
        num_samples=10, seed=9, tune=True
    )
    direct = compile_model(
        GROUPED, HYPERS, make_data(),
        schedule=tuned.spec.schedule, options=tuned.spec.options,
    ).sample(num_samples=10, seed=9)
    np.testing.assert_array_equal(via_flag.array("mu"), direct.array("mu"))


def test_verdict_cache_hits_on_same_shapes(tmp_path):
    clear_tuning_cache()
    first = autotune(GROUPED, HYPERS, make_data(), **TUNE_KW)
    assert first.tune_report["cache"] == "miss"
    assert tuning_cache_stats().misses == 1

    # Same shapes, different values: still a hit.
    other = {"y": np.random.default_rng(9).normal(size=(N, J))}
    second = autotune(GROUPED, HYPERS, other, **TUNE_KW)
    assert second.tune_report["cache"] == "hit"
    assert tuning_cache_stats().hits == 1
    assert second.spec.schedule == first.spec.schedule

    # Persist, clear, reload: the verdict survives the round trip.
    path = tmp_path / "verdicts.json"
    assert save_tuning_cache(path) == 1
    clear_tuning_cache()
    assert load_tuning_cache(path) == 1
    third = autotune(GROUPED, HYPERS, make_data(), **TUNE_KW)
    assert third.tune_report["cache"] == "hit"
    assert third.spec.schedule == first.spec.schedule


def test_shape_key_ignores_values_but_not_shapes():
    a = shape_cache_key(GROUPED, HYPERS, make_data())
    b = shape_cache_key(
        GROUPED, HYPERS,
        {"y": np.random.default_rng(4).normal(size=(N, J))},
    )
    assert a == b
    wider = shape_cache_key(
        GROUPED, {**HYPERS, "J": J + 1},
        {"y": np.zeros((N, J + 1))},
    )
    assert wider != a


def test_format_schedule_round_trips():
    for text in (
        "Gibbs mu",
        "MH mu (*) Gibbs z",
        "MH[batch=off] mu",
    ):
        assert format_schedule(parse_schedule(text)) == text


def test_batch_off_twin_is_enumerated():
    clear_tuning_cache()
    sampler = autotune(
        GROUPED, HYPERS, make_data(), schedule="MH mu", **TUNE_KW
    )
    labels = [c["label"] for c in sampler.tune_report["candidates"]]
    assert "MH[batch=off] mu" in labels


def test_render_tournament_is_printable(tuned):
    text = render_tournament(tuned.tune_report)
    assert "candidate" in text
    assert "baseline" in text
    assert "winner:" in text


# ----------------------------------------------------------------------
# The service path: per-request tuning through checkpoint/resume.
# ----------------------------------------------------------------------


def _payload(samples=24, chunk=6):
    return {
        "model_source": GROUPED,
        "data": {**HYPERS, "y": make_data()["y"].tolist()},
        "query": {
            "samples": samples,
            "chains": 2,
            "seed": 7,
            "chunk_size": chunk,
            "tune": True,
        },
        "return_draws": True,
        "report": False,
    }


def test_service_tunes_checkpoints_and_resumes_bitwise(tmp_path):
    from repro.serve.protocol import parse_infer_request
    from repro.serve.session import InferenceService

    clear_tuning_cache()
    service = InferenceService(
        checkpoint_dir=str(tmp_path / "ckpt"),
        artifact_dir=str(tmp_path / "art"),
    )
    reference = service.handle(parse_infer_request(_payload()))
    assert reference["complete"] is True
    assert reference["tuning"]["cache"] == "miss"
    assert reference["cache"]["tuning_cache_hit"] is False

    capped = _payload()
    capped["request_id"] = "tuned-budgeted"
    capped["budget"] = {"max_draws": 10}
    partial = service.handle(parse_infer_request(capped))
    assert partial["stopped_early"] is True
    assert partial["checkpointed"] is True
    # Second tuned request: the verdict cache answers instantly.
    assert partial["tuning"]["cache"] == "hit"

    resumed = copy.deepcopy(capped)
    resumed["budget"] = {}
    finished = service.handle(parse_infer_request(resumed))
    assert finished["complete"] is True
    assert finished["resumed"] is True
    for chain_ref, chain_res in zip(
        reference["draws_data"], finished["draws_data"]
    ):
        for name in chain_ref:
            np.testing.assert_array_equal(
                np.asarray(chain_res[name]), np.asarray(chain_ref[name])
            )

    snap = service.metrics.snapshot()
    assert snap["tuning_cache"]["requests"] == 3
    assert snap["tuning_cache"]["hits"] >= 2
    assert snap["tuning_cache"]["misses"] == 1
