"""The MH[proposal=user] marker requires a registered callable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.errors import ReproError
from repro.eval import models


def test_marker_without_callable_rejected():
    rng = np.random.default_rng(0)
    y = rng.normal(size=10)
    with pytest.raises(ReproError, match="requests a user proposal"):
        compile_model(
            models.NORMAL_NORMAL,
            {"N": 10, "mu_0": 0.0, "v_0": 1.0, "v": 1.0},
            {"y": y},
            schedule="MH[proposal=user] mu",
        )
