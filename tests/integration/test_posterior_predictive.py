"""Posterior-predictive simulation through the generated forward pass."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import compile_model
from repro.eval import models
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray


def test_gmm_posterior_predictive_shapes_and_distribution():
    rng0 = np.random.default_rng(0)
    true_mu = np.array([[-5.0, 0.0], [5.0, 0.0]])
    z = rng0.integers(0, 2, size=200)
    x = true_mu[z] + rng0.normal(0, 0.3, size=(200, 2))
    hypers = {
        "K": 2, "N": 200, "mu_0": np.zeros(2), "Sigma_0": np.eye(2) * 25.0,
        "pis": np.full(2, 0.5), "Sigma": np.eye(2) * 0.09,
    }
    sampler = compile_model(models.GMM, hypers, {"x": x})
    rng = Rng(1)
    state = sampler.init_state(rng)
    for _ in range(30):
        sampler.step(state, rng)
    rep = sampler.posterior_predictive(state, rng)
    assert set(rep) == {"x"}
    assert rep["x"].shape == (200, 2)
    # Replicated data lives where the real data lives: split around +-5.
    assert abs(abs(rep["x"][:, 0]).mean() - 5.0) < 1.0
    # The original data was not overwritten.
    np.testing.assert_array_equal(sampler.base_env["x"], x)
    assert rep["x"] is not sampler.base_env["x"]


def test_normal_normal_predictive_moments():
    rng0 = np.random.default_rng(2)
    y = rng0.normal(4.0, 1.0, size=100)
    sampler = compile_model(
        models.NORMAL_NORMAL,
        {"N": 100, "mu_0": 0.0, "v_0": 100.0, "v": 1.0},
        {"y": y},
    )
    rng = Rng(3)
    state = sampler.init_state(rng)
    for _ in range(20):
        sampler.step(state, rng)
    reps = np.concatenate(
        [sampler.posterior_predictive(state, rng)["y"] for _ in range(30)]
    )
    assert reps.mean() == pytest.approx(y.mean(), abs=0.15)
    assert reps.std() == pytest.approx(1.0, rel=0.15)


def test_lda_predictive_is_ragged():
    from tests.integration.test_end_to_end import lda_problem

    hypers, data = lda_problem()
    sampler = compile_model(models.LDA, hypers, data)
    rng = Rng(4)
    state = sampler.init_state(rng)
    rep = sampler.posterior_predictive(state, rng)
    assert isinstance(rep["w"], RaggedArray)
    assert rep["w"].same_shape(data["w"])
    assert rep["w"].flat.max() < hypers["V"]
