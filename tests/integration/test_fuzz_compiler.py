"""Compiler fuzzing: random well-formed models through the full pipeline.

Hypothesis builds random hierarchical models (chains of scalar priors
feeding a vector likelihood), compiles them with the heuristic
scheduler, runs a few sweeps, and checks the invariants every compiled
sampler must satisfy: finite log joint, supports respected, state
shapes stable, determinism under seeding.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as hst

from repro.core.compiler import compile_model
from repro.runtime.rng import Rng

#: Scalar prior templates: (distribution source, support tag).
SCALAR_PRIORS = [
    ("Normal({r}, {p})", "real"),
    ("Gamma(2.0, {p})", "pos"),
    ("Exponential({p})", "pos"),
    ("Beta(2.0, 3.0)", "unit"),
    ("Laplace({r}, {p})", "real"),
]


@hst.composite
def random_model(draw):
    n_priors = draw(hst.integers(1, 4))
    decls = []
    reals = ["0.0"]  # usable real-valued expressions
    poss = ["1.0", "0.5"]  # usable positive expressions
    for i in range(n_priors):
        template, support = draw(hst.sampled_from(SCALAR_PRIORS))
        name = f"t{i}"
        src = template.format(
            r=draw(hst.sampled_from(reals)), p=draw(hst.sampled_from(poss))
        )
        decls.append(f"param {name} ~ {src} ;")
        if support == "real":
            reals.append(name)
        elif support == "pos":
            poss.append(name)
        else:
            poss.append(name)  # (0,1) is positive too
    lik_mean = draw(hst.sampled_from(reals))
    lik_var = draw(hst.sampled_from(poss))
    decls.append(
        f"data y[n] ~ Normal({lik_mean}, {lik_var}) for n <- 0 until N ;"
    )
    body = "\n  ".join(decls)
    return f"(N) => {{\n  {body}\n}}"


@given(random_model(), hst.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_models_compile_and_step(source, seed):
    n = 8
    y = np.random.default_rng(seed).normal(size=n)
    sampler = compile_model(source, {"N": n}, {"y": y})
    rng = Rng(seed)
    state = sampler.init_state(rng)
    lp0 = sampler.log_joint(state)
    assert np.isfinite(lp0), source
    for _ in range(3):
        sampler.step(state, rng)
    lp1 = sampler.log_joint(state)
    assert np.isfinite(lp1), source
    # Supports respected after updates.
    for name, value in state.items():
        v = float(np.asarray(value))
        decl_line = next(
            l for l in source.splitlines() if l.strip().startswith(f"param {name}")
        )
        if "Gamma" in decl_line or "Exponential" in decl_line:
            assert v > 0, (source, name, v)
        if "Beta" in decl_line:
            assert 0 < v < 1, (source, name, v)


@given(random_model())
@settings(max_examples=10, deadline=None)
def test_random_models_are_deterministic_under_seed(source):
    n = 6
    y = np.random.default_rng(0).normal(size=n)
    vals = []
    for _ in range(2):
        sampler = compile_model(source, {"N": n}, {"y": y})
        rng = Rng(123)
        state = sampler.init_state(rng)
        for _ in range(2):
            sampler.step(state, rng)
        vals.append({k: float(np.asarray(v)) for k, v in state.items()})
    assert vals[0] == vals[1]
