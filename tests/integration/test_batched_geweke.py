"""Geweke joint-distribution tests of the batched element drivers.

The batched MH/Slice/ESlice paths replace the per-element loop with
whole-vector sweeps; a bug in the lane masking, the batched acceptance,
or the scatter-accumulated conditional shows up here as |z| in the
tens even when posterior-moment spot checks look fine.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiler import compile_model
from repro.eval.geweke import geweke_test

Z_LIMIT = 4.5

ELEMENTS = """
(N, v0, v) => {
  param mu[n] ~ Normal(0.0, v0) for n <- 0 until N ;
  data y[n] ~ Normal(mu[n], v) for n <- 0 until N ;
}
"""

HYPERS = {"N": 4, "v0": 2.0, "v": 1.0}
DATA = {"y": np.zeros(4)}

TEST_FUNCTIONS = {
    "mean(mu)": lambda s, d: float(np.mean(s["mu"])),
    "mean(mu^2)": lambda s, d: float(np.mean(s["mu"] ** 2)),
    "mean(y)": lambda s, d: float(np.mean(d["y"])),
    "mean(mu*y)": lambda s, d: float(np.mean(s["mu"] * d["y"])),
}


def _assert_batched(schedule):
    sampler = compile_model(ELEMENTS, HYPERS, DATA, schedule=schedule)
    (upd,) = sampler.updates
    assert upd.is_batched, schedule


def _run(schedule, seed):
    _assert_batched(schedule)
    return geweke_test(
        ELEMENTS,
        HYPERS,
        DATA,
        TEST_FUNCTIONS,
        n_marginal=3000,
        n_successive=3000,
        schedule=schedule,
        seed=seed,
    )


def test_geweke_batched_mh():
    res = _run("MH mu", seed=10)
    assert res.max_abs_z() < Z_LIMIT, f"\n{res}"


def test_geweke_batched_slice():
    res = _run("Slice mu", seed=11)
    assert res.max_abs_z() < Z_LIMIT, f"\n{res}"


def test_geweke_batched_eslice():
    res = _run("ESlice mu", seed=12)
    assert res.max_abs_z() < Z_LIMIT, f"\n{res}"
