#!/usr/bin/env python
"""CI smoke test for the inference service.

Starts ``repro serve`` as a subprocess, then checks the three
behaviours the service exists for:

1. Two identical requests: the second must be a compile-cache hit
   (verified from the response's ledger excerpt) and, on the process
   executor, land on the same warm-pool worker pids.
2. A deadline-limited request: returns a partial-but-valid result
   (``stopped_early`` + checkpoint) within the budget plus slack.
3. Resuming the deadline-limited request by id: completes it and the
   finished draws match a never-interrupted reference bitwise.

Plus warmup-through-deadline resume (4), schedule tuning (5), and the
observability stack (6): the Prometheus exposition parses and counts
requests, the structured event log correlates one request id across
parent and worker pids, and killed/failed requests dump
flight-recorder post-mortem artifacts.

Leaves the per-request reports, the event log, and any flight-recorder
post-mortems on disk for CI upload.

Usage: PYTHONPATH=src python tools/service_smoke.py [--artifact-dir DIR]
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import subprocess
import sys
import tempfile
import time

import numpy as np

MODEL = """
(K : int, N : int, mu_0 : real, v_0 : real, v : real) => {
  param mu ~ Normal(mu_0, v_0) ;
  data y[N] : real ;
  y[i] ~ Normal(mu, v) for i <- 0 until N ;
}
"""


def wait_for_port(proc) -> int:
    """Read the announced port off the server's first stdout line."""
    deadline = time.monotonic() + 60
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "serving on" in line:
            return int(line.rsplit(":", 1)[1])
        if proc.poll() is not None:
            break
        time.sleep(0.05)
    raise SystemExit(f"server did not announce a port (last line: {line!r})")


def call(port, method, path, body=None, timeout=120):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            method, path, body=json.dumps(body) if body is not None else None
        )
        resp = conn.getresponse()
        data = resp.read()
    finally:
        conn.close()
    if resp.headers.get("Content-Type", "").startswith("application/json"):
        return resp.status, json.loads(data)
    return resp.status, data


def model_source():
    try:
        from repro.eval import models

        return models.NORMAL_NORMAL
    except Exception:
        return MODEL


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--artifact-dir", default="SERVICE_artifacts")
    args = parser.parse_args()
    os.makedirs(args.artifact_dir, exist_ok=True)

    rng = np.random.default_rng(0)
    data = {
        "N": 40, "mu_0": 0.0, "v_0": 25.0, "v": 1.0,
        "y": rng.normal(2.0, 1.0, size=40).tolist(),
    }
    executor = "processes" if (os.cpu_count() or 1) >= 2 else "sequential"
    payload = {
        "model_source": model_source(),
        "data": data,
        "query": {
            "samples": 200, "chains": 2, "seed": 7, "chunk_size": 25,
            "executor": executor,
        },
    }

    ckpt_dir = tempfile.mkdtemp(prefix="repro-smoke-ckpt-")
    log_path = os.path.join(args.artifact_dir, "SERVICE_events.jsonl")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--checkpoint-dir", ckpt_dir,
            "--artifact-dir", args.artifact_dir,
            "--log-json", log_path, "--log-level", "debug",
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    try:
        port = wait_for_port(server)
        print(f"service up on port {port} (executor={executor})")

        # 1. Identical requests: second is a compile-cache hit.
        status, first = call(
            port, "POST", "/v1/infer", dict(payload, request_id="warm-1")
        )
        assert status == 200 and first["complete"], first
        status, second = call(
            port, "POST", "/v1/infer", dict(payload, request_id="warm-2")
        )
        assert status == 200, second
        assert second["cache"]["compile_cache_hit"], (
            "second identical request recompiled"
        )
        ledger = second["cache"]["ledger"]
        assert any(e["choice"] == "hit" for e in ledger), ledger
        if executor == "processes":
            assert (
                second["cache"]["pool_pids"] == first["cache"]["pool_pids"]
            ), "worker pool was respawned between identical requests"
        print(
            "compile cache: second request hit "
            f"(pids {second['cache'].get('pool_pids')})"
        )

        # 2. Deadline-limited request: partial result inside budget+slack.
        deadline_s = 0.05
        big = dict(payload, request_id="deadline-1")
        big["query"] = dict(
            payload["query"], samples=2_000_000, chunk_size=200,
            executor="sequential",
        )
        big["budget"] = {"deadline_s": deadline_s}
        t0 = time.monotonic()
        status, partial = call(port, "POST", "/v1/infer", big)
        elapsed = time.monotonic() - t0
        assert status == 200, partial
        assert partial["stopped_early"] and partial["stop_reason"] == "deadline"
        assert partial["checkpointed"], partial
        sampling_s = partial["timing"]["sampling_s"]
        slack = deadline_s * 1.1 + 0.5  # chunk-boundary + scheduling slack
        assert sampling_s <= slack, (
            f"deadline {deadline_s}s but sampled for {sampling_s:.3f}s"
        )
        print(
            f"deadline: kept {partial['draws']['kept']} draws, "
            f"sampling {sampling_s*1e3:.0f} ms "
            f"(budget {deadline_s*1e3:.0f} ms, wall {elapsed:.2f} s)"
        )

        # 3. Bitwise resume: finish a budget-capped request and compare
        # against a never-interrupted run of the same seed.
        ref = dict(payload, return_draws=True)
        status, reference = call(port, "POST", "/v1/infer", ref)
        assert status == 200, reference
        capped = dict(payload, request_id="resume-1")
        capped["budget"] = {"max_draws": 60}
        status, leg1 = call(port, "POST", "/v1/infer", capped)
        assert status == 200 and leg1["stop_reason"] == "draw_budget", leg1
        capped = dict(payload, request_id="resume-1", return_draws=True)
        status, leg2 = call(port, "POST", "/v1/infer", capped)
        assert status == 200 and leg2["complete"] and leg2["resumed"], leg2
        for chain_ref, chain_res in zip(
            reference["draws_data"], leg2["draws_data"]
        ):
            for name in chain_ref:
                np.testing.assert_array_equal(
                    np.asarray(chain_res[name]), np.asarray(chain_ref[name])
                )
        print("resume: draws bitwise-identical to uninterrupted run")

        # 4. Adaptive warmup through the deadline/checkpoint machinery:
        # a NUTS request with warmup exhausts its deadline mid-warmup
        # (zero kept draws), checkpoints the adaptation state, and the
        # resumed leg finishes bitwise-identical to a never-interrupted
        # run of the same geometry.
        nuts_query = dict(
            payload["query"], samples=40, chunk_size=5, seed=11,
            executor="sequential", schedule="NUTS mu",
            warmup=3000, target_accept=0.8,
        )
        nuts_ref = dict(payload, return_draws=True)
        nuts_ref["query"] = nuts_query
        status, nuts_reference = call(port, "POST", "/v1/infer", nuts_ref)
        assert status == 200 and nuts_reference["complete"], nuts_reference
        interrupted = dict(payload, request_id="adapt-1")
        interrupted["query"] = nuts_query
        interrupted["budget"] = {"deadline_s": 0.05}
        status, mid = call(port, "POST", "/v1/infer", interrupted)
        assert status == 200, mid
        assert mid["stopped_early"] and mid["stop_reason"] == "deadline", mid
        assert mid["checkpointed"], mid
        kept = mid["draws"]["kept"]
        kept_per_chain = kept if isinstance(kept, list) else [kept]
        assert all(k == 0 for k in kept_per_chain), (
            f"expected the deadline to land mid-warmup: {mid['draws']}"
        )
        resume_leg = dict(payload, request_id="adapt-1", return_draws=True)
        resume_leg["query"] = nuts_query
        status, done = call(port, "POST", "/v1/infer", resume_leg)
        assert status == 200 and done["complete"] and done["resumed"], done
        for chain_ref, chain_res in zip(
            nuts_reference["draws_data"], done["draws_data"]
        ):
            for name in chain_ref:
                np.testing.assert_array_equal(
                    np.asarray(chain_res[name]), np.asarray(chain_ref[name])
                )
        print(
            "adaptive warmup: deadline landed mid-warmup, "
            "resumed draws bitwise-identical"
        )

        # 5. Per-request schedule tuning: two identical tuned requests;
        # the first runs the trial-sweep tournament, the second must be
        # answered from the shape-keyed verdict cache.
        tuned = dict(payload, request_id="tuned-1")
        tuned["query"] = dict(
            payload["query"], samples=40, executor="sequential", tune=True,
        )
        status, tuned_1 = call(port, "POST", "/v1/infer", tuned)
        assert status == 200 and tuned_1["complete"], tuned_1
        assert tuned_1["tuning"]["cache"] == "miss", tuned_1["tuning"]
        tuned["request_id"] = "tuned-2"
        status, tuned_2 = call(port, "POST", "/v1/infer", tuned)
        assert status == 200, tuned_2
        assert tuned_2["tuning"]["cache"] == "hit", (
            "second identical tuned request re-ran the tournament"
        )
        assert tuned_2["cache"]["tuning_cache_hit"], tuned_2["cache"]
        assert tuned_2["tuning"]["schedule"] == tuned_1["tuning"]["schedule"]
        print(
            "schedule tuning: winner "
            f"{tuned_1['tuning']['schedule']!r} "
            f"(margin {tuned_1['tuning']['margin']:+.1%}), "
            "second request hit the verdict cache"
        )

        # 6. Observability: the Prometheus exposition, the correlated
        # event log, and the flight recorder's post-mortem artifacts.
        flight = dict(payload, request_id="flight-1")
        flight["query"] = dict(
            payload["query"], samples=2_000_000, chunk_size=200,
        )
        flight["budget"] = {"deadline_s": 0.05}
        status, killed = call(port, "POST", "/v1/infer", flight)
        assert status == 200 and killed["stop_reason"] == "deadline", killed

        broken = dict(payload, request_id="broken-1")
        broken["model_source"] = "this is not a model"
        status, err = call(port, "POST", "/v1/infer", broken)
        assert status == 400, err

        status, prom = call(port, "GET", "/v1/metrics?format=prometheus")
        assert status == 200 and isinstance(prom, bytes), type(prom)
        text = prom.decode()
        assert text.endswith("# EOF\n"), "exposition must end with # EOF"
        lines = text.splitlines()

        def sample_value(name):
            for line in lines:
                if line.startswith(name + " "):
                    return float(line.split()[-1])
            raise AssertionError(f"{name} missing from the exposition")

        assert sample_value("repro_requests_total") > 0
        assert sample_value("repro_request_errors_total") >= 1
        assert sample_value("repro_flight_dumps_total") >= 2
        bucket_families = {
            line.split("_bucket{", 1)[0] for line in lines
            if "_bucket{" in line
        }
        assert len(bucket_families) >= 4, bucket_families

        from glob import glob

        dumps = glob(os.path.join(args.artifact_dir, "*.flight.json"))
        assert len(dumps) >= 2, dumps
        killed_dump = next(
            d for d in dumps
            if os.path.basename(d).startswith("flight-1")
        )
        doc = json.load(open(killed_dump))
        assert doc["reason"] == "deadline" and doc["entries"], doc["reason"]
        assert {e["rid"] for e in doc["events"]} == {"flight-1"}
        dump_pids = {e["pid"] for e in doc["events"]}
        if executor == "processes":
            assert len(dump_pids) >= 2, (
                f"expected parent + worker pids in the trail: {dump_pids}"
            )
        err_dump = next(
            d for d in dumps
            if os.path.basename(d).startswith("broken-1")
        )
        doc = json.load(open(err_dump))
        assert doc["reason"] == "error" and doc["error"]["traceback"]

        with open(log_path) as f:
            records = [json.loads(line) for line in f]
        flight_recs = [r for r in records if r.get("rid") == "flight-1"]
        assert flight_recs, "the event log must carry the request's events"
        log_pids = {r["pid"] for r in flight_recs}
        if executor == "processes":
            assert len(log_pids) >= 2, (
                f"one grep for the rid should span processes: {log_pids}"
            )
        print(
            f"observability: {len(bucket_families)} histogram families, "
            f"{len(dumps)} flight dumps, rid 'flight-1' spans "
            f"{len(log_pids)} pid(s) in {len(flight_recs)} events"
        )

        # Artifacts + metrics sanity.
        status, report = call(port, "GET", "/v1/report/warm-1")
        assert status == 200 and report.lstrip().startswith(b"<!DOCTYPE html>")
        status, metrics = call(port, "GET", "/v1/metrics")
        assert metrics["requests"] >= 8
        assert metrics["errors"] >= 1
        assert metrics["flight_dumps"] >= 2
        assert any(
            e["request_id"] == "broken-1" for e in metrics["recent_errors"]
        )
        assert metrics["compile_cache"]["hits"] >= 4
        assert metrics["stops"]["deadline"] >= 1
        assert metrics["tuning_cache"]["requests"] >= 2
        assert metrics["tuning_cache"]["hits"] >= 1
        with open(
            os.path.join(args.artifact_dir, "SERVICE_metrics.json"), "w"
        ) as f:
            json.dump(metrics, f, indent=2)
        print(
            f"metrics: {metrics['requests']} requests, "
            f"{metrics['compile_cache']['hits']} cache hits, "
            f"{metrics['sweeps_per_s']:.0f} sweeps/s"
        )

        status, _ = call(port, "POST", "/v1/shutdown")
        assert status == 200
        server.wait(timeout=30)
        print("service smoke: OK")
        return 0
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()
        else:
            sys.stdout.write(server.stdout.read() or "")


if __name__ == "__main__":
    raise SystemExit(main())
