#!/usr/bin/env python
"""Repository hygiene: report unused imports across the source tree.

A tiny AST-based checker (the environment has no external linters).
Used by ``tests/core/test_hygiene.py`` so dead imports fail CI.
"""

from __future__ import annotations

import ast
import pathlib
import sys


def unused_imports(path: pathlib.Path) -> list[str]:
    tree = ast.parse(path.read_text())
    imported: dict[str, int] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = (alias.asname or alias.name).split(".")[0]
                imported[name] = node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue  # feature flags are used implicitly
            for alias in node.names:
                if alias.name == "*":
                    continue
                imported[alias.asname or alias.name] = node.lineno

    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            # Attribute chains use their base name.
            base = node
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name):
                used.add(base.id)
    # Names re-exported via __all__ count as used.
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant):
                                used.add(str(elt.value))
    # Docstring references like :mod:`x` are not code usage; ignore them.
    out = []
    for name, lineno in sorted(imported.items(), key=lambda kv: kv[1]):
        if name not in used:
            out.append(f"{path}:{lineno}: unused import {name!r}")
    return out


def main(root: str = "src") -> int:
    problems: list[str] = []
    for path in sorted(pathlib.Path(root).rglob("*.py")):
        problems.extend(unused_imports(path))
    for p in problems:
        print(p)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(*sys.argv[1:]))
