"""Exception hierarchy for the repro compiler and runtime.

Every error raised on purpose by this package derives from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause.  The sub-classes mirror the compiler pipeline: parse
errors from the frontend, type errors from the checkers, schedule errors
from the middle-end, and codegen/runtime errors from the backend.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ParseError(ReproError):
    """A model source string or schedule string failed to parse.

    Carries the source location (1-based line and column) when known.
    """

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        if line is not None:
            message = f"{line}:{col if col is not None else '?'}: {message}"
        super().__init__(message)


class TypeCheckError(ReproError):
    """A model or IL term is ill-typed (Section 3.1 type system)."""


class ScheduleError(ReproError):
    """A user-supplied MCMC schedule cannot be realised for the model.

    The paper (Section 4.2) requires the compiler to *check* that a
    requested schedule is implementable and fail otherwise; this is the
    failure.
    """


class ConjugacyError(ReproError):
    """A Gibbs update was requested but no conjugacy relation applies."""


class LoweringError(ReproError):
    """An IL-to-IL lowering step encountered a term it cannot translate."""


class CodegenError(ReproError):
    """The backend could not emit code for a Low--/Blk IL term."""


class SizeInferenceError(ReproError):
    """Static size inference (Section 5.2) could not bound an allocation."""


class RuntimeFailure(ReproError):
    """A compiled sampler failed while executing (bad inputs, NaNs, ...)."""
