"""Checkpoint/resume for service requests.

A :class:`Checkpoint` freezes a multi-chain run mid-flight: per chain
the packed parameter state after the last executed sweep, the RNG
state-spec, the kept-draw/sweep counters, and the draws taken so far —
every piece already picklable (the same properties the worker-process
executor relies on).  :class:`CheckpointStore` persists one checkpoint
per request id, so a deadline-exhausted or interrupted request can be
continued by a follow-up call with the same id and finish bit-for-bit
identical to a single uninterrupted run.

The ``spec_key`` (compile-cache fingerprint) rides along and is checked
on resume: a checkpoint only resumes onto the exact model shape it was
taken from.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError


def _copy_draws(samples: dict, n_kept: int) -> dict:
    """Detach one chain's kept draws from their (possibly shared-memory)
    storage: dense parameters copy the first ``n_kept`` rows, ragged
    fallbacks copy the list."""
    out: dict = {}
    for name, vals in samples.items():
        if isinstance(vals, np.ndarray):
            out[name] = np.array(vals[:n_kept])
        else:
            out[name] = list(vals[:n_kept])
    return out


@dataclass
class ChainCheckpoint:
    """One chain's resume point plus the draws it already took."""

    state: dict
    rng_spec: dict
    n_kept: int
    sweeps_run: int
    draws: dict = field(repr=False)
    #: Warmup adaptation state (``SampleResult.adapt_state``), present
    #: when the chain was frozen during or after an adaptive run; a
    #: chain stopped mid-warmup resumes adapting bitwise-identically.
    adapt_state: dict | None = None


@dataclass
class Checkpoint:
    """A whole request's frozen sampling state.

    ``num_samples``/``burn_in``/``thin``/``seed`` (and, for adaptive
    runs, ``warmup``/``target_accept``) pin the run geometry: a resumed
    leg must target the same totals or the sweep/thinning alignment
    (and therefore bitwise reproducibility) breaks.
    """

    request_id: str
    spec_key: str
    seed: int
    n_chains: int
    num_samples: int
    burn_in: int
    thin: int
    collect: tuple | None
    chains: list[ChainCheckpoint]
    created_at: float = 0.0
    warmup: int = 0
    target_accept: float = 0.8

    @classmethod
    def from_results(
        cls,
        request_id: str,
        spec_key: str,
        results,
        *,
        seed: int,
        num_samples: int,
        burn_in: int = 0,
        thin: int = 1,
        collect=None,
        warmup: int = 0,
        target_accept: float = 0.8,
    ) -> "Checkpoint":
        """Freeze the per-chain ``SampleResult`` list of a (partial)
        run.  Requires results carrying ``final_state``/``rng_state``
        (every run since resume support does)."""
        chains = []
        for r in results:
            if r.final_state is None or r.rng_state is None:
                raise ReproError(
                    "cannot checkpoint a result without final_state/rng_state"
                )
            chains.append(
                ChainCheckpoint(
                    state=r.final_state,
                    rng_spec=r.rng_state,
                    n_kept=r.n_kept,
                    sweeps_run=r.sweeps_run,
                    draws=_copy_draws(r.samples, r.n_kept),
                    adapt_state=r.adapt_state,
                )
            )
        return cls(
            request_id=request_id,
            spec_key=spec_key,
            seed=seed,
            n_chains=len(chains),
            num_samples=num_samples,
            burn_in=burn_in,
            thin=thin,
            collect=tuple(collect) if collect is not None else None,
            chains=chains,
            created_at=time.time(),
            warmup=warmup,
            target_accept=target_accept,
        )

    # -- reading -----------------------------------------------------------

    @property
    def min_kept(self) -> int:
        return min((c.n_kept for c in self.chains), default=0)

    @property
    def complete(self) -> bool:
        """True when every chain already holds all requested draws."""
        return all(c.n_kept >= self.num_samples for c in self.chains)

    def resume_points(self):
        """One :class:`repro.core.chains.ChainResume` per chain, ready
        to pass to ``stream_chains(..., resume=...)``."""
        from repro.core.chains import ChainResume

        return [
            ChainResume(
                init=c.state,
                rng_spec=c.rng_spec,
                start_sweep=c.sweeps_run,
                start_kept=c.n_kept,
                draws=c.draws,
                adapt_state=getattr(c, "adapt_state", None),
            )
            for c in self.chains
        ]

    def chain_samples(self) -> list[dict]:
        """Per-chain draws-so-far dicts (for summaries of a checkpoint
        that is already complete)."""
        return [c.draws for c in self.chains]


def _safe_name(request_id: str) -> str:
    """A filesystem-safe, collision-resistant file stem for an
    arbitrary request id."""
    digest = hashlib.sha256(request_id.encode()).hexdigest()[:16]
    stem = "".join(c if c.isalnum() or c in "-_." else "_" for c in request_id)
    return f"{stem[:48]}-{digest}"


class CheckpointStore:
    """Pickle-per-request persistence under one directory.

    Writes are atomic (temp file + rename) so a crash mid-save never
    leaves a truncated checkpoint behind.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def path(self, request_id: str) -> str:
        return os.path.join(self.root, _safe_name(request_id) + ".ckpt")

    def save(self, checkpoint: Checkpoint) -> str:
        path = self.path(checkpoint.request_id)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(checkpoint, f, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
            raise
        return path

    def load(self, request_id: str) -> Checkpoint | None:
        path = self.path(request_id)
        try:
            with open(path, "rb") as f:
                return pickle.load(f)
        except FileNotFoundError:
            return None

    def delete(self, request_id: str) -> None:
        try:
            os.unlink(self.path(request_id))
        except FileNotFoundError:
            pass

    def list_ids(self) -> list[str]:
        """Request ids of every stored checkpoint (best effort: ids are
        read back from the pickles)."""
        out = []
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".ckpt"):
                continue
            try:
                with open(os.path.join(self.root, name), "rb") as f:
                    out.append(pickle.load(f).request_id)
            except Exception:
                continue
        return out
