"""``repro.serve``: the long-lived asynchronous inference service.

The paper compiles a model once and samples forever; this package turns
that into a server.  An asyncio front end (:class:`~repro.serve.server.
ReproServer`, stdlib-only HTTP over ``asyncio.start_server``) accepts
JSON ``(model_source, data, query, budget)`` requests, keys them by the
compile-cache fingerprint so repeat model shapes skip compilation and
reuse the warm worker pool, shards chains over the pool via the
streaming engine, and enforces per-request deadlines: sample in chunks
until the time/draw budget is exhausted or online R-hat converges, then
answer with a draws summary, a convergence verdict, and the per-request
HTML/JSON inference report as the observability artifact.

Interrupted or budget-exhausted requests checkpoint their chain state
(:class:`~repro.serve.checkpoint.Checkpoint`: packed parameter state,
RNG state-spec, kept-draw counts — all picklable) keyed by request id;
a follow-up call with the same id resumes bit-for-bit, so the finished
draws are identical to a single uninterrupted run with the same seed.
"""

from repro.serve.checkpoint import Checkpoint, CheckpointStore, ChainCheckpoint
from repro.serve.protocol import Budget, InferRequest, ProtocolError
from repro.serve.session import InferenceService
from repro.serve.server import ReproServer

__all__ = [
    "Budget",
    "ChainCheckpoint",
    "Checkpoint",
    "CheckpointStore",
    "InferRequest",
    "InferenceService",
    "ProtocolError",
    "ReproServer",
]
