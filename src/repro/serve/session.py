"""The synchronous request engine behind the service.

:class:`InferenceService.handle` takes one parsed
:class:`~repro.serve.protocol.InferRequest` end to end: compile (or hit
the compile cache), optionally resume the request's checkpoint, stream
chains in chunks while enforcing the budget (wall-clock deadline, new
kept-draw cap, online R-hat target), then answer with a summary, a
convergence verdict, and — when the run stopped short — a checkpoint so
a follow-up call with the same ``request_id`` continues bit-for-bit.

``handle`` is deliberately synchronous and thread-safe per call: the
asyncio server runs it on a thread pool (``loop.run_in_executor``) and
receives progress via ``progress_cb``, which it marshals back into the
event loop.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.chains import stream_chains
from repro.core.compiler import (
    compile_cache_stats,
    compile_model,
    spec_cache_key,
)
from repro.core.options import CompileOptions
from repro.serve.checkpoint import Checkpoint, CheckpointStore, _safe_name
from repro.serve.protocol import InferRequest, ProtocolError, coerce_values
from repro.telemetry.flight import (
    DEFAULT_CAPACITY,
    DEFAULT_DIVERGENCE_WARN,
    FlightRecorder,
)
from repro.telemetry.obslog import log_event, request_context
from repro.telemetry.requests import ServiceMetrics

#: Verdict threshold when the request sets no explicit target.
DEFAULT_RHAT = 1.05
#: At most this many scalar components per parameter enter the summary.
MAX_COMPONENTS = 4
#: Minimum common draws before R-hat is considered meaningful.
MIN_RHAT_DRAWS = 8


def _components(value) -> list[tuple[str, np.ndarray]]:
    """Flatten one parameter's per-draw array ``(n, *shape)`` into up to
    :data:`MAX_COMPONENTS` scalar series, labelled by flat index."""
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim <= 1:
        return [("", arr)]
    flat = arr.reshape(arr.shape[0], -1)
    take = min(flat.shape[1], MAX_COMPONENTS)
    return [(f"[{j}]", flat[:, j]) for j in range(take)]


def summarize_chains(chain_samples: list[dict]) -> dict:
    """Per-parameter posterior summary over the chains' common prefix:
    mean/std pooled across chains plus split R-hat per tracked
    component (``None`` with a single chain or too few draws).

    Ragged parameters (list storage) are reported by draw count only.
    """
    if not chain_samples:
        return {}
    out: dict = {}
    names = list(chain_samples[0].keys())
    for name in names:
        per_chain = [cs[name] for cs in chain_samples]
        if not all(isinstance(v, np.ndarray) for v in per_chain):
            n = min(len(v) for v in per_chain)
            out[name] = {"draws": n, "ragged": True}
            continue
        n = min(v.shape[0] for v in per_chain)
        entry: dict = {"draws": int(n)}
        if n == 0:
            out[name] = entry
            continue
        comps = {}
        worst = None
        for j, (suffix, _) in enumerate(_components(per_chain[0][:n])):
            series = [_components(v[:n])[j][1] for v in per_chain]
            pooled = np.concatenate(series)
            comp: dict = {
                "mean": float(pooled.mean()),
                "std": float(pooled.std()),
            }
            if len(per_chain) >= 2 and n >= MIN_RHAT_DRAWS:
                from repro.eval.metrics import (
                    split_potential_scale_reduction,
                )

                rhat = float(
                    split_potential_scale_reduction(np.stack(series))
                )
                comp["rhat"] = rhat
                if np.isfinite(rhat):
                    worst = rhat if worst is None else max(worst, rhat)
            comps[name + suffix] = comp
        entry["components"] = comps
        if worst is not None:
            entry["worst_rhat"] = worst
        out[name] = entry
    return out


def _worst_rhat(summary: dict) -> float | None:
    worst = None
    for entry in summary.values():
        r = entry.get("worst_rhat")
        if r is not None:
            worst = r if worst is None else max(worst, r)
    return worst


def _verdict(summary: dict, n_chains: int, threshold: float) -> str:
    """``no_draws`` / ``unknown`` / ``converged`` / ``not_converged``."""
    draws = [e.get("draws", 0) for e in summary.values()]
    if not draws or max(draws) == 0:
        return "no_draws"
    worst = _worst_rhat(summary)
    if worst is None or n_chains < 2:
        return "unknown"
    return "converged" if worst <= threshold else "not_converged"


class InferenceService:
    """Compile-once, sample-forever request engine.

    ``checkpoint_dir`` enables checkpoint/resume for requests that
    carry a ``request_id``; ``artifact_dir`` enables the per-request
    HTML/JSON inference report.  Either may be ``None`` to disable the
    feature.
    """

    def __init__(
        self,
        checkpoint_dir: str | None = None,
        artifact_dir: str | None = None,
        metrics: ServiceMetrics | None = None,
        divergence_warn: float = DEFAULT_DIVERGENCE_WARN,
        flight_capacity: int = DEFAULT_CAPACITY,
    ):
        self.checkpoints = (
            CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        )
        self.artifact_dir = artifact_dir
        if artifact_dir:
            import os

            os.makedirs(artifact_dir, exist_ok=True)
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.divergence_warn = divergence_warn
        self.flight_capacity = flight_capacity
        #: Live flight recorders by rid, bounded, for the GET route.
        self._flights: dict[str, FlightRecorder] = {}
        self._flights_cap = 64

    # -- request pipeline --------------------------------------------------

    def handle(
        self, req: InferRequest, enqueued_at: float | None = None,
        progress_cb=None, rid: str | None = None,
    ) -> dict:
        """Run one request to its budget boundary and build the JSON
        response.  Raises :class:`ProtocolError` for request-shaped
        failures (bad data, checkpoint mismatch); compiler/runtime
        errors propagate for the server to map to a 400.

        ``rid`` is the correlation id every event logged on behalf of
        this request carries (defaults to ``req.request_id``); the
        whole pipeline runs inside its :func:`request_context`, and a
        :class:`FlightRecorder` rides along, dumped to a post-mortem
        artifact if the request errors, diverges past the threshold,
        or is killed by its deadline.
        """
        if rid is None:
            rid = req.request_id
        flight = FlightRecorder(
            rid or "anonymous",
            capacity=self.flight_capacity,
            divergence_warn=self.divergence_warn,
        )
        self._remember_flight(rid, flight)
        with request_context(rid):
            try:
                return self._handle(req, enqueued_at, progress_cb, rid, flight)
            except Exception as exc:
                self._dump_flight(flight, "error", rid=rid, error=exc)
                raise

    def _handle(
        self, req: InferRequest, enqueued_at, progress_cb, rid, flight,
    ) -> dict:
        t0 = time.monotonic()
        queue_wait = max(0.0, t0 - enqueued_at) if enqueued_at else 0.0

        # Compile (or replay the cache entry keyed on model + data).
        stats = compile_cache_stats()
        hits_before = stats.hits
        values = coerce_values(req.values)
        from repro.cli import split_inputs

        hypers, data = split_inputs(req.model_source, values)
        tune_cache_hit = None
        if req.tune:
            from repro.tune import autotune, tuning_cache_stats

            tune_stats = tuning_cache_stats()
            tune_hits_before = tune_stats.hits
            sampler = autotune(
                req.model_source, hypers, data,
                options=CompileOptions(target="cpu"),
                schedule=req.schedule,
                executor=req.executor,
            )
            tune_cache_hit = tune_stats.hits > tune_hits_before
        else:
            sampler = compile_model(
                req.model_source, hypers, data,
                options=CompileOptions(target="cpu"),
                schedule=req.schedule,
            )
        cache_hit = stats.hits > hits_before
        compile_s = time.monotonic() - t0
        spec_key = (
            spec_cache_key(sampler.spec) if sampler.spec is not None else None
        )
        log_event(
            "request.compiled", rid=rid, cache_hit=cache_hit,
            compile_s=round(compile_s, 6), tuned=req.tune,
            spec_key=spec_key[:16] if spec_key else None,
        )

        checkpoint = self._load_checkpoint(req, spec_key)
        if checkpoint is not None and checkpoint.complete:
            return self._finish_complete_checkpoint(
                req, checkpoint, spec_key, cache_hit, compile_s, queue_wait,
                tune_cache_hit,
            )
        resume = checkpoint.resume_points() if checkpoint is not None else None
        base_kept = checkpoint.min_kept if checkpoint is not None else 0

        # Sample in chunks until done or the budget says stop.
        budget = req.budget
        deadline = (
            t0 + budget.deadline_s if budget.deadline_s is not None else None
        )
        stream = stream_chains(
            sampler,
            n_chains=req.chains,
            num_samples=req.samples,
            burn_in=req.burn_in,
            thin=req.thin,
            seed=req.seed,
            collect=req.collect,
            executor=req.executor,
            collect_stats=True,
            chunk_size=req.chunk_size,
            early_stop_rhat=budget.target_rhat,
            resume=resume,
            warmup=req.warmup,
            target_accept=req.target_accept,
        )
        kept = [
            r.start_kept if r is not None else 0
            for r in (resume or [None] * req.chains)
        ]
        stop_reason = None
        t_sample = time.monotonic()
        for chunk in stream:
            kept[chunk.chain] = chunk.stop
            worst = (
                stream.monitor.worst_rhat()
                if stream.monitor is not None else None
            )
            if flight.record_chunk(chunk, worst_rhat=worst):
                log_event(
                    "divergence.threshold", level="warning", rid=rid,
                    rate=round(flight.divergence_rate, 4),
                    threshold=flight.divergence_warn,
                )
            if progress_cb is not None:
                progress_cb(self._progress_event(req, stream, chunk, kept))
            if stop_reason is not None:
                continue
            if deadline is not None and time.monotonic() >= deadline:
                stop_reason = "deadline"
                stream.request_stop()
            elif (
                budget.max_draws is not None
                and min(kept) - base_kept >= budget.max_draws
            ):
                stop_reason = "draw_budget"
                stream.request_stop()
            if stop_reason is not None:
                log_event("budget.stop", rid=rid, reason=stop_reason)
        sampling_s = time.monotonic() - t_sample
        results = stream.results
        if stop_reason is None and stream.stopped_early:
            stop_reason = "converged"
            log_event("budget.stop", rid=rid, reason=stop_reason)

        # Summarize, judge, checkpoint, report.
        summary = summarize_chains(
            [r.samples for r in results if r is not None]
        )
        threshold = (
            budget.target_rhat
            if budget.target_rhat is not None
            else DEFAULT_RHAT
        )
        verdict = _verdict(summary, req.chains, threshold)
        complete = all(
            r is not None and r.n_kept >= req.samples for r in results
        )
        checkpointed = False
        if not complete and self.checkpoints is not None and req.request_id:
            self.checkpoints.save(
                Checkpoint.from_results(
                    req.request_id, spec_key or "", results,
                    seed=req.seed, num_samples=req.samples,
                    burn_in=req.burn_in, thin=req.thin, collect=req.collect,
                    warmup=req.warmup, target_accept=req.target_accept,
                )
            )
            checkpointed = True
            log_event(
                "checkpoint.saved", rid=rid,
                kept=[r.n_kept if r is not None else 0 for r in results],
            )
        elif complete and self.checkpoints is not None and req.request_id:
            self.checkpoints.delete(req.request_id)

        response = {
            "status": "ok",
            "request_id": req.request_id,
            "verdict": verdict,
            "complete": complete,
            "stopped_early": not complete,
            "stop_reason": stop_reason,
            "resumed": resume is not None,
            "checkpointed": checkpointed,
            "chains": req.chains,
            "draws": {
                "requested": req.samples,
                "kept": [r.n_kept if r is not None else 0 for r in results],
                "new": max(0, min(kept) - base_kept),
            },
            "timing": {
                "queue_wait_s": queue_wait,
                "compile_s": compile_s,
                "sampling_s": sampling_s,
                "total_s": time.monotonic() - t0,
            },
            "cache": self._cache_block(
                sampler, stream, spec_key, cache_hit, tune_cache_hit
            ),
            "summary": summary,
        }
        if req.tune and sampler.tune_report is not None:
            report = sampler.tune_report
            response["tuning"] = {
                "cache": report["cache"],
                "schedule": report["winner"]["schedule"],
                "options": report["winner"]["options"],
                "margin": report.get("margin"),
                "tuning_seconds": report.get("tuning_seconds"),
            }
        if stream.monitor is not None:
            response["monitor"] = {
                "worst_rhat": stream.monitor.worst_rhat(),
                "min_ess": stream.monitor.min_ess(),
            }
        if req.return_draws:
            response["draws_data"] = [
                dict(r.samples) for r in results if r is not None
            ]
        if req.report and self.artifact_dir:
            response["report"] = self._write_report(req, sampler, results)

        if stop_reason == "deadline":
            self._dump_flight(flight, "deadline", rid=rid)
        elif flight.exceeded:
            self._dump_flight(flight, "divergence", rid=rid)

        sweeps = sum(r.sweeps_run for r in results if r is not None)
        total_s = time.monotonic() - t0
        self.metrics.record(
            request_id=req.request_id,
            queue_wait_s=queue_wait,
            compile_s=compile_s,
            sampling_s=sampling_s,
            cache_hit=cache_hit,
            sweeps=sweeps,
            draws=sum(r.n_kept for r in results if r is not None),
            stop_reason=stop_reason,
            resumed=resume is not None,
            checkpointed=checkpointed,
            tuned=req.tune,
            tune_cache_hit=tune_cache_hit,
            total_s=queue_wait + total_s,
            divergence_rate=(
                flight.divergence_rate if flight.sweeps else None
            ),
        )
        log_event(
            "request.completed", rid=rid, verdict=verdict,
            stop_reason=stop_reason, sweeps=sweeps,
            draws=sum(r.n_kept for r in results if r is not None),
            total_s=round(total_s, 6),
        )
        return response

    # -- flight recorder ---------------------------------------------------

    def _remember_flight(self, rid: str | None, flight) -> None:
        if rid is None:
            return
        while len(self._flights) >= self._flights_cap:
            self._flights.pop(next(iter(self._flights)))
        self._flights[rid] = flight

    def _flight_path(self, rid: str | None) -> str | None:
        if not self.artifact_dir or not rid:
            return None
        import os

        return os.path.join(self.artifact_dir, _safe_name(rid) + ".flight.json")

    def _dump_flight(self, flight, reason: str, rid=None, error=None) -> None:
        """Write the post-mortem artifact (best effort: a dump failure
        must never mask the request's own outcome)."""
        path = self._flight_path(rid)
        if path is None:
            return
        from repro.telemetry.obslog import get_event_log

        try:
            flight.dump(
                path, reason, error=error,
                events=get_event_log().recent(rid),
            )
            self.metrics.record_flight_dump()
            log_event(
                "flight.dumped", level="warning", rid=rid,
                reason=reason, path=path,
            )
        except OSError:
            pass

    def flight_record(self, rid: str) -> dict | None:
        """The flight-recorder view for one request id: the post-mortem
        artifact when one was dumped, else a live snapshot of the
        (possibly still recording) ring, else ``None``."""
        path = self._flight_path(rid)
        if path is not None:
            import json
            import os

            if os.path.exists(path):
                with open(path) as f:
                    return json.load(f)
        flight = self._flights.get(rid)
        return flight.snapshot() if flight is not None else None

    # -- pieces ------------------------------------------------------------

    def _load_checkpoint(
        self, req: InferRequest, spec_key: str | None
    ) -> Checkpoint | None:
        if (
            self.checkpoints is None
            or req.request_id is None
            or not req.resume
        ):
            return None
        ckpt = self.checkpoints.load(req.request_id)
        if ckpt is None:
            return None
        mismatches = []
        if spec_key is not None and ckpt.spec_key != spec_key:
            mismatches.append("model/data fingerprint")
        for attr, want in (
            ("n_chains", req.chains),
            ("num_samples", req.samples),
            ("burn_in", req.burn_in),
            ("thin", req.thin),
            ("seed", req.seed),
            ("warmup", req.warmup),
            ("target_accept", req.target_accept),
        ):
            if getattr(ckpt, attr, want) != want:
                mismatches.append(attr)
        if (ckpt.collect or None) != (req.collect or None):
            mismatches.append("collect")
        if mismatches:
            raise ProtocolError(
                f"checkpoint for request {req.request_id!r} does not match "
                f"this request ({', '.join(mismatches)} differ); retry with "
                f"'resume': false or a new request_id to start over"
            )
        return ckpt

    def _finish_complete_checkpoint(
        self, req, checkpoint, spec_key, cache_hit, compile_s, queue_wait,
        tune_cache_hit=None,
    ) -> dict:
        """The checkpoint already holds every requested draw: answer
        from it without sampling."""
        summary = summarize_chains(checkpoint.chain_samples())
        threshold = (
            req.budget.target_rhat
            if req.budget.target_rhat is not None
            else DEFAULT_RHAT
        )
        response = {
            "status": "ok",
            "request_id": req.request_id,
            "verdict": _verdict(summary, checkpoint.n_chains, threshold),
            "complete": True,
            "stopped_early": False,
            "stop_reason": None,
            "resumed": True,
            "checkpointed": False,
            "chains": checkpoint.n_chains,
            "draws": {
                "requested": req.samples,
                "kept": [c.n_kept for c in checkpoint.chains],
                "new": 0,
            },
            "timing": {
                "queue_wait_s": queue_wait,
                "compile_s": compile_s,
                "sampling_s": 0.0,
                "total_s": compile_s,
            },
            "cache": {
                "compile_cache_hit": cache_hit,
                "spec_key": spec_key[:16] if spec_key else None,
            },
            "summary": summary,
        }
        if req.return_draws:
            response["draws_data"] = checkpoint.chain_samples()
        self.metrics.record(
            request_id=req.request_id,
            queue_wait_s=queue_wait,
            compile_s=compile_s,
            sampling_s=0.0,
            cache_hit=cache_hit,
            sweeps=0,
            draws=sum(c.n_kept for c in checkpoint.chains),
            stop_reason=None,
            resumed=True,
            checkpointed=False,
            tuned=req.tune,
            tune_cache_hit=tune_cache_hit,
        )
        return response

    def _progress_event(self, req, stream, chunk, kept) -> dict:
        event = {
            "request_id": req.request_id,
            "chain": chunk.chain,
            "start": chunk.start,
            "stop": chunk.stop,
            "kept": list(kept),
            "requested": req.samples,
        }
        if chunk.info:
            phase = chunk.info.get("__phase__")
            if phase is not None:
                event["phase"] = phase.get("phase")
                event["warmup_sweep"] = phase.get("sweep")
                event["warmup_total"] = phase.get("warmup")
                if phase.get("step_size") is not None:
                    event["step_size"] = phase["step_size"]
            info = {k: v for k, v in chunk.info.items() if k != "__phase__"}
            if info:
                event["info"] = info
        if stream.monitor is not None:
            event["worst_rhat"] = stream.monitor.worst_rhat()
        return event

    def _cache_block(
        self, sampler, stream, spec_key, cache_hit, tune_cache_hit=None
    ) -> dict:
        stats = compile_cache_stats()
        block = {
            "compile_cache_hit": cache_hit,
            "hits": stats.hits,
            "misses": stats.misses,
            "spec_key": spec_key[:16] if spec_key else None,
        }
        if tune_cache_hit is not None:
            from repro.tune import tuning_cache_stats

            tune_stats = tuning_cache_stats()
            block["tuning_cache_hit"] = tune_cache_hit
            block["tuning_hits"] = tune_stats.hits
            block["tuning_misses"] = tune_stats.misses
        if stream._pool is not None:
            block["pool_pids"] = stream._pool.pids()
        if sampler.ledger is not None:
            decisions = sampler.ledger.entries_for(decision="compile.cache")
            decisions += sampler.ledger.entries_for(decision="tune.cache")
            block["ledger"] = [e.to_dict() for e in decisions]
        return block

    def _write_report(self, req, sampler, results) -> dict:
        import os

        from repro.telemetry.report import write_report

        stem = _safe_name(req.request_id) if req.request_id else "anonymous"
        path = os.path.join(self.artifact_dir, stem + ".html")
        try:
            write_report(path, sampler, [r for r in results if r is not None])
        except Exception as exc:  # report failure must not fail the request
            return {"error": f"report generation failed: {exc}"}
        return {"html": path, "json": path[:-len(".html")] + ".json"}
