"""The asyncio front end: stdlib-only HTTP over ``asyncio.start_server``.

One long-lived process owns the compile cache and the warm worker
pools; every request that fingerprints to a seen model shape skips
compilation and lands on already-forked workers.  Blocking work (the
whole :meth:`~repro.serve.session.InferenceService.handle` pipeline)
runs on a thread pool via ``loop.run_in_executor``; sampling progress
is marshalled back into the event loop with
``loop.call_soon_threadsafe`` so ``GET /v1/requests/<id>`` always
answers from live, loop-owned state without locking against samplers.

Routes::

    POST /v1/infer                          run one inference request
    GET  /v1/health                         liveness + in-flight count
    GET  /v1/metrics                        request-level aggregates (JSON)
    GET  /v1/metrics?format=prometheus      OpenMetrics text exposition
    GET  /v1/requests/<id>                  live status of a named request
    GET  /v1/requests/<id>/flightrecorder   flight-recorder ring / post-mortem
    GET  /v1/report/<id>                    the request's HTML report artifact
    POST /v1/shutdown                       graceful stop
"""

from __future__ import annotations

import asyncio
import functools
import itertools
import json
import time
import traceback
import urllib.parse
from concurrent.futures import ThreadPoolExecutor

from repro.errors import ReproError
from repro.serve.checkpoint import _safe_name
from repro.serve.protocol import (
    ProtocolError,
    error_response,
    http_response,
    json_response,
    parse_infer_request,
    read_http_request,
)
from repro.serve.session import InferenceService
from repro.telemetry.obslog import configure_event_log, log_event

#: Content type of the ``?format=prometheus`` exposition.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class ReproServer:
    """The service process.  ``port=0`` binds an ephemeral port; read
    the actual one from :attr:`port` after :meth:`start`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        service: InferenceService | None = None,
        checkpoint_dir: str | None = None,
        artifact_dir: str | None = None,
        max_workers: int = 4,
        log_path: str | None = None,
        log_level: str = "info",
    ):
        self.host = host
        self.port = port
        self.service = service or InferenceService(
            checkpoint_dir=checkpoint_dir, artifact_dir=artifact_dir
        )
        if log_path is not None:
            configure_event_log(path=log_path, level=log_level)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._in_flight = 0
        self._status: dict[str, dict] = {}
        self._anon_ids = itertools.count(1)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until ``POST /v1/shutdown`` (or cancellation)."""
        if self._server is None:
            await self.start()
        try:
            await self._shutdown.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            self._executor.shutdown(wait=False)
            from repro.core.chains import shutdown_worker_pools

            shutdown_worker_pools()

    def run(self, announce=None) -> None:
        """Convenience blocking entry point (the CLI uses this)."""

        async def main():
            await self.start()
            if announce is not None:
                announce(self)
            await self.serve_forever()

        asyncio.run(main())

    # -- connection handling -----------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            try:
                request = await read_http_request(reader)
            except ProtocolError as exc:
                writer.write(error_response(400, str(exc)))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            if request is None:
                return
            response = await self._route(request)
            writer.write(response)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _route(self, request) -> bytes:
        raw_path, _, raw_query = request.path.partition("?")
        method, path = request.method, raw_path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(raw_query)
        if method == "POST" and path == "/v1/infer":
            return await self._handle_infer(request)
        if method == "POST" and path == "/v1/shutdown":
            self._shutdown.set()
            return json_response(200, {"status": "shutting down"})
        if method == "GET" and path == "/v1/health":
            return json_response(
                200,
                {
                    "status": "ok",
                    "in_flight": self._in_flight,
                    "time": time.time(),
                },
            )
        if method == "GET" and path == "/v1/metrics":
            fmt = (query.get("format") or ["json"])[0]
            if fmt == "prometheus":
                text = self.service.metrics.prometheus(
                    in_flight=self._in_flight
                )
                return http_response(
                    200, text.encode(),
                    content_type=OPENMETRICS_CONTENT_TYPE,
                )
            if fmt != "json":
                return error_response(
                    400, f"unknown metrics format {fmt!r}; "
                    "use 'json' or 'prometheus'"
                )
            snap = self.service.metrics.snapshot()
            # Live per-request view: which phase each in-flight request
            # is in (warmup vs sampling) and the current adapted step
            # size when warmup adaptation is running.
            snap["active_requests"] = {
                rid: {
                    "phase": s.get("phase", "sampling"),
                    "step_size": s.get("step_size"),
                    "warmup_sweep": s.get("warmup_sweep"),
                    "warmup_total": s.get("warmup_total"),
                    "kept": s.get("kept"),
                }
                for rid, s in self._status.items()
                if s.get("state") in ("sampling", "warmup")
            }
            return json_response(200, snap)
        if method == "GET" and path.startswith("/v1/requests/"):
            rest = path[len("/v1/requests/"):]
            if rest.endswith("/flightrecorder"):
                rid = rest[:-len("/flightrecorder")]
                record = self.service.flight_record(rid)
                if record is None:
                    return error_response(
                        404, f"no flight record for request {rid!r}"
                    )
                return json_response(200, record)
            rid = rest
            status = self._status.get(rid)
            if status is None:
                return error_response(404, f"unknown request {rid!r}")
            return json_response(200, status)
        if method == "GET" and path.startswith("/v1/report/"):
            return self._handle_report(path[len("/v1/report/"):])
        if path in (
            "/v1/infer", "/v1/shutdown", "/v1/health", "/v1/metrics",
        ):
            return error_response(405, f"{method} not allowed on {path}")
        return error_response(404, f"no route for {method} {path}")

    # -- /v1/infer ---------------------------------------------------------

    async def _handle_infer(self, request) -> bytes:
        enqueued_at = time.monotonic()
        try:
            payload = json.loads(request.body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return error_response(400, f"invalid JSON body: {exc}")
        try:
            req = parse_infer_request(payload)
        except ProtocolError as exc:
            return error_response(400, str(exc))

        rid = req.request_id or f"anon-{next(self._anon_ids)}"
        loop = asyncio.get_running_loop()
        self._status[rid] = {
            "request_id": rid,
            "state": "queued",
            "enqueued": time.time(),
        }
        self._in_flight += 1
        log_event(
            "request.accepted", rid=rid, chains=req.chains,
            samples=req.samples, executor=req.executor,
            resume=req.resume and req.request_id is not None,
        )

        def progress(event: dict) -> None:
            # Called from the sampling thread: hop into the event loop
            # so status reads never race a chunk handoff.
            loop.call_soon_threadsafe(self._note_progress, rid, event)

        try:
            response = await loop.run_in_executor(
                self._executor,
                functools.partial(
                    self.service.handle, req,
                    enqueued_at=enqueued_at, progress_cb=progress,
                    rid=rid,
                ),
            )
        except (ProtocolError, ReproError) as exc:
            self._note_error(rid, exc)
            return error_response(400, str(exc))
        except Exception as exc:
            self._note_error(rid, exc)
            return error_response(500, f"internal error: {exc}")
        finally:
            self._in_flight -= 1
        self._status[rid] = {
            "request_id": rid,
            "state": "done",
            "verdict": response.get("verdict"),
            "complete": response.get("complete"),
            "stop_reason": response.get("stop_reason"),
            "draws": response.get("draws"),
        }
        return json_response(200, response)

    def _note_error(self, rid: str, exc: BaseException) -> None:
        self.service.metrics.record_error(error=exc, request_id=rid)
        log_event(
            "request.error", level="error", rid=rid,
            error=type(exc).__name__, message=str(exc),
            traceback=traceback.format_exc(),
        )
        self._status[rid] = {
            "request_id": rid, "state": "error", "error": str(exc),
        }

    def _note_progress(self, rid: str, event: dict) -> None:
        status = self._status.get(rid)
        if status is None or status.get("state") in ("done", "error"):
            return
        phase = event.get("phase") or "sampling"
        status.update(
            state=phase if phase == "warmup" else "sampling",
            phase=phase,
            kept=event.get("kept"),
            requested=event.get("requested"),
            worst_rhat=event.get("worst_rhat"),
            last_chunk={
                "chain": event.get("chain"),
                "start": event.get("start"),
                "stop": event.get("stop"),
                "info": event.get("info"),
            },
        )
        if event.get("step_size") is not None:
            status["step_size"] = event["step_size"]
        if event.get("warmup_sweep") is not None:
            status["warmup_sweep"] = event["warmup_sweep"]
            status["warmup_total"] = event.get("warmup_total")

    # -- /v1/report --------------------------------------------------------

    def _handle_report(self, rid: str) -> bytes:
        import os

        artifact_dir = self.service.artifact_dir
        if not artifact_dir or not rid:
            return error_response(404, "reports are not enabled")
        path = os.path.join(artifact_dir, _safe_name(rid) + ".html")
        try:
            with open(path, "rb") as f:
                body = f.read()
        except FileNotFoundError:
            return error_response(404, f"no report for request {rid!r}")
        return http_response(200, body, content_type="text/html")
