"""Wire protocol for the inference service: JSON schema + minimal HTTP.

No third-party dependencies: HTTP/1.1 is parsed directly off the
asyncio stream (request line, headers, ``Content-Length`` body) and
responses are rendered by hand.  The service speaks JSON both ways.

Request schema (``POST /v1/infer``)::

    {
      "request_id": "job-42",            // optional; enables checkpoints
      "model_source": "...augur text...",
      "data": {"N": 40, "y": [...], ...},  // hypers + observations, mixed
      "query": {
        "samples": 500, "burn_in": 0, "thin": 1, "chains": 2,
        "seed": 0, "collect": ["mu"], "schedule": null,
        "executor": "processes", "chunk_size": 25,
        "warmup": 500, "target_accept": 0.8,  // HMC/NUTS adaptation
        "tune": false            // autotune the schedule by measurement
      },
      "budget": {
        "deadline_s": 2.0,     // wall-clock cap for the request
        "max_draws": 100,      // cap on new kept draws this call
        "target_rhat": 1.01    // early-stop once split R-hat converges
      },
      "resume": true,          // continue this id's checkpoint if any
      "return_draws": false,   // embed raw draws in the response
      "report": true,          // write the HTML/JSON report artifact
      "profile": false, "trace": false
    }

All of ``query``/``budget`` and their members are optional; defaults
match the CLI.  ``data`` values follow the CLI input coercion rules
(nested lists with unequal row lengths load as ragged arrays).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ReproError

#: Largest accepted request body (model text + data), in bytes.
MAX_BODY_BYTES = 64 << 20

EXECUTORS = ("sequential", "processes", "threads")


class ProtocolError(ReproError):
    """A malformed or invalid service request."""


# ----------------------------------------------------------------------
# Request schema.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Budget:
    """Per-request sampling budget: the request answers when the first
    of deadline / draw cap / convergence target is reached (or all
    requested draws are taken)."""

    deadline_s: float | None = None
    max_draws: int | None = None
    target_rhat: float | None = None


@dataclass
class InferRequest:
    """One parsed, validated inference request."""

    model_source: str
    values: dict
    request_id: str | None = None
    samples: int = 500
    burn_in: int = 0
    thin: int = 1
    chains: int = 1
    seed: int = 0
    collect: tuple | None = None
    schedule: str | None = None
    executor: str = "sequential"
    chunk_size: int | None = None
    warmup: int = 0
    target_accept: float = 0.8
    tune: bool = False
    budget: Budget = field(default_factory=Budget)
    resume: bool = True
    return_draws: bool = False
    report: bool = True
    profile: bool = False
    trace: bool = False


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise ProtocolError(msg)


def _get_int(obj: dict, key: str, default, lo=None) -> int | None:
    v = obj.get(key, default)
    if v is None:
        return None
    _require(isinstance(v, int) and not isinstance(v, bool),
             f"{key!r} must be an integer")
    if lo is not None:
        _require(v >= lo, f"{key!r} must be >= {lo}")
    return v


def _get_num(obj: dict, key: str, default) -> float | None:
    v = obj.get(key, default)
    if v is None:
        return None
    _require(isinstance(v, (int, float)) and not isinstance(v, bool),
             f"{key!r} must be a number")
    return float(v)


def parse_infer_request(payload) -> InferRequest:
    """Validate a decoded JSON body into an :class:`InferRequest`.

    Data values are kept raw here; the session coerces them with the
    CLI's input rules right before compilation (so protocol parsing
    stays dependency-light and unit-testable).
    """
    _require(isinstance(payload, dict), "request body must be a JSON object")
    source = payload.get("model_source") or payload.get("model")
    _require(isinstance(source, str) and source.strip() != "",
             "'model_source' (the model text) is required")
    values = payload.get("data", {})
    _require(isinstance(values, dict), "'data' must be an object")
    request_id = payload.get("request_id")
    if request_id is not None:
        _require(
            isinstance(request_id, str) and 0 < len(request_id) <= 200,
            "'request_id' must be a non-empty string (<= 200 chars)",
        )

    query = payload.get("query", {})
    _require(isinstance(query, dict), "'query' must be an object")
    samples = _get_int(query, "samples", 500, lo=1)
    burn_in = _get_int(query, "burn_in", 0, lo=0)
    thin = _get_int(query, "thin", 1, lo=1)
    chains = _get_int(query, "chains", 1, lo=1)
    seed = _get_int(query, "seed", 0)
    chunk_size = _get_int(query, "chunk_size", None, lo=1)
    warmup = _get_int(query, "warmup", 0, lo=0)
    target_accept = _get_num(query, "target_accept", 0.8)
    _require(
        0.0 < target_accept < 1.0,
        "'target_accept' must lie strictly between 0 and 1",
    )
    executor = query.get("executor", "sequential")
    _require(executor in EXECUTORS,
             f"'executor' must be one of {', '.join(EXECUTORS)}")
    tune = query.get("tune", False)
    _require(isinstance(tune, bool), "'tune' must be a boolean")
    schedule = query.get("schedule")
    if schedule is not None:
        _require(isinstance(schedule, str), "'schedule' must be a string")
    collect = query.get("collect")
    if collect is not None:
        _require(
            isinstance(collect, list)
            and all(isinstance(c, str) for c in collect),
            "'collect' must be a list of parameter names",
        )
        collect = tuple(collect)

    braw = payload.get("budget", {})
    _require(isinstance(braw, dict), "'budget' must be an object")
    deadline = _get_num(braw, "deadline_s", None)
    if deadline is not None:
        _require(deadline > 0, "'deadline_s' must be positive")
    max_draws = _get_int(braw, "max_draws", None, lo=1)
    target_rhat = _get_num(braw, "target_rhat", None)
    if target_rhat is not None:
        _require(target_rhat >= 1.0, "'target_rhat' must be >= 1.0")

    def flag(key, default):
        v = payload.get(key, default)
        _require(isinstance(v, bool), f"{key!r} must be a boolean")
        return v

    return InferRequest(
        model_source=source,
        values=values,
        request_id=request_id,
        samples=samples,
        burn_in=burn_in,
        thin=thin,
        chains=chains,
        seed=seed,
        collect=collect,
        schedule=schedule,
        executor=executor,
        chunk_size=chunk_size,
        warmup=warmup,
        target_accept=target_accept,
        tune=tune,
        budget=Budget(deadline, max_draws, target_rhat),
        resume=flag("resume", True),
        return_draws=flag("return_draws", False),
        report=flag("report", True),
        profile=flag("profile", False),
        trace=flag("trace", False),
    )


def coerce_values(values: dict) -> dict:
    """Apply the CLI's JSON input coercion (arrays, ragged arrays) to a
    request's raw data values."""
    from repro.cli import _coerce_json_value

    return {k: _coerce_json_value(v) for k, v in values.items()}


# ----------------------------------------------------------------------
# Minimal HTTP.
# ----------------------------------------------------------------------


@dataclass
class HttpRequest:
    method: str
    path: str
    headers: dict
    body: bytes


STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


async def read_http_request(reader) -> HttpRequest | None:
    """Parse one HTTP/1.1 request off an asyncio stream reader.

    Returns ``None`` on a cleanly closed connection before any bytes.
    Raises :class:`ProtocolError` on malformed input or an oversized
    body (the server maps that to a 400/413).
    """
    line = await reader.readline()
    if not line:
        return None
    try:
        parts = line.decode("latin-1").split()
        method, target = parts[0].upper(), parts[1]
    except (UnicodeDecodeError, IndexError):
        raise ProtocolError("malformed HTTP request line")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:
            raise ProtocolError("malformed HTTP header")
        headers[name.strip().lower()] = value.strip()
    length = 0
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError("invalid Content-Length")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(
            f"request body exceeds {MAX_BODY_BYTES} bytes", )
    body = await reader.readexactly(length) if length else b""
    return HttpRequest(method, target, headers, body)


def http_response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    """Render one complete HTTP/1.1 response (connection: close)."""
    head = (
        f"HTTP/1.1 {status} {STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n"
        f"\r\n"
    )
    return head.encode("latin-1") + body


def json_response(status: int, payload) -> bytes:
    return http_response(
        status, json.dumps(payload, default=_json_default).encode()
    )


def error_response(status: int, message: str) -> bytes:
    return json_response(status, {"status": "error", "error": message})


def _json_default(obj):
    """Serializer fallback: numpy scalars/arrays become plain JSON."""
    import numpy as np

    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")
