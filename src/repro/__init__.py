"""repro: a Python reproduction of AugurV2 (PLDI 2017).

Compiles probabilistic models written in a small first-order modeling
language, together with a query for posterior samples, into composable
MCMC inference algorithms for a CPU or a (simulated) GPU target --
following Huang, Tristan & Morrisett, "Compiling Markov Chain Monte
Carlo Algorithms for Probabilistic Modeling", PLDI 2017.

Quickstart::

    import numpy as np
    import repro as AugurV2Lib
    from repro.eval.models import GMM

    with AugurV2Lib.Infer(GMM) as aug:
        aug.setCompileOpt(AugurV2Lib.Opt(target="cpu"))
        aug.setUserSched("ESlice mu (*) Gibbs z")
        aug.compile(K, N, mu0, S0, pis, S)(x)
        samples = aug.sample(numSamples=1000)
"""

from repro.api.infer import Infer, Opt
from repro.core.compiler import compile_model
from repro.core.frontend.parser import parse_model
from repro.core.options import CompileOptions
from repro.core.sampler import CompiledSampler, SampleResult
from repro.errors import ReproError
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray

__version__ = "0.1.0"

__all__ = [
    "CompiledSampler",
    "CompileOptions",
    "Infer",
    "Opt",
    "RaggedArray",
    "ReproError",
    "Rng",
    "SampleResult",
    "compile_model",
    "parse_model",
    "__version__",
]
