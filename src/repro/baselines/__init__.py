"""Baseline systems the paper compares against, built from scratch.

- :mod:`repro.baselines.jags` -- a BUGS/JAGS-style engine: it *reifies
  the Bayesian-network graph* and performs node-at-a-time Gibbs by
  walking the graph interpretively, with conjugate node samplers, and
  adaptive-rejection / slice fallbacks.
- :mod:`repro.baselines.stan` -- a Stan-style engine: tape-based
  (operator-overloading) reverse-mode AD, NUTS with dual-averaging
  warmup, and a template-expansion compile-cost model.  Discrete
  parameters must be marginalised by hand, as in Stan.
"""
