"""Stan compile-cost model: C++ expression-template instantiation.

The paper: "It takes roughly 35 seconds for Stan to compile the model
(due to the extensive use of C++ templates in its implementation of
AD)."  Without a C++ toolchain, this module reproduces the *mechanism*
that makes those builds slow: every AD expression node instantiates a
distinct nested template type, and the compiler must mangle, hash, and
deduplicate each one.  We trace the model once to count expression
nodes, then synthesise and process the corresponding nested type names.

The absolute time is calibration (see EXPERIMENTS.md); the point the
benchmark makes is ordinal -- Stan-style builds cost orders of magnitude
more than AugurV2-style runtime codegen, on the same machine.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np

from repro.baselines.stan.model import StanModel, TapedPosterior

#: How many template instantiations to synthesise per traced tape node.
#: Real Stan models instantiate large operand-type products per operator;
#: the value is calibrated so model builds cost seconds while AugurV2's
#: runtime codegen costs milliseconds (the paper's 35 s vs. "almost
#: instantaneous" ordering, scaled down).
INSTANTIATIONS_PER_NODE = 8000


def _count_tape_nodes(posterior: TapedPosterior) -> int:
    z = {p.name: np.zeros(p.shape) for p in posterior.model.params}
    lp, _ = posterior._trace(z)
    seen: set[int] = set()
    stack = [lp]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.extend(node.parents)
    return len(seen)


def simulate_cpp_compile(model: StanModel, data: dict) -> float:
    """Run the instantiation workload; returns elapsed seconds."""
    posterior = TapedPosterior(model, data)
    n_nodes = _count_tape_nodes(posterior)
    start = time.perf_counter()
    symbol_table: dict[str, int] = {}
    inner = "stan::math::var"
    for node_id in range(n_nodes * INSTANTIATIONS_PER_NODE):
        # Nested operand types: each level wraps the previous mangled name.
        name = f"ops_partials_edge<{inner}, operands<{node_id % 97}>>"
        mangled = hashlib.md5(name.encode()).hexdigest()
        symbol_table[mangled] = node_id
        if node_id % 13 == 0:
            inner = f"var_value<{mangled[:8]}>"
    # "Linking": a pass over the deduplicated symbols.
    _ = sorted(symbol_table)[: min(1000, len(symbol_table))]
    return time.perf_counter() - start
