"""Tape-based reverse-mode AD (the Stan design point).

Values are wrapped in :class:`T` nodes whose operators record the
computation on a tape; :func:`backward` replays it in reverse.  Nodes
carry NumPy arrays, so model programs vectorise over data while the
*instrumentation* overhead (a Python object and closure per operation)
remains -- the design contrast with AugurV2's source-to-source AD
(paper Section 4.4: "other systems (e.g., Stan) implement AD by
instrumenting the program").
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce a gradient back to the shape it broadcast from."""
    grad = np.asarray(grad)
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for ax, s in enumerate(shape):
        if s == 1 and grad.shape[ax] != 1:
            grad = grad.sum(axis=ax, keepdims=True)
    return grad


class T:
    """One tape node: a value, its parents, and a backward closure."""

    __slots__ = ("value", "parents", "_backward", "grad")

    def __init__(self, value, parents=(), backward=None):
        self.value = np.asarray(value, dtype=np.float64)
        self.parents = tuple(parents)
        self._backward = backward
        self.grad = None

    # -- construction helpers ------------------------------------------

    @staticmethod
    def lift(x) -> "T":
        return x if isinstance(x, T) else T(x)

    @property
    def shape(self):
        return self.value.shape

    # -- arithmetic ------------------------------------------------------

    def __add__(self, other):
        other = T.lift(other)

        def bw(g, a=self, b=other):
            a.grad += _unbroadcast(g, a.shape)
            b.grad += _unbroadcast(g, b.shape)

        return T(self.value + other.value, (self, other), bw)

    __radd__ = __add__

    def __sub__(self, other):
        other = T.lift(other)

        def bw(g, a=self, b=other):
            a.grad += _unbroadcast(g, a.shape)
            b.grad += _unbroadcast(-g, b.shape)

        return T(self.value - other.value, (self, other), bw)

    def __rsub__(self, other):
        return T.lift(other) - self

    def __mul__(self, other):
        other = T.lift(other)

        def bw(g, a=self, b=other):
            a.grad += _unbroadcast(g * b.value, a.shape)
            b.grad += _unbroadcast(g * a.value, b.shape)

        return T(self.value * other.value, (self, other), bw)

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = T.lift(other)

        def bw(g, a=self, b=other):
            a.grad += _unbroadcast(g / b.value, a.shape)
            b.grad += _unbroadcast(-g * a.value / b.value**2, b.shape)

        return T(self.value / other.value, (self, other), bw)

    def __rtruediv__(self, other):
        return T.lift(other) / self

    def __neg__(self):
        def bw(g, a=self):
            a.grad += _unbroadcast(-g, a.shape)

        return T(-self.value, (self,), bw)

    def __pow__(self, exponent: float):
        def bw(g, a=self, e=exponent):
            a.grad += _unbroadcast(g * e * a.value ** (e - 1), a.shape)

        return T(self.value**exponent, (self,), bw)

    # -- elementwise functions ---------------------------------------------

    def exp(self):
        out_val = np.exp(self.value)

        def bw(g, a=self, v=out_val):
            a.grad += _unbroadcast(g * v, a.shape)

        return T(out_val, (self,), bw)

    def log(self):
        def bw(g, a=self):
            a.grad += _unbroadcast(g / a.value, a.shape)

        with np.errstate(divide="ignore", invalid="ignore"):
            return T(np.log(self.value), (self,), bw)

    def sigmoid(self):
        v = 1.0 / (1.0 + np.exp(-self.value))

        def bw(g, a=self, v=v):
            a.grad += _unbroadcast(g * v * (1 - v), a.shape)

        return T(v, (self,), bw)

    def sum(self, axis=None):
        def bw(g, a=self, axis=axis):
            if axis is None:
                a.grad += np.broadcast_to(g, a.shape)
            else:
                a.grad += np.expand_dims(g, axis)

        return T(self.value.sum(axis=axis), (self,), bw)

    def dot(self, other):
        """Matrix/vector product (vec.vec, mat@vec, mat@mat)."""
        other = T.lift(other)

        def bw(g, a=self, b=other):
            av, bv = a.value, b.value
            if av.ndim == 1 and bv.ndim == 1:  # scalar result
                a.grad += g * bv
                b.grad += g * av
            elif av.ndim == 2 and bv.ndim == 1:  # vector result
                a.grad += np.outer(g, bv)
                b.grad += av.T @ g
            else:  # matrix result
                a.grad += g @ bv.T
                b.grad += av.T @ g

        return T(self.value @ other.value, (self, other), bw)

    def __getitem__(self, key):
        def bw(g, a=self, key=key):
            np.add.at(a.grad, key, g)

        return T(self.value[key], (self,), bw)

    def logsumexp(self, axis=-1):
        m = np.max(self.value, axis=axis, keepdims=True)
        m = np.where(np.isfinite(m), m, 0.0)
        e = np.exp(self.value - m)
        s = e.sum(axis=axis, keepdims=True)
        out_val = np.squeeze(m, axis=axis) + np.log(np.squeeze(s, axis=axis))
        soft = e / s

        def bw(g, a=self, soft=soft, axis=axis):
            a.grad += np.expand_dims(g, axis) * soft

        return T(out_val, (self,), bw)


def stack_last(nodes: list["T"]) -> "T":
    """Stack tape values along a new trailing axis (for mixture logits)."""
    nodes = [T.lift(n) for n in nodes]
    value = np.stack([n.value for n in nodes], axis=-1)

    def bw(g, nodes=nodes):
        for i, n in enumerate(nodes):
            n.grad += _unbroadcast(g[..., i], n.shape)

    return T(value, tuple(nodes), bw)


def lgamma_const(x) -> np.ndarray:
    """Log-gamma of a constant (no gradient flows through it here)."""
    return gammaln(np.asarray(x, dtype=np.float64))


def backward(root: T, leaves: list[T]) -> list[np.ndarray]:
    """Reverse pass: gradients of ``root`` (a scalar) w.r.t. ``leaves``."""
    topo: list[T] = []
    seen: set[int] = set()

    def visit(node: T) -> None:
        stack = [(node, False)]
        while stack:
            n, processed = stack.pop()
            if processed:
                topo.append(n)
                continue
            if id(n) in seen:
                continue
            seen.add(id(n))
            stack.append((n, True))
            for p in n.parents:
                stack.append((p, False))

    visit(root)
    for n in topo:
        n.grad = np.zeros_like(n.value)
    root.grad = np.ones_like(root.value)
    for n in reversed(topo):
        if n._backward is not None:
            n._backward(n.grad)
    return [leaf.grad for leaf in leaves]
