"""The Stan-style sampler: NUTS with dual-averaging warmup."""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.stan.compilemodel import simulate_cpp_compile
from repro.baselines.stan.model import StanModel, TapedPosterior
from repro.runtime.mcmc.hmc import TransformedLogDensity
from repro.runtime.mcmc.nuts import nuts_step
from repro.runtime.rng import Rng
from repro.runtime.transforms import IdentityTransform


class _DualAveraging:
    """Nesterov dual averaging of the log step size (Hoffman & Gelman)."""

    def __init__(self, eps0: float, target: float = 0.8):
        self.mu = np.log(10.0 * eps0)
        self.target = target
        self.log_eps = np.log(eps0)
        self.log_eps_bar = 0.0
        self.h_bar = 0.0
        self.t = 0
        self.gamma = 0.05
        self.t0 = 10.0
        self.kappa = 0.75

    def update(self, accept_stat: float) -> float:
        self.t += 1
        eta = 1.0 / (self.t + self.t0)
        self.h_bar = (1 - eta) * self.h_bar + eta * (self.target - accept_stat)
        self.log_eps = self.mu - np.sqrt(self.t) / self.gamma * self.h_bar
        w = self.t ** (-self.kappa)
        self.log_eps_bar = w * self.log_eps + (1 - w) * self.log_eps_bar
        return float(np.exp(self.log_eps))

    def finalize(self) -> float:
        return float(np.exp(self.log_eps_bar))


class StanSampler:
    """Compile (simulated C++ build) then sample a Stan-style program."""

    def __init__(self, model: StanModel, data: dict, simulate_compile: bool = True):
        self.model = model
        self.data = data
        self.posterior = TapedPosterior(model, data)
        self.compile_seconds = (
            simulate_cpp_compile(model, data) if simulate_compile else 0.0
        )
        # The driver-facing density: transforms already live on the tape.
        identity = {p.name: IdentityTransform() for p in model.params}
        self._target = TransformedLogDensity(
            ll_fn=None, grad_fn=None, transforms=identity
        )
        self._target.logpdf = self.posterior.logpdf  # type: ignore[method-assign]
        self._target.grad = self.posterior.grad  # type: ignore[method-assign]

    def sample(
        self,
        num_samples: int,
        warmup: int = 50,
        seed: int | Rng = 0,
        init_step_size: float = 0.1,
        callback=None,
    ):
        """Returns (samples dict of constrained draws, wall seconds)."""
        rng = seed if isinstance(seed, Rng) else Rng(seed)
        z = self.posterior.init_unconstrained(rng)
        adapt = _DualAveraging(init_step_size)
        eps = init_step_size
        start = time.perf_counter()
        for _ in range(warmup):
            z, _, accept_stat = nuts_step(rng, self._target, z, eps)
            eps = adapt.update(accept_stat)
        eps = adapt.finalize()
        self.step_size = eps

        samples: dict[str, list] = {p.name: [] for p in self.model.params}
        for i in range(num_samples):
            z, _, _ = nuts_step(rng, self._target, z, eps)
            for p in self.model.params:
                samples[p.name].append(
                    self.posterior.constrain_value(p.name, z[p.name])
                )
            if callback is not None:
                callback(i, {k: v[-1] for k, v in samples.items()})
        wall = time.perf_counter() - start
        return {k: np.asarray(v) for k, v in samples.items()}, wall
