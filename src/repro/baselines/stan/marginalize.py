"""Hand-written Stan programs for the evaluation models.

Stan "does not natively support discrete distributions so the user must
write the model to marginalize out all discrete variables, which
increases the complexity of computing gradients" (Section 7.2).  These
constructors are those hand-written programs: the mixture assignments
are summed out inside the traced log density, so every gradient
evaluation pays the full N x K log-sum-exp.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.stan.model import ParamSpec, StanModel
from repro.baselines.stan.tape import T, stack_last

_LOG_2PI = float(np.log(2.0 * np.pi))


def hlr_model(n: int, d: int) -> StanModel:
    """Hierarchical logistic regression (all-continuous: Stan's home turf)."""

    def logp(params: dict, data: dict) -> T:
        sigma2, b, theta = params["sigma2"], params["b"], params["theta"]
        x, y, lam = data["x"], data["y"], data["lam"]
        lp = sigma2 * (-lam)  # Exponential(lam) up to a constant
        lp = lp + np.log(lam)
        # Normal(0, sigma2) priors on b and theta.
        for v, k in ((b, 1), (theta, d)):
            quad = (v * v).sum() / sigma2
            lp = lp - 0.5 * (quad + k * sigma2.log() + k * _LOG_2PI)
        # Bernoulli-logit likelihood.
        logits = T.lift(x).dot(theta) + b
        p = logits.sigmoid()
        eps = 1e-12
        lp = lp + (
            (p + eps).log() * y + (1.0 - p + eps).log() * (1.0 - y)
        ).sum()
        return lp

    return StanModel(
        name="hlr",
        params=(
            ParamSpec("sigma2", (), "pos_real"),
            ParamSpec("b", (), "real"),
            ParamSpec("theta", (d,), "real"),
        ),
        logp=logp,
    )


def marginalized_gmm_model(k: int, d: int) -> StanModel:
    """GMM with the assignments summed out; weights and the observation
    covariance are fixed hyper-parameters (they are in the AugurV2 GMM
    too), so the only parameters are the cluster means."""

    def logp(params: dict, data: dict) -> T:
        mu = params["mu"]  # (K, D)
        x = data["x"]
        pis = data["pis"]
        prec = data["_sigma_inv"]
        logdet = data["_sigma_logdet"]
        mu0, s0_inv, s0_logdet = data["mu_0"], data["_sigma0_inv"], data["_sigma0_logdet"]

        lp = T.lift(0.0)
        comp_logliks = []
        for j in range(k):
            mu_j = mu[j]
            # Prior: MvNormal(mu_j; mu0, Sigma0).
            diff0 = mu_j - mu0
            quad0 = diff0.dot(T.lift(s0_inv)).dot(diff0)
            lp = lp - 0.5 * (quad0 + s0_logdet + d * _LOG_2PI)
            # Component log-likelihood for every point, shape (N,).
            diff = T.lift(x) - mu_j
            quad = (diff.dot(T.lift(prec)) * diff).sum(axis=1)
            comp_logliks.append(
                -0.5 * (quad + logdet + d * _LOG_2PI) + float(np.log(pis[j]))
            )
        logliks = stack_last(comp_logliks)  # (N, K)
        lp = lp + logliks.logsumexp(axis=-1).sum()
        return lp

    return StanModel(
        name="marginalized_gmm",
        params=(ParamSpec("mu", (k, d), "real"),),
        logp=logp,
    )


def gmm_stan_data(x, pis, sigma, mu0, sigma0) -> dict:
    """Precompute the constant matrices the marginalised program uses."""
    sign, logdet = np.linalg.slogdet(sigma)
    sign0, logdet0 = np.linalg.slogdet(sigma0)
    return {
        "x": np.asarray(x, dtype=np.float64),
        "pis": np.asarray(pis, dtype=np.float64),
        "mu_0": np.asarray(mu0, dtype=np.float64),
        "_sigma_inv": np.linalg.inv(sigma),
        "_sigma_logdet": float(logdet),
        "_sigma0_inv": np.linalg.inv(sigma0),
        "_sigma0_logdet": float(logdet0),
    }


def marginalized_hgmm_model(k: int, d: int) -> StanModel:
    """HGMM with assignments summed out.

    Hand-written Stan simplifications (documented in DESIGN.md): mixture
    weights use the anchored-softmax reparameterisation of the Dirichlet
    prior, and per-cluster covariances are diagonal with log-variance
    parameters under independent Exponential priors standing in for the
    InvWishart scale structure.
    """

    def logp(params: dict, data: dict) -> T:
        mu = params["mu"]  # (K, D)
        pi_free = params["pi_free"]  # (K-1,) anchored softmax
        log_s = params["log_s"]  # (K, D) log-variances
        x = data["x"]
        alpha = data["alpha"]
        mu0, s0_inv, s0_logdet = data["mu_0"], data["_sigma0_inv"], data["_sigma0_logdet"]

        # Simplex reparameterisation: x = softmax([pi_free, 0]).
        logits = stack_last([pi_free[j] for j in range(k - 1)] + [T.lift(0.0)])
        log_pi = logits - logits.logsumexp(axis=-1)
        # Dirichlet(alpha) density + softmax log-Jacobian (= sum log pi).
        lp = (log_pi * (np.asarray(alpha) - 1.0)).sum() + log_pi.sum()

        comp_logliks = []
        for j in range(k):
            mu_j = mu[j]
            diff0 = mu_j - mu0
            quad0 = diff0.dot(T.lift(s0_inv)).dot(diff0)
            lp = lp - 0.5 * (quad0 + s0_logdet + d * _LOG_2PI)
            s_j = log_s[j].exp()  # (D,) variances
            lp = lp - s_j.sum() + log_s[j].sum()  # Exponential(1) prior + Jacobian
            diff = T.lift(x) - mu_j
            quad = ((diff * diff) / s_j).sum(axis=1)
            comp = -0.5 * (quad + log_s[j].sum() + d * _LOG_2PI) + log_pi[j]
            comp_logliks.append(comp)
        lp = lp + stack_last(comp_logliks).logsumexp(axis=-1).sum()
        return lp

    return StanModel(
        name="marginalized_hgmm",
        params=(
            ParamSpec("mu", (k, d), "real"),
            ParamSpec("pi_free", (k - 1,), "real"),
            ParamSpec("log_s", (k, d), "real"),
        ),
        logp=logp,
    )


def hgmm_stan_data(y, alpha, mu0, sigma0) -> dict:
    sign0, logdet0 = np.linalg.slogdet(sigma0)
    return {
        "x": np.asarray(y, dtype=np.float64),
        "alpha": np.asarray(alpha, dtype=np.float64),
        "mu_0": np.asarray(mu0, dtype=np.float64),
        "_sigma0_inv": np.linalg.inv(sigma0),
        "_sigma0_logdet": float(logdet0),
    }
