"""A Stan-like baseline engine.

Design contrasts with AugurV2 that the paper calls out, reproduced
faithfully:

- **Tape-based AD**: gradients come from instrumenting the log-density
  program at runtime (operator overloading over array values), not from
  source-to-source transformation.
- **No discrete parameters**: mixture assignments must be marginalised
  by hand in the model program (:mod:`repro.baselines.stan.marginalize`),
  which "increases the complexity of computing gradients" (Section 7.2).
- **NUTS with dual-averaging warmup** as the (single) inference
  strategy.
- **Slow compilation**: Stan's C++ template-heavy build is modelled by
  an expression-template instantiation pass
  (:mod:`repro.baselines.stan.compilemodel`).
"""

from repro.baselines.stan.engine import StanSampler
from repro.baselines.stan.model import StanModel

__all__ = ["StanModel", "StanSampler"]
