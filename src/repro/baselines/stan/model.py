"""Stan-style model programs.

A :class:`StanModel` is a hand-written log-density program over *tape*
values -- the analogue of a Stan ``model`` block.  Parameters declare a
shape and a support; the engine maps them to unconstrained leaves,
applies the standard transforms inside the tape (so the Jacobian terms
are part of the traced program), and differentiates by replaying the
tape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.stan.tape import T, backward
from repro.errors import ReproError


@dataclass(frozen=True)
class ParamSpec:
    name: str
    shape: tuple[int, ...]
    support: str = "real"  # real | pos_real | unit_interval | simplex_rows


@dataclass(frozen=True)
class StanModel:
    """A named log-density program with declared parameters."""

    name: str
    params: tuple[ParamSpec, ...]
    #: ``logp(params: dict[str, T], data: dict) -> T`` (a scalar node).
    logp: Callable[[dict, dict], T]

    def param(self, name: str) -> ParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise ReproError(f"unknown Stan parameter {name!r}")


class TapedPosterior:
    """The unconstrained log posterior with tape gradients."""

    def __init__(self, model: StanModel, data: dict):
        self.model = model
        self.data = data

    # -- transforms traced onto the tape ---------------------------------

    @staticmethod
    def _constrain(leaf: T, support: str) -> tuple[T, T | None]:
        """Return (constrained value, log-Jacobian term or None)."""
        if support == "real":
            return leaf, None
        if support == "pos_real":
            return leaf.exp(), leaf.sum()
        if support == "unit_interval":
            s = leaf.sigmoid()
            jac = (s * (1.0 - s) + 1e-300).log().sum()
            return s, jac
        if support == "simplex_rows":
            # Row-wise softmax with an anchored last coordinate would be
            # Stan's stick-breaking; softmax + a fixed temperature keeps
            # the program simple and the posterior equivalent up to the
            # usual identifiability caveat.  Rows of `leaf` are K-1 free
            # coordinates extended with an implicit zero.
            raise ReproError(
                "simplex parameters must be reparameterised in the model "
                "program (see marginalize.py for the pattern)"
            )
        raise ReproError(f"unknown support {support!r}")

    def _trace(self, z: dict[str, np.ndarray]):
        leaves = {name: T(v) for name, v in z.items()}
        constrained: dict[str, T] = {}
        lp_terms = []
        for p in self.model.params:
            c, jac = self._constrain(leaves[p.name], p.support)
            constrained[p.name] = c
            if jac is not None:
                lp_terms.append(jac)
        lp = self.model.logp(constrained, self.data)
        for t in lp_terms:
            lp = lp + t
        return lp, leaves

    # -- the interface the NUTS driver consumes ----------------------------

    def logpdf(self, z: dict) -> float:
        lp, _ = self._trace({k: np.asarray(v, dtype=np.float64) for k, v in z.items()})
        return float(lp.value)

    def grad(self, z: dict) -> dict:
        zz = {k: np.asarray(v, dtype=np.float64) for k, v in z.items()}
        lp, leaves = self._trace(zz)
        names = list(zz)
        grads = backward(lp, [leaves[n] for n in names])
        return dict(zip(names, grads))

    def init_unconstrained(self, rng) -> dict:
        return {
            p.name: 0.1 * rng.standard_normal(p.shape) for p in self.model.params
        }

    def constrain_value(self, name: str, z: np.ndarray) -> np.ndarray:
        support = self.model.param(name).support
        if support == "real":
            return np.asarray(z, dtype=np.float64)
        if support == "pos_real":
            return np.exp(z)
        if support == "unit_interval":
            return 1.0 / (1.0 + np.exp(-z))
        raise ReproError(f"unknown support {support!r}")
