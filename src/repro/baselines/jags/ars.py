"""Adaptive rejection sampling (Gilks & Wild 1992) for log-concave
univariate densities.

JAGS uses this family of samplers as its fallback for continuous nodes
without a conjugate sampler -- the paper notes "Jags had the poorest
performance as it defaults to adaptive rejection sampling" on the HLR
model.  This implementation builds the piecewise-linear upper hull from
tangents (with numerical derivatives), samples from the hull by inverse
CDF, and adapts by inserting rejected points.
"""

from __future__ import annotations

import numpy as np


def _numeric_dlogp(logp, x: float, eps: float = 1e-6) -> float:
    return (logp(x + eps) - logp(x - eps)) / (2 * eps)


class _Hull:
    """Upper hull from tangent lines at abscissae."""

    def __init__(self, xs, hs, dhs, lo, hi):
        order = np.argsort(xs)
        self.x = np.asarray(xs, dtype=np.float64)[order]
        self.h = np.asarray(hs, dtype=np.float64)[order]
        self.dh = np.asarray(dhs, dtype=np.float64)[order]
        self.lo = lo
        self.hi = hi
        self._build()

    def _build(self) -> None:
        x, h, dh = self.x, self.h, self.dh
        # Intersection of consecutive tangents.
        with np.errstate(divide="ignore", invalid="ignore"):
            zs = (h[1:] - x[1:] * dh[1:] - h[:-1] + x[:-1] * dh[:-1]) / (
                dh[:-1] - dh[1:]
            )
        # Guard parallel tangents.
        mid = 0.5 * (x[:-1] + x[1:])
        zs = np.where(np.isfinite(zs), zs, mid)
        zs = np.clip(zs, x[:-1], x[1:])
        self.z = np.concatenate([[self.lo], zs, [self.hi]])
        # Piecewise segment masses (log scale) by integrating exp(tangent),
        # computed stably: only differences of tangent heights are
        # exponentiated, never the heights themselves.
        masses = []
        for i in range(len(x)):
            a, b = self.z[i], self.z[i + 1]
            s = dh[i]
            ha = h[i] + s * (a - x[i])
            hb = h[i] + s * (b - x[i])
            span = b - a
            if not np.isfinite(span) and abs(s) < 1e-12:
                log_mass = -np.inf  # flat tangent over infinite support
            elif abs(s) < 1e-12 or abs(hb - ha) < 1e-10:
                log_mass = max(ha, hb) + np.log(max(span, 1e-300))
            else:
                top = max(ha, hb)
                log_mass = (
                    top + np.log1p(-np.exp(-abs(hb - ha))) - np.log(abs(s))
                )
            masses.append(log_mass if np.isfinite(log_mass) else -np.inf)
        self.log_masses = np.asarray(masses)

    def sample(self, rng) -> tuple[float, float]:
        """Draw from the hull; returns (draw, hull log-density at draw)."""
        lm = self.log_masses
        m = lm.max()
        if not np.isfinite(m):
            raise RuntimeError("degenerate hull: no finite segment mass")
        w = np.exp(lm - m)
        total = w.sum()
        if not np.isfinite(total) or total <= 0:
            raise RuntimeError("degenerate hull weights")
        i = int(rng.choice(len(w), p=w / total))
        a, b = self.z[i], self.z[i + 1]
        s, h0, x0 = self.dh[i], self.h[i], self.x[i]
        u = rng.uniform()
        if abs(s) < 1e-12:
            t = a + u * (b - a)
        else:
            # Inverse CDF of exp(s t) on [a, b], in a form where only
            # non-positive quantities are exponentiated.
            big = s * (b - a)
            if big >= 0:
                # Mass concentrates at b.
                t = b + np.log(u + (1.0 - u) * np.exp(-big)) / s
            else:
                t = a + np.log1p(u * np.expm1(big)) / s
        t = float(np.clip(t, a, b))
        return t, h0 + s * (t - x0)


def ars_sample(
    rng,
    logp,
    lower: float = -np.inf,
    upper: float = np.inf,
    init_points=None,
    max_iter: int = 200,
) -> float:
    """One draw from a (log-concave) density via adaptive rejection.

    Non-log-concave conditionals make the hull invalid; the caller is
    expected to fall back to slice sampling in that case (as JAGS'
    sampler factories do).
    """
    if init_points is None:
        init_points = [-2.0, 0.0, 2.0]
    xs = [float(x) for x in init_points if lower < x < upper]
    if len(xs) < 2:
        span = 1.0 if not np.isfinite(upper - lower) else (upper - lower) / 4
        mid = 0.0 if not np.isfinite(lower) else lower + 2 * span
        xs = [mid - span, mid + span]
    hs = [logp(x) for x in xs]
    dhs = [_numeric_dlogp(logp, x) for x in xs]
    # Ensure the hull is bounded: need a positive slope at the left end
    # and a negative slope at the right end when the support is infinite.
    tries = 0
    while not np.isfinite(lower) and dhs[int(np.argmin(xs))] <= 0 and tries < 60:
        x_new = min(xs) - 2.0 * (tries + 1)
        xs.append(x_new)
        hs.append(logp(x_new))
        dhs.append(_numeric_dlogp(logp, x_new))
        tries += 1
    tries = 0
    while not np.isfinite(upper) and dhs[int(np.argmax(xs))] >= 0 and tries < 60:
        x_new = max(xs) + 2.0 * (tries + 1)
        xs.append(x_new)
        hs.append(logp(x_new))
        dhs.append(_numeric_dlogp(logp, x_new))
        tries += 1

    for _ in range(max_iter):
        hull = _Hull(xs, hs, dhs, lower, upper)
        x, hull_h = hull.sample(rng)
        lp = logp(x)
        if np.log(rng.uniform() + 1e-300) <= lp - hull_h:
            return x
        # Adapt: insert the rejected point.
        xs.append(x)
        hs.append(lp)
        dhs.append(_numeric_dlogp(logp, x))
    raise RuntimeError("adaptive rejection sampling failed to accept")
