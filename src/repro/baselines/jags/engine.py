"""The JAGS-style engine: build graph, assign samplers, sweep nodes."""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.jags.graph import BayesNet
from repro.baselines.jags.samplers import assign_sampler
from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import analyze_model
from repro.core.frontend.typecheck import type_of_value
from repro.errors import ReproError
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray


class JagsEngine:
    """Graph-based Gibbs sampling over a reified Bayesian network."""

    def __init__(self, source: str, hyper_values: dict, data_values: dict):
        t0 = time.perf_counter()
        model = parse_model(source)
        missing = [h for h in model.hypers if h not in hyper_values]
        if missing:
            raise ReproError(f"missing hyper-parameter values: {missing}")
        info = analyze_model(
            model, {k: type_of_value(v) for k, v in hyper_values.items()}
        )
        env = dict(hyper_values)
        env.update({k: data_values[k] for k in info.data_names()})
        self.info = info
        self.net = BayesNet(model, info, env)
        for node in self.net.unobserved:
            node.sampler = assign_sampler(node)
        self.build_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------

    def sampler_names(self) -> dict[str, str]:
        """Which sampler class each variable's nodes were assigned."""
        out: dict[str, str] = {}
        for node in self.net.unobserved:
            out.setdefault(node.var, type(node.sampler).__name__)
        return out

    def init_state(self, rng: Rng) -> None:
        self.net.init_from_priors(rng)

    def step(self, rng: Rng) -> None:
        for node in self.net.unobserved:
            node.sampler.update(self.net, node, rng)

    def state(self) -> dict:
        params = self.info.param_names()
        out = {}
        for p in params:
            v = self.net.store[p]
            if isinstance(v, RaggedArray):
                out[p] = v.copy()
            elif isinstance(v, np.ndarray):
                out[p] = v.copy()
            else:
                out[p] = v
        return out

    def sample(
        self,
        num_samples: int,
        burn_in: int = 0,
        seed: int | Rng = 0,
        collect=None,
        callback=None,
    ):
        rng = seed if isinstance(seed, Rng) else Rng(seed)
        self.init_state(rng)
        collect = tuple(collect) if collect is not None else self.info.param_names()
        samples = {name: [] for name in collect}
        start = time.perf_counter()
        for sweep in range(burn_in + num_samples):
            self.step(rng)
            if sweep >= burn_in:
                snap = self.state()
                for name in collect:
                    samples[name].append(snap[name])
                if callback is not None:
                    callback(sweep - burn_in, snap)
        wall = time.perf_counter() - start
        return samples, wall
