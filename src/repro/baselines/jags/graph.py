"""Reified Bayesian-network graph (the JAGS representation).

Every element of every random vector becomes a :class:`Node` object:
the GMM with 10,000 points materialises 10,000 ``z`` nodes, 10,000
observed ``x`` nodes, and K ``mu`` nodes.  Densities are evaluated by
walking argument expression trees per node per sweep -- the interpretive
cost that AugurV2's compiled conditionals eliminate (Figure 11).

Edges are classified per (parent variable, child declaration) pair:

- **aligned** -- the parent occurs indexed exactly by the child's own
  comprehension binders with matching bounds, so each parent element has
  one child element at the same index (e.g. ``z[n]`` in ``x[n]``'s
  declaration);
- **dense** -- anything else, notably stochastic indexing like
  ``mu[z[n]]``: every element of the child declaration is a child of
  every element of the parent (what a static graph must assume).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.density.interp import eval_expr
from repro.core.exprs import Expr, Index, Var, children as expr_children
from repro.core.frontend.ast import Decl, DeclKind, Model
from repro.core.frontend.symbols import ModelInfo
from repro.core.lowmm.size_inference import allocate_state, infer_state_layout
from repro.errors import ReproError
from repro.runtime.distributions import lookup
from repro.runtime.vectors import RaggedArray


@dataclass
class Node:
    """One random-variable element in the reified graph."""

    var: str
    idx: tuple[int, ...]
    dist_name: str
    args: tuple[Expr, ...]
    binders: dict[str, int]
    observed: bool
    #: Filled by the engine: (child nodes, conjugate-position metadata).
    children: list = field(default_factory=list)
    sampler: object | None = None

    def env(self, base: dict) -> dict:
        scope = dict(base)
        scope.update(self.binders)
        return scope

    def arg_values(self, base: dict):
        scope = self.env(base)
        return [eval_expr(a, scope) for a in self.args]

    def logpdf(self, base: dict) -> float:
        dist = lookup(self.dist_name)
        return float(dist.logpdf(get_value(base, self.var, self.idx), *self.arg_values(base)))


def get_value(store: dict, var: str, idx: tuple[int, ...]):
    v = store[var]
    for i in idx:
        v = v.row(i) if isinstance(v, RaggedArray) else v[i]
    return v


def set_value(store: dict, var: str, idx: tuple[int, ...], value) -> None:
    if not idx:
        if np.ndim(store[var]) == 0:
            store[var] = float(np.asarray(value))
        else:
            store[var][...] = value
        return
    v = store[var]
    for i in idx[:-1]:
        v = v.row(i) if isinstance(v, RaggedArray) else v[i]
    v[idx[-1]] = value


def _occurrence_paths(e: Expr, name: str) -> list[tuple[Expr, ...]]:
    out: list[tuple[Expr, ...]] = []
    path: list[Expr] = []
    node = e
    while isinstance(node, Index):
        path.append(node.index)
        node = node.base
    if isinstance(node, Var) and node.name == name:
        out.append(tuple(reversed(path)))
        # Indices may still mention the variable; only recurse there.
        for idx in path:
            out.extend(_occurrence_paths(idx, name))
        return out
    for c in expr_children(e):
        out.extend(_occurrence_paths(c, name))
    return out


def edge_kind(parent_decl: Decl, child_decl: Decl) -> str | None:
    """'aligned', 'dense', or None when the child does not reference the
    parent at all."""
    occs: list[tuple[Expr, ...]] = []
    for a in child_decl.dist.args:
        occs.extend(_occurrence_paths(a, parent_decl.name))
    if not occs:
        return None
    if not parent_decl.gens:
        # A scalar parent is referenced by every element of the child.
        return "dense"
    child_binders = {g.var: p for p, g in enumerate(child_decl.gens)}
    for occ in occs:
        if len(occ) != len(parent_decl.gens):
            return "dense"
        for p, ix in enumerate(occ):
            if not isinstance(ix, Var) or ix.name not in child_binders:
                return "dense"
            cpos = child_binders[ix.name]
            cgen = child_decl.gens[cpos]
            pgen = parent_decl.gens[p]
            if cpos != p or not cgen.bounds_equal(pgen):
                return "dense"
    return "aligned"


class BayesNet:
    """The reified graph plus the value store."""

    def __init__(self, model: Model, info: ModelInfo, env: dict):
        self.model = model
        self.info = info
        self.base_env = dict(env)
        self.store: dict = {}
        #: Nodes grouped by variable, in declaration order.
        self.nodes_by_var: dict[str, list[Node]] = {}
        self.unobserved: list[Node] = []
        self._build(env)

    # ------------------------------------------------------------------

    def _element_indices(self, decl: Decl, env: dict):
        def rec(gens, binders):
            if not gens:
                yield dict(binders)
                return
            g = gens[0]
            scope = dict(env)
            scope.update(binders)
            lo = int(eval_expr(g.lo, scope))
            hi = int(eval_expr(g.hi, scope))
            for i in range(lo, hi):
                binders[g.var] = i
                yield from rec(gens[1:], binders)
            binders.pop(g.var, None)

        yield from rec(list(decl.gens), {})

    def _build(self, env: dict) -> None:
        params = set(self.info.param_names())
        layout = infer_state_layout(self.info, env)
        self.store = allocate_state(layout)
        scope = dict(env)
        scope.update(self.store)

        for decl in self.model.decls:
            if decl.kind is DeclKind.LET:
                raise ReproError("the JAGS baseline does not support 'let'")
            nodes = []
            observed = decl.kind is DeclKind.DATA
            for binders in self._element_indices(decl, scope):
                idx = tuple(binders[g.var] for g in decl.gens)
                nodes.append(
                    Node(
                        var=decl.name,
                        idx=idx,
                        dist_name=decl.dist.dist,
                        args=decl.dist.args,
                        binders=dict(binders),
                        observed=observed,
                    )
                )
            self.nodes_by_var[decl.name] = nodes
            if decl.name in params:
                self.unobserved.extend(nodes)

        # Edges.
        stochastic = [d for d in self.model.decls if d.is_stochastic]
        for parent in stochastic:
            if parent.name not in params:
                continue
            for child in stochastic:
                if child.name == parent.name:
                    continue
                kind = edge_kind(parent, child)
                if kind is None:
                    continue
                cnodes = self.nodes_by_var[child.name]
                if kind == "aligned":
                    by_idx = {n.idx: n for n in cnodes}
                    for pnode in self.nodes_by_var[parent.name]:
                        cn = by_idx.get(pnode.idx)
                        if cn is not None:
                            pnode.children.append(cn)
                else:
                    for pnode in self.nodes_by_var[parent.name]:
                        pnode.children.extend(cnodes)

    # ------------------------------------------------------------------

    def eval_env(self) -> dict:
        scope = dict(self.base_env)
        scope.update(self.store)
        return scope

    def node_conditional_logp(self, node: Node, value) -> float:
        """p(node = value | rest), up to a constant, by graph walking."""
        set_value(self.store, node.var, node.idx, value)
        env = self.eval_env()
        lp = node.logpdf(env)
        if lp == -np.inf:
            return lp
        for child in node.children:
            lp += child.logpdf(env)
            if lp == -np.inf:
                return lp
        return lp

    def init_from_priors(self, rng) -> None:
        env = self.eval_env()
        for decl in self.model.decls:
            if decl.name not in set(self.info.param_names()):
                continue
            for node in self.nodes_by_var[decl.name]:
                dist = lookup(node.dist_name)
                args = node.arg_values(env)
                set_value(self.store, node.var, node.idx, dist.sample(rng, *args))
        # Copy observed data into the store.
        for name in self.info.data_names():
            self.store[name] = self.base_env[name]

    def log_joint(self) -> float:
        env = self.eval_env()
        total = 0.0
        for nodes in self.nodes_by_var.values():
            for n in nodes:
                total += n.logpdf(env)
        return total
