"""Node samplers (the JAGS "sampler factory" layer).

At graph-build time each unobserved node is assigned a sampler, in
priority order: a conjugate sampler when the prior/children pattern is
in the table, finite enumeration for discrete nodes, and adaptive
rejection sampling (scalar) or coordinate slice sampling (vector) as
the fallback -- JAGS' behaviour on the HLR model per the paper.

Every sampler works by *walking the graph*: statistics loops run over
child node objects and evaluate argument expressions interpretively,
which is precisely the per-sweep overhead Figure 11 measures against
compiled conditionals.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.jags.ars import ars_sample
from repro.baselines.jags.graph import BayesNet, Node, get_value, set_value
from repro.core.density.interp import eval_expr
from repro.core.exprs import Index, Var
from repro.runtime.distributions import lookup
from repro.runtime.mcmc.slice_sampler import slice_coordinate
from repro.runtime.rng import Rng


def _conjugate_position(node: Node, child: Node) -> int | None:
    """Which argument of the child references this node's variable as
    ``Var(v)`` or ``v[...]`` (the conjugate position), if any."""
    for i, a in enumerate(child.args):
        head = a
        while isinstance(head, Index):
            head = head.base
        if isinstance(head, Var) and head.name == node.var:
            return i
    return None


def _child_targets_node(node: Node, child: Node, pos: int, env: dict) -> bool:
    """Does the child's conjugate argument currently point at this node
    element?  Resolved dynamically (stochastic indexing!)."""
    a = child.args[pos]
    idx: list[int] = []
    scope = child.env(env)
    while isinstance(a, Index):
        idx.append(int(eval_expr(a.index, scope)))
        a = a.base
    return tuple(reversed(idx)) == node.idx


class NodeSampler:
    def update(self, net: BayesNet, node: Node, rng: Rng) -> None:
        raise NotImplementedError


class NormalNormalSampler(NodeSampler):
    def update(self, net, node, rng):
        env = net.eval_env()
        mu0, v0 = node.arg_values(env)
        prec = 1.0 / v0
        mean_acc = mu0 / v0
        for child in node.children:
            pos = _conjugate_position(node, child)
            if pos != 0 or not _child_targets_node(node, child, 0, env):
                continue
            scope = child.env(env)
            var_e = eval_expr(child.args[1], scope)
            y = get_value(net.store, child.var, child.idx)
            prec += 1.0 / var_e
            mean_acc += y / var_e
        post_v = 1.0 / prec
        set_value(
            net.store, node.var, node.idx,
            rng.normal(post_v * mean_acc, np.sqrt(post_v)),
        )


class MvNormalMeanSampler(NodeSampler):
    def update(self, net, node, rng):
        env = net.eval_env()
        mu0, sigma0 = node.arg_values(env)
        lam = np.linalg.inv(sigma0)
        rhs = lam @ np.asarray(mu0, dtype=np.float64)
        for child in node.children:
            if not _child_targets_node(node, child, 0, env):
                continue
            scope = child.env(env)
            cov = np.asarray(eval_expr(child.args[1], scope), dtype=np.float64)
            y = np.asarray(get_value(net.store, child.var, child.idx), dtype=np.float64)
            ci = np.linalg.inv(cov)
            lam = lam + ci
            rhs = rhs + ci @ y
        cov_post = np.linalg.inv(lam)
        mean_post = cov_post @ rhs
        draw = lookup("MvNormal").sample(rng, mean_post, cov_post)
        set_value(net.store, node.var, node.idx, draw)


class InvWishartSampler(NodeSampler):
    def update(self, net, node, rng):
        env = net.eval_env()
        nu, psi = node.arg_values(env)
        psi = np.asarray(psi, dtype=np.float64).copy()
        cnt = 0
        for child in node.children:
            if not _child_targets_node(node, child, 1, env):
                continue
            scope = child.env(env)
            mean = np.asarray(eval_expr(child.args[0], scope), dtype=np.float64)
            y = np.asarray(get_value(net.store, child.var, child.idx), dtype=np.float64)
            d = y - mean
            psi += np.outer(d, d)
            cnt += 1
        draw = lookup("InvWishart").sample(rng, float(nu) + cnt, psi)
        set_value(net.store, node.var, node.idx, draw)


class DirichletCategoricalSampler(NodeSampler):
    def update(self, net, node, rng):
        env = net.eval_env()
        (alpha,) = node.arg_values(env)
        counts = np.zeros(len(alpha))
        for child in node.children:
            if not _child_targets_node(node, child, 0, env):
                continue
            counts[int(get_value(net.store, child.var, child.idx))] += 1.0
        draw = rng.dirichlet(np.asarray(alpha) + counts)
        set_value(net.store, node.var, node.idx, draw)


class BetaBernoulliSampler(NodeSampler):
    def update(self, net, node, rng):
        env = net.eval_env()
        a, b = node.arg_values(env)
        ones = tot = 0
        for child in node.children:
            if not _child_targets_node(node, child, 0, env):
                continue
            ones += int(get_value(net.store, child.var, child.idx))
            tot += 1
        set_value(net.store, node.var, node.idx, rng.beta(a + ones, b + tot - ones))


class GammaCountSampler(NodeSampler):
    """Gamma prior with Poisson (shape += sum, rate += n) or Exponential
    (shape += n, rate += sum) children."""

    def __init__(self, lik: str):
        self.lik = lik

    def update(self, net, node, rng):
        env = net.eval_env()
        a, b = node.arg_values(env)
        total = cnt = 0.0
        for child in node.children:
            if not _child_targets_node(node, child, 0, env):
                continue
            total += float(get_value(net.store, child.var, child.idx))
            cnt += 1.0
        if self.lik == "Poisson":
            a, b = a + total, b + cnt
        else:
            a, b = a + cnt, b + total
        set_value(net.store, node.var, node.idx, rng.gamma(a, 1.0 / b))


class EnumerationSampler(NodeSampler):
    """Finite-support discrete node: score every value via graph walks."""

    def update(self, net, node, rng):
        env = net.eval_env()
        if node.dist_name == "Categorical":
            (probs,) = node.arg_values(env)
            support = len(probs)
        else:
            support = 2
        current = get_value(net.store, node.var, node.idx)
        logits = np.empty(support)
        for k in range(support):
            logits[k] = net.node_conditional_logp(node, k)
        set_value(net.store, node.var, node.idx, current)
        draw = rng.categorical_logits(logits)
        set_value(net.store, node.var, node.idx, int(draw))


_SUPPORT_BOUNDS = {
    "pos_real": (0.0, np.inf),
    "unit_interval": (0.0, 1.0),
    "real": (-np.inf, np.inf),
}


class ARSSampler(NodeSampler):
    """Scalar continuous fallback: adaptive rejection sampling, with a
    slice-sampling rescue for non-log-concave conditionals."""

    def update(self, net, node, rng):
        current = float(get_value(net.store, node.var, node.idx))
        lo, hi = _SUPPORT_BOUNDS.get(lookup(node.dist_name).support, (-np.inf, np.inf))

        def logp(v: float) -> float:
            if not (lo < v < hi):
                return -np.inf
            return net.node_conditional_logp(node, v)

        try:
            spread = max(1.0, abs(current))
            draw = ars_sample(
                rng.generator,
                logp,
                lower=lo,
                upper=hi,
                init_points=[current - 0.5 * spread, current, current + 0.5 * spread],
            )
        except RuntimeError:
            draw = slice_coordinate(rng.generator, logp, current)
        set_value(net.store, node.var, node.idx, draw)
        set_value(net.store, node.var, node.idx, draw)


class SliceVectorSampler(NodeSampler):
    """Vector-valued continuous fallback: coordinate-wise slice."""

    def update(self, net, node, rng):
        value = np.array(
            get_value(net.store, node.var, node.idx), dtype=np.float64, copy=True
        )
        for c in range(value.shape[0]):
            def logp(v, c=c):
                value[c] = v
                return net.node_conditional_logp(node, value)

            value[c] = slice_coordinate(rng.generator, logp, float(value[c]))
        set_value(net.store, node.var, node.idx, value)


_CONJUGATE_TABLE = {
    ("Normal", "Normal", 0): NormalNormalSampler,
    ("MvNormal", "MvNormal", 0): MvNormalMeanSampler,
    ("InvWishart", "MvNormal", 1): InvWishartSampler,
    ("Dirichlet", "Categorical", 0): DirichletCategoricalSampler,
    ("Beta", "Bernoulli", 0): BetaBernoulliSampler,
}


def assign_sampler(node: Node) -> NodeSampler:
    """The sampler-factory decision for one node."""
    dist = lookup(node.dist_name)
    if node.children:
        child_dists = {c.dist_name for c in node.children}
        positions = {
            _conjugate_position(node, c) for c in node.children
        }
        if len(child_dists) == 1 and len(positions) == 1:
            pos = positions.pop()
            child_dist = child_dists.pop()
            if pos is not None and _conjugate_ok(node, pos):
                key = (node.dist_name, child_dist, pos)
                cls = _CONJUGATE_TABLE.get(key)
                if cls is not None:
                    return cls()
                if node.dist_name == "Gamma" and pos == 0:
                    if child_dist == "Poisson":
                        return GammaCountSampler("Poisson")
                    if child_dist == "Exponential":
                        return GammaCountSampler("Exponential")
    if dist.is_discrete:
        return EnumerationSampler()
    if dist.result_ty.__class__.__name__ == "RealTy":
        return ARSSampler()
    return SliceVectorSampler()


def _conjugate_ok(node: Node, pos: int) -> bool:
    """The other child arguments must not reference the node's variable."""
    from repro.core.exprs import mentions

    for c in node.children:
        for i, a in enumerate(c.args):
            if i != pos and mentions(a, node.var):
                return False
    return True
