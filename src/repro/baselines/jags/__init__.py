"""A JAGS-like graph-based Gibbs sampler.

The paper's Figure 11 comparison: "Jags reifies the Bayesian network
structure and performs Gibbs sampling on the graph structure, whereas
AugurV2 directly generates code".  This engine deliberately pays the
interpretive costs a graph engine pays: per-element node objects,
expression evaluation through a tree walker at every density
evaluation, and child-list traversal per node update.
"""

from repro.baselines.jags.engine import JagsEngine

__all__ = ["JagsEngine"]
