"""The Python user interface (paper Figure 2)."""

from repro.api.infer import Infer, Opt

__all__ = ["Infer", "Opt"]
