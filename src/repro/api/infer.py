"""The ``Infer`` interface: the paper's Figure 2 usage pattern.

::

    import repro as AugurV2Lib

    with AugurV2Lib.Infer('path/to/model') as aug:
        opt = AugurV2Lib.Opt(target='cpu')
        aug.setCompileOpt(opt)
        aug.setUserSched('ESlice mu (*) Gibbs z')
        aug.compile(K, N, mu0, S0, pis, S)(x)
        samples = aug.sample(numSamples=1000)

``Infer`` accepts either a path to a model file or the model source
itself (any string containing ``=>`` is treated as source).  The
compiler is invoked at runtime when the data is supplied, matching the
paper: "given different data sizes and hyper-parameter settings, the
AugurV2 compiler may choose to generate a different MCMC algorithm".
"""

from __future__ import annotations

import os

from repro.core.compiler import compile_model
from repro.core.frontend.parser import parse_model
from repro.core.options import CompileOptions
from repro.core.sampler import CompiledSampler, SampleResult
from repro.errors import ReproError
from repro.runtime.rng import Rng

#: The Figure 2 spelling for compilation options.
Opt = CompileOptions


class Infer:
    """Inference object for one model (the ``AugurV2Infer`` class)."""

    def __init__(self, model: str):
        if "=>" in model:
            self._source = model
        else:
            if not os.path.exists(model):
                raise ReproError(f"model file not found: {model!r}")
            with open(model) as f:
                self._source = f.read()
        self._model = parse_model(self._source)
        self._options = CompileOptions()
        self._schedule: str | None = None
        self._proposals: dict = {}
        self._sampler: CompiledSampler | None = None
        self._rng = Rng(0)
        self._tune = False

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Infer":
        return self

    def __exit__(self, *exc) -> None:
        return None

    # -- configuration (Figure 2 method names) ------------------------------

    def setCompileOpt(self, opt: CompileOptions) -> None:
        self._options = opt

    def setUserSched(self, schedule: str) -> None:
        self._schedule = schedule

    def setSeed(self, seed: int) -> None:
        self._rng = Rng(seed)

    def setProposal(self, name: str, proposal) -> None:
        """Attach a user MH proposal ``fn(value, rng) -> (candidate,
        log_q_ratio)`` for a variable scheduled with the MH update."""
        self._proposals[name] = proposal

    def setTune(self, flag: bool = True) -> None:
        """Autotune the schedule at :meth:`compile` time: run the
        trial-sweep tournament of :func:`repro.tune.autotune` around
        the heuristic (or :meth:`setUserSched`) schedule and compile
        the measured winner.  Draws are bitwise identical to pinning
        the winning schedule directly; repeat compiles with the same
        model shape reuse the cached verdict."""
        self._tune = flag

    # -- compilation ---------------------------------------------------------

    def compile(self, *hyper_values):
        """Bind hyper-parameters positionally; returns a callable that
        takes the observed data (in declaration order) and compiles."""
        hypers = self._model.hypers
        if len(hyper_values) != len(hypers):
            raise ReproError(
                f"model closes over {len(hypers)} values {hypers}, "
                f"got {len(hyper_values)}"
            )
        bound = dict(zip(hypers, hyper_values))
        data_decls = [d.name for d in self._model.data]

        def with_data(*data_values) -> "Infer":
            if len(data_values) != len(data_decls):
                raise ReproError(
                    f"model observes {len(data_decls)} data variables "
                    f"{data_decls}, got {len(data_values)}"
                )
            data = dict(zip(data_decls, data_values))
            if self._tune:
                from repro.tune import autotune

                self._sampler = autotune(
                    self._source,
                    bound,
                    data,
                    options=self._options,
                    schedule=self._schedule,
                    proposals=self._proposals or None,
                )
            else:
                self._sampler = compile_model(
                    self._source,
                    bound,
                    data,
                    options=self._options,
                    schedule=self._schedule,
                    proposals=self._proposals or None,
                )
            return self

        return with_data

    # -- inference -------------------------------------------------------------

    @property
    def sampler(self) -> CompiledSampler:
        if self._sampler is None:
            raise ReproError("call compile(...)(data...) before sampling")
        return self._sampler

    def sample(
        self,
        numSamples: int,
        burnIn: int = 0,
        thin: int = 1,
        collect: tuple[str, ...] | None = None,
        init: dict | None = None,
        callback=None,
        collect_stats: bool = False,
        profile: bool = False,
        warmup: int = 0,
        targetAccept: float = 0.8,
        tune: bool = False,
    ) -> SampleResult:
        """Draw posterior samples; ``collect_stats=True`` additionally
        records per-sweep statistics for every base update of the
        composed kernel (``result.stats`` / ``result.sample_stats``);
        ``profile=True`` attributes sweep wall-time per update /
        generated declaration / model statement (``result.profile``);
        ``warmup=N`` prepends N adaptation sweeps during which HMC/NUTS
        updates tune their step size (dual averaging toward
        ``targetAccept``) and diagonal mass matrix."""
        return self.sampler.sample(
            num_samples=numSamples,
            burn_in=burnIn,
            thin=thin,
            seed=self._rng,
            collect=collect,
            init=init,
            callback=callback,
            collect_stats=collect_stats,
            profile=profile,
            warmup=warmup,
            target_accept=targetAccept,
            tune=tune,
        )

    def sampleChains(
        self,
        nChains: int,
        numSamples: int,
        burnIn: int = 0,
        thin: int = 1,
        seed: int = 0,
        collect: tuple[str, ...] | None = None,
        executor: str = "sequential",
        nWorkers: int | None = None,
        collect_stats: bool = False,
        monitor=None,
        profile: bool = False,
        chunkSize: int | None = None,
        earlyStopRhat: float | None = None,
        resume=None,
        warmup: int = 0,
        targetAccept: float = 0.8,
        tune: bool = False,
    ) -> list[SampleResult]:
        """Run independent chains, optionally fanned out over the warm
        worker pool (``executor="processes"``); draws are bitwise
        identical to the sequential path for a given seed.
        ``collect_stats`` and ``monitor`` behave as in
        :meth:`repro.core.sampler.CompiledSampler.sample_chains`;
        ``earlyStopRhat`` broadcasts a stop flag once the worst split
        R-hat converges below the threshold; ``resume`` supplies one
        :class:`repro.core.chains.ChainResume` (or ``None``) per chain
        to continue checkpointed chains bit-for-bit."""
        return self.sampler.sample_chains(
            n_chains=nChains,
            num_samples=numSamples,
            burn_in=burnIn,
            thin=thin,
            seed=seed,
            collect=collect,
            executor=executor,
            n_workers=nWorkers,
            collect_stats=collect_stats,
            monitor=monitor,
            profile=profile,
            chunk_size=chunkSize,
            early_stop_rhat=earlyStopRhat,
            resume=resume,
            warmup=warmup,
            target_accept=targetAccept,
            tune=tune,
        )

    def streamChains(
        self,
        nChains: int,
        numSamples: int,
        burnIn: int = 0,
        thin: int = 1,
        seed: int = 0,
        collect: tuple[str, ...] | None = None,
        executor: str = "sequential",
        nWorkers: int | None = None,
        collect_stats: bool = False,
        monitor=None,
        profile: bool = False,
        chunkSize: int | None = None,
        earlyStopRhat: float | None = None,
        resume=None,
        warmup: int = 0,
        targetAccept: float = 0.8,
        tune: bool = False,
    ):
        """The streaming form of :meth:`sampleChains`: returns a
        :class:`repro.core.chains.ChainStream` yielding per-chain draw
        chunks as workers post them; ``stream.results`` holds the
        per-chain results once the iterator is exhausted."""
        return self.sampler.stream_chains(
            n_chains=nChains,
            num_samples=numSamples,
            burn_in=burnIn,
            thin=thin,
            seed=seed,
            collect=collect,
            executor=executor,
            n_workers=nWorkers,
            collect_stats=collect_stats,
            monitor=monitor,
            profile=profile,
            chunk_size=chunkSize,
            early_stop_rhat=earlyStopRhat,
            resume=resume,
            warmup=warmup,
            target_accept=targetAccept,
            tune=tune,
        )

    # -- introspection -----------------------------------------------------------

    @property
    def source(self) -> str:
        """Generated backend source for the compiled sampler."""
        return self.sampler.source

    @property
    def compile_seconds(self) -> float:
        return self.sampler.compile_seconds

    def schedule_description(self) -> str:
        return self.sampler.schedule_description()

    def explain(self) -> str:
        """The compiler decision ledger, human-readable."""
        return self.sampler.explain()

    def explain_json(self) -> list[dict]:
        """The compiler decision ledger, machine-readable."""
        return self.sampler.explain_json()
