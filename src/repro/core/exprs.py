"""The expression language shared by every IL in the pipeline.

Paper Figure 4 gives the expression grammar used by the Density IL::

    e ::= x | i | r | dist(e...) | opn(e...) | e[e]

and Figure 6 extends it for Low++ with distribution operations::

    e ::= ... | dist(e...).dop      dop ::= ll | samp | grad_i

Keeping one expression type across ILs means the lowering passes only
rewrite the *statement* structure around expressions, which mirrors how
the paper's compiler "successively instantiates" kernel payloads with
lower-level ILs.

All nodes are frozen dataclasses: structural equality and hashing come
for free, which the conditional-computation rewrites rely on (e.g. the
factoring rule fires only when two comprehension bounds are
*syntactically* equal).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Expr:
    """Base class for expressions (immutable, structurally comparable)."""

    def __getitem__(self, index: "Expr | int") -> "Index":
        return Index(self, _coerce(index))


def _coerce(x) -> Expr:
    if isinstance(x, Expr):
        return x
    if isinstance(x, bool):
        raise TypeError("booleans are not expressions")
    if isinstance(x, int):
        return IntLit(x)
    if isinstance(x, float):
        return RealLit(x)
    if isinstance(x, str):
        return Var(x)
    raise TypeError(f"cannot coerce {x!r} to an expression")


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RealLit(Expr):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Index(Expr):
    """``base[index]``; chained ``x[i][j]`` indexes a ragged vector."""

    base: Expr
    index: Expr

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


@dataclass(frozen=True)
class Call(Expr):
    """Application of a builtin operator ``opn(e...)``."""

    fn: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.fn}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class DistCall(Expr):
    """A distribution term ``dist(e...)`` (model AST / Density IL)."""

    dist: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.dist}({', '.join(map(str, self.args))})"


class DistOpKind(enum.Enum):
    LL = "ll"
    SAMP = "samp"
    GRAD = "grad"


@dataclass(frozen=True)
class DistOp(Expr):
    """``dist(args...).dop(value)`` -- Low++ distribution operation.

    ``value`` is the point the density/gradient is evaluated at (absent
    for ``samp``).  ``grad_index`` follows the paper's convention:
    ``0`` differentiates w.r.t. the value, ``i >= 1`` w.r.t. the i-th
    distribution argument.
    """

    dist: str
    args: tuple[Expr, ...]
    op: DistOpKind
    value: Expr | None = None
    grad_index: int | None = None

    def __str__(self) -> str:
        head = f"{self.dist}({', '.join(map(str, self.args))})"
        if self.op is DistOpKind.SAMP:
            return f"{head}.samp"
        suffix = "ll" if self.op is DistOpKind.LL else f"grad{self.grad_index}"
        return f"{head}.{suffix}({self.value})"


# ----------------------------------------------------------------------
# Generic traversal utilities.
# ----------------------------------------------------------------------


def children(e: Expr) -> tuple[Expr, ...]:
    """Direct sub-expressions of ``e``."""
    match e:
        case Var() | IntLit() | RealLit():
            return ()
        case Index(base, index):
            return (base, index)
        case Call(_, args) | DistCall(_, args):
            return args
        case DistOp(_, args, _, value, _):
            return args + ((value,) if value is not None else ())
        case _:
            raise TypeError(f"not an expression: {e!r}")


def walk(e: Expr):
    """Yield ``e`` and all sub-expressions, pre-order."""
    yield e
    for c in children(e):
        yield from walk(c)


def free_vars(e: Expr) -> frozenset[str]:
    return frozenset(n.name for n in walk(e) if isinstance(n, Var))


def mentions(e: Expr, name: str) -> bool:
    return any(isinstance(n, Var) and n.name == name for n in walk(e))


def map_children(e: Expr, f) -> Expr:
    """Rebuild ``e`` with ``f`` applied to each direct child."""
    match e:
        case Var() | IntLit() | RealLit():
            return e
        case Index(base, index):
            return Index(f(base), f(index))
        case Call(fn, args):
            return Call(fn, tuple(f(a) for a in args))
        case DistCall(dist, args):
            return DistCall(dist, tuple(f(a) for a in args))
        case DistOp(dist, args, op, value, gi):
            return DistOp(
                dist,
                tuple(f(a) for a in args),
                op,
                f(value) if value is not None else None,
                gi,
            )
        case _:
            raise TypeError(f"not an expression: {e!r}")


def subst(e: Expr, mapping: dict[str, Expr]) -> Expr:
    """Capture-free substitution of variables (no binders inside Expr)."""
    if isinstance(e, Var) and e.name in mapping:
        return mapping[e.name]
    return map_children(e, lambda c: subst(c, mapping))


# ----------------------------------------------------------------------
# Builder helpers (used heavily by code generators and tests).
# ----------------------------------------------------------------------


def var(name: str) -> Var:
    return Var(name)


def lit(value: int | float) -> Expr:
    return _coerce(value)


def call(fn: str, *args) -> Call:
    return Call(fn, tuple(_coerce(a) for a in args))


def add(*args) -> Expr:
    return call("+", *args)


def mul(*args) -> Expr:
    return call("*", *args)


def index(base, *idxs) -> Expr:
    e = _coerce(base)
    for i in idxs:
        e = Index(e, _coerce(i))
    return e


@dataclass(frozen=True)
class Gen:
    """A comprehension generator ``var <- lo until hi`` (paper ``gen``)."""

    var: str
    lo: Expr = field(default_factory=lambda: IntLit(0))
    hi: Expr = field(default_factory=lambda: IntLit(0))

    def __str__(self) -> str:
        return f"{self.var} <- {self.lo} until {self.hi}"

    def bounds_equal(self, other: "Gen") -> bool:
        """Syntactic equality of bounds -- the factoring-rule side condition."""
        return self.lo == other.lo and self.hi == other.hi
