"""The AugurV2 compiler pipeline (the paper's primary contribution).

Sub-packages follow the paper's intermediate languages in order:

- :mod:`repro.core.frontend` -- the surface modeling language (Section 2.2),
- :mod:`repro.core.density`  -- the Density IL and symbolic conditionals
  (Section 3),
- :mod:`repro.core.kernel`   -- the Kernel IL, schedules, and conjugacy
  detection (Section 4.1-4.2),
- :mod:`repro.core.lowpp`    -- the Low++ IL, update code generation, and
  source-to-source reverse-mode AD (Section 4.3-4.4),
- :mod:`repro.core.lowmm`    -- the Low-- IL and size inference (Section
  5.1-5.2),
- :mod:`repro.core.blk`      -- the Blk IL and parallelism optimisation
  (Section 5.3-5.4),
- :mod:`repro.core.backend`  -- CPU and (simulated) GPU code generation
  plus Kernel-IL elimination (Section 5.5),
- :mod:`repro.core.compiler` -- the driver tying the phases together.
"""
