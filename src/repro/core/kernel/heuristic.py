"""Automatic kernel selection (paper Section 4.2).

When the user does not supply a schedule, the compiler picks one:

1. variables with a detected conjugacy relation get Gibbs updates;
2. remaining *discrete* variables get Gibbs by enumerating the
   (approximated) closed-form conditional over their finite support;
3. remaining *continuous* variables get HMC, blocked together so the
   gradient-based update explores their joint conditional.

The produced Kernel-IL term carries the symbolic conditionals as its
payload -- the first instantiation of the IL's type parameter.
"""

from __future__ import annotations

from repro.core.density.conditionals import blocked_factors, conditional
from repro.core.density.ir import FactorizedDensity
from repro.core.frontend.symbols import ModelInfo
from repro.core.kernel.conjugacy import detect_conjugacy, detect_enumeration
from repro.core.kernel.ir import KBase, Kernel, KernelUnit, UpdateMethod, compose
from repro.errors import ScheduleError


def heuristic_schedule(
    fd: FactorizedDensity, info: ModelInfo, categorical_rule: bool = True
) -> Kernel:
    """Choose a composition of base updates for every model parameter."""
    gibbs_updates: list[KBase] = []
    grad_vars: list[str] = []

    for name in info.param_names():
        cond = conditional(fd, name, info, categorical_rule)
        match = detect_conjugacy(cond)
        if match is not None:
            gibbs_updates.append(
                KBase(
                    method=UpdateMethod.GIBBS,
                    unit=KernelUnit.single(name),
                    payload=match,
                )
            )
            continue
        vinfo = info.info(name)
        if vinfo.is_discrete:
            enum = detect_enumeration(cond, vinfo.dist_name)
            if enum is None:
                raise ScheduleError(
                    f"cannot derive an update for discrete variable {name!r}: "
                    "its conditional is imprecise and no conjugacy relation "
                    "applies"
                )
            gibbs_updates.append(
                KBase(
                    method=UpdateMethod.GIBBS,
                    unit=KernelUnit.single(name),
                    payload=enum,
                )
            )
            continue
        if vinfo.support == "pos_def_mat":
            raise ScheduleError(
                f"cannot derive an update for {name!r}: positive-definite "
                "matrix variables need a conjugacy relation (InvWishart-"
                "MvNormal), which was not detected"
            )
        grad_vars.append(name)

    updates: list[KBase] = list(gibbs_updates)
    if grad_vars:
        blk = blocked_factors(fd, tuple(grad_vars))
        updates.append(
            KBase(
                method=UpdateMethod.HMC,
                unit=KernelUnit.block(grad_vars),
                payload=blk,
            )
        )
    if not updates:
        raise ScheduleError("the model has no parameters to infer")
    return compose(updates)
