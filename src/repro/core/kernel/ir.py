"""Kernel IL terms (paper Figure 5).

::

    sched a ::= lambda(x...). k a
    k a     ::= (kappa a) ku a | k a (*) k a
    ku      ::= Single(x) | Block(x...)
    kappa a ::= Prop (Maybe a) | FC | Grad (Maybe a) | Slice

The IL is parametric in ``a`` -- the representation of the proportional
conditional.  Here ``payload`` plays the role of ``a``: right after
kernel selection it holds Density-IL conditionals; after the middle-end
runs it holds compiled update code.

We split the paper's ``Slice`` into its two implemented variants
(reflective and elliptical) and ``Grad`` into HMC and the NUTS
prototype, since those are the concrete updates AugurV2 ships
(Section 4.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class UpdateMethod(enum.Enum):
    """The base update kinds ``kappa`` and their concrete variants."""

    MH = "MH"  # Prop: user or random-walk proposal
    GIBBS = "Gibbs"  # FC: closed-form conditional (conjugate or enumerated)
    HMC = "HMC"  # Grad
    NUTS = "NUTS"  # Grad (prototype, paper footnote 5)
    SLICE = "Slice"  # reflective slice
    ESLICE = "ESlice"  # elliptical slice

    @property
    def needs_gradient(self) -> bool:
        return self in (UpdateMethod.HMC, UpdateMethod.NUTS)

    @property
    def needs_full_conditional(self) -> bool:
        return self is UpdateMethod.GIBBS

    @property
    def needs_likelihood(self) -> bool:
        # Figure 7: every update except Gibbs evaluates the conditional
        # density of the current/proposed point.
        return self is not UpdateMethod.GIBBS


@dataclass(frozen=True)
class KernelUnit:
    """``Single(x)`` or ``Block(x...)`` -- the variables an update touches."""

    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("a kernel unit needs at least one variable")

    @classmethod
    def single(cls, name: str) -> "KernelUnit":
        return cls((name,))

    @classmethod
    def block(cls, names) -> "KernelUnit":
        return cls(tuple(names))

    @property
    def is_single(self) -> bool:
        return len(self.names) == 1

    def __str__(self) -> str:
        if self.is_single:
            return self.names[0]
        return "(" + ", ".join(self.names) + ")"


class Kernel:
    """Base class for kernel terms."""

    def __matmul__(self, other: "Kernel") -> "KComp":
        """``k1 @ k2`` builds the sequencing ``k1 (*) k2``."""
        return KComp(self, other)


@dataclass(frozen=True)
class KBase(Kernel):
    """One base MCMC update ``(kappa a) ku a``."""

    method: UpdateMethod
    unit: KernelUnit
    payload: Any = None
    options: tuple[tuple[str, Any], ...] = field(default=())

    def opt(self, name: str, default=None):
        return dict(self.options).get(name, default)

    def with_payload(self, payload: Any) -> "KBase":
        return KBase(self.method, self.unit, payload, self.options)

    @property
    def provenance(self):
        """Source pointer: the model statements this update resamples."""
        from repro.core.provenance import Provenance

        return Provenance(
            stmt=self.unit.names[0], stmts=self.unit.names, stage="kernel"
        )

    def __str__(self) -> str:
        return f"{self.method.value} {self.unit}"


@dataclass(frozen=True)
class KComp(Kernel):
    """Sequencing ``k1 (*) k2``.  Not commutative (Section 4.1)."""

    left: Kernel
    right: Kernel

    def __str__(self) -> str:
        return f"{self.left} (*) {self.right}"


@dataclass(frozen=True)
class KSched:
    """Top level: ``lambda(binders...). k`` (Figure 5 ``sched``)."""

    binders: tuple[str, ...]
    kernel: Kernel

    def __str__(self) -> str:
        return f"lambda({', '.join(self.binders)}). {self.kernel}"


def flatten(kernel: Kernel) -> tuple[KBase, ...]:
    """The base updates of a kernel in execution order."""
    match kernel:
        case KBase():
            return (kernel,)
        case KComp(left, right):
            return flatten(left) + flatten(right)
        case _:
            raise TypeError(f"not a kernel term: {kernel!r}")


def compose(updates) -> Kernel:
    """Right-fold a sequence of updates into a composition."""
    updates = list(updates)
    if not updates:
        raise ValueError("cannot compose zero updates")
    k = updates[0]
    for u in updates[1:]:
        k = KComp(k, u)
    return k
