"""The conjugacy table (paper Section 4.4).

"AugurV2 exploits conjugacy relations ... via table lookup."  Each rule
pattern-matches a :class:`Conditional` structurally: the prior must be
a known distribution whose arguments have no dependence on the target,
and every likelihood factor must use the target element *exactly* in
the conjugate argument position.  The compiler "may fail to detect a
conjugacy relation if the approximation of the conditional is imprecise
or the compiler needs to perform mathematical rearrangements beyond
structural pattern matching" -- both limitations are faithfully
reproduced here.

Each matched rule later gets its own Gibbs code generator in
:mod:`repro.core.lowpp.gen_gibbs` ("we need to implement a separate
code-generator for each conjugacy relation", Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.density.conditionals import Conditional
from repro.core.density.ir import Factor
from repro.core.exprs import Expr, mentions


@dataclass(frozen=True)
class ConjugacyMatch:
    """A detected conjugacy relation on a conditional."""

    rule: str
    cond: Conditional

    def __str__(self) -> str:
        return f"{self.rule}({self.cond.target})"


def _independent_of(e: Expr, target: str) -> bool:
    return not mentions(e, target)


def _prior_args_independent(cond: Conditional) -> bool:
    return all(_independent_of(a, cond.target) for a in cond.prior.args)


def _lik_matches(
    cond: Conditional,
    lik_dist: str,
    conj_arg_index: int,
) -> bool:
    """Every likelihood factor is ``lik_dist`` with the target element in
    argument position ``conj_arg_index`` and no other target dependence."""
    if not cond.likelihood:
        return False
    elem = cond.prior.at
    for f in cond.likelihood:
        if f.dist != lik_dist:
            return False
        if f.args[conj_arg_index] != elem:
            return False
        for i, a in enumerate(f.args):
            if i != conj_arg_index and not _independent_of(a, cond.target):
                return False
        if not _independent_of(f.at, cond.target):
            return False
    return True


#: (rule name, prior distribution, likelihood distribution, conjugate
#: argument position in the likelihood).  This is the well-known list
#: the paper refers to.
_TABLE: tuple[tuple[str, str, str, int], ...] = (
    ("normal_normal_mean", "Normal", "Normal", 0),
    ("mvnormal_mvnormal_mean", "MvNormal", "MvNormal", 0),
    ("dirichlet_categorical", "Dirichlet", "Categorical", 0),
    ("beta_bernoulli", "Beta", "Bernoulli", 0),
    ("beta_binomial", "Beta", "Binomial", 1),
    ("gamma_poisson", "Gamma", "Poisson", 0),
    ("gamma_exponential", "Gamma", "Exponential", 0),
    ("invwishart_mvnormal_cov", "InvWishart", "MvNormal", 1),
)


def detect_conjugacy(cond: Conditional) -> ConjugacyMatch | None:
    """Look the conditional up in the conjugacy table.

    Returns ``None`` when no rule matches -- including when the
    conditional approximation was imprecise, in which case a closed
    form cannot be trusted even if the shapes line up.
    """
    if cond.imprecise or cond.vector_dependence:
        return None
    if not _prior_args_independent(cond):
        return None
    for rule, prior_dist, lik_dist, pos in _TABLE:
        if cond.prior.dist != prior_dist:
            continue
        if _lik_matches(cond, lik_dist, pos):
            return ConjugacyMatch(rule=rule, cond=cond)
    return None


# ----------------------------------------------------------------------
# Gibbs-by-enumeration support (the "finite sum" fallback, Section 4.4).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EnumerationMatch:
    """A discrete conditional that can be summed over its finite support.

    ``probs_arg`` is the Categorical probability-vector expression whose
    length gives the support bound (``None`` for a Bernoulli target,
    whose support is {0, 1}).
    """

    cond: Conditional
    probs_arg: Expr | None


def detect_enumeration(cond: Conditional, prior_dist_name: str) -> EnumerationMatch | None:
    """Check that a discrete variable's conditional can be enumerated.

    Requires a finite-support prior (Categorical or Bernoulli) and a
    precise conditional, so that substituting each support value into
    the dependent factors scores the full conditional.  Whole-vector
    references (e.g. a hidden layer used inside ``dotp``) are rejected
    too: there is no per-element expression to substitute the candidate
    value into, so the enumeration generator cannot score it.
    """
    if cond.imprecise or cond.vector_dependence:
        return None
    if prior_dist_name == "Categorical":
        return EnumerationMatch(cond=cond, probs_arg=cond.prior.args[0])
    if prior_dist_name == "Bernoulli":
        return EnumerationMatch(cond=cond, probs_arg=None)
    return None


def lik_factors_by_guard(cond: Conditional) -> tuple[tuple[Factor, ...], tuple[Factor, ...]]:
    """Split likelihood factors into (unguarded, guarded) groups.

    Guarded factors arose from the categorical-indexing rule and score
    only the subset selected by the mixture assignment; code generators
    handle the two groups differently (masked statistics vs. plain).
    """
    unguarded = tuple(f for f in cond.likelihood if not f.guards)
    guarded = tuple(f for f in cond.likelihood if f.guards)
    return unguarded, guarded
