"""User-schedule validation (paper Section 4.2).

"The user can supply the MCMC schedule, in which case the compiler will
check that it can indeed generate the desired schedule and fail
otherwise."  This module performs that check and attaches the symbolic
conditionals to each base update, producing the same payload shape the
heuristic scheduler yields.
"""

from __future__ import annotations

from repro.core.density.conditionals import blocked_factors, conditional
from repro.core.density.ir import FactorizedDensity
from repro.core.exprs import mentions
from repro.core.frontend.symbols import ModelInfo
from repro.core.kernel.conjugacy import detect_conjugacy, detect_enumeration
from repro.core.kernel.ir import (
    KBase,
    Kernel,
    UpdateMethod,
    compose,
    flatten,
)
from repro.errors import ScheduleError

# Supports with an element-wise unconstraining transform the gradient
# drivers can chain-rule through.  Simplex variables (stick-breaking has
# a dense Jacobian) and positive-definite matrices are excluded: they
# must be sampled by Gibbs or slice updates.
_TRANSFORMABLE = {"real", "real_vec", "pos_real", "unit_interval"}


def validate_schedule(
    kernel: Kernel,
    fd: FactorizedDensity,
    info: ModelInfo,
    allow_partial: bool = False,
    categorical_rule: bool = True,
) -> Kernel:
    """Check a user schedule and attach conditionals; raise on failure."""
    updates = flatten(kernel)
    covered: set[str] = set()
    out: list[KBase] = []
    params = set(info.param_names())

    for upd in updates:
        for name in upd.unit.names:
            if name not in info.vars:
                raise ScheduleError(f"schedule names unknown variable {name!r}")
            if name not in params:
                raise ScheduleError(
                    f"schedule targets {name!r}, which is not a model parameter"
                )
        covered.update(upd.unit.names)
        out.append(_check_update(upd, fd, info, categorical_rule))

    if not allow_partial:
        missing = params - covered
        if missing:
            raise ScheduleError(
                f"schedule leaves parameters unsampled: {sorted(missing)}; "
                "every model parameter needs an update"
            )
    return compose(out)


def _check_update(
    upd: KBase, fd: FactorizedDensity, info: ModelInfo, categorical_rule: bool = True
) -> KBase:
    method = upd.method
    if method is UpdateMethod.GIBBS:
        return _check_gibbs(upd, fd, info, categorical_rule)
    if method in (UpdateMethod.HMC, UpdateMethod.NUTS):
        return _check_grad(upd, fd, info)
    if method in (UpdateMethod.SLICE, UpdateMethod.ESLICE, UpdateMethod.MH):
        return _check_density_based(upd, fd, info, categorical_rule)
    raise ScheduleError(f"unsupported update method {method}")


def _check_gibbs(
    upd: KBase, fd: FactorizedDensity, info: ModelInfo, categorical_rule: bool = True
) -> KBase:
    if not upd.unit.is_single:
        raise ScheduleError(
            f"Gibbs {upd.unit}: blocked Gibbs updates are not supported; "
            "joint conjugacy detection is out of scope"
        )
    name = upd.unit.names[0]
    cond = conditional(fd, name, info, categorical_rule)
    match = detect_conjugacy(cond)
    if match is not None:
        return upd.with_payload(match)
    vinfo = info.info(name)
    if vinfo.is_discrete:
        enum = detect_enumeration(cond, vinfo.dist_name)
        if enum is not None:
            return upd.with_payload(enum)
    raise ScheduleError(
        f"Gibbs {name}: no conjugacy relation detected and the variable is "
        "not a finite-support discrete variable"
        + (" (conditional approximation is imprecise)" if cond.imprecise else "")
    )


def _check_grad(upd: KBase, fd: FactorizedDensity, info: ModelInfo) -> KBase:
    for name in upd.unit.names:
        vinfo = info.info(name)
        if vinfo.is_discrete:
            raise ScheduleError(
                f"{upd.method.value} {name}: gradient-based updates cannot "
                "be applied to discrete variables; marginalise them or use "
                "Gibbs"
            )
        if vinfo.support not in _TRANSFORMABLE:
            raise ScheduleError(
                f"{upd.method.value} {name}: no unconstraining transform for "
                f"support {vinfo.support!r}"
            )
    blk = blocked_factors(fd, upd.unit.names)
    return upd.with_payload(blk)


def _check_density_based(
    upd: KBase, fd: FactorizedDensity, info: ModelInfo, categorical_rule: bool = True
) -> KBase:
    if not upd.unit.is_single:
        raise ScheduleError(
            f"{upd.method.value} {upd.unit}: blocked slice/MH updates are "
            "not supported; list the variables as separate updates"
        )
    name = upd.unit.names[0]
    vinfo = info.info(name)
    if vinfo.is_discrete and upd.method is not UpdateMethod.MH:
        raise ScheduleError(
            f"{upd.method.value} {name}: slice sampling needs a continuous "
            "variable"
        )
    if (
        vinfo.is_discrete
        and upd.method is UpdateMethod.MH
        and upd.opt("proposal") is None
    ):
        raise ScheduleError(
            f"MH {name}: a discrete variable needs a user-supplied proposal; "
            "mark the update as MH[proposal=user] and pass the callable via "
            "setProposal / compile_model(proposals=...)"
        )
    batch = upd.opt("batch")
    if batch not in (None, "on", "off"):
        raise ScheduleError(
            f"{upd.method.value} {name}: the batch option must be 'on' or "
            f"'off', got {batch!r}"
        )
    cond = conditional(fd, name, info, categorical_rule)
    if upd.method is UpdateMethod.ESLICE:
        if cond.prior.dist not in ("Normal", "MvNormal"):
            raise ScheduleError(
                f"ESlice {name}: elliptical slice sampling requires a "
                f"Gaussian prior, but {name} has a {cond.prior.dist} prior"
            )
        if any(mentions(a, name) for a in cond.prior.args):
            raise ScheduleError(
                f"ESlice {name}: the Gaussian prior parameters must not "
                "depend on the variable itself"
            )
    if upd.method in (UpdateMethod.SLICE, UpdateMethod.MH) and vinfo.support in (
        "pos_def_mat",
        "simplex",
    ):
        raise ScheduleError(
            f"{upd.method.value} {name}: coordinate-wise updates would leave "
            f"the {vinfo.support} support; use Gibbs for this variable"
        )
    return upd.with_payload(cond)
