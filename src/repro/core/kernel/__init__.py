"""The Kernel IL (paper Section 4.1).

A MCMC algorithm is represented as a composition of base updates, each
applying one method (Gibbs/FC, MH proposal, gradient-based, slice) to a
kernel unit (a single variable or a block).  The IL is parametric in
the representation of the proportional conditional; the middle-end
instantiates it first with Density-IL conditionals and later with
Low++/Low-- code.
"""

from repro.core.kernel.ir import (
    KBase,
    KComp,
    Kernel,
    KernelUnit,
    KSched,
    UpdateMethod,
    flatten,
)
from repro.core.kernel.schedule import parse_schedule
from repro.core.kernel.heuristic import heuristic_schedule

__all__ = [
    "KBase",
    "KComp",
    "Kernel",
    "KernelUnit",
    "KSched",
    "UpdateMethod",
    "flatten",
    "heuristic_schedule",
    "parse_schedule",
]
