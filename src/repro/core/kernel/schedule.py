"""User MCMC-schedule parsing (paper Section 2.3).

A schedule string names a base update per variable (or block) and
composes them with ``(*)``::

    'ESlice mu (*) Gibbs z'
    'HMC (theta, b, sigma2)'
    'HMC[steps=20, step_size=0.05] theta (*) Gibbs z'

The optional bracket list attaches options (integers, floats, or bare
identifiers) to the update, e.g. HMC integrator settings or a MH
proposal scale.  Element-wise updates (``MH``/``Slice``/``ESlice``)
additionally accept ``batch=off`` to force the scalar per-element
driver even when the compiler's batched (element-parallel) execution
path would be eligible.
"""

from __future__ import annotations

from repro.core.frontend.lexer import Token, TokKind, tokenize
from repro.core.kernel.ir import KBase, Kernel, KernelUnit, UpdateMethod, compose
from repro.errors import ParseError

_METHOD_NAMES = {m.value: m for m in UpdateMethod}


class _SchedParser:
    def __init__(self, source: str):
        self.toks = tokenize(source)
        self.pos = 0

    @property
    def cur(self) -> Token:
        return self.toks[self.pos]

    def error(self, msg: str):
        t = self.cur
        raise ParseError(f"schedule: {msg} (found {str(t)!r})", t.line, t.col)

    def advance(self) -> Token:
        t = self.cur
        if t.kind is not TokKind.EOF:
            self.pos += 1
        return t

    def at(self, text: str) -> bool:
        return self.cur.text == text

    def eat(self, text: str) -> None:
        if not self.at(text):
            self.error(f"expected {text!r}")
        self.advance()

    def parse(self) -> Kernel:
        updates = [self.update()]
        while self.at("(*)"):
            self.advance()
            updates.append(self.update())
        if self.cur.kind is not TokKind.EOF:
            self.error("trailing input")
        return compose(updates)

    def update(self) -> KBase:
        t = self.cur
        if t.kind is not TokKind.IDENT or t.text not in _METHOD_NAMES:
            known = ", ".join(sorted(_METHOD_NAMES))
            self.error(f"expected an update method ({known})")
        method = _METHOD_NAMES[self.advance().text]
        options = self.options() if self.at("[") else ()
        unit = self.unit()
        return KBase(method=method, unit=unit, options=options)

    def options(self) -> tuple[tuple[str, object], ...]:
        self.eat("[")
        opts: list[tuple[str, object]] = []
        while not self.at("]"):
            if self.cur.kind is not TokKind.IDENT:
                self.error("expected an option name")
            name = self.advance().text
            self.eat("=")
            opts.append((name, self.value()))
            if self.at(","):
                self.advance()
        self.eat("]")
        return tuple(opts)

    def value(self):
        t = self.cur
        neg = False
        if self.at("-"):
            self.advance()
            neg = True
            t = self.cur
        if t.kind is TokKind.INT:
            self.advance()
            v = int(t.text)
            return -v if neg else v
        if t.kind is TokKind.REAL:
            self.advance()
            v = float(t.text)
            return -v if neg else v
        if t.kind is TokKind.IDENT and not neg:
            self.advance()
            return t.text
        self.error("expected an option value")
        raise AssertionError("unreachable")

    def unit(self) -> KernelUnit:
        if self.at("("):
            self.advance()
            names = [self.ident()]
            while self.at(","):
                self.advance()
                names.append(self.ident())
            self.eat(")")
            return KernelUnit.block(names)
        return KernelUnit.single(self.ident())

    def ident(self) -> str:
        if self.cur.kind is not TokKind.IDENT:
            self.error("expected a variable name")
        return self.advance().text


def parse_schedule(source: str) -> Kernel:
    """Parse a user schedule string into a Kernel-IL term."""
    return _SchedParser(source).parse()


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "on" if value else "off"
    return str(value)


def format_update(upd: KBase) -> str:
    """Render one base update back into schedule-language syntax."""
    opts = ""
    if upd.options:
        opts = "[" + ", ".join(
            f"{name}={_format_value(value)}" for name, value in upd.options
        ) + "]"
    return f"{upd.method.value}{opts} {upd.unit}"


def format_schedule(kernel: Kernel) -> str:
    """Render a kernel term as a schedule string.

    The inverse of :func:`parse_schedule` up to whitespace:
    ``parse_schedule(format_schedule(k))`` reproduces ``k`` minus
    payloads.  Used by the autotuner to turn candidate kernels back
    into the user-facing schedule strings it compiles and records.
    """
    from repro.core.kernel.ir import flatten

    return " (*) ".join(format_update(u) for u in flatten(kernel))
