"""Provenance: source maps from compiled artifacts back to the model.

Every lowering stage of the pipeline produces artifacts whose names no
longer look like the model the user wrote: a Density IL factor for
``x``, a Kernel IL update over ``(mu, z)``, a Low++ declaration
``batch_cond_ll_z`` and finally an emitted Python function.  A
:class:`Provenance` record pins each of them back to the model
*statement(s)* that produced it, so the profiler, the compiler decision
ledger and the inference report can all speak in terms of the user's
program ("62% of the sweep is spent scoring ``data x[n] ~ ...``")
instead of generated names.

The module is deliberately dependency-free: the frontend, every IL and
the telemetry layer can all import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Provenance:
    """Where a compiled artifact came from.

    ``stmt`` is the primary model statement (the declared name on the
    left-hand side); ``stmts`` lists every model statement whose density
    terms or samples flow into the artifact (``stmt`` included).
    ``stage`` names the pipeline stage that produced the artifact.
    """

    stmt: str
    stmts: tuple[str, ...] = ()
    stage: str = ""

    def __post_init__(self) -> None:
        if not self.stmts:
            object.__setattr__(self, "stmts", (self.stmt,))

    def to_dict(self) -> dict:
        return {"stmt": self.stmt, "stmts": list(self.stmts), "stage": self.stage}

    def describe(self, source_map: dict | None = None) -> str:
        """Human-readable pointer, resolved against a source map."""
        if source_map and self.stmt in source_map:
            line = source_map[self.stmt]
            return f"{self.stmt} (line {line.line}: {line.text})"
        return self.stmt


@dataclass(frozen=True)
class SourceLine:
    """One model statement: its source line number and statement text."""

    name: str
    line: int
    text: str


def merge_stmts(primary: str, *groups) -> tuple[str, ...]:
    """Stable-order union of statement names, ``primary`` first."""
    seen = {primary: None}
    for group in groups:
        for name in group:
            if name:
                seen.setdefault(name, None)
    return tuple(seen)


def build_source_map(model) -> dict[str, SourceLine]:
    """``name -> SourceLine`` for every declaration of a parsed model.

    Duck-typed over :class:`repro.core.frontend.ast.Model`: anything
    with ``.decls`` whose entries carry ``name``/``line`` and render via
    ``str`` works, which keeps this module import-free.
    """
    out: dict[str, SourceLine] = {}
    for d in getattr(model, "decls", ()):
        out[d.name] = SourceLine(
            name=d.name, line=int(getattr(d, "line", 0)), text=str(d)
        )
    return out
