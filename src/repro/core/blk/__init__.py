"""The Blk IL (paper Sections 5.3-5.4).

Exposes the kinds of parallelism a GPU provides: data-parallel blocks
(``parBlk``), reductions (``sumBlk``), sequenced parallel computations
(``loopBlk``), and the absence of parallelism (``seqBlk``).  The
optimiser commutes loops and converts high-contention atomic
accumulations into summation blocks using runtime size information.
"""

from repro.core.blk.ir import BlkDecl, LoopBlk, ParBlk, SeqBlk, SumBlk
from repro.core.blk.lower import lower_to_blk
from repro.core.blk.optimize import optimize_blocks

__all__ = [
    "BlkDecl",
    "LoopBlk",
    "ParBlk",
    "SeqBlk",
    "SumBlk",
    "lower_to_blk",
    "optimize_blocks",
]
