"""Blk IL terms (paper Figure 9).

::

    b ::= seqBlk {s}
        | parBlk lk x <- gen {s}
        | loopBlk x <- gen {b}
        | e_acc = sumBlk e0 x <- gen {s ; ret e}

``parBlk`` launches one thread per generator element; ``sumBlk`` is a
map-reduce; ``loopBlk`` sequences launches; ``seqBlk`` is host-side
sequential code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exprs import Expr, Gen
from repro.core.lowpp.ir import LoopKind, LValue, Stmt


class Blk:
    """Base class for blocks."""


@dataclass(frozen=True)
class SeqBlk(Blk):
    stmts: tuple[Stmt, ...]

    def __str__(self) -> str:
        inner = " ".join(map(str, self.stmts))
        return f"seqBlk {{ {inner} }}"


@dataclass(frozen=True)
class ParBlk(Blk):
    kind: LoopKind  # PAR or ATM_PAR
    gen: Gen
    stmts: tuple[Stmt, ...]

    def __str__(self) -> str:
        inner = " ".join(map(str, self.stmts))
        return f"parBlk {self.kind.value} {self.gen} {{ {inner} }}"


@dataclass(frozen=True)
class LoopBlk(Blk):
    gen: Gen
    blocks: tuple[Blk, ...]

    def __str__(self) -> str:
        inner = " ".join(map(str, self.blocks))
        return f"loopBlk {self.gen} {{ {inner} }}"


@dataclass(frozen=True)
class SumBlk(Blk):
    """``acc = sumBlk init x <- gen { stmts ; ret value }``."""

    acc: LValue
    init: Expr
    gen: Gen
    stmts: tuple[Stmt, ...]
    value: Expr

    def __str__(self) -> str:
        inner = " ".join(map(str, self.stmts))
        return (
            f"{self.acc} = sumBlk {self.init} {self.gen} "
            f"{{ {inner} ret {self.value}; }}"
        )


@dataclass(frozen=True)
class BlkDecl:
    """A declaration lowered to a sequence of blocks."""

    name: str
    params: tuple[str, ...]
    blocks: tuple[Blk, ...]
    ret: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        lines = [f"{self.name}({', '.join(self.params)}) {{"]
        lines.extend(f"  {b}" for b in self.blocks)
        if self.ret:
            lines.append("  ret " + ", ".join(map(str, self.ret)) + ";")
        lines.append("}")
        return "\n".join(lines)
