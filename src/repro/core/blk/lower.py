"""Low-- -> Blk lowering (paper Section 5.4, first paragraph).

"Every top-level loop we encounter in the body is converted to a
parallel block with the same loop annotation.  The remaining top-level
statements that are not nested within a loop are generated as a
sequential block."  Sequential top-level loops become loop blocks whose
bodies are lowered recursively (launching the inner parallel blocks
once per iteration).
"""

from __future__ import annotations

from repro.core.blk.ir import Blk, BlkDecl, LoopBlk, ParBlk, SeqBlk
from repro.core.lowpp.ir import LDecl, LoopKind, SLoop, Stmt


def _lower_stmts(stmts: tuple[Stmt, ...]) -> tuple[Blk, ...]:
    blocks: list[Blk] = []
    pending: list[Stmt] = []

    def flush() -> None:
        if pending:
            blocks.append(SeqBlk(tuple(pending)))
            pending.clear()

    for s in stmts:
        if isinstance(s, SLoop):
            if s.kind in (LoopKind.PAR, LoopKind.ATM_PAR):
                flush()
                blocks.append(ParBlk(s.kind, s.gen, s.body))
            else:
                flush()
                blocks.append(LoopBlk(s.gen, _lower_stmts(s.body)))
        else:
            pending.append(s)
    flush()
    return tuple(blocks)


def lower_to_blk(decl: LDecl) -> BlkDecl:
    return BlkDecl(
        name=decl.name,
        params=decl.params,
        blocks=_lower_stmts(decl.body),
        ret=decl.ret,
    )
