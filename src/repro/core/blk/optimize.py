"""Blk-IL optimisations (paper Section 5.4).

Because AugurV2 compiles at runtime, the optimiser can evaluate
comprehension bounds against the actual data sizes and make concrete
decisions:

- **Commuting loops**: ``parBlk K { loop N }`` with ``K << N`` becomes
  ``parBlk N { loop K }`` so the code utilises more GPU threads.

- **Conversion to summation blocks**: a ``parBlk AtmPar`` whose body
  accumulates into a single location has contention ratio
  ``threads / locations``; when the ratio is high the block becomes a
  ``sumBlk`` (map-reduce).  A block with several scalar accumulators is
  fissioned into one summation block per accumulator.

The heuristic mirrors the paper's: try the rewrites, keep a block
unchanged when neither applies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blk.ir import Blk, BlkDecl, LoopBlk, ParBlk, SumBlk
from repro.core.density.interp import eval_expr
from repro.core.exprs import Gen, Var, mentions
from repro.core.lowpp.ir import (
    AssignOp,
    LoopKind,
    SAssign,
    SLoop,
    Stmt,
)

#: Commute when the inner extent exceeds the outer by this factor.
COMMUTE_FACTOR = 4
#: Convert to a summation block when threads / locations exceeds this.
CONTENTION_THRESHOLD = 16


@dataclass
class OptimizeConfig:
    """Ablation switches for the Section 5.4 rewrites."""

    commute_loops: bool = True
    sum_block_conversion: bool = True
    #: Fuse ``loopBlk g { parBlk h { s } }`` into ``parBlk h { loop Seq
    #: g { s } }`` -- one kernel launch instead of ``|g|`` launches, with
    #: the sequential loop running inside each thread.  This is how the
    #: enumeration-Gibbs update is actually emitted as a single Cuda
    #: kernel.
    fuse_kernel_loops: bool = True
    commute_factor: int = COMMUTE_FACTOR
    contention_threshold: int = CONTENTION_THRESHOLD


def _gen_extent(gen: Gen, env: dict) -> int | None:
    """Evaluate a generator's extent, or None when it depends on an
    enclosing binder the optimiser cannot see."""
    try:
        lo = int(eval_expr(gen.lo, env))
        hi = int(eval_expr(gen.hi, env))
    except Exception:
        return None
    return max(0, hi - lo)


def _try_commute(blk: ParBlk, env: dict, cfg: OptimizeConfig) -> ParBlk | None:
    """``parBlk g_out { loop g_in { body } }`` with small g_out -> commute."""
    if len(blk.stmts) != 1 or not isinstance(blk.stmts[0], SLoop):
        return None
    inner = blk.stmts[0]
    if inner.kind is LoopKind.SEQ:
        return None
    # Bounds must be independent of each other's binder.
    if mentions(inner.gen.lo, blk.gen.var) or mentions(inner.gen.hi, blk.gen.var):
        return None
    if mentions(blk.gen.lo, inner.gen.var) or mentions(blk.gen.hi, inner.gen.var):
        return None
    outer_n = _gen_extent(blk.gen, env)
    inner_n = _gen_extent(inner.gen, env)
    if outer_n is None or inner_n is None:
        return None
    if inner_n <= cfg.commute_factor * outer_n:
        return None
    kind = (
        LoopKind.ATM_PAR
        if LoopKind.ATM_PAR in (blk.kind, inner.kind)
        else LoopKind.PAR
    )
    # The former outer loop now runs sequentially within each thread.
    return ParBlk(kind, inner.gen, (SLoop(LoopKind.SEQ, blk.gen, inner.body),))


def _accumulators(stmts: tuple[Stmt, ...]):
    """Split a flat AtmPar body into (temp sets, scalar INC statements).

    Returns None when the body has any other statement shape (nested
    loops, guards, indexed increments), which the conversion does not
    handle.
    """
    temps: list[SAssign] = []
    incs: list[SAssign] = []
    for s in stmts:
        if not isinstance(s, SAssign):
            return None
        if s.op is AssignOp.SET and not s.lhs.indices:
            temps.append(s)
        elif s.op is AssignOp.INC and not s.lhs.indices:
            incs.append(s)
        else:
            return None
    if not incs:
        return None
    acc_names = {s.lhs.name for s in incs}
    # Temps must not read accumulators (they never do in generated code).
    for t in temps:
        if any(mentions(t.rhs, a) for a in acc_names):
            return None
    return temps, incs


def _try_sum_conversion(
    blk: ParBlk, env: dict, cfg: OptimizeConfig
) -> tuple[Blk, ...] | None:
    if blk.kind is not LoopKind.ATM_PAR:
        return None
    split = _accumulators(blk.stmts)
    if split is None:
        return None
    temps, incs = split
    threads = _gen_extent(blk.gen, env)
    if threads is None:
        return None
    # Scalar accumulators have one location; the estimated contention
    # ratio is threads / 1.
    if threads <= cfg.contention_threshold:
        return None
    blocks: list[Blk] = []
    for inc in incs:
        blocks.append(
            SumBlk(
                acc=inc.lhs,
                init=Var(inc.lhs.name),
                gen=blk.gen,
                stmts=tuple(temps),
                value=inc.rhs,
            )
        )
    return tuple(blocks)


def _writes_are_thread_private(stmts: tuple[Stmt, ...], par_var: str) -> bool:
    """Every store either hits a cell selected by the thread index or is
    a thread-local temporary -- the condition under which a sequential
    outer loop may move inside the kernel."""
    from repro.core.lowpp.ir import SMultiAssign, walk_stmts

    for s in walk_stmts(stmts):
        if isinstance(s, SAssign):
            if not s.lhs.indices:
                if s.op is AssignOp.INC:
                    return False  # cross-thread accumulator
                continue  # SET temp: private
            if not any(mentions(i, par_var) for i in s.lhs.indices):
                return False
        elif isinstance(s, SMultiAssign):
            for lv in s.lhs:
                if lv.indices and not any(mentions(i, par_var) for i in lv.indices):
                    return False
    return True


def _sink_seq_loop(seq_gen: Gen, stmts: tuple[Stmt, ...]) -> tuple[Stmt, ...] | None:
    """Push ``loop Seq seq_gen`` below any chain of parallel loops.

    Valid when, at every level, stores hit cells selected by that
    level's thread index (so the (threads x seq) iteration grid writes
    disjoint cells regardless of interleaving).
    """
    if len(stmts) == 1 and isinstance(stmts[0], SLoop) and stmts[0].kind in (
        LoopKind.PAR,
        LoopKind.ATM_PAR,
    ):
        inner = stmts[0]
        if mentions(inner.gen.lo, seq_gen.var) or mentions(inner.gen.hi, seq_gen.var):
            return None
        if not _writes_are_thread_private(inner.body, inner.gen.var):
            return None
        sunk = _sink_seq_loop(seq_gen, inner.body)
        if sunk is None:
            return None
        return (SLoop(inner.kind, inner.gen, sunk),)
    return (SLoop(LoopKind.SEQ, seq_gen, stmts),)


def _try_fuse(blk: LoopBlk, cfg: OptimizeConfig) -> ParBlk | None:
    """``loopBlk g { parBlk h { s } }`` -> one kernel with g innermost."""
    if len(blk.blocks) != 1 or not isinstance(blk.blocks[0], ParBlk):
        return None
    inner = blk.blocks[0]
    if mentions(inner.gen.lo, blk.gen.var) or mentions(inner.gen.hi, blk.gen.var):
        return None
    if mentions(blk.gen.lo, inner.gen.var) or mentions(blk.gen.hi, inner.gen.var):
        return None
    if not _writes_are_thread_private(inner.stmts, inner.gen.var):
        return None
    sunk = _sink_seq_loop(blk.gen, inner.stmts)
    if sunk is None:
        return None
    return ParBlk(inner.kind, inner.gen, sunk)


def _optimize_block(blk: Blk, env: dict, cfg: OptimizeConfig) -> tuple[Blk, ...]:
    if isinstance(blk, LoopBlk):
        if cfg.fuse_kernel_loops:
            fused = _try_fuse(blk, cfg)
            if fused is not None:
                return _optimize_block(fused, env, cfg)
        inner: list[Blk] = []
        for b in blk.blocks:
            inner.extend(_optimize_block(b, env, cfg))
        return (LoopBlk(blk.gen, tuple(inner)),)
    if not isinstance(blk, ParBlk):
        return (blk,)
    if cfg.sum_block_conversion:
        converted = _try_sum_conversion(blk, env, cfg)
        if converted is not None:
            return converted
    if cfg.commute_loops:
        commuted = _try_commute(blk, env, cfg)
        if commuted is not None:
            # Re-examine the commuted block (it may now convert).
            if cfg.sum_block_conversion:
                converted = _try_sum_conversion(commuted, env, cfg)
                if converted is not None:
                    return converted
            return (commuted,)
    return (blk,)


def optimize_blocks(decl: BlkDecl, env: dict, cfg: OptimizeConfig | None = None) -> BlkDecl:
    """Apply the Section 5.4 rewrites using runtime sizes from ``env``."""
    cfg = cfg or OptimizeConfig()
    blocks: list[Blk] = []
    for b in decl.blocks:
        blocks.extend(_optimize_block(b, env, cfg))
    return BlkDecl(decl.name, decl.params, tuple(blocks), decl.ret)
