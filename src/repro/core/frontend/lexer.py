"""Tokenizer for the surface modeling language and schedule strings."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = frozenset({"param", "data", "let", "for", "until"})

#: Multi-character punctuation, longest first so the scanner is greedy.
MULTI_PUNCT = ("=>", "<-", "(*)", "==")
SINGLE_PUNCT = "()[]{},;~=+-*/<>."


class TokKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INT = "int"
    REAL = "real"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int
    col: int

    def __str__(self) -> str:
        return self.text if self.kind is not TokKind.EOF else "<eof>"


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into tokens, raising :class:`ParseError` on junk.

    Comments run from ``#`` or ``//`` to end of line.
    """
    toks: list[Token] = []
    i, line, col = 0, 1, 1
    n = len(source)

    def error(msg: str):
        raise ParseError(msg, line, col)

    while i < n:
        c = source[i]
        if c == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_col = col
        # Multi-character punctuation first (so '(*)' beats '(').
        matched = next((p for p in MULTI_PUNCT if source.startswith(p, i)), None)
        if matched:
            toks.append(Token(TokKind.PUNCT, matched, line, start_col))
            i += len(matched)
            col += len(matched)
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = seen_exp = False
            while j < n:
                ch = source[j]
                if ch.isdigit():
                    j += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    # Only a decimal point when followed by a digit -- '0 until N'
                    # style ranges never produce '0.' literals in practice, but
                    # guard anyway.
                    if j + 1 < n and source[j + 1].isdigit():
                        seen_dot = True
                        j += 1
                    else:
                        break
                elif ch in "eE" and not seen_exp and j + 1 < n and (
                    source[j + 1].isdigit() or source[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 2 if source[j + 1] in "+-" else 1
                else:
                    break
            text = source[i:j]
            kind = TokKind.REAL if seen_dot or seen_exp else TokKind.INT
            toks.append(Token(kind, text, line, start_col))
            col += j - i
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            toks.append(Token(kind, text, line, start_col))
            col += j - i
            i = j
            continue
        if c in SINGLE_PUNCT:
            toks.append(Token(TokKind.PUNCT, c, line, start_col))
            i += 1
            col += 1
            continue
        error(f"unexpected character {c!r}")
    toks.append(Token(TokKind.EOF, "", line, col))
    return toks
