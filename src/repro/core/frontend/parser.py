"""Recursive-descent parser for the surface modeling language.

Grammar (terminals quoted; ``*`` repetition, ``?`` option)::

    model   := '(' idents? ')' '=>' '{' decl* '}'
    decl    := ('param' | 'data') lhs '~' expr comp? ';'
             | 'let' lhs '=' expr comp? ';'
    lhs     := IDENT ('[' IDENT ']')*
    comp    := 'for' gen (',' gen)*
    gen     := IDENT '<-' expr 'until' expr
    expr    := term (('+' | '-') term)*
    term    := unary (('*' | '/') unary)*
    unary   := '-' unary | postfix
    postfix := primary ('[' expr ']')*
    primary := IDENT '(' args? ')' | IDENT | INT | REAL | '(' expr ')'

An identifier applied to arguments is a distribution when the name is
registered in the distribution registry, otherwise a builtin operator.
"""

from __future__ import annotations

from repro.core.builtins import is_builtin
from repro.core.exprs import (
    Call,
    DistCall,
    Expr,
    Gen,
    Index,
    IntLit,
    RealLit,
    Var,
)
from repro.core.frontend.ast import Decl, DeclKind, Model
from repro.core.frontend.lexer import Token, TokKind, tokenize
from repro.errors import ParseError
from repro.runtime.distributions import is_distribution


class _Parser:
    def __init__(self, source: str):
        self.toks = tokenize(source)
        self.pos = 0

    # -- token plumbing -------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.toks[self.pos]

    def error(self, msg: str):
        t = self.cur
        raise ParseError(f"{msg} (found {str(t)!r})", t.line, t.col)

    def advance(self) -> Token:
        t = self.cur
        if t.kind is not TokKind.EOF:
            self.pos += 1
        return t

    def at(self, text: str) -> bool:
        return self.cur.text == text and self.cur.kind in (
            TokKind.PUNCT,
            TokKind.KEYWORD,
        )

    def eat(self, text: str) -> Token:
        if not self.at(text):
            self.error(f"expected {text!r}")
        return self.advance()

    def eat_ident(self) -> str:
        if self.cur.kind is not TokKind.IDENT:
            self.error("expected an identifier")
        return self.advance().text

    # -- grammar --------------------------------------------------------

    def model(self) -> Model:
        self.eat("(")
        hypers: list[str] = []
        if not self.at(")"):
            hypers.append(self.eat_ident())
            while self.at(","):
                self.advance()
                hypers.append(self.eat_ident())
        self.eat(")")
        self.eat("=>")
        self.eat("{")
        decls: list[Decl] = []
        while not self.at("}"):
            decls.append(self.decl())
        self.eat("}")
        if self.cur.kind is not TokKind.EOF:
            self.error("trailing input after model body")
        try:
            model = Model(tuple(hypers), tuple(decls))
            model.check_scoping()
        except ValueError as e:
            raise ParseError(str(e)) from None
        return model

    def decl(self) -> Decl:
        if self.cur.kind is not TokKind.KEYWORD or self.cur.text not in (
            "param",
            "data",
            "let",
        ):
            self.error("expected 'param', 'data', or 'let'")
        line = self.cur.line
        kind = DeclKind(self.advance().text)
        name = self.eat_ident()
        idx_vars: list[str] = []
        while self.at("["):
            self.advance()
            idx_vars.append(self.eat_ident())
            self.eat("]")
        self.eat("=" if kind is DeclKind.LET else "~")
        rhs = self.expr()
        gens: list[Gen] = []
        if self.at("for"):
            self.advance()
            gens.append(self.gen())
            while self.at(","):
                self.advance()
                gens.append(self.gen())
        self.eat(";")
        if kind is not DeclKind.LET and not isinstance(rhs, DistCall):
            raise ParseError(
                f"{name}: right-hand side of '~' must be a distribution"
            )
        try:
            return Decl(kind, name, tuple(idx_vars), rhs, tuple(gens), line=line)
        except ValueError as e:
            raise ParseError(str(e)) from None

    def gen(self) -> Gen:
        var = self.eat_ident()
        self.eat("<-")
        lo = self.expr()
        self.eat("until")
        hi = self.expr()
        return Gen(var, lo, hi)

    def expr(self) -> Expr:
        e = self.term()
        while self.at("+") or self.at("-"):
            op = self.advance().text
            e = Call(op, (e, self.term()))
        return e

    def term(self) -> Expr:
        e = self.unary()
        while self.at("*") or self.at("/"):
            op = self.advance().text
            e = Call(op, (e, self.unary()))
        return e

    def unary(self) -> Expr:
        if self.at("-"):
            self.advance()
            return Call("neg", (self.unary(),))
        return self.postfix()

    def postfix(self) -> Expr:
        e = self.primary()
        while self.at("["):
            self.advance()
            idx = self.expr()
            self.eat("]")
            e = Index(e, idx)
        return e

    def primary(self) -> Expr:
        t = self.cur
        if t.kind is TokKind.INT:
            self.advance()
            return IntLit(int(t.text))
        if t.kind is TokKind.REAL:
            self.advance()
            return RealLit(float(t.text))
        if self.at("("):
            self.advance()
            e = self.expr()
            self.eat(")")
            return e
        if t.kind is TokKind.IDENT:
            name = self.advance().text
            if self.at("("):
                self.advance()
                args: list[Expr] = []
                if not self.at(")"):
                    args.append(self.expr())
                    while self.at(","):
                        self.advance()
                        args.append(self.expr())
                self.eat(")")
                if is_distribution(name):
                    return DistCall(name, tuple(args))
                if is_builtin(name):
                    return Call(name, tuple(args))
                raise ParseError(
                    f"unknown function or distribution {name!r}", t.line, t.col
                )
            return Var(name)
        self.error("expected an expression")
        raise AssertionError("unreachable")


def parse_model(source: str) -> Model:
    """Parse a model source string into a :class:`Model` AST."""
    return _Parser(source).model()


def parse_expr(source: str) -> Expr:
    """Parse a standalone expression (exposed for tests and tools)."""
    p = _Parser(source)
    e = p.expr()
    if p.cur.kind is not TokKind.EOF:
        p.error("trailing input after expression")
    return e
