"""Frontend: the surface modeling language (paper Section 2.2).

The modeling language mirrors random-variable notation: a model is a
closure over hyper-parameters whose body is a sequence of ``param`` /
``data`` declarations, each pairing a random variable with its
distribution under parallel comprehensions.

Entry point: :func:`repro.core.frontend.parser.parse_model`.
"""

from repro.core.frontend.ast import Decl, DeclKind, Model
from repro.core.frontend.parser import parse_model

__all__ = ["Decl", "DeclKind", "Model", "parse_model"]
