"""Abstract syntax for the surface modeling language.

A model (paper Figure 1) looks like::

    (K, N, mu_0, Sigma_0, pis, Sigma) => {
      param mu[k] ~ MvNormal(mu_0, Sigma_0)
        for k <- 0 until K ;
      param z[n] ~ Categorical(pis)
        for n <- 0 until N ;
      data x[n] ~ MvNormal(mu[z[n]], Sigma)
        for n <- 0 until N ;
    }

The top level closes over hyper-parameters; each declaration introduces
one random variable (``param`` = latent, to be inferred; ``data`` =
observed, supplied by the user; ``let`` = deterministic transformation)
under zero or more *parallel* comprehension generators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.exprs import DistCall, Expr, Gen, free_vars


class DeclKind(enum.Enum):
    PARAM = "param"
    DATA = "data"
    LET = "let"


@dataclass(frozen=True)
class Decl:
    """One declaration: ``kind name[i][j] ~/= rhs for gens``.

    ``idx_vars`` are the comprehension binders appearing on the
    left-hand side, in order; they must match ``gens`` one-for-one.  For
    a scalar declaration both are empty.
    """

    kind: DeclKind
    name: str
    idx_vars: tuple[str, ...]
    rhs: Expr
    gens: tuple[Gen, ...]
    #: 1-based source line of the declaration keyword (0 when the Decl
    #: was built programmatically); provenance metadata only, so it does
    #: not participate in equality.
    line: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if len(self.idx_vars) != len(self.gens):
            raise ValueError(
                f"{self.name}: {len(self.idx_vars)} index vars but "
                f"{len(self.gens)} generators"
            )
        gen_vars = tuple(g.var for g in self.gens)
        if self.idx_vars != gen_vars:
            raise ValueError(
                f"{self.name}: index vars {self.idx_vars} do not match "
                f"generator vars {gen_vars}"
            )
        if self.kind is not DeclKind.LET and not isinstance(self.rhs, DistCall):
            raise ValueError(f"{self.name}: stochastic declaration needs a distribution")

    @property
    def is_stochastic(self) -> bool:
        return self.kind is not DeclKind.LET

    @property
    def dist(self) -> DistCall:
        assert isinstance(self.rhs, DistCall)
        return self.rhs

    def __str__(self) -> str:
        lhs = self.name + "".join(f"[{v}]" for v in self.idx_vars)
        op = "=" if self.kind is DeclKind.LET else "~"
        comp = (
            " for " + ", ".join(str(g) for g in self.gens) if self.gens else ""
        )
        return f"{self.kind.value} {lhs} {op} {self.rhs}{comp}"


@dataclass(frozen=True)
class Model:
    """A complete model: hyper-parameter binders plus declarations."""

    hypers: tuple[str, ...]
    decls: tuple[Decl, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set(self.hypers)
        if len(set(self.hypers)) != len(self.hypers):
            raise ValueError("duplicate hyper-parameter names")
        for d in self.decls:
            if d.name in seen:
                raise ValueError(f"duplicate declaration of {d.name!r}")
            seen.add(d.name)

    def decl(self, name: str) -> Decl:
        for d in self.decls:
            if d.name == name:
                return d
        raise KeyError(name)

    @property
    def params(self) -> tuple[Decl, ...]:
        return tuple(d for d in self.decls if d.kind is DeclKind.PARAM)

    @property
    def data(self) -> tuple[Decl, ...]:
        return tuple(d for d in self.decls if d.kind is DeclKind.DATA)

    @property
    def lets(self) -> tuple[Decl, ...]:
        return tuple(d for d in self.decls if d.kind is DeclKind.LET)

    def free_names(self) -> frozenset[str]:
        """Names a declaration may reference: hypers + earlier declarations."""
        return frozenset(self.hypers) | frozenset(d.name for d in self.decls)

    def check_scoping(self) -> None:
        """Reject references to undeclared names and to model parameters
        inside comprehension bounds (the fixed-structure restriction of
        Section 2.2)."""
        param_names = {d.name for d in self.decls if d.kind is DeclKind.PARAM}
        in_scope: set[str] = set(self.hypers)
        for d in self.decls:
            bound = set()
            for g in d.gens:
                for e in (g.lo, g.hi):
                    for v in free_vars(e):
                        if v in param_names:
                            raise ValueError(
                                f"{d.name}: comprehension bound mentions model "
                                f"parameter {v!r}; bounds must be constant "
                                "(fixed-structure models only)"
                            )
                        if v not in in_scope and v not in bound:
                            raise ValueError(
                                f"{d.name}: unknown name {v!r} in comprehension bound"
                            )
                bound.add(g.var)
            for v in free_vars(d.rhs):
                if v not in in_scope and v not in bound:
                    raise ValueError(f"{d.name}: unknown name {v!r}")
            in_scope.add(d.name)

    def __str__(self) -> str:
        body = "\n".join(f"  {d} ;" for d in self.decls)
        return f"({', '.join(self.hypers)}) => {{\n{body}\n}}"
