"""Per-variable metadata the middle-end consumes.

After parsing and type checking, the compiler summarises each random
variable into a :class:`VarInfo` record: its declaration kind, its
distribution, its comprehension generators, its inferred type, and
support information used by the scheduler (discrete vs. continuous,
constrained vs. unconstrained).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exprs import Gen
from repro.core.frontend.ast import DeclKind, Model
from repro.core.frontend.typecheck import typecheck_model
from repro.core.types import Ty
from repro.errors import TypeCheckError
from repro.runtime.distributions import lookup


@dataclass(frozen=True)
class VarInfo:
    """Everything the middle-end needs to know about one model variable."""

    name: str
    kind: DeclKind
    ty: Ty
    gens: tuple[Gen, ...]
    dist_name: str | None  # None for `let` declarations
    support: str | None
    is_discrete: bool

    @property
    def is_param(self) -> bool:
        return self.kind is DeclKind.PARAM

    @property
    def is_data(self) -> bool:
        return self.kind is DeclKind.DATA

    @property
    def n_gens(self) -> int:
        return len(self.gens)


@dataclass(frozen=True)
class ModelInfo:
    """The symbol table for a type-checked model."""

    model: Model
    hyper_types: dict[str, Ty]
    var_types: dict[str, Ty]
    vars: dict[str, VarInfo]

    def info(self, name: str) -> VarInfo:
        try:
            return self.vars[name]
        except KeyError:
            known = ", ".join(sorted(self.vars))
            raise TypeCheckError(
                f"{name!r} is not a model variable; model variables: {known}"
            ) from None

    def param_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.vars.values() if v.is_param)

    def data_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.vars.values() if v.is_data)

    def discrete_params(self) -> tuple[str, ...]:
        return tuple(
            v.name for v in self.vars.values() if v.is_param and v.is_discrete
        )

    def continuous_params(self) -> tuple[str, ...]:
        return tuple(
            v.name for v in self.vars.values() if v.is_param and not v.is_discrete
        )


def analyze_model(model: Model, hyper_types: dict[str, Ty]) -> ModelInfo:
    """Type-check ``model`` and build its symbol table."""
    var_types = typecheck_model(model, hyper_types)
    infos: dict[str, VarInfo] = {}
    for d in model.decls:
        if d.is_stochastic:
            dist = lookup(d.dist.dist)
            info = VarInfo(
                name=d.name,
                kind=d.kind,
                ty=var_types[d.name],
                gens=d.gens,
                dist_name=dist.name,
                support=dist.support,
                is_discrete=dist.is_discrete,
            )
        else:
            info = VarInfo(
                name=d.name,
                kind=d.kind,
                ty=var_types[d.name],
                gens=d.gens,
                dist_name=None,
                support=None,
                is_discrete=False,
            )
        infos[d.name] = info
    return ModelInfo(model=model, hyper_types=dict(hyper_types), var_types=var_types, vars=infos)
