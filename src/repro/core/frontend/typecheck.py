"""Type checking for the surface language (the Figure 4 type system).

AugurV2 compiles at runtime, so hyper-parameter types are inferred from
the actual Python values handed to ``compile`` (:func:`type_of_value`)
and the model is then checked against them.  The checker verifies that
densities are applied on the appropriate spaces and that comprehension
bounds are integers, as the paper describes.
"""

from __future__ import annotations

import numpy as np

from repro.core.builtins import lookup_builtin
from repro.core.exprs import (
    Call,
    DistCall,
    Expr,
    Index,
    IntLit,
    RealLit,
    Var,
)
from repro.core.frontend.ast import Decl, Model
from repro.core.types import (
    INT,
    MAT_REAL,
    REAL,
    IntTy,
    MatTy,
    RealTy,
    Ty,
    VecTy,
    element_type,
)
from repro.errors import TypeCheckError
from repro.runtime.distributions import lookup
from repro.runtime.vectors import RaggedArray


def type_of_value(value) -> Ty:
    """Infer the surface type of a Python value supplied at compile time."""
    if isinstance(value, RaggedArray):
        elem = REAL if np.issubdtype(value.flat.dtype, np.floating) else INT
        if value.flat.ndim == 1:
            return VecTy(VecTy(elem))
        if value.flat.ndim == 2:
            return VecTy(VecTy(VecTy(elem))) if elem is REAL else VecTy(VecTy(VecTy(INT)))
        raise TypeCheckError("ragged arrays of rank > 2 rows are not supported")
    if isinstance(value, bool):
        raise TypeCheckError("booleans are not model values")
    if isinstance(value, (int, np.integer)):
        return INT
    if isinstance(value, (float, np.floating)):
        return REAL
    if isinstance(value, (list, tuple)):
        return type_of_value(RaggedArray.from_rows(value))
    if isinstance(value, np.ndarray):
        base = INT if np.issubdtype(value.dtype, np.integer) else REAL
        if value.ndim == 0:
            return base
        if value.ndim == 1:
            return VecTy(base)
        if value.ndim == 2:
            return MatTy(base) if base is REAL else VecTy(VecTy(INT))
        if value.ndim == 3 and base is REAL:
            return VecTy(MAT_REAL)
        raise TypeCheckError(f"cannot type array of rank {value.ndim}")
    raise TypeCheckError(f"cannot infer a model type for {type(value).__name__}")


def _assignable(actual: Ty, expected: Ty) -> bool:
    """Promotion: Int flows into Real, element-wise through Vec/Mat."""
    if actual == expected:
        return True
    if isinstance(expected, RealTy) and isinstance(actual, IntTy):
        return True
    if isinstance(expected, VecTy) and isinstance(actual, VecTy):
        return _assignable(actual.elem, expected.elem)
    if isinstance(expected, MatTy) and isinstance(actual, MatTy):
        return _assignable(actual.elem, expected.elem)
    # A Vec of Vecs can stand in for a Mat row-wise access pattern only
    # via explicit indexing, so it is not assignable here.
    return False


class TypeEnv:
    """Immutable-ish name -> type environment."""

    def __init__(self, bindings: dict[str, Ty] | None = None):
        self._bindings = dict(bindings or {})

    def bind(self, name: str, ty: Ty) -> "TypeEnv":
        child = TypeEnv(self._bindings)
        child._bindings[name] = ty
        return child

    def lookup(self, name: str) -> Ty:
        try:
            return self._bindings[name]
        except KeyError:
            raise TypeCheckError(f"unbound variable {name!r}") from None

    def as_dict(self) -> dict[str, Ty]:
        return dict(self._bindings)


def type_expr(e: Expr, env: TypeEnv) -> Ty:
    """Infer the type of an expression under ``env``."""
    match e:
        case IntLit():
            return INT
        case RealLit():
            return REAL
        case Var(name):
            return env.lookup(name)
        case Index(base, idx):
            ity = type_expr(idx, env)
            if not isinstance(ity, IntTy):
                raise TypeCheckError(f"index {idx} has type {ity}, expected Int")
            return element_type(type_expr(base, env))
        case Call(fn, args):
            b = lookup_builtin(fn)
            if len(args) != b.arity:
                raise TypeCheckError(
                    f"{fn}: expected {b.arity} arguments, got {len(args)}"
                )
            return b.type_rule(tuple(type_expr(a, env) for a in args))
        case DistCall(dist, args):
            return type_distcall(e, env)
        case _:
            raise TypeCheckError(f"cannot type expression {e!r}")


def type_distcall(dc: DistCall, env: TypeEnv) -> Ty:
    dist = lookup(dc.dist)
    if len(dc.args) != dist.arity:
        raise TypeCheckError(
            f"{dc.dist}: expected {dist.arity} arguments, got {len(dc.args)}"
        )
    for spec, arg in zip(dist.params, dc.args):
        actual = type_expr(arg, env)
        if not _assignable(actual, spec.ty):
            raise TypeCheckError(
                f"{dc.dist}: argument {spec.name} has type {actual}, "
                f"expected {spec.ty}"
            )
    return dist.result_ty


def decl_type(decl: Decl, env: TypeEnv) -> Ty:
    """The type of the declared variable: rhs type wrapped per generator."""
    inner = env
    for g in decl.gens:
        for bound in (g.lo, g.hi):
            bty = type_expr(bound, inner)
            if not isinstance(bty, IntTy):
                raise TypeCheckError(
                    f"{decl.name}: comprehension bound {bound} has type {bty}, "
                    "expected Int"
                )
        inner = inner.bind(g.var, INT)
    rhs_ty = type_expr(decl.rhs, inner)
    ty = rhs_ty
    for _ in decl.gens:
        ty = VecTy(ty)
    return ty


def typecheck_model(model: Model, hyper_types: dict[str, Ty]) -> dict[str, Ty]:
    """Check the whole model; return the type of every declared variable."""
    missing = [h for h in model.hypers if h not in hyper_types]
    if missing:
        raise TypeCheckError(f"missing types for hyper-parameters: {missing}")
    env = TypeEnv({h: hyper_types[h] for h in model.hypers})
    out: dict[str, Ty] = {}
    for d in model.decls:
        ty = decl_type(d, env)
        out[d.name] = ty
        env = env.bind(d.name, ty)
    return out
