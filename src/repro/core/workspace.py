"""Workspace (scratch buffer) specifications.

Update code generators declare the buffers they need -- statistics
accumulators, enumeration logit tables, adjoint arrays -- as
:class:`WorkspaceSpec` records.  Size inference (paper Section 5.2)
resolves the specs against the runtime environment and allocates every
buffer up front, which is what bounds the memory of a compiled MCMC
algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exprs import Expr, Gen


@dataclass(frozen=True)
class WorkspaceSpec:
    """A buffer with leading dimensions given by comprehension generators
    and fixed trailing dimensions.

    When a generator bound depends on an earlier generator variable
    (e.g. ``j <- 0 until N[d]``), the buffer is ragged and is allocated
    as a :class:`~repro.runtime.vectors.RaggedArray`; otherwise it is a
    dense ndarray.

    ``like`` names a state buffer whose resolved shape this workspace
    mirrors exactly (the form adjoint accumulators need); when set,
    ``gens``/``trailing`` are ignored.
    """

    name: str
    gens: tuple[Gen, ...]
    trailing: tuple[Expr, ...] = ()
    dtype: str = "f8"
    like: str | None = None

    def __str__(self) -> str:
        if self.like is not None:
            return f"{self.name}: [like {self.like}] {self.dtype}"
        dims = [f"|{g}|" for g in self.gens] + [str(t) for t in self.trailing]
        return f"{self.name}: [{' x '.join(dims) or 'scalar'}] {self.dtype}"
