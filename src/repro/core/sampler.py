"""The compiled sampler: what the AugurV2 pipeline ultimately produces.

A :class:`CompiledSampler` owns the compiled backend module, the
up-front allocation plan, the composed update drivers, and the runtime
environment (hyper-parameters and data).  Its ``sample`` method runs
the chain: initialise from the prior (or a supplied state), apply every
base update in schedule order per sweep, and collect copies of the
requested parameters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.backend.cpu import CompiledModule
from repro.core.backend.drivers import UpdateDriver
from repro.core.lowmm.size_inference import AllocationPlan, allocate_state
from repro.errors import RuntimeFailure
from repro.gpusim import Device
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray


def _copy_value(v):
    if isinstance(v, RaggedArray):
        return v.copy()
    if isinstance(v, np.ndarray):
        return v.copy()
    return v


@dataclass
class SampleResult:
    """Posterior samples plus run metadata."""

    samples: dict[str, list]
    wall_time: float
    sweep_times: np.ndarray
    acceptance: dict[str, float]
    device_time: float | None = None

    def array(self, name: str) -> np.ndarray:
        """Samples of ``name`` stacked on a leading draw axis (dense only)."""
        vals = self.samples[name]
        if vals and isinstance(vals[0], RaggedArray):
            return np.stack([v.flat for v in vals])
        return np.asarray(vals)

    def __getitem__(self, name: str):
        return self.samples[name]


class CompiledSampler:
    def __init__(
        self,
        module: CompiledModule,
        plan: AllocationPlan,
        workspaces: dict,
        updates: list[UpdateDriver],
        init_fn,
        model_ll_fn,
        base_env: dict,
        param_names: tuple[str, ...],
        device: Device | None = None,
        compile_seconds: float = 0.0,
        forward_fn=None,
        info=None,
    ):
        self.module = module
        self.plan = plan
        self.workspaces = workspaces
        self.updates = updates
        self._init_fn = init_fn
        self._model_ll_fn = model_ll_fn
        self._forward_fn = forward_fn
        self._info = info
        self.base_env = base_env
        self.param_names = param_names
        self.device = device
        self.compile_seconds = compile_seconds

    # ------------------------------------------------------------------

    @property
    def source(self) -> str:
        """The generated backend source (the paper's Cuda/C analogue)."""
        return self.module.source

    def schedule_description(self) -> str:
        return " (*) ".join(
            f"{type(u).__name__.removesuffix('Driver')} {','.join(u.targets)}"
            for u in self.updates
        )

    # ------------------------------------------------------------------

    def init_state(self, rng: Rng) -> dict:
        env = dict(self.base_env)
        env.update(allocate_state(self.plan.state))
        self._init_fn(env, self.workspaces, rng)
        return {p: env[p] for p in self.param_names}

    def posterior_predictive(self, state: dict, rng: Rng) -> dict:
        """Simulate replicated observations given one posterior draw.

        Runs the generated forward declaration (the model's data
        declarations, sampled) against fresh data buffers -- the
        standard posterior-predictive-check machinery.
        """
        if self._forward_fn is None or self._info is None:
            raise RuntimeFailure("this sampler was built without forward support")
        from repro.core.lowmm.size_inference import infer_data_layout

        data_layout = infer_data_layout(self._info, self.base_env)
        env = dict(self.base_env)
        env.update(state)
        env.update(allocate_state(data_layout))
        self._forward_fn(env, self.workspaces, rng)
        return {name: env[name] for name in data_layout}

    def log_joint(self, state: dict, rng: Rng | None = None) -> float:
        env = dict(self.base_env)
        env.update(state)
        (val,) = self._model_ll_fn(env, self.workspaces, rng or Rng(0))
        return float(val)

    def step(self, state: dict, rng: Rng) -> dict:
        """One full sweep of the composed kernel (in place)."""
        env = dict(self.base_env)
        env.update(state)
        for upd in self.updates:
            upd.step(env, self.workspaces, rng)
        for p in self.param_names:
            state[p] = env[p]
        return state

    def sample(
        self,
        num_samples: int,
        burn_in: int = 0,
        thin: int = 1,
        seed: int | Rng = 0,
        collect: tuple[str, ...] | None = None,
        init: dict | None = None,
        callback=None,
    ) -> SampleResult:
        """Draw posterior samples.

        ``collect`` restricts which parameters are stored (all by
        default); ``callback(sweep_index, state)`` runs after every kept
        sweep (used by the log-predictive benchmarks).
        """
        if num_samples <= 0:
            raise RuntimeFailure("num_samples must be positive")
        rng = seed if isinstance(seed, Rng) else Rng(seed)
        collect = tuple(collect) if collect is not None else self.param_names
        unknown = set(collect) - set(self.param_names)
        if unknown:
            raise RuntimeFailure(f"cannot collect non-parameters: {sorted(unknown)}")

        state = init if init is not None else self.init_state(rng)
        samples: dict[str, list] = {name: [] for name in collect}
        sweep_times = []
        start = time.perf_counter()
        total_sweeps = burn_in + num_samples * thin
        kept = 0
        for sweep in range(total_sweeps):
            t0 = time.perf_counter()
            self.step(state, rng)
            sweep_times.append(time.perf_counter() - t0)
            if sweep >= burn_in and (sweep - burn_in) % thin == 0:
                for name in collect:
                    samples[name].append(_copy_value(state[name]))
                if callback is not None:
                    callback(kept, state)
                kept += 1
        wall = time.perf_counter() - start
        return SampleResult(
            samples=samples,
            wall_time=wall,
            sweep_times=np.asarray(sweep_times),
            acceptance={
                f"{type(u).__name__.removesuffix('Driver')} {','.join(u.targets)}": u.stats.acceptance_rate
                for u in self.updates
            },
            device_time=self.device.elapsed if self.device is not None else None,
        )

    def sample_chains(
        self,
        n_chains: int,
        num_samples: int,
        burn_in: int = 0,
        thin: int = 1,
        seed: int = 0,
        collect: tuple[str, ...] | None = None,
    ) -> list[SampleResult]:
        """Run several independent chains from forked RNG streams.

        This is the Jags/Stan style of parallelism the paper contrasts
        with AugurV2's within-chain parallelism (Section 7.2); here the
        chains run sequentially but with statistically independent
        streams, which is what chain-level diagnostics like
        :func:`repro.eval.metrics.potential_scale_reduction` need.
        """
        if n_chains < 1:
            raise RuntimeFailure("need at least one chain")
        rngs = Rng(seed).fork(n_chains)
        return [
            self.sample(
                num_samples=num_samples,
                burn_in=burn_in,
                thin=thin,
                seed=rng,
                collect=collect,
            )
            for rng in rngs
        ]
