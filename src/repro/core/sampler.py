"""The compiled sampler: what the AugurV2 pipeline ultimately produces.

A :class:`CompiledSampler` owns the compiled backend module, the
up-front allocation plan, the composed update drivers, and the runtime
environment (hyper-parameters and data).  Its ``sample`` method runs
the chain: initialise from the prior (or a supplied state), apply every
base update in schedule order per sweep, and write the requested
parameters into draw storage preallocated from the allocation plan.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.backend.cpu import CompiledModule
from repro.core.backend.drivers import UpdateDriver
from repro.core.lowmm.size_inference import AllocationPlan, allocate_state
from repro.errors import RuntimeFailure
from repro.gpusim import Device
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray
from repro.telemetry.obslog import get_event_log
from repro.telemetry.stats import SampleStats, allocate_stat_buffers
from repro.telemetry.trace import get_tracer

#: Warn when more than this fraction of an update's proposals were
#: rejected because the log acceptance ratio came out NaN.
NAN_REJECT_WARN_RATE = 0.01


def _copy_value(v):
    if isinstance(v, RaggedArray):
        return v.copy()
    if isinstance(v, np.ndarray):
        return v.copy()
    return v


class VersionedEnv(dict):
    """A dict that counts its mutations.

    ``CompiledSampler`` keeps a persistent sweep environment instead of
    rebuilding ``dict(base_env)`` every sweep; callers that re-bind data
    between sweeps (e.g. the Geweke successive-conditional simulator
    writing ``sampler.base_env[name] = ...``) bump the version, which
    invalidates that persistent environment.
    """

    __slots__ = ("version",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.version = 0

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self.version += 1

    def __delitem__(self, key):
        super().__delitem__(key)
        self.version += 1

    def update(self, *args, **kwargs):
        super().update(*args, **kwargs)
        self.version += 1

    def pop(self, *args):
        self.version += 1
        return super().pop(*args)

    def setdefault(self, key, default=None):
        self.version += 1
        return super().setdefault(key, default)

    def clear(self):
        super().clear()
        self.version += 1


@dataclass
class SampleResult:
    """Posterior samples plus run metadata.

    Dense parameters are stored in one preallocated
    ``(num_samples, *shape)`` array each (written in place per kept
    sweep); ragged parameters fall back to a list of per-draw copies.
    """

    samples: dict[str, np.ndarray | list]
    wall_time: float
    sweep_times: np.ndarray
    acceptance: dict[str, float]
    device_time: float | None = None
    #: Per-sweep telemetry (``collect_stats=True``), one typed record
    #: per base update per sweep; ``None`` when collection was off.
    stats: SampleStats | None = None
    #: The sweep profiler's attribution table (``profile=True``);
    #: ``None`` when profiling was off.
    profile: object | None = None
    #: Chrome-trace events shipped back from a worker process (the
    #: multi-chain runner merges these into the parent tracer so a
    #: ``processes`` run produces one coherent trace file).
    trace_events: list | None = None
    #: Kept draws actually stored.  Equals the requested ``num_samples``
    #: unless the run stopped early (converged R-hat broadcast) or was
    #: interrupted; partial runs truncate ``samples``/``sweep_times``/
    #: ``stats`` to this count.
    n_kept: int = 0
    #: Sweeps actually executed (burn-in included).
    sweeps_run: int = 0
    #: True when a broadcast stop flag ended the run before all
    #: requested draws were taken (early stopping on convergence).
    stopped_early: bool = False
    #: True when ``KeyboardInterrupt`` ended the run; the draws taken
    #: before the interrupt are finalized instead of lost.
    interrupted: bool = False
    #: When the draws live in shared-memory segments, the owning
    #: :class:`repro.core.chains.SharedDrawBuffers` rides here so the
    #: arrays in ``samples`` keep their backing segment alive.
    draw_buffers: object = None
    #: The chain's parameter state after the last executed sweep (one
    #: copied value per parameter) -- together with ``rng_state`` this
    #: is exactly what a checkpoint needs to resume the chain
    #: bit-for-bit from where it stopped.
    final_state: dict | None = None
    #: Picklable RNG position (:meth:`repro.runtime.rng.Rng.state_spec`)
    #: after the last executed sweep.
    rng_state: dict | None = None
    #: Warmup adaptation state per gradient update label
    #: (``WarmupAdapter.state_dict()``): step size, dual-averaging
    #: accumulators, window position, running variance, metric.  Rides
    #: into checkpoints so a run stopped mid-warmup resumes
    #: bitwise-identically; ``None`` when the run had no warmup.
    adapt_state: dict | None = None

    @property
    def sample_stats(self) -> dict[str, np.ndarray]:
        """Nutpie-style flat stats: ``"<update label>.<field>" -> array``.

        Empty when the run was made without ``collect_stats=True``.
        """
        return self.stats.to_dict() if self.stats is not None else {}

    def array(self, name: str) -> np.ndarray:
        """Samples of ``name`` with a leading draw axis (dense only).

        For densely stored parameters this is a zero-copy view of the
        preallocated draw storage, not a re-stack.
        """
        vals = self.samples[name]
        if isinstance(vals, np.ndarray):
            return vals.view()
        if vals and isinstance(vals[0], RaggedArray):
            return np.stack([v.flat for v in vals])
        return np.asarray(vals)

    def __getitem__(self, name: str):
        return self.samples[name]


class SampleRun:
    """A resumable sampling run: iterate kept-draw chunks, then read
    ``result``.

    Produced by :meth:`CompiledSampler.sample_iter`.  Iterating yields
    ``(start, stop)`` kept-draw index ranges as soon as those draws have
    been written into the run's draw storage — the nutpie-style
    ``do_sample``/``finalize`` shape the streaming multi-chain engine
    builds on.  After exhaustion ``result`` holds the finished
    :class:`SampleResult` (possibly partial: see ``stopped_early`` /
    ``interrupted``).  :meth:`request_stop` asks the sweep loop to stop
    at the next sweep boundary; draws already taken are kept.
    """

    def __init__(self):
        self._stop_requested = False
        self.result: SampleResult | None = None
        self._gen = None

    def request_stop(self) -> None:
        """Stop at the next sweep boundary, keeping the draws so far."""
        self._stop_requested = True

    def __iter__(self):
        return self

    def __next__(self):
        try:
            return next(self._gen)
        except StopIteration as e:
            if self.result is None:
                self.result = e.value
            raise StopIteration from None

    def drain(self) -> SampleResult:
        """Run to completion and return the final :class:`SampleResult`."""
        for _ in self:
            pass
        return self.result


class CompiledSampler:
    def __init__(
        self,
        module: CompiledModule,
        plan: AllocationPlan,
        workspaces: dict,
        updates: list[UpdateDriver],
        init_fn,
        model_ll_fn,
        base_env: dict,
        param_names: tuple[str, ...],
        device: Device | None = None,
        compile_seconds: float = 0.0,
        forward_fn=None,
        info=None,
        spec=None,
        ledger=None,
        source_map=None,
        op_count_exprs=None,
        decl_provenance=None,
    ):
        self.module = module
        self.plan = plan
        self.workspaces = workspaces
        self.updates = updates
        self._init_fn = init_fn
        self._model_ll_fn = model_ll_fn
        self._forward_fn = forward_fn
        self._info = info
        self.base_env = VersionedEnv(base_env)
        self.param_names = param_names
        self.device = device
        self.compile_seconds = compile_seconds
        #: Picklable rebuild recipe (:class:`repro.core.chains.SamplerSpec`)
        #: used by worker processes to rehydrate this sampler.
        self.spec = spec
        #: The compiler decision ledger for this compilation
        #: (:class:`repro.telemetry.explain.CompileLedger`) and the
        #: provenance metadata the profiler and reports render against.
        self.ledger = ledger
        self.source_map = source_map or {}
        self.op_count_exprs = op_count_exprs or {}
        self.decl_provenance = decl_provenance or {}
        #: The autotuner's tournament record (:func:`repro.tune.autotune`
        #: attaches it on the winning sampler); ``None`` when untuned.
        self.tune_report: dict | None = None
        # Persistent sweep environment: built once per (state object,
        # base_env version) instead of dict(base_env) + update on every
        # sweep.
        self._env: dict | None = None
        self._env_state: dict | None = None
        self._env_base_version: int = -1

    # ------------------------------------------------------------------

    @property
    def source(self) -> str:
        """The generated backend source (the paper's Cuda/C analogue)."""
        return self.module.source

    def schedule_description(self) -> str:
        return " (*) ".join(u.label for u in self.updates)

    def explain(self) -> str:
        """The compiler decision ledger as a human-readable table: which
        update each variable got, what was batched / fused / packed and
        why, with provenance back to the model source."""
        if self.ledger is None:
            return "compiler decision ledger: unavailable for this sampler"
        return self.ledger.render(self.source_map)

    def explain_json(self) -> list[dict]:
        """The decision ledger as a machine-readable list of entries."""
        return self.ledger.to_json() if self.ledger is not None else []

    def tuned(self, **tune_kwargs) -> "CompiledSampler":
        """A sampler recompiled with the autotuned schedule.

        Runs (or, on a shape-cache hit, replays) the trial-sweep
        tournament of :func:`repro.tune.autotune` around this sampler's
        schedule and returns the winner, carrying the tournament as
        ``tune_report`` plus ``tune.*`` ledger entries.  Trial sweeps
        use their own fresh RNG streams, so sampling from the returned
        sampler is bitwise identical to compiling the winning schedule
        directly.
        """
        from repro.tune import autotune

        if self.spec is None:
            raise RuntimeFailure(
                "this sampler carries no rebuild spec; autotuning needs one"
            )
        spec = self.spec
        return autotune(
            spec.source,
            spec.hyper_values,
            spec.data_values,
            options=spec.options,
            schedule=spec.schedule,
            proposals=spec.proposals,
            **tune_kwargs,
        )

    # ------------------------------------------------------------------

    def init_state(self, rng: Rng) -> dict:
        env = dict(self.base_env)
        env.update(allocate_state(self.plan.state))
        self._init_fn(env, self.workspaces, rng)
        return {p: env[p] for p in self.param_names}

    def posterior_predictive(self, state: dict, rng: Rng) -> dict:
        """Simulate replicated observations given one posterior draw.

        Runs the generated forward declaration (the model's data
        declarations, sampled) against fresh data buffers -- the
        standard posterior-predictive-check machinery.
        """
        if self._forward_fn is None or self._info is None:
            raise RuntimeFailure("this sampler was built without forward support")
        from repro.core.lowmm.size_inference import infer_data_layout

        data_layout = infer_data_layout(self._info, self.base_env)
        env = dict(self.base_env)
        env.update(state)
        env.update(allocate_state(data_layout))
        self._forward_fn(env, self.workspaces, rng)
        return {name: env[name] for name in data_layout}

    def log_joint(self, state: dict, rng: Rng | None = None) -> float:
        env = dict(self.base_env)
        env.update(state)
        (val,) = self._model_ll_fn(env, self.workspaces, rng or Rng(0))
        return float(val)

    def _sweep_env(self, state: dict) -> dict:
        """The persistent per-state sweep environment.

        The full ``dict(base_env)`` rebuild only happens when the caller
        supplies a *new* state object (a fresh ``init`` or an external
        ``step`` call) or mutates ``base_env`` (version bump); steady-
        state sweeps pay one small ``update`` of the parameter entries.
        """
        if (
            self._env is None
            or self._env_state is not state
            or self._env_base_version != self.base_env.version
        ):
            self._env = dict(self.base_env)
            self._env_state = state
            self._env_base_version = self.base_env.version
        self._env.update(state)
        return self._env

    def step(self, state: dict, rng: Rng) -> dict:
        """One full sweep of the composed kernel (in place)."""
        env = self._sweep_env(state)
        for upd in self.updates:
            upd.step(env, self.workspaces, rng)
        for p in self.param_names:
            state[p] = env[p]
        return state

    def _allocate_draws(self, collect: tuple[str, ...], num_samples: int) -> dict:
        """Draw storage from the allocation plan: one dense
        ``(num_samples, *shape)`` array per parameter; ragged parameters
        keep the list-of-copies fallback (signalled by an empty list)."""
        storage: dict[str, np.ndarray | list] = {}
        for name in collect:
            shape = self.plan.state.get(name)
            if shape is not None and not shape.is_ragged:
                storage[name] = np.empty(
                    (num_samples,) + shape.lead + shape.event,
                    dtype=np.dtype(shape.dtype),
                )
            else:
                storage[name] = []
        return storage

    def allocate_draws(
        self, collect: tuple[str, ...] | None, num_samples: int
    ) -> dict:
        """Public draw-storage allocator (the multi-chain engine uses
        it to shape shared-memory segments identically)."""
        collect = tuple(collect) if collect is not None else self.param_names
        return self._allocate_draws(collect, num_samples)

    def _step_recorded(self, state: dict, rng: Rng, bufs, sweep: int) -> dict:
        """One sweep with per-update stat recording into ``bufs``."""
        env = self._sweep_env(state)
        for upd, buf in zip(self.updates, bufs):
            upd.begin_sweep()
            upd.step(env, self.workspaces, rng)
            buf.write(sweep, upd.end_sweep())
        for p in self.param_names:
            state[p] = env[p]
        return state

    def _step_profiled(self, state: dict, rng: Rng, profiler, bufs, sweep) -> dict:
        """One sweep with per-update wall-time attribution (and,
        optionally, stat recording).  The timers bracket each driver's
        ``step`` and never touch the RNG, so the draws are identical to
        an unprofiled run."""
        env = self._sweep_env(state)
        for i, upd in enumerate(self.updates):
            if bufs is not None:
                upd.begin_sweep()
            t0 = time.perf_counter()
            upd.step(env, self.workspaces, rng)
            dt = time.perf_counter() - t0
            cell = profiler.update_cells[i]
            cell[0] += 1
            cell[1] += dt
            if bufs is not None:
                bufs[i].write(sweep, upd.end_sweep())
        for p in self.param_names:
            state[p] = env[p]
        return state

    def _warn_nan_rejections(self, before: list[tuple[int, int, int]]) -> None:
        """One-line warning when NaN-rejected proposals exceed the
        threshold rate for any update during this ``sample`` call."""
        offenders = []
        for upd, (p0, _, n0) in zip(self.updates, before):
            proposed = upd.stats.proposed - p0
            nan = upd.stats.nan_rejected - n0
            if proposed and nan / proposed > NAN_REJECT_WARN_RATE:
                offenders.append(f"{upd.label} ({nan}/{proposed} proposals)")
        if offenders:
            warnings.warn(
                "NaN log-acceptance ratios silently rejected for "
                + ", ".join(offenders)
                + "; the posterior may be improper or the proposal leaves "
                "the support",
                RuntimeWarning,
                stacklevel=3,
            )

    def sample(
        self,
        num_samples: int,
        burn_in: int = 0,
        thin: int = 1,
        seed: int | Rng = 0,
        collect: tuple[str, ...] | None = None,
        init: dict | None = None,
        callback=None,
        collect_stats: bool = False,
        profile: bool = False,
        warmup: int = 0,
        target_accept: float = 0.8,
        tune: bool = False,
    ) -> SampleResult:
        """Draw posterior samples.

        ``collect`` restricts which parameters are stored (all by
        default); ``callback(sweep_index, state)`` runs after every kept
        sweep (used by the log-predictive benchmarks).  With
        ``collect_stats=True`` every base update records its typed
        per-sweep stat record (acceptance/log-alpha, leapfrogs,
        divergences, slice bracket activity, ...) into preallocated
        buffers surfaced as ``SampleResult.stats``.  With
        ``profile=True`` the sweep profiler attributes wall-time to
        every update, generated declaration, and model statement
        (``SampleResult.profile``); the draws are bitwise identical
        either way.

        ``warmup`` runs that many adaptation sweeps before burn-in:
        every HMC/NUTS update gets a per-run
        :class:`~repro.runtime.mcmc.adapt.WarmupAdapter` (dual-averaging
        step size toward ``target_accept`` + windowed diagonal
        mass-matrix estimation), initialized by a reasonable-step-size
        search; the tuned step size and metric are frozen for the kept
        draws.  ``warmup=0`` (the default) is bitwise-identical to the
        pre-adaptation sampler.

        A ``KeyboardInterrupt`` during the sweep loop finalizes the
        draws taken so far (``result.interrupted``) instead of losing
        the run.

        ``tune=True`` first autotunes the schedule (:meth:`tuned`) and
        samples from the tournament winner; the draws are bitwise
        identical to calling ``sample`` on the winner directly, because
        trial sweeps never touch this call's RNG stream.
        """
        if tune:
            return self.tuned().sample(
                num_samples,
                burn_in=burn_in,
                thin=thin,
                seed=seed,
                collect=collect,
                init=init,
                callback=callback,
                collect_stats=collect_stats,
                profile=profile,
                warmup=warmup,
                target_accept=target_accept,
            )
        return self.sample_iter(
            num_samples,
            burn_in=burn_in,
            thin=thin,
            seed=seed,
            collect=collect,
            init=init,
            callback=callback,
            collect_stats=collect_stats,
            profile=profile,
            warmup=warmup,
            target_accept=target_accept,
        ).drain()

    def sample_iter(
        self,
        num_samples: int,
        burn_in: int = 0,
        thin: int = 1,
        seed: int | Rng = 0,
        collect: tuple[str, ...] | None = None,
        init: dict | None = None,
        callback=None,
        collect_stats: bool = False,
        profile: bool = False,
        storage: dict | None = None,
        chunk_size: int | None = None,
        stop=None,
        start_sweep: int = 0,
        start_kept: int = 0,
        warmup: int = 0,
        target_accept: float = 0.8,
        adapt_state: dict | None = None,
    ) -> SampleRun:
        """The resumable form of :meth:`sample`: a :class:`SampleRun`
        yielding ``(start, stop, info)`` kept-draw index ranges per
        chunk (``info`` is a per-chunk stats digest when
        ``collect_stats=True``, else ``None``).

        ``warmup`` prepends that many adaptation sweeps (dual-averaging
        step size toward ``target_accept`` plus windowed diagonal
        mass-matrix estimation for every HMC/NUTS update); during
        warmup the run yields zero-width progress chunks whose ``info``
        carries a ``"__phase__"`` entry (phase, sweep, step size) so
        streaming consumers can report adaptation progress.
        ``adapt_state`` restores checkpointed
        :class:`~repro.runtime.mcmc.adapt.WarmupAdapter` state (keyed by
        update label) so a run resumed mid-warmup continues
        bitwise-identically.

        ``storage`` optionally supplies preallocated draw storage (the
        multi-chain engine passes shared-memory-backed arrays so workers
        write draws in place and results return zero-copy); by default
        storage is allocated from the plan as in :meth:`sample`.
        ``chunk_size`` sets how many kept draws each yielded chunk
        covers (default: all of them, one chunk).  ``stop`` is an
        optional zero-argument callable polled at every sweep boundary;
        when it returns True the run finalizes early with the draws
        taken so far (``result.stopped_early``) — the broadcast flag of
        the early-stopping protocol.  Draws of a stopped run are a
        bitwise prefix of the full run's draws for the same seed.

        ``start_sweep``/``start_kept`` resume an interrupted run from a
        checkpoint: sampling continues at absolute sweep index
        ``start_sweep`` writing kept draws from row ``start_kept``, so a
        resumed run's draws are bitwise identical to an uninterrupted
        one given the checkpointed ``init`` state and RNG position
        (``SampleResult.final_state`` / ``rng_state``).  The caller
        supplies ``storage`` already holding the prior kept draws when
        it wants the finished result to cover the whole run.  With
        ``collect_stats=True`` the stat rows before ``start_sweep``
        stay zero (each leg records only its own sweeps).
        """
        if num_samples <= 0:
            raise RuntimeFailure("num_samples must be positive")
        if warmup < 0:
            raise RuntimeFailure("warmup must be non-negative")
        total_sweeps = warmup + burn_in + num_samples * thin
        if not 0 <= start_kept <= num_samples:
            raise RuntimeFailure(
                f"start_kept must lie in [0, {num_samples}], got {start_kept}"
            )
        if not 0 <= start_sweep <= total_sweeps:
            raise RuntimeFailure(
                f"start_sweep must lie in [0, {total_sweeps}], got {start_sweep}"
            )
        if start_sweep > 0 and init is None:
            raise RuntimeFailure(
                "resuming (start_sweep > 0) needs the checkpointed state "
                "passed as init="
            )
        rng = seed if isinstance(seed, Rng) else Rng(seed)
        collect = tuple(collect) if collect is not None else self.param_names
        unknown = set(collect) - set(self.param_names)
        if unknown:
            raise RuntimeFailure(f"cannot collect non-parameters: {sorted(unknown)}")
        if chunk_size is None or chunk_size <= 0:
            chunk_size = num_samples
        run = SampleRun()

        def should_stop():
            return run._stop_requested or (stop is not None and stop())

        run._gen = self._sample_gen(
            num_samples, burn_in, thin, rng, collect, init, callback,
            collect_stats, profile, storage, chunk_size, should_stop,
            start_sweep, start_kept, warmup, target_accept, adapt_state,
        )
        return run

    def _sample_gen(
        self, num_samples, burn_in, thin, rng, collect, init, callback,
        collect_stats, profile, storage, chunk_size, should_stop,
        start_sweep=0, start_kept=0, warmup=0, target_accept=0.8,
        adapt_state=None,
    ):
        tracer = get_tracer()
        tracing = tracer.enabled
        stats_before = [u.stats.snapshot() for u in self.updates]

        t_init = time.perf_counter()
        state = init if init is not None else self.init_state(rng)
        if tracing:
            tracer.add_complete(
                "init", "runtime", t_init, time.perf_counter() - t_init,
                fresh=init is None,
            )
        total_sweeps = warmup + burn_in + num_samples * thin
        samples = (
            storage if storage is not None
            else self._allocate_draws(collect, num_samples)
        )
        # Warmup adaptation: one WarmupAdapter per gradient-based update,
        # attached to the driver for the duration of this run (the
        # driver's own step_size stays untouched, so the sequential
        # executor's sampler reuse across chains is safe).
        adapters: list = []
        if warmup > 0:
            from repro.runtime.mcmc.adapt import WarmupAdapter

            saved = adapt_state or {}
            for upd in self.updates:
                if hasattr(upd, "attach_adapter"):
                    adapter = WarmupAdapter(warmup, target_accept)
                    if upd.label in saved:
                        adapter.load_state(saved[upd.label])
                    if start_sweep >= warmup:
                        adapter.finalize()
                    upd.attach_adapter(adapter)
                    adapters.append((upd, adapter))
        stat_bufs = (
            allocate_stat_buffers(self.updates, total_sweeps)
            if collect_stats
            else None
        )
        profiler = None
        if profile:
            from repro.telemetry.profile import SweepProfiler

            profiler = SweepProfiler(self)
            profiler.instrument()
        sweep_times = np.empty(total_sweeps, dtype=np.float64)
        sweep_starts = np.empty(total_sweeps, dtype=np.float64) if tracing else None
        collect_spans: list[tuple[float, float]] = []
        start = time.perf_counter()
        kept = start_kept
        chunk_start = start_kept
        sweeps_run = start_sweep
        chunk_sweep_lo = start_sweep
        phase_mark = start_sweep
        stopped_early = False
        interrupted = False

        def chunk_info():
            if stat_bufs is None:
                return None
            from repro.telemetry.stats import chunk_stat_info

            return chunk_stat_info(stat_bufs, chunk_sweep_lo, sweeps_run)

        def phase_info(phase):
            eps = None
            for _, a in adapters:
                if a.step_size is not None:
                    eps = float(a.step_size)
                    break
            return {
                "phase": phase,
                "sweep": sweeps_run,
                "warmup": warmup,
                "step_size": eps,
            }

        try:
            try:
                for sweep in range(start_sweep, total_sweeps):
                    if should_stop():
                        stopped_early = True
                        break
                    if adapters and sweep == warmup:
                        for _, a in adapters:
                            a.finalize()
                    t0 = time.perf_counter()
                    if profiler is not None:
                        self._step_profiled(state, rng, profiler, stat_bufs, sweep)
                    elif stat_bufs is None:
                        self.step(state, rng)
                    else:
                        self._step_recorded(state, rng, stat_bufs, sweep)
                    t1 = time.perf_counter()
                    sweep_times[sweep] = t1 - t0
                    if sweep_starts is not None:
                        sweep_starts[sweep] = t0
                    sweeps_run = sweep + 1
                    if warmup and sweeps_run <= warmup:
                        # Zero-width progress chunk per chunk_size warmup
                        # sweeps: streaming consumers (TTY progress, the
                        # serving deadline poll) see adaptation advance
                        # even though no draws are kept yet.
                        if sweeps_run - phase_mark >= chunk_size:
                            info = chunk_info() or {}
                            info["__phase__"] = phase_info("warmup")
                            chunk_sweep_lo = sweeps_run
                            phase_mark = sweeps_run
                            yield (kept, kept, info)
                        continue
                    if sweep >= warmup + burn_in and (
                        sweep - warmup - burn_in
                    ) % thin == 0:
                        for name in collect:
                            store = samples[name]
                            if isinstance(store, np.ndarray):
                                store[kept] = state[name]
                            else:
                                store.append(_copy_value(state[name]))
                        if tracing:
                            collect_spans.append((t1, time.perf_counter() - t1))
                        if callback is not None:
                            callback(kept, state)
                        kept += 1
                        if kept - chunk_start >= chunk_size:
                            info = chunk_info()
                            if warmup:
                                info = info or {}
                                info["__phase__"] = phase_info("sampling")
                            chunk_sweep_lo = sweeps_run
                            yield (chunk_start, kept, info)
                            chunk_start = kept
            except KeyboardInterrupt:
                interrupted = True
        finally:
            if profiler is not None:
                profiler.restore()
            for upd, _ in adapters:
                upd.detach_adapter()
        if kept > chunk_start:
            info = chunk_info()
            if warmup:
                info = info or {}
                info["__phase__"] = phase_info("sampling")
            yield (chunk_start, kept, info)
        wall = time.perf_counter() - start
        if tracing:
            for sweep in range(start_sweep, sweeps_run):
                tracer.add_complete(
                    "sweep", "runtime", float(sweep_starts[sweep]),
                    float(sweep_times[sweep]), index=sweep,
                )
            for ts, dur in collect_spans:
                tracer.add_complete("collect", "runtime", ts, dur)
            tracer.add_complete(
                "sample", "runtime", start, wall,
                num_samples=num_samples, burn_in=burn_in, thin=thin,
            )
        self._warn_nan_rejections(stats_before)
        # Acceptance is reported over *this call's* proposals, so the
        # numbers agree across executors (cumulative counters would mix
        # chains on the sequential path).
        acceptance = {}
        for upd, (p0, a0, _) in zip(self.updates, stats_before):
            proposed = upd.stats.proposed - p0
            accepted = upd.stats.accepted - a0
            acceptance[upd.label] = (
                accepted / proposed if proposed else float("nan")
            )
        # Partial runs (early stop / interrupt) truncate storage and
        # telemetry to what actually happened; full runs keep the exact
        # preallocated objects (array() stays a view of them).
        sweep_times = sweep_times[start_sweep:sweeps_run]
        if sweeps_run < total_sweeps:
            if kept < num_samples:
                for name in collect:
                    store = samples[name]
                    if isinstance(store, np.ndarray):
                        samples[name] = store[:kept]
            if stat_bufs is not None:
                for buf in stat_bufs:
                    buf.truncate(sweeps_run)
        final_state = {p: _copy_value(state[p]) for p in self.param_names}
        _obslog = get_event_log()
        if _obslog.enabled:
            _obslog.log(
                "sample.finished", level="debug",
                kept=kept, sweeps=sweeps_run,
                stopped_early=stopped_early, interrupted=interrupted,
            )
        return SampleResult(
            samples=samples,
            wall_time=wall,
            sweep_times=sweep_times,
            acceptance=acceptance,
            device_time=self.device.elapsed if self.device is not None else None,
            stats=(
                SampleStats(
                    stat_bufs, burn_in=burn_in, thin=thin, warmup=warmup
                )
                if stat_bufs is not None
                else None
            ),
            profile=(
                profiler.finish(float(sweep_times.sum()), sweeps_run)
                if profiler is not None
                else None
            ),
            n_kept=kept,
            sweeps_run=sweeps_run,
            stopped_early=stopped_early,
            interrupted=interrupted,
            final_state=final_state,
            rng_state=rng.state_spec(),
            adapt_state=(
                {upd.label: a.state_dict() for upd, a in adapters}
                if adapters
                else None
            ),
        )

    def sample_chains(
        self,
        n_chains: int,
        num_samples: int,
        burn_in: int = 0,
        thin: int = 1,
        seed: int = 0,
        collect: tuple[str, ...] | None = None,
        executor: str = "sequential",
        n_workers: int | None = None,
        collect_stats: bool = False,
        monitor=None,
        profile: bool = False,
        chunk_size: int | None = None,
        early_stop_rhat: float | None = None,
        resume=None,
        warmup: int = 0,
        target_accept: float = 0.8,
        tune: bool = False,
    ) -> list[SampleResult]:
        """Run several independent chains from forked RNG streams.

        This is the Jags/Stan style of parallelism the paper contrasts
        with AugurV2's within-chain parallelism (Section 7.2).  Chains
        always use streams forked deterministically from ``seed``, so
        for a given seed the per-chain draws are bitwise identical
        whichever ``executor`` runs them:

        - ``"sequential"``: chains run one after another in this process;
        - ``"processes"``: chains fan out over a worker-process pool,
          each worker rehydrating the sampler from its picklable
          :class:`~repro.core.chains.SamplerSpec` (the compile cache
          makes rehydration cheap);
        - ``"threads"``: a thread pool with one rehydrated sampler per
          worker thread (bounded by the GIL; useful for testing the
          pool machinery without process start-up cost).

        ``n_workers`` defaults to ``min(n_chains, cpu_count)``.

        ``collect_stats=True`` records per-sweep update statistics in
        every chain (each worker fills its own buffers; merge them with
        :func:`repro.telemetry.stats.stack_chain_stats`).  ``monitor``
        optionally takes a
        :class:`repro.telemetry.monitors.ConvergenceMonitor` fed
        incrementally as chains progress.  ``early_stop_rhat`` (needs a
        monitor or creates one internally) broadcasts a stop flag to
        every chain once the worst split R-hat falls below the
        threshold; stopped chains keep the (bitwise-prefix) draws taken
        so far.
        """
        from repro.core.chains import run_chains

        if tune:
            sampler = self.tuned(executor=executor, n_workers=n_workers)
        else:
            sampler = self
        return run_chains(
            sampler,
            n_chains=n_chains,
            num_samples=num_samples,
            burn_in=burn_in,
            thin=thin,
            seed=seed,
            collect=collect,
            executor=executor,
            n_workers=n_workers,
            collect_stats=collect_stats,
            monitor=monitor,
            profile=profile,
            chunk_size=chunk_size,
            early_stop_rhat=early_stop_rhat,
            resume=resume,
            warmup=warmup,
            target_accept=target_accept,
        )

    def stream_chains(
        self,
        n_chains: int,
        num_samples: int,
        burn_in: int = 0,
        thin: int = 1,
        seed: int = 0,
        collect: tuple[str, ...] | None = None,
        executor: str = "sequential",
        n_workers: int | None = None,
        collect_stats: bool = False,
        monitor=None,
        profile: bool = False,
        chunk_size: int | None = None,
        early_stop_rhat: float | None = None,
        resume=None,
        warmup: int = 0,
        target_accept: float = 0.8,
        tune: bool = False,
    ):
        """The streaming form of :meth:`sample_chains`: returns a
        :class:`repro.core.chains.ChainStream` yielding
        :class:`~repro.core.chains.ChainChunk` items as workers post
        them; ``stream.results`` holds the per-chain
        :class:`SampleResult` list after the iterator is exhausted (or
        after a ``KeyboardInterrupt``, with partial draws finalized)."""
        from repro.core.chains import stream_chains

        if tune:
            sampler = self.tuned(executor=executor, n_workers=n_workers)
        else:
            sampler = self
        return stream_chains(
            sampler,
            n_chains=n_chains,
            num_samples=num_samples,
            burn_in=burn_in,
            thin=thin,
            seed=seed,
            collect=collect,
            executor=executor,
            n_workers=n_workers,
            collect_stats=collect_stats,
            monitor=monitor,
            profile=profile,
            chunk_size=chunk_size,
            early_stop_rhat=early_stop_rhat,
            resume=resume,
            warmup=warmup,
            target_accept=target_accept,
        )
