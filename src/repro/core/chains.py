"""Parallel multi-chain execution engine (the Jags/Stan-style fan-out).

The paper's Section 7.2 contrasts AugurV2's *within-chain* parallelism
with the *chain-level* parallelism of Jags/Stan.  This module supplies
the latter as a first-class runtime concern, built from three pieces:

- A **warm worker pool** (:class:`WarmPool`): worker processes are
  spawned once per :class:`SamplerSpec` fingerprint
  (:func:`repro.core.compiler.spec_cache_key`), rebuild the sampler
  once at spawn (a fork inherits the parent's warm compile cache, so
  this skips codegen), and then serve repeated chain requests over
  per-worker task queues without the spec ever being re-shipped.
- **Shared-memory draw buffers** (:class:`SharedDrawBuffers`): the
  parent allocates every chain's preallocated draw storage inside one
  ``multiprocessing.shared_memory`` segment described by a picklable
  :class:`BufferPlan`; workers attach and write draws in place, so
  results return zero-copy -- only stats/trace metadata crosses the
  pipe.  Ownership rule: the *parent* creates and unlinks the segment
  (a ``weakref.finalize`` tied to the owning ``SharedDrawBuffers``);
  workers only ever attach and close.
- A **streaming iterator** (:class:`ChainStream`): chains post
  :class:`ChainChunk` ranges as they are written (nutpie's
  ``do_sample``/``finalize`` shape), the parent feeds a
  :class:`~repro.telemetry.monitors.ConvergenceMonitor` incrementally,
  broadcasts a stop flag once R-hat converges (``early_stop_rhat``),
  and finalizes partial results on ``KeyboardInterrupt`` instead of
  losing the run.

Determinism is preserved throughout: chain streams come from
:meth:`repro.runtime.rng.Rng.fork` (deterministic in the parent seed,
forked once before dispatch), so for a given seed the per-chain draws
are bitwise identical whichever executor runs them -- and an
early-stopped chain's draws are a bitwise *prefix* of the full run.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import queue as _queue
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.errors import RuntimeFailure
from repro.runtime.rng import Rng

EXECUTORS = ("sequential", "processes", "threads")

#: Kept draws per streamed chunk when the caller does not choose.
DEFAULT_CHUNK = 25


@dataclass
class SamplerSpec:
    """A picklable recipe for rebuilding a compiled sampler.

    Carries the model source text, the runtime values that size the
    allocation plan, and the schedule/options pair -- exactly the
    inputs of :func:`repro.core.compiler.compile_model`, and exactly
    the compile-cache key, so rebuilding in a warm process is cheap.

    ``proposals`` (user MH proposal callables) ride along when present;
    they must be picklable (module-level functions) for the process
    executor.
    """

    source: str
    hyper_values: dict
    data_values: dict
    schedule: str | None = None
    options: object = None
    proposals: dict | None = field(default=None, repr=False)

    def build(self):
        """Recompile the sampler this spec describes."""
        from repro.core.compiler import compile_model

        return compile_model(
            self.source,
            self.hyper_values,
            self.data_values,
            options=self.options,
            schedule=self.schedule,
            proposals=self.proposals,
        )

    def cache_key(self) -> str:
        """The compile-cache fingerprint (also the warm-pool key)."""
        from repro.core.compiler import spec_cache_key

        return spec_cache_key(self)


def _copy_state_value(v):
    from repro.core.sampler import _copy_value

    return _copy_value(v)


@dataclass(frozen=True)
class ChainResume:
    """One chain's resume point: where to pick the chain back up.

    Built from a partial :class:`~repro.core.sampler.SampleResult`
    (``final_state`` / ``rng_state`` / ``n_kept`` / ``sweeps_run``) --
    usually via :class:`repro.serve.checkpoint.Checkpoint`.  ``draws``
    optionally carries the kept draws of the interrupted leg so the
    resumed run's storage covers the whole run; the engine splices them
    into freshly allocated storage before sampling continues.  A
    resumed chain's draws are bitwise identical to an uninterrupted run
    with the same seed.
    """

    init: dict
    rng_spec: dict
    start_sweep: int
    start_kept: int
    draws: dict | None = None
    #: Checkpointed warmup adaptation state
    #: (``SampleResult.adapt_state``): restored into the resumed leg's
    #: :class:`~repro.runtime.mcmc.adapt.WarmupAdapter` so a chain
    #: stopped mid-warmup continues adapting bitwise-identically.
    adapt_state: dict | None = None


def default_workers(n_chains: int) -> int:
    """Worker count bounded by the CPUs this process may actually use.

    ``os.sched_getaffinity`` respects cgroup/container CPU masks;
    ``os.cpu_count`` (which does not) is only the fallback for
    platforms without affinity support.
    """
    try:
        avail = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        avail = os.cpu_count() or 1
    return max(1, min(n_chains, avail))


# ----------------------------------------------------------------------
# Shared-memory draw buffers.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BufferSlot:
    """One dense parameter's draw storage for one chain: a typed view
    of the run's shared segment at ``offset``."""

    name: str
    chain: int
    offset: int
    shape: tuple
    dtype: str


@dataclass(frozen=True)
class BufferPlan:
    """Picklable description of one run's shared draw segment.

    ``slots`` lay every (chain, dense parameter) array out back to back
    (8-byte aligned); ``ragged`` names the parameters that cannot use
    dense storage and fall back to per-draw pickled lists shipped with
    the chain's final metadata.  ``collect`` preserves the caller's
    parameter order so rebuilt ``samples`` dicts iterate identically to
    the sequential path's.
    """

    segment_name: str
    total_bytes: int
    slots: tuple[BufferSlot, ...]
    ragged: tuple[str, ...]
    collect: tuple[str, ...]


def _plan_slots(plan_state, collect, n_chains, num_samples):
    slots = []
    ragged = []
    offset = 0
    for name in collect:
        shape = plan_state.get(name)
        if shape is None or shape.is_ragged:
            ragged.append(name)
            continue
        full = (num_samples,) + tuple(shape.lead) + tuple(shape.event)
        dt = np.dtype(shape.dtype)
        nbytes = int(np.prod(full, dtype=np.int64)) * dt.itemsize
        for chain in range(n_chains):
            offset = (offset + 7) & ~7
            slots.append(BufferSlot(name, chain, offset, full, dt.str))
            offset += nbytes
    return tuple(slots), tuple(ragged), offset


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach that opts out of the resource tracker: the
    parent owns the segment's lifetime, and a tracked attach would make
    every worker exit try to unlink it again."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        shm = shared_memory.SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return shm


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.close()
    except BufferError:
        # NumPy views of shm.buf are still alive; the mapping stays
        # valid (unlink only removes the name) and the fd is reclaimed
        # at process exit.
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SharedDrawBuffers:
    """One run's shared draw segment plus the typed views into it.

    **Ownership**: the parent process *creates* the segment and is the
    only one that *unlinks* it -- automatically, via a
    ``weakref.finalize`` that fires when the owning instance (kept
    alive by every ``SampleResult.draw_buffers`` built on it) is
    garbage collected.  Workers :meth:`attach` and must only
    :meth:`close` their mapping.  Unlinking while workers still hold
    mappings is safe on POSIX: the segment disappears when the last
    mapping closes.
    """

    def __init__(self, plan: BufferPlan, shm, owner: bool):
        self.plan = plan
        self._shm = shm
        self.owner = owner
        if owner:
            self._finalizer = weakref.finalize(self, _release_segment, shm)

    @classmethod
    def create(
        cls, plan_state, collect, n_chains, num_samples
    ) -> "SharedDrawBuffers":
        """Parent side: lay out and allocate the segment."""
        slots, ragged, total = _plan_slots(
            plan_state, collect, n_chains, num_samples
        )
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        plan = BufferPlan(shm.name, max(total, 1), slots, ragged, tuple(collect))
        return cls(plan, shm, owner=True)

    @classmethod
    def attach(cls, plan: BufferPlan) -> "SharedDrawBuffers":
        """Worker side: map an existing segment (untracked)."""
        return cls(plan, _attach_segment(plan.segment_name), owner=False)

    def arrays(self, chain: int) -> dict:
        """Draw storage for one chain, in ``collect`` order: dense
        parameters as zero-copy views of the segment, ragged ones as
        fresh list fallbacks."""
        by_name = {
            s.name: s for s in self.plan.slots if s.chain == chain
        }
        out: dict = {}
        for name in self.plan.collect:
            slot = by_name.get(name)
            if slot is None:
                out[name] = []
            else:
                out[name] = np.ndarray(
                    slot.shape,
                    dtype=np.dtype(slot.dtype),
                    buffer=self._shm.buf,
                    offset=slot.offset,
                )
        return out

    def close(self) -> None:
        """Drop this process's mapping (worker side; never unlinks)."""
        try:
            self._shm.close()
        except BufferError:
            pass

    def release(self) -> None:
        """Owner side: close + unlink now instead of at GC."""
        if self.owner:
            self._finalizer()


# ----------------------------------------------------------------------
# The warm worker pool.
# ----------------------------------------------------------------------


@dataclass
class _ChainTask:
    """One chain assignment shipped to a pool worker."""

    run_id: int
    chain: int
    rng: Rng
    kwargs: dict
    plan: BufferPlan | None
    chunk_size: int
    ship_trace: bool
    #: Correlation id of the request this chain serves; stamped on
    #: every worker-side event log entry so one grep reconstructs the
    #: request across processes.
    rid: str | None = None
    #: Event-log level to capture at in the worker, or ``None`` when
    #: the parent's log is disabled (no capture, no shipping).
    obs_level: str | None = None


def _run_task(sampler, task: _ChainTask, result_q, stop_event) -> None:
    tracer = None
    if task.ship_trace:
        from repro.telemetry.trace import enable_tracing

        tracer = enable_tracing()
    obs = None
    if task.obs_level is not None:
        from repro.telemetry.obslog import get_event_log

        obs = get_event_log()
        obs.begin_capture(level=task.obs_level)
    buffers = (
        SharedDrawBuffers.attach(task.plan) if task.plan is not None else None
    )
    storage = buffers.arrays(task.chain) if buffers is not None else None
    try:
        it = sampler.sample_iter(
            seed=task.rng,
            storage=storage,
            chunk_size=task.chunk_size,
            stop=stop_event.is_set,
            **task.kwargs,
        )
        for start, stop, info in it:
            events = tracer.drain_events() if tracer is not None else None
            if obs is not None:
                obs.log(
                    "chunk.emitted", rid=task.rid,
                    chain=task.chain, start=start, stop=stop,
                )
            obs_events = obs.drain_capture() if obs is not None else None
            result_q.put(
                (
                    "chunk", task.run_id, task.chain, start, stop, info,
                    events, obs_events,
                )
            )
        result = it.result
        # Dense draws already live in the shared segment; strip the
        # worker-side views so only metadata (stats, ragged lists,
        # timings) crosses the pipe.
        result.samples = {
            name: (None if isinstance(vals, np.ndarray) else vals)
            for name, vals in result.samples.items()
        }
        result.draw_buffers = None
        if tracer is not None:
            result.trace_events = tracer.drain_events()
            tracer.disable()
        obs_events = None
        if obs is not None:
            obs.log(
                "chain.finished", rid=task.rid, chain=task.chain,
                kept=result.n_kept, sweeps=result.sweeps_run,
                stopped_early=result.stopped_early,
            )
            obs_events = obs.drain_capture()
            obs.end_capture()
        result_q.put(("done", task.run_id, task.chain, result, obs_events))
        del it, result
    finally:
        del storage
        if buffers is not None:
            buffers.close()


def _pool_worker_main(spec: SamplerSpec, task_q, result_q, stop_event) -> None:
    """Long-lived pool worker: build the sampler once, then serve chain
    tasks until a ``None`` sentinel arrives."""
    from repro.telemetry.obslog import get_event_log
    from repro.telemetry.trace import disable_tracing

    disable_tracing()  # a fork inherits the parent's tracer state
    get_event_log().reset_after_fork()  # ... and the parent's log sink
    sampler = spec.build()
    while True:
        task = task_q.get()
        if task is None:
            break
        try:
            _run_task(sampler, task, result_q, stop_event)
        except Exception as e:  # ship, don't die: the pool is reusable
            obs_events = None
            log = get_event_log()
            if log.capturing:
                log.log(
                    "chain.error", level="error", rid=task.rid,
                    chain=task.chain, error=f"{type(e).__name__}: {e}",
                )
                obs_events = log.drain_capture()
                log.end_capture()
            result_q.put(
                (
                    "error", task.run_id, task.chain,
                    f"{type(e).__name__}: {e}", obs_events,
                )
            )


@dataclass
class PoolWorker:
    process: object
    task_q: object


class WarmPool:
    """A persistent set of worker processes for one sampler fingerprint.

    Workers compile once at spawn and then serve repeated multi-chain
    requests; each worker has its own task queue (so ``n_workers``
    genuinely bounds concurrency -- a shared queue would let every
    spawned worker run at once) and all post to one results queue.
    ``stop_event`` is the broadcast early-stop/interrupt flag workers
    poll between sweeps.
    """

    def __init__(self, spec: SamplerSpec):
        import multiprocessing as mp

        try:
            self._ctx = mp.get_context("fork")
        except ValueError:  # platforms without fork
            self._ctx = mp.get_context()
        self.spec = spec
        self.stop_event = self._ctx.Event()
        self.result_q = self._ctx.Queue()
        self.workers: list[PoolWorker] = []
        self.run_lock = threading.Lock()
        self._run_counter = 0
        # In-flight accounting: eviction from the LRU registry must not
        # tear down a pool another thread is actively running chains on
        # (two model shapes alternating under the registry cap would
        # otherwise kill a run mid-flight).  ``checkout``/``checkin``
        # bracket a run; ``retire`` defers the shutdown until the last
        # checkout drains.
        self._state_lock = threading.Lock()
        self._active = 0
        self._retired = False

    def checkout(self) -> None:
        """Mark a run in flight; the pool will not be torn down (even
        if evicted from the registry) until the matching :meth:`checkin`."""
        with self._state_lock:
            self._active += 1

    def checkin(self) -> None:
        """Release one in-flight run, completing a deferred retirement
        once the last one drains."""
        with self._state_lock:
            self._active = max(0, self._active - 1)
            tear_down = self._retired and self._active == 0
        if tear_down:
            self.shutdown()

    def retire(self) -> None:
        """Evicted from the registry: shut down now if idle, otherwise
        after the in-flight runs drain."""
        with self._state_lock:
            self._retired = True
            tear_down = self._active == 0
        if tear_down:
            self.shutdown()

    def _spawn_one(self) -> PoolWorker:
        from repro.telemetry.obslog import get_event_log

        task_q = self._ctx.Queue()
        p = self._ctx.Process(
            target=_pool_worker_main,
            args=(self.spec, task_q, self.result_q, self.stop_event),
            daemon=True,
        )
        p.start()
        get_event_log().log("worker.spawned", worker_pid=p.pid)
        return PoolWorker(p, task_q)

    def ensure_workers(self, n: int) -> None:
        """Grow to at least ``n`` live workers, reviving any that died."""
        from repro.telemetry.obslog import get_event_log

        for i, w in enumerate(self.workers):
            if not w.process.is_alive():
                old_pid = w.process.pid
                self.workers[i] = self._spawn_one()
                get_event_log().log(
                    "worker.revived", level="warning",
                    old_pid=old_pid, worker_pid=self.workers[i].process.pid,
                )
        while len(self.workers) < n:
            self.workers.append(self._spawn_one())

    def new_run_id(self) -> int:
        self._run_counter += 1
        return self._run_counter

    def pids(self) -> list[int]:
        return [w.process.pid for w in self.workers]

    def shutdown(self) -> None:
        for w in self.workers:
            try:
                w.task_q.put(None)
            except Exception:
                pass
        for w in self.workers:
            w.process.join(timeout=5)
            if w.process.is_alive():
                w.process.terminate()
        self.workers = []


_POOL_CAPACITY = 4
_pools: OrderedDict[str, WarmPool] = OrderedDict()
_pools_lock = threading.Lock()


def get_worker_pool(
    spec: SamplerSpec, n_workers: int, checkout: bool = False
) -> WarmPool:
    """The warm pool for this spec's compile-cache fingerprint,
    spawning or growing it as needed (LRU-capped at ``_POOL_CAPACITY``
    distinct fingerprints).

    With ``checkout=True`` the pool is returned already checked out
    (the caller must :meth:`~WarmPool.checkin` when its run drains);
    evicted pools are *retired* rather than shut down, so an eviction
    racing an in-flight run on another thread defers the teardown until
    that run completes.
    """
    key = spec.cache_key()
    evicted = []
    with _pools_lock:
        pool = _pools.get(key)
        if pool is None:
            pool = _pools[key] = WarmPool(spec)
        _pools.move_to_end(key)
        if checkout:
            pool.checkout()
        while len(_pools) > _POOL_CAPACITY:
            _, old = _pools.popitem(last=False)
            evicted.append(old)
    for old in evicted:
        old.retire()
    pool.ensure_workers(n_workers)
    return pool


def shutdown_worker_pools() -> None:
    """Tear down every warm pool (atexit hook; also handy in tests)."""
    with _pools_lock:
        pools = list(_pools.values())
        _pools.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_worker_pools)


# ----------------------------------------------------------------------
# The chain stream.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChainChunk:
    """Kept draws ``start:stop`` of one chain just became readable.

    ``samples`` is the chain's *full* draw storage (zero-copy views of
    the shared segment on the process executor); index rows
    ``start:stop`` for the new draws.  ``info`` carries the per-update
    stats digest for the sweeps behind this chunk
    (:func:`repro.telemetry.stats.chunk_stat_info`) when the run
    collects stats, so consumers can report acceptance / divergences
    live instead of only from the final result.
    """

    chain: int
    start: int
    stop: int
    samples: dict
    info: dict | None = None


class ChainStream:
    """Streaming multi-chain execution: iterate :class:`ChainChunk`
    items as workers post them; ``results`` holds the per-chain
    :class:`~repro.core.sampler.SampleResult` list (in chain order)
    once the iterator is exhausted.

    The stream drives the unified monitor protocol documented on
    :class:`~repro.telemetry.monitors.ConvergenceMonitor` --
    ``observe_chunk`` per chunk, then ``observe_stats`` +
    ``chain_done`` per finished chain -- identically for every
    executor.  With ``early_stop_rhat`` set, the stream polls
    ``monitor.converged`` after each chunk and broadcasts the stop
    flag once it holds; a ``KeyboardInterrupt`` while iterating (or
    :meth:`request_stop`) does the same, so partial results are always
    finalized.
    """

    def __init__(
        self,
        sampler,
        n_chains: int,
        kwargs: dict,
        rngs,
        executor: str,
        n_workers: int,
        monitor,
        early_stop_rhat: float | None,
        chunk_size: int,
        resume=None,
    ):
        self._sampler = sampler
        self.n_chains = n_chains
        self._kwargs = kwargs
        self._rngs = rngs
        self.executor = executor
        self._workers = n_workers
        self.monitor = monitor
        self._early_stop = early_stop_rhat
        self._chunk_size = chunk_size
        self._resume = list(resume) if resume is not None else [None] * n_chains
        self.results = [None] * n_chains
        self.interrupted = False
        self.stopped_early = False
        self._stop_requested = False
        self._pool: WarmPool | None = None
        self.buffers: SharedDrawBuffers | None = None
        # Correlation id + event log, captured at construction (i.e. on
        # the request's own thread): worker threads/processes receive
        # the rid explicitly since context vars do not cross them.
        from repro.telemetry.obslog import current_rid, get_event_log

        self._obslog = get_event_log()
        self._rid = current_rid()
        if executor == "sequential":
            self._gen = self._run_sequential()
        elif executor == "threads":
            self._gen = self._run_threads()
        else:
            self._gen = self._run_processes()

    # -- control -----------------------------------------------------------

    def request_stop(self) -> None:
        """Broadcast the stop flag: every chain finalizes at its next
        sweep boundary, keeping the draws taken so far."""
        self._stop_requested = True
        if self._pool is not None:
            self._pool.stop_event.set()

    def _stop_flag(self) -> bool:
        return self._stop_requested

    # -- iteration ---------------------------------------------------------

    def __iter__(self):
        return self

    def __next__(self) -> ChainChunk:
        return next(self._gen)

    def drain(self) -> list:
        """Run to completion (KeyboardInterrupt finalizes partials) and
        return the per-chain results."""
        while True:
            try:
                next(self._gen)
            except StopIteration:
                return self.results
            except KeyboardInterrupt:
                self.interrupted = True
                self.request_stop()

    # -- shared plumbing ---------------------------------------------------

    def _ingest(self, chunk: ChainChunk) -> None:
        if self.monitor is not None:
            self.monitor.observe_chunk(
                chunk.chain, chunk.start, chunk.stop, chunk.samples
            )
            if (
                self._early_stop is not None
                and not self._stop_requested
                and self.monitor.converged(self._early_stop)
            ):
                self.stopped_early = True
                self.request_stop()

    def _finish_chain(self, chain: int, result) -> None:
        if self.interrupted:
            result.interrupted = True
        self.results[chain] = result
        if self.monitor is not None:
            self.monitor.observe_stats(result.stats)
            self.monitor.chain_done()

    def _chain_kwargs(self, chain: int) -> dict:
        """This chain's ``sample_iter`` kwargs: the shared run kwargs
        plus, for a resumed chain, its checkpointed state and offsets.
        The checkpointed state is deep-copied so in-place kernel updates
        never corrupt the checkpoint it came from."""
        kw = dict(self._kwargs)
        r = self._resume[chain]
        if r is not None:
            kw["init"] = {k: _copy_state_value(v) for k, v in r.init.items()}
            kw["start_sweep"] = r.start_sweep
            kw["start_kept"] = r.start_kept
            if r.adapt_state is not None:
                kw["adapt_state"] = r.adapt_state
        return kw

    def _apply_resume(self, chain: int, storage: dict) -> None:
        """Splice a resumed chain's prior kept draws into its freshly
        allocated draw storage so the finished result covers the whole
        run, not just the resumed leg."""
        r = self._resume[chain]
        if r is None or not r.draws:
            return
        for name, vals in r.draws.items():
            store = storage.get(name)
            if isinstance(store, np.ndarray):
                n = min(len(vals), r.start_kept, len(store))
                if n:
                    store[:n] = vals[:n]
            elif isinstance(store, list) and not store:
                store.extend(vals)

    # -- executors ---------------------------------------------------------

    def _run_sequential(self):
        sampler = self._sampler
        collect = self._kwargs.get("collect")
        num_samples = self._kwargs["num_samples"]
        for i, rng in enumerate(self._rngs):
            storage = sampler.allocate_draws(collect, num_samples)
            self._apply_resume(i, storage)
            it = sampler.sample_iter(
                seed=rng,
                storage=storage,
                chunk_size=self._chunk_size,
                stop=self._stop_flag,
                **self._chain_kwargs(i),
            )
            while True:
                try:
                    span = next(it)
                except StopIteration:
                    break
                except KeyboardInterrupt:
                    self.interrupted = True
                    self.request_stop()
                    continue
                chunk = ChainChunk(i, span[0], span[1], storage, span[2])
                if self._obslog.enabled:
                    self._obslog.log(
                        "chunk.emitted", rid=self._rid,
                        chain=i, start=span[0], stop=span[1],
                    )
                self._ingest(chunk)
                yield chunk
            self._finish_chain(i, it.result)

    def _run_threads(self):
        spec = self._require_spec()
        collect = self._kwargs.get("collect")
        num_samples = self._kwargs["num_samples"]
        q: _queue.Queue = _queue.Queue()
        local = threading.local()

        def run_one(i, rng):
            try:
                inst = getattr(local, "sampler", None)
                if inst is None:
                    inst = local.sampler = spec.build()
                storage = inst.allocate_draws(collect, num_samples)
                self._apply_resume(i, storage)
                it = inst.sample_iter(
                    seed=rng,
                    storage=storage,
                    chunk_size=self._chunk_size,
                    stop=self._stop_flag,
                    **self._chain_kwargs(i),
                )
                for start, stop, info in it:
                    if self._obslog.enabled:
                        self._obslog.log(
                            "chunk.emitted", rid=self._rid,
                            chain=i, start=start, stop=stop,
                        )
                    q.put(("chunk", i, start, stop, info, storage))
                q.put(("done", i, it.result))
            except BaseException:
                q.put(("error", i, None))
                raise

        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self._workers
        ) as pool:
            futures = [
                pool.submit(run_one, i, rng)
                for i, rng in enumerate(self._rngs)
            ]
            pending = set(range(self.n_chains))
            while pending:
                try:
                    msg = q.get(timeout=1.0)
                except _queue.Empty:
                    continue
                except KeyboardInterrupt:
                    self.interrupted = True
                    self.request_stop()
                    continue
                kind = msg[0]
                if kind == "chunk":
                    _, chain, start, stop, info, storage = msg
                    chunk = ChainChunk(chain, start, stop, storage, info)
                    try:
                        self._ingest(chunk)
                        yield chunk
                    except GeneratorExit:
                        # Abandoned stream: stop the workers before the
                        # executor's exit blocks on them.
                        self.request_stop()
                        raise
                elif kind == "done":
                    _, chain, result = msg
                    self._finish_chain(chain, result)
                    pending.discard(chain)
                else:  # error: stop siblings fast, surface via _gather
                    self.request_stop()
                    pending.discard(msg[1])
        _gather(futures, None)

    def _run_processes(self):
        from repro.telemetry.trace import get_tracer

        spec = self._require_spec()
        sampler = self._sampler
        collect = self._kwargs.get("collect")
        if collect is None:
            collect = sampler.param_names
        num_samples = self._kwargs["num_samples"]
        tracer = get_tracer()
        ship_trace = tracer.enabled
        obslog = self._obslog
        obs_level = obslog.level_name if obslog.enabled else None
        workers = min(self._workers, self.n_chains)
        pool = get_worker_pool(spec, workers, checkout=True)
        self._pool = pool
        try:
            with pool.run_lock:
                pool.stop_event.clear()
                if self._stop_requested:  # stop arrived before dispatch
                    pool.stop_event.set()
                run_id = pool.new_run_id()
                self.buffers = SharedDrawBuffers.create(
                    sampler.plan.state, collect, self.n_chains, num_samples
                )
                storages = {
                    i: self.buffers.arrays(i) for i in range(self.n_chains)
                }
                for i in range(self.n_chains):
                    self._apply_resume(i, storages[i])
                for i, rng in enumerate(self._rngs):
                    kwargs = self._chain_kwargs(i)
                    kwargs["collect"] = tuple(collect)
                    task = _ChainTask(
                        run_id, i, rng, kwargs, self.buffers.plan,
                        self._chunk_size, ship_trace,
                        rid=self._rid, obs_level=obs_level,
                    )
                    pool.workers[i % workers].task_q.put(task)
                pending = set(range(self.n_chains))
                error = None
                while pending:
                    try:
                        msg = pool.result_q.get(timeout=0.5)
                    except _queue.Empty:
                        for i in list(pending):
                            w = pool.workers[i % workers]
                            if not w.process.is_alive():
                                error = RuntimeFailure(
                                    f"worker process for chain {i} died "
                                    f"(pid {w.process.pid})"
                                )
                                obslog.log(
                                    "worker.died", level="error",
                                    rid=self._rid,
                                    worker_pid=w.process.pid, chain=i,
                                )
                                pool.stop_event.set()
                                pending.discard(i)
                        continue
                    except KeyboardInterrupt:
                        self.interrupted = True
                        self.request_stop()
                        continue
                    kind = msg[0]
                    if msg[1] != run_id:
                        continue  # stale message from an aborted prior run
                    if kind == "chunk":
                        _, _, chain, start, stop, info, events, obs_ev = msg
                        if events:
                            tracer.adopt(events)
                        if obs_ev:
                            obslog.adopt(obs_ev)
                        chunk = ChainChunk(
                            chain, start, stop, storages[chain], info
                        )
                        try:
                            self._ingest(chunk)
                            yield chunk
                        except GeneratorExit:
                            pool.stop_event.set()
                            raise
                    elif kind == "done":
                        _, _, chain, result, obs_ev = msg
                        if obs_ev:
                            obslog.adopt(obs_ev)
                        storage = storages[chain]
                        resume = self._resume[chain]
                        rebuilt = {}
                        for name, vals in result.samples.items():
                            if vals is None:
                                arr = storage[name]
                                rebuilt[name] = (
                                    arr[: result.n_kept]
                                    if result.n_kept < num_samples
                                    else arr
                                )
                            else:
                                # Ragged fallback lists hold only the
                                # draws this process took; a resumed
                                # chain's prior draws are prepended so
                                # the result covers the whole run.
                                if (
                                    resume is not None
                                    and resume.draws is not None
                                    and isinstance(vals, list)
                                    and isinstance(
                                        resume.draws.get(name), list
                                    )
                                ):
                                    vals = list(resume.draws[name]) + vals
                                rebuilt[name] = vals
                        result.samples = rebuilt
                        result.draw_buffers = self.buffers
                        if result.trace_events:
                            tracer.adopt(result.trace_events)
                        self._finish_chain(chain, result)
                        pending.discard(chain)
                    else:  # "error"
                        _, _, chain, desc, obs_ev = msg
                        if obs_ev:
                            obslog.adopt(obs_ev)
                        error = RuntimeFailure(
                            f"chain {chain} failed in worker: {desc}"
                        )
                        pool.stop_event.set()
                        pending.discard(chain)
                if error is not None:
                    raise error
        finally:
            pool.checkin()

    def _require_spec(self) -> SamplerSpec:
        spec = self._sampler.spec
        if spec is None:
            raise RuntimeFailure(
                "this sampler has no SamplerSpec and cannot be rehydrated "
                "in workers; build it with compile_model, or use "
                "executor='sequential'"
            )
        return spec


# ----------------------------------------------------------------------
# Entry points.
# ----------------------------------------------------------------------


def _validate(n_chains, executor, n_workers):
    if n_chains < 1:
        raise RuntimeFailure("need at least one chain")
    if executor not in EXECUTORS:
        raise RuntimeFailure(
            f"unknown executor {executor!r}; use one of {', '.join(EXECUTORS)}"
        )
    workers = (
        n_workers if n_workers is not None else default_workers(n_chains)
    )
    if workers < 1:
        raise RuntimeFailure(f"n_workers must be positive, got {workers}")
    return workers


def stream_chains(
    sampler,
    n_chains: int,
    num_samples: int,
    burn_in: int = 0,
    thin: int = 1,
    seed: int = 0,
    collect: tuple[str, ...] | None = None,
    executor: str = "sequential",
    n_workers: int | None = None,
    collect_stats: bool = False,
    monitor=None,
    profile: bool = False,
    chunk_size: int | None = None,
    early_stop_rhat: float | None = None,
    resume=None,
    warmup: int = 0,
    target_accept: float = 0.8,
) -> ChainStream:
    """Run ``n_chains`` chains, streaming draw chunks as they land.

    Returns a :class:`ChainStream`; see
    :meth:`repro.core.sampler.CompiledSampler.stream_chains`.  With
    ``early_stop_rhat`` and no ``monitor``, an internal
    :class:`~repro.telemetry.monitors.ConvergenceMonitor` is created to
    drive the convergence test.

    ``resume`` optionally supplies one :class:`ChainResume` (or
    ``None``) per chain; resumed chains continue bit-for-bit from their
    checkpointed state/RNG position instead of starting fresh, and
    their prior draws are spliced into the new run's storage.
    """
    workers = _validate(n_chains, executor, n_workers)
    if resume is not None and len(resume) != n_chains:
        raise RuntimeFailure(
            f"resume must supply one entry per chain "
            f"({len(resume)} != {n_chains})"
        )
    if executor != "sequential" and n_chains == 1:
        executor = "sequential"
    if executor != "sequential" and sampler.spec is None:
        raise RuntimeFailure(
            "this sampler has no SamplerSpec and cannot be rehydrated in "
            "workers; build it with compile_model, or use "
            "executor='sequential'"
        )
    if early_stop_rhat is not None and monitor is None:
        from repro.telemetry.monitors import ConvergenceMonitor

        monitor = ConvergenceMonitor(
            param_names=tuple(collect) if collect else sampler.param_names,
            n_chains=n_chains,
            total_draws=max(num_samples, 4),
        )
    rngs = Rng(seed).fork(n_chains)
    if resume is not None:
        rngs = [
            Rng.from_spec(r.rng_spec) if r is not None else rngs[i]
            for i, r in enumerate(resume)
        ]
    kwargs = dict(
        num_samples=num_samples, burn_in=burn_in, thin=thin, collect=collect,
        collect_stats=collect_stats, profile=profile,
        warmup=warmup, target_accept=target_accept,
    )
    if chunk_size is None or chunk_size <= 0:
        chunk_size = max(1, min(DEFAULT_CHUNK, num_samples))
    return ChainStream(
        sampler, n_chains, kwargs, rngs, executor, workers,
        monitor, early_stop_rhat, chunk_size, resume=resume,
    )


def run_chains(
    sampler,
    n_chains: int,
    num_samples: int,
    burn_in: int = 0,
    thin: int = 1,
    seed: int = 0,
    collect: tuple[str, ...] | None = None,
    executor: str = "sequential",
    n_workers: int | None = None,
    collect_stats: bool = False,
    monitor=None,
    profile: bool = False,
    chunk_size: int | None = None,
    early_stop_rhat: float | None = None,
    resume=None,
    warmup: int = 0,
    target_accept: float = 0.8,
):
    """Run ``n_chains`` independent chains, optionally in parallel.

    Returns one :class:`~repro.core.sampler.SampleResult` per chain, in
    chain order.  See :meth:`CompiledSampler.sample_chains` for the
    executor semantics.  This is the batch face of
    :func:`stream_chains`: every executor drives the same streaming
    engine and the same monitor protocol (``observe_chunk`` per chunk,
    ``observe_stats`` + ``chain_done`` per chain), so monitors see
    identical per-chain feeds whichever executor runs.
    """
    if chunk_size is None and monitor is None and early_stop_rhat is None:
        # Nothing consumes intermediate chunks: run whole chains per
        # chunk to keep the batch path's overhead at zero.
        chunk_size = num_samples
    stream = stream_chains(
        sampler,
        n_chains=n_chains,
        num_samples=num_samples,
        burn_in=burn_in,
        thin=thin,
        seed=seed,
        collect=collect,
        executor=executor,
        n_workers=n_workers,
        collect_stats=collect_stats,
        monitor=monitor,
        profile=profile,
        chunk_size=chunk_size,
        early_stop_rhat=early_stop_rhat,
        resume=resume,
        warmup=warmup,
        target_accept=target_accept,
    )
    return stream.drain()


def _gather(futures, monitor) -> list:
    """Collect future results in submission order, feeding the monitor
    in *completion* order.

    Each future's ``result()`` is taken exactly once (during the
    ``as_completed`` pass); on the first failure every outstanding
    future is cancelled so one crashed chain cannot hang the run, and
    the original exception is re-raised.
    """
    results: dict = {}
    index = {f: i for i, f in enumerate(futures)}
    try:
        for f in concurrent.futures.as_completed(futures):
            results[index[f]] = f.result()
            if monitor is not None:
                monitor.chain_finished(index[f], results[index[f]])
    except BaseException:
        for f in futures:
            f.cancel()
        raise
    return [results[i] for i in range(len(futures))]
