"""Parallel multi-chain execution engine (the Jags/Stan-style fan-out).

The paper's Section 7.2 contrasts AugurV2's *within-chain* parallelism
with the *chain-level* parallelism of Jags/Stan.  This module supplies
the latter as a first-class runtime concern: ``run_chains`` fans N
chains out over a process (or thread) pool while keeping the draws
bitwise identical to the sequential path for a given seed.

Two facts shape the design:

- Chain streams come from :meth:`repro.runtime.rng.Rng.fork`, which is
  deterministic in the parent seed.  The parent forks once and ships
  each child stream to its worker, so the stream a chain consumes does
  not depend on which executor runs it.
- A :class:`~repro.core.sampler.CompiledSampler` owns a live
  ``exec``'d namespace and is **not** picklable.  Workers instead
  receive a :class:`SamplerSpec` -- the model source text plus the
  runtime values, schedule and options that produced the sampler --
  and rebuild it with :func:`repro.core.compiler.compile_model`.  The
  compile cache (keyed on exactly those ingredients) makes repeated
  rehydration inside one worker process skip codegen entirely.
"""

from __future__ import annotations

import concurrent.futures
import os
import threading
from dataclasses import dataclass, field

from repro.errors import RuntimeFailure
from repro.runtime.rng import Rng

EXECUTORS = ("sequential", "processes", "threads")


@dataclass
class SamplerSpec:
    """A picklable recipe for rebuilding a compiled sampler.

    Carries the model source text, the runtime values that size the
    allocation plan, and the schedule/options pair -- exactly the
    inputs of :func:`repro.core.compiler.compile_model`, and exactly
    the compile-cache key, so rebuilding in a warm process is cheap.

    ``proposals`` (user MH proposal callables) ride along when present;
    they must be picklable (module-level functions) for the process
    executor.
    """

    source: str
    hyper_values: dict
    data_values: dict
    schedule: str | None = None
    options: object = None
    proposals: dict | None = field(default=None, repr=False)

    def build(self):
        """Recompile the sampler this spec describes."""
        from repro.core.compiler import compile_model

        return compile_model(
            self.source,
            self.hyper_values,
            self.data_values,
            options=self.options,
            schedule=self.schedule,
            proposals=self.proposals,
        )


def _run_chain_worker(
    spec: SamplerSpec, rng: Rng, kwargs: dict, ship_trace: bool = False
):
    """Worker-process entry point: rehydrate, then run one chain.

    With ``ship_trace`` the worker's (fresh, disabled) tracer is turned
    on around the run and its pid-stamped events ride back to the parent
    on ``SampleResult.trace_events``, so a ``processes`` run still
    produces one coherent ``--trace`` file with per-worker rows.
    """
    if ship_trace:
        from repro.telemetry.trace import enable_tracing

        tracer = enable_tracing()
    sampler = spec.build()
    result = sampler.sample(seed=rng, **kwargs)
    if ship_trace:
        result.trace_events = tracer.export_events()
    return result


def default_workers(n_chains: int) -> int:
    return max(1, min(n_chains, os.cpu_count() or 1))


def run_chains(
    sampler,
    n_chains: int,
    num_samples: int,
    burn_in: int = 0,
    thin: int = 1,
    seed: int = 0,
    collect: tuple[str, ...] | None = None,
    executor: str = "sequential",
    n_workers: int | None = None,
    collect_stats: bool = False,
    monitor=None,
    profile: bool = False,
):
    """Run ``n_chains`` independent chains, optionally in parallel.

    Returns one :class:`~repro.core.sampler.SampleResult` per chain, in
    chain order.  See :meth:`CompiledSampler.sample_chains` for the
    executor semantics.

    ``collect_stats`` turns on per-sweep stat recording inside every
    chain; each worker writes into its own preallocated buffers (nothing
    is shared across processes) and the per-chain
    ``SampleResult.stats`` merge via
    :func:`repro.telemetry.stats.stack_chain_stats`.  A ``monitor``
    (:class:`repro.telemetry.monitors.ConvergenceMonitor`) is fed
    incrementally: per kept draw on the sequential path, per completed
    chain -- in completion order -- on the pooled paths.
    """
    if n_chains < 1:
        raise RuntimeFailure("need at least one chain")
    if executor not in EXECUTORS:
        raise RuntimeFailure(
            f"unknown executor {executor!r}; use one of {', '.join(EXECUTORS)}"
        )
    rngs = Rng(seed).fork(n_chains)
    kwargs = dict(
        num_samples=num_samples, burn_in=burn_in, thin=thin, collect=collect,
        collect_stats=collect_stats, profile=profile,
    )

    if executor == "sequential" or n_chains == 1:
        results = []
        for i, rng in enumerate(rngs):
            callback = None
            if monitor is not None:
                callback = (
                    lambda kept, state, _i=i: monitor.observe(_i, kept, state)
                )
            res = sampler.sample(seed=rng, callback=callback, **kwargs)
            if monitor is not None:
                monitor.observe_stats(res.stats)
                monitor.chain_done()
            results.append(res)
        return results

    spec = sampler.spec
    if spec is None:
        raise RuntimeFailure(
            "this sampler has no SamplerSpec and cannot be rehydrated in "
            "workers; build it with compile_model, or use executor='sequential'"
        )
    workers = n_workers if n_workers is not None else default_workers(n_chains)
    if workers < 1:
        raise RuntimeFailure(f"n_workers must be positive, got {workers}")

    if executor == "processes":
        from repro.telemetry.trace import get_tracer

        tracer = get_tracer()
        ship_trace = tracer.enabled
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_chain_worker, spec, rng, kwargs, ship_trace)
                for rng in rngs
            ]
            results = _gather(futures, monitor)
        if ship_trace:
            for res in results:
                if res.trace_events:
                    tracer.adopt(res.trace_events)
        return results

    # Threads: the sampler's workspaces and sweep environment are
    # mutable shared state, so every worker thread gets its own
    # rehydrated instance (compile-cache hits after the first build).
    local = threading.local()

    def run_one(rng: Rng):
        inst = getattr(local, "sampler", None)
        if inst is None:
            inst = local.sampler = spec.build()
        return inst.sample(seed=rng, **kwargs)

    with concurrent.futures.ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(run_one, rng) for rng in rngs]
        return _gather(futures, monitor)


def _gather(futures, monitor) -> list:
    """Collect chain results in chain order, feeding the monitor in
    *completion* order so cross-chain diagnostics update as soon as any
    worker finishes."""
    if monitor is not None:
        index = {f: i for i, f in enumerate(futures)}
        for f in concurrent.futures.as_completed(futures):
            monitor.chain_finished(index[f], f.result())
    return [f.result() for f in futures]
