"""Backends: Low--/Blk IL -> executable Python (paper Section 5).

The paper's backend emits Cuda/C and compiles it with Nvcc/Clang.  Here
the same pipeline position is filled by a *Python source* code
generator: declarations are emitted as NumPy-vectorised source text and
compiled with ``compile()``/``exec()`` at model-compile time.  The GPU
target emits the same numerics instrumented with cost charges against
the :mod:`repro.gpusim` device model.
"""

from repro.core.backend.cpu import compile_cpu_module
from repro.core.backend.gpu import compile_gpu_module

__all__ = ["compile_cpu_module", "compile_gpu_module"]
