"""Batch-mode runtime helpers for vectorised generated code.

When the backend collapses a ``Par``/``AtmPar`` loop into vector
operations, per-iteration values become arrays with the *batch axis
first*.  A per-iteration value may itself be a vector (e.g. a data row
``x[n]``), so two batch operands can have different element ranks; the
binary helpers align element dimensions before broadcasting.  The
scatter/gather helpers implement the loop-carried stores: ``np.add.at``
is the CPU realisation of an atomic increment.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.vectors import RaggedArray


def _align(a, b, a_batch: bool, b_batch: bool):
    """Align element dimensions of two operands for broadcasting.

    A batch operand has shape ``(B, *elem)``; a constant operand's whole
    shape is its element shape.  The operand with the smaller element
    rank gets singleton dimensions inserted *after* its batch axis.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    ae = a.ndim - 1 if a_batch else a.ndim
    be = b.ndim - 1 if b_batch else b.ndim
    if ae < be and a_batch:
        a = a.reshape(a.shape[:1] + (1,) * (be - ae) + a.shape[1:])
    elif be < ae and b_batch:
        b = b.reshape(b.shape[:1] + (1,) * (ae - be) + b.shape[1:])
    return a, b


def _binop(op):
    def impl(a, b, a_batch=False, b_batch=False):
        a, b = _align(a, b, a_batch, b_batch)
        return op(a, b)

    return impl


add = _binop(np.add)
sub = _binop(np.subtract)
mul = _binop(np.multiply)
div = _binop(np.divide)
pow_ = _binop(np.power)
eq = _binop(np.equal)
min_ = _binop(np.minimum)
max_ = _binop(np.maximum)


def dotp(a, b, a_batch=False, b_batch=False):
    a, b = _align(a, b, a_batch, b_batch)
    return np.sum(a * b, axis=-1)


def vsum(value, batch: bool, n: int):
    """Total of a per-iteration contribution over the whole batch."""
    if batch:
        return np.sum(np.asarray(value), axis=0)
    return n * np.asarray(value)


def take(base, idx):
    """Gather rows of a constant array by a batch index vector."""
    if isinstance(base, RaggedArray):
        raise TypeError(
            "cannot gather variable-length rows of a ragged array in "
            "vectorised code"
        )
    return np.asarray(base)[np.asarray(idx)]


def take_pair(base, idx):
    """Per-batch-element indexing of a batch array: ``base[i][idx[i]]``."""
    base = np.asarray(base)
    idx = np.asarray(idx)
    return base[np.arange(base.shape[0]), idx]


def pair_flat(base):
    """The flattened view used by ragged-pair vectorisation.

    For a ragged array this is its contiguous flat buffer; for a dense
    array the first two axes are merged.
    """
    if isinstance(base, RaggedArray):
        return base.flat
    base = np.asarray(base)
    return base.reshape((-1,) + base.shape[2:])


def _filter_mask(indices, value, value_batch, mask):
    if mask is None:
        return indices, value
    out_idx = tuple(
        np.asarray(i)[mask] if np.ndim(i) > 0 else i for i in indices
    )
    out_val = np.asarray(value)[mask] if value_batch else value
    return out_idx, out_val


def setidx(target, indices, value, value_batch=False, mask=None):
    """Vectorised indexed store ``target[i...] = value``."""
    indices, value = _filter_mask(indices, value, value_batch, mask)
    target[indices if len(indices) > 1 else indices[0]] = value


def incidx(target, indices, value, value_batch=False, mask=None):
    """Vectorised atomic increment ``target[i...] += value`` (scatter-add)."""
    indices, value = _filter_mask(indices, value, value_batch, mask)
    np.add.at(target, indices if len(indices) > 1 else indices[0], value)


def masked_vsum(value, batch: bool, mask):
    """Guarded reduction: total of contributions where the mask holds."""
    if mask is None:
        raise ValueError("masked_vsum requires a mask")
    if batch:
        return np.sum(np.asarray(value)[mask], axis=0)
    return np.count_nonzero(mask) * np.asarray(value)


def nelems(buf) -> int:
    """Number of addressable cells in a buffer (contention estimation)."""
    if isinstance(buf, RaggedArray):
        return int(buf.flat.size)
    return int(np.size(buf))
