"""Function-level emission shared by the CPU and GPU backends.

:class:`FnEmitter` walks Low-- statements, attempting vectorisation of
every parallel loop (single-axis first at two levels: ragged-pair, then
plain) and falling back to Python loops when the vectoriser declines.
A :class:`ChargePolicy` hook lets the GPU backend attach device-time
charges to each emitted block without duplicating the emitter.
"""

from __future__ import annotations

from repro.core.backend.emitter import (
    SourceBuilder,
    VecEmitter,
    VectorizeFailure,
    _VecCtx,
    emit_scalar_expr,
    mangle,
)
from repro.core.exprs import IntLit, mentions
from repro.core.lowpp.ir import (
    AssignOp,
    LoopKind,
    SAssign,
    SIf,
    SLoop,
    SMultiAssign,
    Stmt,
    walk_stmts,
)
from repro.errors import CodegenError


class ChargePolicy:
    """Device-time charging hooks; the CPU backend uses the no-op base."""

    def vector_loop(self, sb: SourceBuilder, bn: str, kind: LoopKind, stmts) -> None:
        pass

    def scalar_iteration(self, sb: SourceBuilder, stmts) -> None:
        """Called inside a fallback Python loop body, once per iteration;
        charge only this level's non-loop statements (nested loops charge
        themselves when reached)."""

    def fallback_par_block(self, sb: SourceBuilder, loop: "SLoop") -> bool:
        """A Par/AtmPar loop the vectoriser declined.  Return True after
        charging the whole block (one kernel of ``extent`` threads, each
        executing the full body) -- nested statements then charge
        nothing.  The base policy returns False (no charging)."""
        return False

    def seq_stmts(self, sb: SourceBuilder, stmts) -> None:
        pass


def atomic_locations_code(stmts) -> str | None:
    """Contention-location estimate for an AtmPar block: the smallest
    addressable-cell count among scatter targets (1 for scalar
    accumulators)."""
    locs: list[str] = []
    for s in walk_stmts(tuple(stmts)):
        if isinstance(s, SAssign) and s.op is AssignOp.INC:
            if s.lhs.indices:
                locs.append(f"_vops.nelems({mangle(s.lhs.name)})")
            else:
                return "1"
    if not locs:
        return None
    if len(locs) == 1:
        return locs[0]
    return f"min({', '.join(locs)})"


class FnEmitter:
    def __init__(
        self,
        sb: SourceBuilder,
        ragged_names: frozenset[str],
        charge: ChargePolicy | None = None,
        vectorize: bool = True,
    ):
        self.sb = sb
        self.ragged = ragged_names
        self.charge = charge or ChargePolicy()
        self.vectorize = vectorize
        #: Par/AtmPar loops the vectoriser declined (emitted as Python
        #: loops).  Zero means the declaration runs fully vectorised --
        #: the eligibility signal for batched element drivers.
        self.par_fallbacks = 0

    # -- statement dispatch ----------------------------------------------

    def stmts(self, stmts) -> None:
        for s in stmts:
            self.stmt(s)

    def stmt(self, s: Stmt) -> None:
        match s:
            case SAssign(lhs, op, rhs):
                target = mangle(lhs.name) + "".join(
                    f"[{emit_scalar_expr(i)}]" for i in lhs.indices
                )
                self.sb.emit(f"{target} {op.value} {emit_scalar_expr(rhs)}")
            case SMultiAssign(lhs, rhs):
                names = ", ".join(
                    mangle(lv.name)
                    + "".join(f"[{emit_scalar_expr(i)}]" for i in lv.indices)
                    for lv in lhs
                )
                self.sb.emit(f"{names} = {emit_scalar_expr(rhs)}")
            case SIf(cond, then, els):
                self.sb.emit(f"if {emit_scalar_expr(cond)}:")
                with self.sb.block():
                    if not then:
                        self.sb.emit("pass")
                    self.stmts(then)
                if els:
                    self.sb.emit("else:")
                    with self.sb.block():
                        self.stmts(els)
            case SLoop():
                self.loop(s)
            case _:
                raise CodegenError(f"cannot emit statement {s!r}")

    # -- loops ------------------------------------------------------------

    def loop(self, s: SLoop) -> None:
        if self.vectorize and s.kind in (LoopKind.PAR, LoopKind.ATM_PAR):
            if self._try(self._emit_pair_vectorized, s):
                return
            if self._try(self._emit_vectorized, s):
                return
        self._emit_python_loop(s)

    def _try(self, fn, s: SLoop) -> bool:
        mark = len(self.sb.lines)
        depth = self.sb.depth
        try:
            fn(s)
            return True
        except VectorizeFailure:
            del self.sb.lines[mark:]
            self.sb.depth = depth
            return False

    def _emit_python_loop(self, s: SLoop) -> None:
        lo = emit_scalar_expr(s.gen.lo)
        hi = emit_scalar_expr(s.gen.hi)
        handled = False
        if s.kind in (LoopKind.PAR, LoopKind.ATM_PAR):
            self.par_fallbacks += 1
            handled = self.charge.fallback_par_block(self.sb, s)
        inner = self
        if handled:
            # The whole block was charged as one kernel; suppress nested
            # charging but keep the (vectorised) numerics.
            inner = FnEmitter(self.sb, self.ragged, None, vectorize=self.vectorize)
        self.sb.emit(f"for {mangle(s.gen.var)} in range({lo}, {hi}):")
        with self.sb.block():
            if not s.body:
                self.sb.emit("pass")
            if not handled:
                inner.charge.scalar_iteration(self.sb, s.body)
            inner.stmts(s.body)

    def _emit_vectorized(self, s: SLoop) -> None:
        sb = self.sb
        v = mangle(s.gen.var)
        lo = emit_scalar_expr(s.gen.lo)
        hi = emit_scalar_expr(s.gen.hi)
        bn = sb.fresh("bn")
        sb.emit(f"{v} = np.arange({lo}, {hi})")
        sb.emit(f"{bn} = {v}.shape[0]")
        sb.emit(f"if {bn} > 0:")
        with sb.block():
            ctx = _VecCtx(bindings={s.gen.var: v}, bn=bn)
            vec = VecEmitter(sb, ctx, self.ragged)
            self.charge.vector_loop(sb, bn, s.kind, s.body)
            for stmt in s.body:
                vec.stmt(stmt, None)

    def _emit_pair_vectorized(self, s: SLoop) -> None:
        # Pattern: Par g1 { Par g2 { body } } with g2's bound depending
        # on g1 -- the ragged (document, token) shape.
        if len(s.body) != 1 or not isinstance(s.body[0], SLoop):
            raise VectorizeFailure("not a pair loop")
        inner = s.body[0]
        if inner.kind is LoopKind.SEQ:
            raise VectorizeFailure("inner loop is sequential")
        if not (
            mentions(inner.gen.hi, s.gen.var) or mentions(inner.gen.lo, s.gen.var)
        ):
            raise VectorizeFailure("inner bound independent; single mode handles it")
        if inner.gen.lo != IntLit(0):
            raise VectorizeFailure("ragged inner loop must start at 0")

        sb = self.sb
        v1, v2 = mangle(s.gen.var), mangle(inner.gen.var)
        lo = emit_scalar_expr(s.gen.lo)
        hi = emit_scalar_expr(s.gen.hi)
        bn = sb.fresh("bn")
        lens = sb.fresh("lens")
        offs = sb.fresh("offs")
        bpos = sb.fresh("bpos")

        sb.emit(f"{v1} = np.arange({lo}, {hi})")
        # Evaluate the inner bound batched over the outer axis.
        probe_ctx = _VecCtx(bindings={s.gen.var: v1}, bn=bn)
        probe = VecEmitter(sb, probe_ctx, self.ragged)
        lens_code, lens_batch = probe.vx(inner.gen.hi)
        if lens_batch:
            sb.emit(f"{lens} = np.asarray({lens_code})")
        else:
            sb.emit(f"{lens} = np.full({v1}.shape[0], {lens_code}, dtype=np.int64)")
        sb.emit(f"{bn} = int(np.sum({lens}))")
        sb.emit(f"if {bn} > 0:")
        with sb.block():
            sb.emit(f"{offs} = np.concatenate(([0], np.cumsum({lens})[:-1]))")
            sb.emit(f"{v1} = np.repeat({v1}, {lens})")
            sb.emit(f"{v2} = np.arange({bn}) - np.repeat({offs}, {lens})")
            sb.emit(f"{bpos} = np.arange({bn})")
            ctx = _VecCtx(
                bindings={s.gen.var: v1, inner.gen.var: v2},
                pair_vars=(s.gen.var, inner.gen.var),
                bn=bn,
                bpos=bpos,
            )
            vec = VecEmitter(sb, ctx, self.ragged)
            self.charge.vector_loop(sb, bn, inner.kind, inner.body)
            for stmt in inner.body:
                vec.stmt(stmt, None)
