"""GPU backend: Low-- -> Blk IL -> device-charged Python (Section 5.3-5.4).

Each declaration is lowered to the Blk IL, optimised with the runtime
sizes (loop commuting, summation-block conversion), and emitted as
Python whose numerics match the CPU backend but which charges the
simulated :class:`~repro.gpusim.device.Device` for every block:

- ``parBlk``   -> ``dev.par(threads, ops[, atomic_locations])``
- ``sumBlk``   -> ``dev.reduce(threads, ops)``
- ``seqBlk``   -> ``dev.seq(ops)``
- ``loopBlk``  -> a host loop over the inner launches
- vectorisation fallback -> sequential device code (heavily penalised,
  as serial code on a GPU deserves)
"""

from __future__ import annotations

from repro.core.backend.cpu import _HEADER, _dists_used, CompiledModule
from repro.core.backend.emitter import (
    SourceBuilder,
    emit_scalar_expr,
    mangle,
    op_count_code,
    stmt_op_count,
)
from repro.core.backend.function import (
    ChargePolicy,
    FnEmitter,
    atomic_locations_code,
)
from repro.core.blk.ir import Blk, BlkDecl, LoopBlk, ParBlk, SeqBlk, SumBlk
from repro.core.blk.lower import lower_to_blk
from repro.core.blk.optimize import OptimizeConfig, optimize_blocks
from repro.core.lowmm.ir import LowDecl
from repro.core.lowpp.ir import AssignOp, LoopKind, SAssign, SLoop


class _ParCharge(ChargePolicy):
    def vector_loop(self, sb, bn, kind, stmts) -> None:
        ops = op_count_code(tuple(stmts))
        locs = (
            atomic_locations_code(stmts) if kind is LoopKind.ATM_PAR else None
        )
        sb.emit(f"_dev.par({bn}, {ops}, {locs})")

    def scalar_iteration(self, sb, stmts) -> None:
        shallow = tuple(s for s in stmts if not isinstance(s, SLoop))
        if shallow:
            sb.emit(f"_dev.seq({op_count_code(shallow)})")

    def fallback_par_block(self, sb, loop) -> bool:
        # The Blk semantics: one kernel of |gen| threads, each executing
        # the full (possibly loopy) body sequentially.
        lo = emit_scalar_expr(loop.gen.lo)
        hi = emit_scalar_expr(loop.gen.hi)
        ops = op_count_code(loop.body)
        locs = (
            atomic_locations_code(loop.body)
            if loop.kind is LoopKind.ATM_PAR
            else None
        )
        sb.emit(f"_dev.par(max(0, ({hi}) - ({lo})), {ops}, {locs})")
        return True


class _ReduceCharge(_ParCharge):
    def vector_loop(self, sb, bn, kind, stmts) -> None:
        ops = op_count_code(tuple(stmts))
        sb.emit(f"_dev.reduce({bn}, {ops})")


def _emit_blocks(
    emitter_par: FnEmitter,
    emitter_reduce: FnEmitter,
    sb: SourceBuilder,
    blocks: tuple[Blk, ...],
) -> None:
    for b in blocks:
        match b:
            case SeqBlk(stmts):
                sb.emit(f"_dev.seq({stmt_op_count(stmts)})")
                emitter_par.stmts(stmts)
            case ParBlk(kind, gen, stmts):
                emitter_par.loop(SLoop(kind, gen, stmts))
            case SumBlk(acc, _init, gen, stmts, value):
                # Semantically the pre-conversion loop, but charged as a
                # map-reduce rather than serialised atomics.
                loop = SLoop(
                    LoopKind.PAR,
                    gen,
                    stmts + (SAssign(acc, AssignOp.INC, value),),
                )
                emitter_reduce.loop(loop)
            case LoopBlk(gen, inner):
                lo = emit_scalar_expr(gen.lo)
                hi = emit_scalar_expr(gen.hi)
                sb.emit(f"for {mangle(gen.var)} in range({lo}, {hi}):")
                with sb.block():
                    _emit_blocks(emitter_par, emitter_reduce, sb, inner)
            case _:
                raise TypeError(f"unknown block {b!r}")


def emit_gpu_function(
    sb: SourceBuilder,
    low: LowDecl,
    blk: BlkDecl,
    ragged_names: frozenset[str],
) -> None:
    decl = low.decl
    sb.emit(f"def {decl.name}(env, ws, rng, dev):")
    with sb.block():
        sb.emit("_rng = rng")
        sb.emit("_dev = dev")
        for p in decl.params:
            sb.emit(f"{mangle(p)} = env[{p!r}]")
        for w in low.workspaces:
            sb.emit(f"{mangle(w)} = ws[{w!r}]")
        sb.emit("with np.errstate(divide='ignore', invalid='ignore', over='ignore'):")
        with sb.block():
            par = FnEmitter(sb, ragged_names, _ParCharge())
            red = FnEmitter(sb, ragged_names, _ReduceCharge())
            if not blk.blocks:
                sb.emit("pass")
            _emit_blocks(par, red, sb, blk.blocks)
        for w in low.writes:
            sb.emit(f"env[{w!r}] = {mangle(w)}")
        if decl.ret:
            parts = ", ".join(emit_scalar_expr(r) for r in decl.ret)
            sb.emit(f"return ({parts},)")
        else:
            sb.emit("return None")
    sb.emit("")


def compile_gpu_module(
    decls: list[LowDecl],
    env: dict,
    ragged_names: frozenset[str] = frozenset(),
    module_name: str = "augur_gpu",
    cfg: OptimizeConfig | None = None,
) -> CompiledModule:
    """Lower, optimise (with runtime sizes), emit, and compile."""
    sb = SourceBuilder()
    for line in _HEADER.splitlines():
        sb.emit(line)
    for d in _dists_used(decls):
        sb.emit(f"_d_{d} = _lookup({d!r})")
    sb.emit("")
    for low in decls:
        blk = optimize_blocks(lower_to_blk(low.decl), env, cfg)
        emit_gpu_function(sb, low, blk, ragged_names)
    source = sb.source()
    namespace: dict = {}
    exec(compile(source, f"<{module_name}>", "exec"), namespace)
    return CompiledModule(source=source, namespace=namespace, target="gpu")
