"""Low-- -> Python source emission (the backend's code generator).

Plays the role of the paper's Cuda/C emission: each declaration becomes
Python source text, later compiled with ``compile()``/``exec()``.

``Par``/``AtmPar`` loops are *vectorised*: the loop collapses into
whole-array NumPy statements with the batch axis first.  Two modes:

- **single mode** -- one parallel loop; the loop variable becomes an
  index vector ``np.arange(lo, hi)``;
- **ragged-pair mode** -- a parallel loop whose body is exactly one
  parallel loop with a dependent bound (``d`` over documents, ``j``
  over ``N[d]`` tokens); the pair collapses onto the flattened token
  axis, using the flattened ragged-array representation of Section 6.2.

Statements the vectoriser cannot express raise
:class:`VectorizeFailure` and the emitter falls back to a plain Python
loop, which is always correct (and mirrors how a real backend would
fall back to sequential code).

All user-level names are mangled with a ``v_`` prefix so they can never
collide with the emitter's own helpers (``_ops``, ``_lib``, ``_vops``,
``_rng``, ``_d_<Dist>``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.builtins import BUILTINS
from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Expr,
    Index,
    IntLit,
    RealLit,
    Var,
    walk,
)
from repro.core.lowpp.ir import (
    AssignOp,
    LoopKind,
    SAssign,
    SIf,
    SLoop,
    SMultiAssign,
    Stmt,
)
from repro.errors import CodegenError


class VectorizeFailure(Exception):
    """Internal: this loop cannot be vectorised; fall back to Python."""


_VOPS_BINARY = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "pow": "pow_",
    "==": "eq",
    "min": "min_",
    "max": "max_",
    "dotp": "dotp",
}


def mangle(name: str) -> str:
    return f"v_{name}"


def _expr_ops(e: Expr) -> int:
    return sum(1 for _ in walk(e))


def _leaf_op_count(s: Stmt) -> int | None:
    """Operation count of a straight-line statement, shared by both
    cost walkers; ``None`` for loops/branches, whose trip-count handling
    is walker-specific."""
    match s:
        case SAssign(lhs, _, rhs):
            return 1 + _expr_ops(rhs) + sum(_expr_ops(i) for i in lhs.indices)
        case SMultiAssign(_, rhs):
            return 1 + _expr_ops(rhs)
        case SIf() | SLoop():
            return None
        case _:
            return 1


def op_count_code(stmts: tuple[Stmt, ...]) -> str:
    """Per-thread operation count as a Python expression.

    Like :func:`stmt_op_count` but nested sequential loops multiply by
    their (runtime) trip count, so a fused kernel charges ``K x body``
    ops per thread.
    """

    def go(s: Stmt) -> str:
        leaf = _leaf_op_count(s)
        if leaf is not None:
            return str(leaf)
        match s:
            case SLoop(_, gen, body):
                lo = emit_scalar_expr(gen.lo)
                hi = emit_scalar_expr(gen.hi)
                inner = " + ".join(go(b) for b in body) or "0"
                return f"max(0, ({hi}) - ({lo})) * ({inner})"
            case SIf(cond, then, els):
                parts = [str(_expr_ops(cond))]
                parts.extend(go(b) for b in then)
                parts.extend(go(b) for b in els)
                return "(" + " + ".join(parts) + ")"

    return "(" + (" + ".join(go(s) for s in stmts) or "0") + ")"


def stmt_op_count(stmts: tuple[Stmt, ...]) -> int:
    """Static operation count, used by the GPU cost model.

    Loops count one bound evaluation plus the body *once* (no trip-count
    multiplication -- that is :func:`op_count_code`'s job)."""

    def go(s: Stmt) -> int:
        leaf = _leaf_op_count(s)
        if leaf is not None:
            return leaf
        match s:
            case SIf(cond, then, els):
                return _expr_ops(cond) + sum(map(go, then)) + sum(map(go, els))
            case SLoop(_, gen, body):
                return _expr_ops(gen.hi) + sum(map(go, body))

    return sum(map(go, stmts))


class SourceBuilder:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.depth = 0
        self._fresh = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"_{prefix}{self._fresh}"

    def block(self):
        return _Indent(self)

    def source(self) -> str:
        return "\n".join(self.lines)


class _Indent:
    def __init__(self, sb: SourceBuilder):
        self.sb = sb

    def __enter__(self):
        self.sb.depth += 1

    def __exit__(self, *exc):
        self.sb.depth -= 1


# ----------------------------------------------------------------------
# Scalar expression emission.
# ----------------------------------------------------------------------


def emit_scalar_expr(e: Expr) -> str:
    match e:
        case Var(name):
            return mangle(name)
        case IntLit(v):
            return repr(v)
        case RealLit(v):
            return repr(v)
        case Index(base, idx):
            return f"{emit_scalar_expr(base)}[{emit_scalar_expr(idx)}]"
        case Call(fn, args):
            parts = [emit_scalar_expr(a) for a in args]
            if fn.startswith("lib."):
                return f"_lib.{fn[4:]}({', '.join(parts)})"
            if fn == "neg":
                return f"(-{parts[0]})"
            b = BUILTINS.get(fn)
            if b is not None and b.infix is not None:
                return f"({parts[0]} {b.infix} {parts[1]})"
            if b is not None and b.py_name is not None:
                return f"_ops.{b.py_name}({', '.join(parts)})"
            raise CodegenError(f"cannot emit operator {fn!r}")
        case DistOp(dist, args, op, value, grad_index):
            parts = [emit_scalar_expr(a) for a in args]
            if op is DistOpKind.SAMP:
                return f"_d_{dist}.sample(_rng, {', '.join(parts)})"
            at = emit_scalar_expr(value)
            if op is DistOpKind.LL:
                return f"_d_{dist}.logpdf({at}, {', '.join(parts)})"
            return f"_d_{dist}.grad({grad_index}, {at}, {', '.join(parts)})"
        case _:
            raise CodegenError(f"cannot emit expression {e!r}")


# ----------------------------------------------------------------------
# Vectorised emission of one parallel loop.
# ----------------------------------------------------------------------


@dataclass
class _VecCtx:
    """Per-loop vectorisation context."""

    bindings: dict[str, str]  # loop var -> batch index code
    kinds: dict[str, bool] = field(default_factory=dict)  # temp -> is_batch
    pair_vars: tuple[str, str] | None = None
    bn: str = "_bn"
    bpos: str = "_bpos"

    def is_batch_name(self, name: str) -> bool:
        return name in self.bindings or self.kinds.get(name, False)


class VecEmitter:
    def __init__(self, sb: SourceBuilder, ctx: _VecCtx, ragged_names: frozenset[str]):
        self.sb = sb
        self.ctx = ctx
        self.ragged = ragged_names

    # -- expressions -----------------------------------------------------

    def vx(self, e: Expr) -> tuple[str, bool]:
        ctx = self.ctx
        match e:
            case Var(name):
                if name in ctx.bindings:
                    return ctx.bindings[name], True
                return mangle(name), ctx.kinds.get(name, False)
            case IntLit(v) | RealLit(v):
                return repr(v), False
            case Index():
                return self._vx_index(e)
            case Call(fn, args):
                return self._vx_call(fn, args)
            case DistOp(dist, args, op, value, grad_index):
                parts = [self.vx(a) for a in args]
                batch = any(b for _, b in parts)
                arg_code = ", ".join(c for c, _ in parts)
                if op is DistOpKind.SAMP:
                    return f"_d_{dist}.sample(_rng, {arg_code})", batch
                at_code, at_b = self.vx(value)
                batch = batch or at_b
                if op is DistOpKind.LL:
                    return f"_d_{dist}.logpdf({at_code}, {arg_code})", batch
                return (
                    f"_d_{dist}.grad({grad_index}, {at_code}, {arg_code})",
                    batch,
                )
            case _:
                raise VectorizeFailure(f"cannot vectorise {e!r}")

    def _pair_prefix(self, e: Expr) -> str | None:
        """Detect ``X[v1][v2]`` under ragged-pair mode -> flat view code."""
        if self.ctx.pair_vars is None:
            return None
        v1, v2 = self.ctx.pair_vars
        match e:
            case Index(Index(Var(name), Var(i1)), Var(i2)) if (i1, i2) == (v1, v2):
                return f"_vops.pair_flat({mangle(name)})"
        return None

    def _vx_index(self, e: Index) -> tuple[str, bool]:
        flat = self._pair_prefix(e)
        if flat is not None:
            return flat, True
        base_code, base_b = self.vx(e.base)
        idx_code, idx_b = self.vx(e.index)
        if not base_b and not idx_b:
            return f"{base_code}[{idx_code}]", False
        if not base_b and idx_b:
            if isinstance(e.base, Var) and e.base.name in self.ragged:
                raise VectorizeFailure(
                    f"gather into ragged array {e.base.name!r}"
                )
            return f"_vops.take({base_code}, {idx_code})", True
        if base_b and not idx_b:
            return f"{base_code}[:, {idx_code}]", True
        return f"_vops.take_pair({base_code}, {idx_code})", True

    def _vx_call(self, fn: str, args) -> tuple[str, bool]:
        parts = [self.vx(a) for a in args]
        batch = any(b for _, b in parts)
        codes = [c for c, _ in parts]
        if fn.startswith("lib."):
            return f"_lib.{fn[4:]}({', '.join(codes)})", batch
        if fn == "neg":
            return f"(-{codes[0]})", batch
        if fn == "len":
            # A batch of uniform-length vectors still has scalar length.
            return f"_ops.vlen({codes[0]})", False
        if fn in _VOPS_BINARY:
            (a, ab), (b, bb) = parts
            if not ab and not bb:
                bi = BUILTINS[fn]
                if bi.infix is not None:
                    return f"({a} {bi.infix} {b})", False
                return f"_ops.{bi.py_name}({a}, {b})", False
            return f"_vops.{_VOPS_BINARY[fn]}({a}, {b}, {ab}, {bb})", True
        bi = BUILTINS.get(fn)
        if bi is not None and bi.py_name is not None:
            return f"_ops.{bi.py_name}({', '.join(codes)})", batch
        raise VectorizeFailure(f"cannot vectorise call {fn!r}")

    # -- statements -------------------------------------------------------

    def stmt(self, s: Stmt, mask: str | None) -> None:
        match s:
            case SAssign():
                self._assign(s, mask)
            case SMultiAssign(lhs, rhs):
                if any(lv.indices for lv in lhs):
                    raise VectorizeFailure("indexed multi-assign in parallel loop")
                code, batch = self.vx(rhs)
                names = ", ".join(mangle(lv.name) for lv in lhs)
                self.sb.emit(f"{names} = {code}")
                for lv in lhs:
                    self.ctx.kinds[lv.name] = batch
            case SIf(cond, then, els):
                self._guard(cond, then, els, mask)
            case SLoop(kind, gen, body):
                # A sequential inner loop runs per-thread: emit it as a
                # host-level Python loop around vectorised statements
                # (the fused-kernel shape).  Parallel inner loops would
                # need a second batch axis -- decline those.
                if kind is not LoopKind.SEQ:
                    raise VectorizeFailure("nested parallel loop")
                lo_code, lo_b = self.vx(gen.lo)
                hi_code, hi_b = self.vx(gen.hi)
                if lo_b or hi_b:
                    raise VectorizeFailure("inner loop bound varies per lane")
                self.sb.emit(
                    f"for {mangle(gen.var)} in range({lo_code}, {hi_code}):"
                )
                with self.sb.block():
                    if not body:
                        self.sb.emit("pass")
                    for s in body:
                        self.stmt(s, mask)
            case _:
                raise VectorizeFailure(f"cannot vectorise statement {s!r}")

    def _sample_with_size(self, e: DistOp) -> tuple[str, bool]:
        """A prior draw with constant parameters inside a parallel loop
        must produce one variate per lane."""
        parts = [self.vx(a) for a in e.args]
        if any(b for _, b in parts):
            return self.vx(e)
        args = ", ".join(c for c, _ in parts)
        sep = ", " if args else ""
        return f"_d_{e.dist}.sample(_rng, {args}{sep}size={self.ctx.bn})", True

    def _assign(self, s: SAssign, mask: str | None) -> None:
        ctx = self.ctx
        if not s.lhs.indices:
            name = s.lhs.name
            if s.op is AssignOp.SET:
                if isinstance(s.rhs, DistOp) and s.rhs.op is DistOpKind.SAMP:
                    raise VectorizeFailure("per-lane scalar rebinding of a draw")
                code, batch = self.vx(s.rhs)
                self.sb.emit(f"{mangle(name)} = {code}")
                ctx.kinds[name] = batch
                return
            # Accumulation across the whole batch.
            code, batch = self.vx(s.rhs)
            if mask is None:
                self.sb.emit(
                    f"{mangle(name)} = {mangle(name)} + "
                    f"_vops.vsum({code}, {batch}, {ctx.bn})"
                )
            else:
                self.sb.emit(
                    f"{mangle(name)} = {mangle(name)} + "
                    f"_vops.masked_vsum({code}, {batch}, {mask})"
                )
            return

        # Indexed store.
        target = mangle(s.lhs.name)
        indices = list(s.lhs.indices)
        # Ragged-pair prefix on the left-hand side collapses to the flat view.
        if (
            ctx.pair_vars is not None
            and len(indices) >= 2
            and indices[0] == Var(ctx.pair_vars[0])
            and indices[1] == Var(ctx.pair_vars[1])
        ):
            target = f"_vops.pair_flat({target})"
            idx_parts = [(ctx.bpos, True)] + [self.vx(i) for i in indices[2:]]
        else:
            if s.lhs.name in self.ragged:
                raise VectorizeFailure(f"store into ragged array {s.lhs.name!r}")
            idx_parts = [self.vx(i) for i in indices]

        if isinstance(s.rhs, DistOp) and s.rhs.op is DistOpKind.SAMP:
            code, batch = self._sample_with_size(s.rhs)
        else:
            code, batch = self.vx(s.rhs)

        any_batch_idx = any(b for _, b in idx_parts)
        idx_code = "(" + ", ".join(c for c, _ in idx_parts) + ("," if len(idx_parts) == 1 else "") + ")"
        if not any_batch_idx:
            # Every lane hits the same cell.
            plain = target + "".join(f"[{c}]" for c, _ in idx_parts)
            if s.op is AssignOp.SET:
                if batch or mask is not None:
                    raise VectorizeFailure("batch SET into a single cell")
                self.sb.emit(f"{plain} = {code}")
            else:
                total = (
                    f"_vops.masked_vsum({code}, {batch}, {mask})"
                    if mask is not None
                    else f"_vops.vsum({code}, {batch}, {ctx.bn})"
                )
                self.sb.emit(f"{plain} += {total}")
            return
        helper = "setidx" if s.op is AssignOp.SET else "incidx"
        mask_code = mask if mask is not None else "None"
        self.sb.emit(
            f"_vops.{helper}({target}, {idx_code}, {code}, {batch}, {mask_code})"
        )

    def _guard(self, cond, then, els, mask: str | None) -> None:
        code, batch = self.vx(cond)
        if not batch:
            self.sb.emit(f"if {code}:")
            with self.sb.block():
                if not then:
                    self.sb.emit("pass")
                for s in then:
                    self.stmt(s, mask)
            if els:
                self.sb.emit("else:")
                with self.sb.block():
                    for s in els:
                        self.stmt(s, mask)
            return
        m = self.sb.fresh("m")
        conj = f"({code}) != 0" if mask is None else f"(({code}) != 0) & {mask}"
        self.sb.emit(f"{m} = {conj}")
        for s in then:
            self.stmt(s, m)
        if els:
            mneg = self.sb.fresh("m")
            neg = f"~(({code}) != 0)" if mask is None else f"(~(({code}) != 0)) & {mask}"
            self.sb.emit(f"{mneg} = {neg}")
            for s in els:
                self.stmt(s, mneg)
