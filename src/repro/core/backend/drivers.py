"""Update drivers: the glue between compiled primitives and MCMC library.

The synthesis step (Section 5.5) wires each base update's generated
declarations to the corresponding library routine.  Every driver's
``step(env, ws, rng)`` advances its portion of the state in place.

Rejectable updates (HMC, NUTS, MH) maintain the paper's dual-state
invariant: the proposal is computed on a copy and only written back on
acceptance, so subsequent updates always read the most current state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.density.conditionals import Conditional
from repro.core.density.interp import eval_expr
from repro.core.lowmm.size_inference import BufferShape
from repro.runtime.distributions import lookup
from repro.runtime.mcmc.hmc import TransformedLogDensity, hmc_step
from repro.runtime.mcmc.nuts import nuts_step
from repro.runtime.mcmc.mh import random_walk_step, user_proposal_step
from repro.runtime.mcmc.slice_sampler import elliptical_slice, slice_coordinate
from repro.runtime.transforms import Transform
from repro.runtime.vectors import RaggedArray


@dataclass
class UpdateStats:
    proposed: int = 0
    accepted: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else float("nan")


class UpdateDriver:
    """Base class; subclasses implement ``step``."""

    name: str
    targets: tuple[str, ...]

    def __init__(self) -> None:
        self.stats = UpdateStats()

    @property
    def label(self) -> str:
        """Human-readable update label, e.g. ``"Gibbs z"``."""
        return f"{type(self).__name__.removesuffix('Driver')} {','.join(self.targets)}"

    def step(self, env: dict, ws: dict, rng) -> None:
        raise NotImplementedError


class GibbsDriver(UpdateDriver):
    """Closed-form or enumerated conditional: call the generated update.

    Always accepted (acceptance ratio 1), so no dual state is needed.
    """

    def __init__(self, name: str, targets, fn):
        super().__init__()
        self.name = name
        self.targets = tuple(targets)
        self._fn = fn

    def step(self, env, ws, rng) -> None:
        self._fn(env, ws, rng)
        self.stats.proposed += 1
        self.stats.accepted += 1


class GradBlockDriver(UpdateDriver):
    """HMC / NUTS over a block of transformed continuous variables."""

    def __init__(
        self,
        name: str,
        targets,
        ll_fn,
        grad_fn,
        transforms: dict[str, Transform],
        method: str = "hmc",
        step_size: float = 0.05,
        n_steps: int = 20,
    ):
        super().__init__()
        self.name = name
        self.targets = tuple(targets)
        self._ll_fn = ll_fn
        self._grad_fn = grad_fn
        self._transforms = transforms
        self._method = method
        self.step_size = step_size
        self.n_steps = n_steps

    def _target_density(self, env, ws, rng) -> TransformedLogDensity:
        def ll(x):
            scope = dict(env)
            scope.update(x)
            (val,) = self._ll_fn(scope, ws, rng)
            return float(val)

        def grad(x):
            scope = dict(env)
            scope.update(x)
            grads = self._grad_fn(scope, ws, rng)
            return dict(zip(self.targets, grads))

        return TransformedLogDensity(ll, grad, self._transforms)

    def step(self, env, ws, rng) -> None:
        target = self._target_density(env, ws, rng)
        x = {t: np.asarray(env[t], dtype=np.float64) for t in self.targets}
        z = target.unconstrain(x)
        self.stats.proposed += 1
        if self._method == "nuts":
            z_next, _, _ = nuts_step(rng, target, z, self.step_size)
            accepted = any(
                not np.array_equal(z_next[k], z[k]) for k in z
            )
        else:
            z_next, accepted = hmc_step(
                rng, target, z, self.step_size, self.n_steps
            )
        if accepted:
            self.stats.accepted += 1
        x_next = target.constrain(z_next)
        for t in self.targets:
            env[t] = _shape_like(x_next[t], env[t])


def _shape_like(value, like):
    """Preserve scalar-ness of state entries."""
    if np.ndim(like) == 0:
        return float(np.asarray(value))
    return np.asarray(value, dtype=np.float64)


# ----------------------------------------------------------------------
# Element-wise drivers (Slice / ESlice / MH).
# ----------------------------------------------------------------------


def element_indices(shape: BufferShape):
    """All index tuples of a state buffer (empty tuple for scalars)."""
    if shape.is_ragged:
        for d, length in enumerate(shape.row_lengths):
            for j in range(int(length)):
                yield (d, j)
        return
    if not shape.lead:
        yield ()
        return
    yield from itertools.product(*(range(n) for n in shape.lead))


def _get_element(env, name: str, idx: tuple[int, ...]):
    v = env[name]
    for i in idx:
        v = v.row(i) if isinstance(v, RaggedArray) else v[i]
    return v


def _set_element(env, name: str, idx: tuple[int, ...], value) -> None:
    if not idx:
        if np.ndim(env[name]) == 0:
            env[name] = float(np.asarray(value))
        else:
            env[name][...] = value
        return
    v = env[name]
    for i in idx[:-1]:
        v = v.row(i) if isinstance(v, RaggedArray) else v[i]
    v[idx[-1]] = value


class ElementDriver(UpdateDriver):
    """Shared plumbing for per-element updates on one variable."""

    def __init__(self, name: str, cond: Conditional, shape: BufferShape, ll_fn):
        super().__init__()
        self.name = name
        self.targets = (cond.target,)
        self.cond = cond
        self.shape = shape
        self._ll_fn = ll_fn

    def _bind_idx(self, env, idx) -> None:
        for var, i in zip(self.cond.idx_vars, idx):
            env[var] = int(i)

    def _logp_fn(self, env, ws, rng, idx):
        target = self.cond.target

        def logp(value):
            _set_element(env, target, idx, value)
            (val,) = self._ll_fn(env, ws, rng)
            return float(val)

        return logp


class SliceDriver(ElementDriver):
    """Coordinate-wise stepping-out slice sampling of each element."""

    def __init__(self, name, cond, shape, ll_fn, width: float = 1.0):
        super().__init__(name, cond, shape, ll_fn)
        self.width = width

    def step(self, env, ws, rng) -> None:
        for idx in element_indices(self.shape):
            self._bind_idx(env, idx)
            current = np.array(
                _get_element(env, self.cond.target, idx), dtype=np.float64, copy=True
            )
            if current.ndim == 0:
                logp = self._logp_fn(env, ws, rng, idx)
                new = slice_coordinate(rng.generator, logp, float(current), self.width)
                _set_element(env, self.cond.target, idx, new)
            else:
                value = current.copy()
                for c in range(value.shape[0]):
                    def logp(vc, c=c):
                        value[c] = vc
                        _set_element(env, self.cond.target, idx, value)
                        (val,) = self._ll_fn(env, ws, rng)
                        return float(val)

                    value[c] = slice_coordinate(
                        rng.generator, logp, float(value[c]), self.width
                    )
                _set_element(env, self.cond.target, idx, value)
            self.stats.proposed += 1
            self.stats.accepted += 1


class ESliceDriver(ElementDriver):
    """Elliptical slice sampling: Gaussian prior handled by rotation,
    the generated likelihood-only conditional scores candidates."""

    def step(self, env, ws, rng) -> None:
        prior = lookup(self.cond.prior.dist)
        for idx in element_indices(self.shape):
            self._bind_idx(env, idx)
            args = [eval_expr(a, env) for a in self.cond.prior.args]
            mean = np.asarray(args[0], dtype=np.float64)
            nu = prior.sample(rng, *args)
            # Copy: the candidate evaluations below write through into the
            # state row, so a view of it would corrupt the ellipse anchor.
            x0 = np.array(
                _get_element(env, self.cond.target, idx), dtype=np.float64, copy=True
            )
            loglik = self._logp_fn(env, ws, rng, idx)
            x1 = elliptical_slice(rng.generator, loglik, x0, mean, nu)
            _set_element(env, self.cond.target, idx, x1)
            self.stats.proposed += 1
            self.stats.accepted += 1


class MHDriver(ElementDriver):
    """Random-walk (or user-proposal) Metropolis-Hastings per element."""

    def __init__(self, name, cond, shape, ll_fn, scale: float = 0.5, proposal=None):
        super().__init__(name, cond, shape, ll_fn)
        self.scale = scale
        self.proposal = proposal

    def step(self, env, ws, rng) -> None:
        for idx in element_indices(self.shape):
            self._bind_idx(env, idx)
            x0 = _get_element(env, self.cond.target, idx)
            x0 = np.asarray(x0, dtype=np.float64).copy()
            logp = self._logp_fn(env, ws, rng, idx)
            if self.proposal is not None:
                x1, accepted = user_proposal_step(
                    rng.generator, logp, x0, self.proposal
                )
            else:
                x1, accepted = random_walk_step(
                    rng.generator, logp, x0, self.scale
                )
            _set_element(env, self.cond.target, idx, x1)
            self.stats.proposed += 1
            self.stats.accepted += int(accepted)
