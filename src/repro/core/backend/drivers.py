"""Update drivers: the glue between compiled primitives and MCMC library.

The synthesis step (Section 5.5) wires each base update's generated
declarations to the corresponding library routine.  Every driver's
``step(env, ws, rng)`` advances its portion of the state in place.

Rejectable updates (HMC, NUTS, MH) maintain the paper's dual-state
invariant: the proposal is computed on a copy and only written back on
acceptance, so subsequent updates always read the most current state.

Telemetry: every driver declares a typed per-sweep stat schema
(:meth:`UpdateDriver.stat_fields`) and, between ``begin_sweep`` /
``end_sweep`` calls, accumulates one record per sweep -- acceptance and
log-alpha, NaN-rejected proposals, leapfrog counts, divergence flags and
energies, slice bracket expansions/shrinks.  Recording is off unless the
sampler turns it on (``collect_stats=True``), so the plain sampling path
pays only a ``self._sweep is None`` check per element.  NaN rejections
are the exception: they are counted unconditionally (into
``UpdateStats.nan_rejected``) because a silently NaN-rejecting chain is
a correctness hazard the sampler warns about even with stats off.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.core.density.conditionals import Conditional
from repro.core.density.interp import eval_expr
from repro.core.exprs import mentions
from repro.core.lowmm.size_inference import BufferShape
from repro.runtime.distributions import lookup
from repro.runtime.mcmc.adapt import find_reasonable_step_size
from repro.runtime.mcmc.hmc import (
    FlatLogDensity,
    TransformedLogDensity,
    flat_gaussian,
    hmc_step,
    hmc_step_flat,
    leapfrog,
)
from repro.runtime.mcmc.nuts import nuts_step, nuts_step_flat
from repro.runtime.mcmc.tree import (
    TreeMetric,
    tree_dot,
    tree_empty_like,
    tree_gaussian,
    tree_ravel,
    tree_split_flat,
)
from repro.runtime.mcmc.mh import (
    random_walk_step,
    random_walk_sweep,
    user_proposal_step,
)
from repro.runtime.mcmc.slice_sampler import (
    elliptical_slice,
    elliptical_slice_sweep,
    slice_coordinate,
    slice_sweep,
)
from repro.runtime.transforms import Transform
from repro.runtime.vectors import RaggedArray
from repro.telemetry.stats import BASE_FIELDS, StatField


@dataclass
class UpdateStats:
    proposed: int = 0
    accepted: int = 0
    nan_rejected: int = 0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.proposed if self.proposed else float("nan")

    @property
    def nan_reject_rate(self) -> float:
        return self.nan_rejected / self.proposed if self.proposed else 0.0

    def snapshot(self) -> tuple[int, int, int]:
        return (self.proposed, self.accepted, self.nan_rejected)


class UpdateDriver:
    """Base class; subclasses implement ``step``."""

    name: str
    targets: tuple[str, ...]

    #: Per-sweep stat columns beyond :data:`BASE_FIELDS`.
    EXTRA_FIELDS: tuple[StatField, ...] = ()

    #: True for the batched element drivers, which advance every lane of
    #: the target in a handful of vectorised calls per sweep.
    is_batched: bool = False

    def __init__(self) -> None:
        self.stats = UpdateStats()
        self._sweep: dict | None = None
        #: Compiled-call attributes the profiler may wrap, mapped to the
        #: generated declaration each one executes (set by the compiler
        #: when wiring the driver): ``{"_ll_fn": "hmc_blk_ll", ...}``.
        self.profile_fns: dict[str, str] = {}
        self._saved_fns: dict | None = None

    @property
    def label(self) -> str:
        """Human-readable update label, e.g. ``"Gibbs z"``."""
        return f"{type(self).__name__.removesuffix('Driver')} {','.join(self.targets)}"

    def stat_fields(self) -> tuple[StatField, ...]:
        """The typed schema of this update's per-sweep stat record."""
        return BASE_FIELDS + self.EXTRA_FIELDS

    # -- per-sweep recording ----------------------------------------------

    def begin_sweep(self) -> None:
        """Arm per-sweep recording for the next ``step`` call."""
        self._sweep = {f.name: 0 for f in self.EXTRA_FIELDS}
        self._sweep.update(proposed=0, accepted=0, nan=0)

    def end_sweep(self) -> dict:
        """The sweep's stat record; disarms recording."""
        s, self._sweep = self._sweep, None
        proposed = s.pop("proposed")
        accepted = s.pop("accepted")
        nan = s.pop("nan")
        record = {
            "accept_rate": accepted / proposed if proposed else float("nan"),
            "n_proposed": proposed,
            "nan_rejects": nan,
        }
        record.update(self._finish_sweep(s, proposed))
        return record

    def _finish_sweep(self, s: dict, proposed: int) -> dict:
        """Subclass hook: turn accumulated extras into record fields."""
        return s

    # -- profiling ---------------------------------------------------------

    def instrument(self, profiler) -> None:
        """Swap each bound compiled function for a timing wrapper.

        Wrappers only read the clock around the original call -- never
        the RNG -- so draws are identical with or without them.
        Idempotent: a second call with wrappers installed is a no-op.
        """
        if self._saved_fns is not None:
            return
        saved = {}
        for attr, decl_name in self.profile_fns.items():
            fn = getattr(self, attr, None)
            if fn is None:
                continue
            saved[attr] = fn
            setattr(self, attr, profiler.wrap(decl_name, fn))
        self._saved_fns = saved
        self._invalidate_fn_caches()

    def restore(self) -> None:
        """Put the original compiled functions back after profiling."""
        if self._saved_fns is None:
            return
        for attr, fn in self._saved_fns.items():
            setattr(self, attr, fn)
        self._saved_fns = None
        self._invalidate_fn_caches()

    def _invalidate_fn_caches(self) -> None:
        """Subclass hook: drop closures that captured the swapped fns."""

    def step(self, env: dict, ws: dict, rng) -> None:
        raise NotImplementedError


class GibbsDriver(UpdateDriver):
    """Closed-form or enumerated conditional: call the generated update.

    Always accepted (acceptance ratio 1), so no dual state is needed.
    """

    def __init__(self, name: str, targets, fn):
        super().__init__()
        self.name = name
        self.targets = tuple(targets)
        self._fn = fn

    def step(self, env, ws, rng) -> None:
        self._fn(env, ws, rng)
        self.stats.proposed += 1
        self.stats.accepted += 1
        if self._sweep is not None:
            self._sweep["proposed"] += 1
            self._sweep["accepted"] += 1


class GradBlockDriver(UpdateDriver):
    """HMC / NUTS over a block of transformed continuous variables."""

    #: Adaptation telemetry shared by both methods: the uniform per-draw
    #: acceptance statistic (min(1, alpha); tree-leaf average for NUTS)
    #: that dual averaging consumes, the step size the draw actually
    #: used, the running dual-averaging iterate, and the mass-matrix
    #: window the sweep fell in.
    _ADAPT_FIELDS = (
        StatField("accept_stat", "f8", "dual-averaging acceptance statistic"),
        StatField("step_size", "f8", "leapfrog step size used this sweep"),
        StatField("step_size_bar", "f8", "dual-averaging averaged step size"),
        StatField("adapt_window", "i8", "mass-matrix window index"),
    )
    _HMC_FIELDS = (
        StatField("log_alpha", "f8", "log acceptance ratio of the trajectory"),
        StatField("energy", "f8", "Hamiltonian at the proposal"),
        StatField("divergent", "i8", "trajectory flagged divergent"),
        StatField("n_leapfrog", "i8", "leapfrog steps taken"),
    ) + _ADAPT_FIELDS
    _NUTS_FIELDS = (
        StatField("energy", "f8", "initial Hamiltonian of the trajectory"),
        StatField("divergent", "i8", "a tree leaf exceeded the energy bound"),
        StatField("n_leapfrog", "i8", "leapfrog steps taken"),
        StatField("tree_depth", "i8", "doublings performed"),
    ) + _ADAPT_FIELDS

    def __init__(
        self,
        name: str,
        targets,
        ll_fn,
        grad_fn,
        transforms: dict[str, Transform],
        method: str = "hmc",
        step_size: float = 0.05,
        n_steps: int = 20,
        ll_grad_fn=None,
        pack_plan=None,
    ):
        super().__init__()
        self.name = name
        self.targets = tuple(targets)
        self._ll_fn = ll_fn
        self._grad_fn = grad_fn
        self._ll_grad_fn = ll_grad_fn
        self._transforms = transforms
        self._method = method
        self.step_size = step_size
        self.n_steps = n_steps
        #: True when the model text pinned the step size; the CLI keeps
        #: default warmup adaptation off for such schedules.
        self.user_step_size = False
        self._info: dict = {}
        # Flat-state path: requires a dense pack plan and element-wise
        # transforms (slice-wise application on the packed vector).
        self._pack_plan = pack_plan
        self._use_flat = pack_plan is not None and all(
            getattr(t, "elementwise", False) for t in transforms.values()
        )
        self._flat: FlatLogDensity | None = None
        self._flat_scope: dict = {}
        self._flat_call = None  # (ws, rng) of the step in flight
        self._z_buf: np.ndarray | None = None
        self._flat_work = None
        # Tree-path leapfrog work buffers (hoisted out of the per-call
        # tree_copy), keyed by the block's shapes.
        self._leap_work = None
        self._leap_work_key = None
        # Warmup adaptation: attached per run by the sampler, detached
        # when the run finishes (the same driver instance is reused
        # across chains and warm-pool tasks).
        self._adapter = None
        self._tree_metric = None
        self._tree_metric_version = -1

    @property
    def label(self) -> str:
        kind = "NUTS" if self._method == "nuts" else "HMC"
        return f"{kind} {','.join(self.targets)}"

    def stat_fields(self) -> tuple[StatField, ...]:
        extra = self._NUTS_FIELDS if self._method == "nuts" else self._HMC_FIELDS
        return BASE_FIELDS + extra

    def _invalidate_fn_caches(self) -> None:
        # The cached FlatLogDensity closes over _ll_fn/_grad_fn/
        # _ll_grad_fn; rebuild it so the flat path sees the (un)wrapped
        # functions.
        self._flat = None

    def begin_sweep(self) -> None:
        self._sweep = {"proposed": 0, "accepted": 0, "nan": 0}

    def _finish_sweep(self, s: dict, proposed: int) -> dict:
        # The whole-block update runs once per sweep: the last info
        # record *is* the sweep record.
        info = self._info
        out = {
            "energy": info.get("energy", float("nan")),
            "divergent": int(info.get("divergent", False)),
            "n_leapfrog": info.get("n_leapfrog", 0),
        }
        if self._method == "nuts":
            out["tree_depth"] = info.get("tree_depth", 0)
        else:
            out["log_alpha"] = info.get("log_alpha", float("nan"))
        out["accept_stat"] = float(info.get("accept_stat", 0.0))
        eps = float(info.get("step_size", self.step_size))
        out["step_size"] = eps
        adapter = self._adapter
        out["step_size_bar"] = (
            adapter.step_size_bar if adapter is not None else eps
        )
        out["adapt_window"] = (
            adapter.window_index if adapter is not None else 0
        )
        return out

    # -- warmup adaptation -------------------------------------------

    def attach_adapter(self, adapter) -> None:
        """Install a per-run :class:`WarmupAdapter`.

        The adapter supplies the step size and metric for every
        subsequent step; ``detach_adapter`` must run when the sampling
        run finishes (``self.step_size`` itself is never mutated, so a
        detached driver behaves exactly as before the run).
        """
        self._adapter = adapter
        self._tree_metric = None
        self._tree_metric_version = -1

    def detach_adapter(self) -> None:
        self._adapter = None
        self._tree_metric = None
        self._tree_metric_version = -1

    def _adapter_tree_metric(self, z) -> TreeMetric | None:
        """The adapter's flat metric split into per-leaf arrays, cached
        until the adapter closes another window."""
        adapter = self._adapter
        if adapter is None or adapter.metric is None:
            return None
        if (
            self._tree_metric is None
            or self._tree_metric_version != adapter.metric_version
        ):
            self._tree_metric = TreeMetric(
                tree_split_flat(adapter.metric.inv_mass, z)
            )
            self._tree_metric_version = adapter.metric_version
        return self._tree_metric

    def _init_adapter_flat(self, flat, z, rng) -> None:
        """Reasonable-step-size initialization on the packed state.

        Draws one momentum (the only RNG consumption), then doubles or
        halves the step until a single leapfrog step's log acceptance
        ratio crosses log(1/2).  Skipped on mid-warmup resume: the
        restored adapter is already initialized and the RNG stream has
        already advanced past this draw.
        """
        p = np.empty_like(z)
        flat_gaussian(rng, flat.layout, out=p)
        with np.errstate(invalid="ignore", over="ignore"):
            h0 = -(flat.value(z) - 0.5 * float(np.dot(p, p)))

            def log_accept(eps: float) -> float:
                z1 = z.copy()
                p1 = p.copy()
                half = 0.5 * eps
                p1 += half * flat.grad(z1)
                z1 += eps * p1
                lp1, g1 = flat.value_and_grad(z1)
                p1 += half * g1
                return h0 - (-(lp1 - 0.5 * float(np.dot(p1, p1))))

            self._adapter.initialize(
                find_reasonable_step_size(log_accept, init=self.step_size)
            )

    def _init_adapter_tree(self, target, z, rng) -> None:
        """Tree-path twin of :meth:`_init_adapter_flat`."""
        p = tree_gaussian(rng, z)
        with np.errstate(invalid="ignore", over="ignore"):
            h0 = -(target.logpdf(z) - 0.5 * tree_dot(p, p))

            def log_accept(eps: float) -> float:
                z1, p1 = leapfrog(target, z, p, eps, 1)
                lp1 = target.logpdf(z1)
                return h0 - (-(lp1 - 0.5 * tree_dot(p1, p1)))

            self._adapter.initialize(
                find_reasonable_step_size(log_accept, init=self.step_size)
            )

    def _target_density(self, env, ws, rng) -> TransformedLogDensity:
        # One scope dict per step, shared by every ll/grad evaluation of
        # the trajectory: the generated functions only read it, and the
        # rest of the state cannot change mid-step, so the integrator's
        # inner loop avoids re-copying the whole environment per call.
        scope = dict(env)

        def ll(x):
            scope.update(x)
            (val,) = self._ll_fn(scope, ws, rng)
            return float(val)

        def grad(x):
            scope.update(x)
            grads = self._grad_fn(scope, ws, rng)
            return dict(zip(self.targets, grads))

        return TransformedLogDensity(ll, grad, self._transforms)

    def _flat_density(self) -> FlatLogDensity:
        """The packed-vector density, built once; its compiled-call
        closures read the persistent scope and the step-in-flight
        ``(ws, rng)`` pair."""
        if self._flat is not None:
            return self._flat
        scope = self._flat_scope

        def ll():
            (val,) = self._ll_fn(scope, *self._flat_call)
            return float(val)

        def grad():
            grads = self._grad_fn(scope, *self._flat_call)
            return dict(zip(self.targets, grads))

        ll_grad = None
        if self._ll_grad_fn is not None:
            def ll_grad():
                vals = self._ll_grad_fn(scope, *self._flat_call)
                return float(vals[0]), dict(zip(self.targets, vals[1:]))

        self._flat = FlatLogDensity(
            ll, grad, self._transforms, self._pack_plan, ll_grad_fn=ll_grad
        )
        return self._flat

    def _tree_work(self, z):
        """Preallocated leapfrog (position, momentum) tree buffers."""
        key = tuple((k, np.shape(v)) for k, v in z.items())
        if self._leap_work is None or self._leap_work_key != key:
            self._leap_work = (tree_empty_like(z), tree_empty_like(z))
            self._leap_work_key = key
        return self._leap_work

    def step(self, env, ws, rng) -> None:
        self.stats.proposed += 1
        info = self._info
        info.clear()
        if self._use_flat:
            accepted, accept_stat = self._step_flat(env, ws, rng, info)
        else:
            accepted, accept_stat = self._step_tree(env, ws, rng, info)
        if info.get("nan"):
            self.stats.nan_rejected += 1
        if accepted:
            self.stats.accepted += 1
        if self._sweep is not None:
            self._sweep["proposed"] += 1
            self._sweep["accepted"] += int(accepted)
            self._sweep["nan"] += int(bool(info.get("nan")))
            if self._method == "nuts":
                # NUTS has no accept/reject; report the dual-averaging
                # accept statistic as the sweep's acceptance rate.
                self._sweep["accepted"] = accept_stat

    def _step_tree(self, env, ws, rng, info) -> tuple[bool, float]:
        target = self._target_density(env, ws, rng)
        x = {t: np.asarray(env[t], dtype=np.float64) for t in self.targets}
        z = target.unconstrain(x)
        adapter = self._adapter
        if adapter is None:
            eps, metric = self.step_size, None
        else:
            if not adapter.initialized:
                self._init_adapter_tree(target, z, rng)
            eps = adapter.step_size
            metric = self._adapter_tree_metric(z)
        info["step_size"] = eps
        accept_stat = 0.0
        if self._method == "nuts":
            z_next, _, accept_stat = nuts_step(
                rng, target, z, eps, info=info, metric=metric
            )
            accepted = any(
                not np.array_equal(z_next[k], z[k]) for k in z
            )
        else:
            z_next, accepted = hmc_step(
                rng, target, z, eps, self.n_steps, info=info,
                work=self._tree_work(z), metric=metric,
            )
        if adapter is not None and not adapter.finalized:
            adapter.observe(info.get("accept_stat", 0.0), tree_ravel(z_next))
        x_next = target.constrain(z_next)
        for t in self.targets:
            # Copy before committing: the constrained point may be a view
            # of a reused trajectory buffer (identity transform).
            env[t] = _shape_like(np.array(x_next[t], copy=True), env[t])
        return accepted, accept_stat

    def _step_flat(self, env, ws, rng, info) -> tuple[bool, float]:
        flat = self._flat_density()
        layout = self._pack_plan
        self._flat_call = (ws, rng)
        scope = self._flat_scope
        scope.clear()
        scope.update(env)
        # The compiled functions read the constrained state through the
        # density's live views; splice them over the committed values.
        scope.update(flat.x_views)
        # Other updates moved the rest of the state since the last step;
        # every cached density value is stale.
        flat.invalidate()
        if self._z_buf is None or self._z_buf.shape[0] != layout.total:
            n = layout.total
            self._z_buf = np.empty(n)
            self._flat_work = (np.empty(n), np.empty(n), np.empty(n))
        z = flat.unconstrain_into(env, self._z_buf)
        adapter = self._adapter
        if adapter is None:
            eps, metric = self.step_size, None
        else:
            if not adapter.initialized:
                self._init_adapter_flat(flat, z, rng)
            eps = adapter.step_size
            metric = adapter.metric
        info["step_size"] = eps
        accept_stat = 0.0
        if self._method == "nuts":
            z_next, _, accept_stat = nuts_step_flat(
                rng, flat, z, eps, info=info, metric=metric
            )
            accepted = not np.array_equal(z_next, z)
        else:
            z_next, accepted = hmc_step_flat(
                rng, flat, z, eps, self.n_steps, info=info,
                work=self._flat_work, metric=metric,
            )
        if adapter is not None and not adapter.finalized:
            adapter.observe(info.get("accept_stat", 0.0), z_next)
        x_next = flat.constrain_point(z_next)
        for t in self.targets:
            env[t] = _shape_like(np.array(x_next[t], copy=True), env[t])
        return accepted, accept_stat


def _shape_like(value, like):
    """Preserve scalar-ness of state entries."""
    if np.ndim(like) == 0:
        return float(np.asarray(value))
    return np.asarray(value, dtype=np.float64)


# ----------------------------------------------------------------------
# Element-wise drivers (Slice / ESlice / MH).
# ----------------------------------------------------------------------


def element_indices(shape: BufferShape):
    """All index tuples of a state buffer (empty tuple for scalars)."""
    if shape.is_ragged:
        for d, length in enumerate(shape.row_lengths):
            for j in range(int(length)):
                yield (d, j)
        return
    if not shape.lead:
        yield ()
        return
    yield from itertools.product(*(range(n) for n in shape.lead))


def _get_element(env, name: str, idx: tuple[int, ...]):
    v = env[name]
    for i in idx:
        v = v.row(i) if isinstance(v, RaggedArray) else v[i]
    return v


def _set_element(env, name: str, idx: tuple[int, ...], value) -> None:
    if not idx:
        if np.ndim(env[name]) == 0:
            env[name] = float(np.asarray(value))
        else:
            env[name][...] = value
        return
    v = env[name]
    for i in idx[:-1]:
        v = v.row(i) if isinstance(v, RaggedArray) else v[i]
    v[idx[-1]] = value


class ElementDriver(UpdateDriver):
    """Shared plumbing for per-element updates on one variable."""

    def __init__(self, name: str, cond: Conditional, shape: BufferShape, ll_fn):
        super().__init__()
        self.name = name
        self.targets = (cond.target,)
        self.cond = cond
        self.shape = shape
        self._ll_fn = ll_fn
        self._info: dict = {}
        self._elements: list[tuple[int, ...]] | None = None
        self._elements_key = None

    def _element_list(self) -> list[tuple[int, ...]]:
        """The materialised element-index tuples, cached across sweeps.

        Re-walking ``element_indices`` every sweep costs O(N) tuple
        construction per update; the bound shape almost never changes, so
        cache the list and invalidate on a shape-key mismatch (ragged
        ``row_lengths`` content included).
        """
        shape = self.shape
        if shape.is_ragged:
            key = (id(shape), shape.row_lengths.tobytes())
        else:
            key = (id(shape), shape.lead)
        if self._elements is None or self._elements_key != key:
            self._elements = list(element_indices(shape))
            self._elements_key = key
        return self._elements

    def _bind_idx(self, env, idx) -> None:
        for var, i in zip(self.cond.idx_vars, idx):
            env[var] = int(i)

    def _logp_fn(self, env, ws, rng, idx):
        target = self.cond.target

        def logp(value):
            _set_element(env, target, idx, value)
            (val,) = self._ll_fn(env, ws, rng)
            return float(val)

        return logp


class SliceDriver(ElementDriver):
    """Coordinate-wise stepping-out slice sampling of each element."""

    EXTRA_FIELDS = (
        StatField("expansions", "i8", "bracket step-out widenings this sweep"),
        StatField("shrinks", "i8", "rejected candidates that shrank a bracket"),
    )

    def __init__(self, name, cond, shape, ll_fn, width: float = 1.0):
        super().__init__(name, cond, shape, ll_fn)
        self.width = width

    def _record_element(self) -> None:
        s = self._sweep
        s["proposed"] += 1
        s["accepted"] += 1
        s["expansions"] += self._info.get("expansions", 0)
        s["shrinks"] += self._info.get("shrinks", 0)

    def step(self, env, ws, rng) -> None:
        recording = self._sweep is not None
        info = self._info if recording else None
        for idx in self._element_list():
            self._bind_idx(env, idx)
            current = np.array(
                _get_element(env, self.cond.target, idx), dtype=np.float64, copy=True
            )
            if current.ndim == 0:
                logp = self._logp_fn(env, ws, rng, idx)
                new = slice_coordinate(
                    rng.generator, logp, float(current), self.width, info=info
                )
                _set_element(env, self.cond.target, idx, new)
                if recording:
                    self._record_element()
            else:
                value = current.copy()
                for c in range(value.shape[0]):
                    def logp(vc, c=c):
                        value[c] = vc
                        _set_element(env, self.cond.target, idx, value)
                        (val,) = self._ll_fn(env, ws, rng)
                        return float(val)

                    value[c] = slice_coordinate(
                        rng.generator, logp, float(value[c]), self.width, info=info
                    )
                    if recording:
                        self._record_element()
                        # The per-coordinate records were already
                        # counted; the element itself is not re-counted
                        # below.
                _set_element(env, self.cond.target, idx, value)
            self.stats.proposed += 1
            self.stats.accepted += 1


class ESliceDriver(ElementDriver):
    """Elliptical slice sampling: Gaussian prior handled by rotation,
    the generated likelihood-only conditional scores candidates."""

    EXTRA_FIELDS = (
        StatField("shrinks", "i8", "rejected ellipse angles this sweep"),
    )

    def _prior_args_constant(self) -> bool:
        """Prior parameters free of element indices evaluate to the same
        values for every element -- hoist them out of the sweep loop."""
        return not any(
            mentions(a, v)
            for a in self.cond.prior.args
            for v in self.cond.idx_vars
        )

    def step(self, env, ws, rng) -> None:
        recording = self._sweep is not None
        info = self._info if recording else None
        prior = lookup(self.cond.prior.dist)
        const_args = (
            [eval_expr(a, env) for a in self.cond.prior.args]
            if self._prior_args_constant()
            else None
        )
        for idx in self._element_list():
            self._bind_idx(env, idx)
            args = (
                const_args
                if const_args is not None
                else [eval_expr(a, env) for a in self.cond.prior.args]
            )
            mean = np.asarray(args[0], dtype=np.float64)
            nu = prior.sample(rng, *args)
            # Copy: the candidate evaluations below write through into the
            # state row, so a view of it would corrupt the ellipse anchor.
            x0 = np.array(
                _get_element(env, self.cond.target, idx), dtype=np.float64, copy=True
            )
            loglik = self._logp_fn(env, ws, rng, idx)
            x1 = elliptical_slice(rng.generator, loglik, x0, mean, nu, info=info)
            _set_element(env, self.cond.target, idx, x1)
            self.stats.proposed += 1
            self.stats.accepted += 1
            if recording:
                s = self._sweep
                s["proposed"] += 1
                s["accepted"] += 1
                s["shrinks"] += info.get("shrinks", 0)


class MHDriver(ElementDriver):
    """Random-walk (or user-proposal) Metropolis-Hastings per element."""

    EXTRA_FIELDS = (
        StatField("mean_log_alpha", "f8", "mean finite log-alpha this sweep"),
    )

    def __init__(self, name, cond, shape, ll_fn, scale: float = 0.5, proposal=None):
        super().__init__(name, cond, shape, ll_fn)
        self.scale = scale
        self.proposal = proposal

    def begin_sweep(self) -> None:
        super().begin_sweep()
        self._sweep["mean_log_alpha"] = 0.0
        self._sweep["_n_finite"] = 0

    def _finish_sweep(self, s: dict, proposed: int) -> dict:
        n = s.pop("_n_finite")
        total = s.pop("mean_log_alpha")
        return {"mean_log_alpha": total / n if n else float("nan")}

    def step(self, env, ws, rng) -> None:
        # The info record is always requested: NaN-rejected proposals
        # must be counted (and warned about) even with stats off.
        info = self._info
        for idx in self._element_list():
            self._bind_idx(env, idx)
            x0 = _get_element(env, self.cond.target, idx)
            x0 = np.asarray(x0, dtype=np.float64).copy()
            logp = self._logp_fn(env, ws, rng, idx)
            if self.proposal is not None:
                x1, accepted = user_proposal_step(
                    rng.generator, logp, x0, self.proposal, info=info
                )
            else:
                x1, accepted = random_walk_step(
                    rng.generator, logp, x0, self.scale, info=info
                )
            _set_element(env, self.cond.target, idx, x1)
            self.stats.proposed += 1
            self.stats.accepted += int(accepted)
            if info["nan"]:
                self.stats.nan_rejected += 1
            if self._sweep is not None:
                s = self._sweep
                s["proposed"] += 1
                s["accepted"] += int(accepted)
                s["nan"] += int(info["nan"])
                la = info["log_alpha"]
                if np.isfinite(la):
                    s["mean_log_alpha"] += la
                    s["_n_finite"] += 1


# ----------------------------------------------------------------------
# Batched element drivers (Section 4.4's Par/AtmPar parallelism at
# runtime): every lane proposes / brackets / accepts in whole-vector
# calls against the generated batched conditional.
# ----------------------------------------------------------------------


class _LaneMixin:
    """Lane read/write plumbing shared by the batched drivers.

    Lanes follow :func:`element_indices` order: C-order over the lead
    dimensions for dense state, ``(row, position)`` order -- i.e. the
    ``RaggedArray.flat`` layout -- for ragged state.  Trailing event
    axes (vector elements) ride along after the lane axis.
    """

    is_batched = True

    def _lane_values(self, env) -> np.ndarray:
        v = env[self.cond.target]
        ev = tuple(self.shape.event)
        if isinstance(v, RaggedArray):
            return np.array(v.flat, dtype=np.float64, copy=True)
        return np.asarray(v, dtype=np.float64).reshape((-1,) + ev).copy()

    def _write_lanes(self, env, values) -> None:
        v = env[self.cond.target]
        if isinstance(v, RaggedArray):
            v.flat[...] = values
        else:
            v[...] = np.asarray(values).reshape(v.shape)

    def _lane_ll_fn(self, env, ws, rng):
        """Lane-value vector -> per-lane conditional log densities.

        Writes the candidate lanes into the live state array (the same
        in-place contract as the scalar drivers) and evaluates the
        batched conditional once.  The returned buffer is the reused
        workspace, so it is copied before the next evaluation can
        clobber it.
        """

        def logp_all(values):
            self._write_lanes(env, values)
            (bll,) = self._bll_fn(env, ws, rng)
            flat = bll.flat if isinstance(bll, RaggedArray) else bll
            return np.array(flat, dtype=np.float64, copy=True).reshape(-1)

        return logp_all


class VectorizedMHDriver(_LaneMixin, MHDriver):
    """Random-walk MH over all element lanes in one vectorised sweep."""

    def __init__(self, name, cond, shape, ll_fn, bll_fn, scale: float = 0.5):
        super().__init__(name, cond, shape, ll_fn, scale=scale, proposal=None)
        self._bll_fn = bll_fn

    @property
    def label(self) -> str:
        # Same label as the scalar driver: the batched path is an
        # execution strategy, not a different update.
        return f"MH {','.join(self.targets)}"

    def step(self, env, ws, rng) -> None:
        x0 = self._lane_values(env)
        n = x0.shape[0]
        if n == 0:
            return
        info = self._info
        x1, accepted = random_walk_sweep(
            rng.generator, self._lane_ll_fn(env, ws, rng), x0, self.scale,
            info=info,
        )
        self._write_lanes(env, x1)
        n_accepted = int(np.count_nonzero(accepted))
        n_nan = int(np.count_nonzero(info["nan"]))
        self.stats.proposed += n
        self.stats.accepted += n_accepted
        self.stats.nan_rejected += n_nan
        if self._sweep is not None:
            s = self._sweep
            s["proposed"] += n
            s["accepted"] += n_accepted
            s["nan"] += n_nan
            la = info["log_alpha"]
            finite = np.isfinite(la)
            s["mean_log_alpha"] += float(la[finite].sum())
            s["_n_finite"] += int(np.count_nonzero(finite))


class VectorizedSliceDriver(_LaneMixin, SliceDriver):
    """Stepping-out slice sampling of all (scalar) lanes per call."""

    def __init__(self, name, cond, shape, ll_fn, bll_fn, width: float = 1.0):
        super().__init__(name, cond, shape, ll_fn, width=width)
        self._bll_fn = bll_fn

    @property
    def label(self) -> str:
        return f"Slice {','.join(self.targets)}"

    def step(self, env, ws, rng) -> None:
        x0 = self._lane_values(env)
        n = x0.shape[0]
        if n == 0:
            return
        recording = self._sweep is not None
        info = self._info if recording else None
        x1 = slice_sweep(
            rng.generator, self._lane_ll_fn(env, ws, rng), x0, self.width,
            info=info,
        )
        self._write_lanes(env, x1)
        self.stats.proposed += n
        self.stats.accepted += n
        if recording:
            s = self._sweep
            s["proposed"] += n
            s["accepted"] += n
            s["expansions"] += info["expansions"]
            s["shrinks"] += info["shrinks"]


class VectorizedESliceDriver(_LaneMixin, ESliceDriver):
    """Elliptical slice sampling of all lanes per call.

    Only wired when the Gaussian prior's parameters are lane-invariant
    (no element index in the args), so one prior draw of ``n`` variates
    serves every lane.
    """

    def __init__(self, name, cond, shape, ll_fn, bll_fn):
        super().__init__(name, cond, shape, ll_fn)
        self._bll_fn = bll_fn

    @property
    def label(self) -> str:
        return f"ESlice {','.join(self.targets)}"

    def step(self, env, ws, rng) -> None:
        x0 = self._lane_values(env)
        n = x0.shape[0]
        if n == 0:
            return
        prior = lookup(self.cond.prior.dist)
        args = [eval_expr(a, env) for a in self.cond.prior.args]
        mean = np.asarray(args[0], dtype=np.float64)
        nu = np.asarray(prior.sample(rng, *args, size=n), dtype=np.float64)
        recording = self._sweep is not None
        info = self._info if recording else None
        x1 = elliptical_slice_sweep(
            rng.generator, self._lane_ll_fn(env, ws, rng), x0, mean, nu,
            info=info,
        )
        self._write_lanes(env, x1)
        self.stats.proposed += n
        self.stats.accepted += n
        if recording:
            s = self._sweep
            s["proposed"] += n
            s["accepted"] += n
            s["shrinks"] += info["shrinks"]
