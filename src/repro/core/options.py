"""Compilation options (the ``Opt`` object of Figure 2).

``target`` selects CPU or (simulated) GPU code generation.  The
remaining switches exist for the DESIGN.md ablation benchmarks: they
turn individual compiler optimisations off so their effect can be
measured.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blk.optimize import (
    COMMUTE_FACTOR,
    CONTENTION_THRESHOLD,
    OptimizeConfig,
)


@dataclass(frozen=True)
class CompileOptions:
    #: "cpu" or "gpu" (the simulated device).
    target: str = "cpu"
    #: Vectorise parallel loops (CPU analog of emitting parallel code);
    #: off = plain Python loops, the "interpreted" worst case.
    vectorize: bool = True
    #: Blk-IL loop commuting (Section 5.4).
    commute_loops: bool = True
    #: Blk-IL AtmPar -> sumBlk conversion (Section 5.4).
    sum_block_conversion: bool = True
    #: The categorical-indexing conditional rewrite (Section 3.3).
    categorical_rule: bool = True
    #: Batched element-parallel MH/Slice/ESlice execution: emit a
    #: vectorised per-lane conditional next to the scalar one and drive
    #: all element lanes per sweep in whole-vector calls.  Off = the
    #: scalar per-element drivers only (also overridable per update via
    #: the ``batch=off`` schedule option).
    batch_elements: bool = True
    #: Emit a fused ``ll_grad_<block>`` declaration for gradient-based
    #: updates (HMC/NUTS): one compiled call returns the block log
    #: density and every adjoint, sharing the forward pass, with the
    #: adjoint buffers as pre-allocated workspaces zeroed in place.  Off
    #: (or when fusion is unsafe for a block) = the separate ``ll`` /
    #: ``grad`` pair only.
    fuse_gradient: bool = True
    #: Run HMC/NUTS leapfrog on one packed contiguous 1-D state vector
    #: (whole-vector in-place ops, constrained point cached between
    #: value and gradient).  Off (or for ragged blocks) = the
    #: dict-of-arrays tree path.
    flat_state: bool = True
    #: Default HMC integrator settings (overridable per update via
    #: schedule options, e.g. ``HMC[steps=30, step_size=0.02] theta``).
    hmc_steps: int = 20
    hmc_step_size: float = 0.05

    def __post_init__(self) -> None:
        if self.target not in ("cpu", "gpu"):
            raise ValueError(f"unknown target {self.target!r}; use 'cpu' or 'gpu'")

    def replace(self, **changes) -> "CompileOptions":
        """A copy with the given fields swapped (tuner candidate variants)."""
        import dataclasses

        return dataclasses.replace(self, **changes)

    def blk_config(self) -> OptimizeConfig:
        return OptimizeConfig(
            commute_loops=self.commute_loops,
            sum_block_conversion=self.sum_block_conversion,
            commute_factor=COMMUTE_FACTOR,
            contention_threshold=CONTENTION_THRESHOLD,
        )
