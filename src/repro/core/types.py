"""The simple type system shared by the modeling language and the ILs.

Figure 4 of the paper gives the grammar::

    sigma ::= Int | Real
    tau   ::= sigma | Vec tau | Mat sigma

Base types are integers and reals.  Compound types are vectors (which may
nest, giving ragged vectors-of-vectors) and matrices of base type.  A
``Mat (Vec ...)`` is deliberately unrepresentable, matching the paper's
"matrices of vectors are rejected".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TypeCheckError


class Ty:
    """Base class for types.  Instances are immutable and compare by value."""

    def is_numeric_scalar(self) -> bool:
        return isinstance(self, (IntTy, RealTy))


@dataclass(frozen=True)
class IntTy(Ty):
    def __str__(self) -> str:
        return "Int"


@dataclass(frozen=True)
class RealTy(Ty):
    def __str__(self) -> str:
        return "Real"


@dataclass(frozen=True)
class VecTy(Ty):
    elem: Ty

    def __str__(self) -> str:
        return f"Vec {self.elem}"


@dataclass(frozen=True)
class MatTy(Ty):
    elem: Ty

    def __post_init__(self) -> None:
        if not self.elem.is_numeric_scalar():
            raise TypeCheckError(
                f"matrices may only contain base types, not {self.elem}"
            )

    def __str__(self) -> str:
        return f"Mat {self.elem}"


INT = IntTy()
REAL = RealTy()
VEC_INT = VecTy(INT)
VEC_REAL = VecTy(REAL)
MAT_REAL = MatTy(REAL)


def parse_type(text: str) -> Ty:
    """Parse a type written in the surface syntax, e.g. ``"Vec Vec Real"``."""
    parts = text.split()
    if not parts:
        raise TypeCheckError("empty type")
    ty: Ty
    head = parts[-1]
    if head == "Int":
        ty = INT
    elif head == "Real":
        ty = REAL
    else:
        raise TypeCheckError(f"unknown base type {head!r}")
    for ctor in reversed(parts[:-1]):
        if ctor == "Vec":
            ty = VecTy(ty)
        elif ctor == "Mat":
            ty = MatTy(ty)
        else:
            raise TypeCheckError(f"unknown type constructor {ctor!r}")
    return ty


def element_type(ty: Ty) -> Ty:
    """The type obtained by indexing once into ``ty``."""
    if isinstance(ty, VecTy):
        return ty.elem
    if isinstance(ty, MatTy):
        return VecTy(ty.elem)
    raise TypeCheckError(f"cannot index into non-compound type {ty}")


def unify_numeric(a: Ty, b: Ty) -> Ty:
    """Join two numeric types (Int promotes to Real); reject others."""
    if isinstance(a, IntTy) and isinstance(b, IntTy):
        return INT
    if a.is_numeric_scalar() and b.is_numeric_scalar():
        return REAL
    if a == b:
        return a
    raise TypeCheckError(f"cannot unify types {a} and {b}")
