"""State initialisation codegen: draw every parameter from its prior.

The generated ``init_state`` declaration walks the parameter
declarations in order (so later priors may reference earlier draws,
e.g. ``z ~ Categorical(pi)`` after ``pi ~ Dirichlet(alpha)``) and fills
the pre-allocated state buffers with prior samples -- the standard way
to start a chain.
"""

from __future__ import annotations

from repro.core.density.ir import FactorizedDensity
from repro.core.exprs import DistOp, DistOpKind, Var
from repro.core.frontend.ast import DeclKind
from repro.core.frontend.symbols import ModelInfo
from repro.core.lowpp.gen_ll import _needed_lets
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SLoop,
    Stmt,
)
from repro.core.provenance import Provenance


def _gen_sampling_decl(
    info: ModelInfo,
    fd: FactorizedDensity,
    kind: DeclKind,
    name: str,
) -> LDecl:
    body: list[Stmt] = []
    drawn: list[str] = []
    for decl in info.model.decls:
        if decl.kind is not kind:
            continue
        drawn.append(decl.name)
        lv = LValue(decl.name, tuple(Var(v) for v in decl.idx_vars))
        draw: Stmt = SAssign(
            lv,
            AssignOp.SET,
            DistOp(decl.dist.dist, decl.dist.args, DistOpKind.SAMP),
        )
        stmts: tuple[Stmt, ...] = (draw,)
        for g in reversed(decl.gens):
            stmts = (SLoop(LoopKind.PAR, g, stmts),)
        body.extend(stmts)
    # Drawn names and loop binders are not free; everything else is.
    from repro.core.lowpp.gen_gibbs import _params_for

    params = _params_for(body, None, [])
    let_names = {n for n, _ in fd.lets}
    if let_names & set(params):
        body = list(_needed_lets(fd.lets, frozenset(set(params) & let_names))) + body
        params = _params_for(body, None, [])
    prov = None
    if drawn:
        prov = Provenance(
            stmt=drawn[0], stmts=tuple(drawn), stage="lowpp.gen_init"
        )
    return LDecl(name=name, params=params, body=tuple(body), ret=(), provenance=prov)


def gen_init(info: ModelInfo, fd: FactorizedDensity) -> LDecl:
    """Draw every parameter from its prior (chain initialisation)."""
    return _gen_sampling_decl(info, fd, DeclKind.PARAM, "init_state")


def gen_forward(info: ModelInfo, fd: FactorizedDensity) -> LDecl:
    """Simulate the observed variables given the parameters -- the
    forward pass used for posterior-predictive checks."""
    return _gen_sampling_decl(info, fd, DeclKind.DATA, "forward_data")
