"""Reference interpreter for Low++ declarations.

Executes a declaration directly against an environment of NumPy values.
This is the semantics the backends must agree with: the CPU backend's
generated code is differential-tested against this interpreter, and it
doubles as the fallback execution path for models the vectoriser cannot
handle.

Loop annotations are ignored here (a sequential schedule is always a
valid execution of ``Par``/``AtmPar`` loops).
"""

from __future__ import annotations

import numpy as np

from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Expr,
    Index,
    IntLit,
    RealLit,
    Var,
)
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    SAssign,
    SIf,
    SLoop,
    SMultiAssign,
    Stmt,
)
from repro.errors import RuntimeFailure
from repro.runtime import mcmclib, ops
from repro.runtime.distributions import lookup
from repro.runtime.rng import Rng
from repro.runtime.vectors import RaggedArray


def eval_expr(e: Expr, scope: dict, rng: Rng):
    match e:
        case Var(name):
            try:
                return scope[name]
            except KeyError:
                raise RuntimeFailure(f"unbound variable {name!r}") from None
        case IntLit(v) | RealLit(v):
            return v
        case Index(base, idx):
            b = eval_expr(base, scope, rng)
            i = int(eval_expr(idx, scope, rng))
            if isinstance(b, RaggedArray):
                return b.row(i)
            return b[i]
        case Call(fn, args):
            vals = [eval_expr(a, scope, rng) for a in args]
            if fn.startswith("lib."):
                impl = mcmclib.TABLE.get(fn[4:])
                if impl is None:
                    raise RuntimeFailure(f"unknown library routine {fn!r}")
                return impl(*vals)
            impl = ops.TABLE.get(fn)
            if impl is None:
                raise RuntimeFailure(f"no implementation for operator {fn!r}")
            return impl(*vals)
        case DistOp(dist, args, op, value, grad_index):
            d = lookup(dist)
            vals = [eval_expr(a, scope, rng) for a in args]
            if op is DistOpKind.SAMP:
                return d.sample(rng, *vals)
            at = eval_expr(value, scope, rng)
            if op is DistOpKind.LL:
                return d.logpdf(at, *vals)
            return d.grad(grad_index, at, *vals)
        case _:
            raise RuntimeFailure(f"cannot evaluate {e!r}")


def _store(lv, value, scope: dict, rng: Rng, increment: bool) -> None:
    if not lv.indices:
        if increment:
            existing = scope.get(lv.name, 0.0)
            scope[lv.name] = existing + value
        else:
            scope[lv.name] = value
        return
    target = scope.get(lv.name)
    if target is None:
        raise RuntimeFailure(
            f"store into unallocated buffer {lv.name!r}; size inference "
            "must allocate workspaces before execution"
        )
    # Resolve all but the last index by drilling into rows.
    for idx_expr in lv.indices[:-1]:
        i = int(eval_expr(idx_expr, scope, rng))
        target = target.row(i) if isinstance(target, RaggedArray) else target[i]
    last = int(eval_expr(lv.indices[-1], scope, rng))
    if isinstance(target, RaggedArray):
        raise RuntimeFailure("cannot store a whole ragged row; index further")
    if increment:
        target[last] = target[last] + value
    else:
        target[last] = value


def exec_stmt(s: Stmt, scope: dict, rng: Rng) -> None:
    match s:
        case SAssign(lhs, op, rhs):
            value = eval_expr(rhs, scope, rng)
            _store(lhs, value, scope, rng, increment=op is AssignOp.INC)
        case SMultiAssign(lhs, rhs):
            values = eval_expr(rhs, scope, rng)
            if len(values) != len(lhs):
                raise RuntimeFailure(
                    f"multi-assign arity mismatch: {len(lhs)} targets, "
                    f"{len(values)} values"
                )
            for lv, v in zip(lhs, values):
                _store(lv, v, scope, rng, increment=False)
        case SIf(cond, then, els):
            branch = then if np.all(eval_expr(cond, scope, rng)) else els
            for b in branch:
                exec_stmt(b, scope, rng)
        case SLoop(_, gen, body):
            lo = int(eval_expr(gen.lo, scope, rng))
            hi = int(eval_expr(gen.hi, scope, rng))
            for i in range(lo, hi):
                scope[gen.var] = i
                for b in body:
                    exec_stmt(b, scope, rng)
        case _:
            raise RuntimeFailure(f"cannot execute statement {s!r}")


def run_decl(
    decl: LDecl,
    env: dict,
    rng: Rng,
    workspaces: dict | None = None,
) -> tuple:
    """Execute ``decl``; return its ``ret`` values (a tuple).

    ``env`` supplies the declaration parameters; array stores mutate the
    supplied arrays in place.  The final local scope is available via
    :func:`run_decl_scope` for tests that inspect intermediates.
    """
    values, _ = run_decl_scope(decl, env, rng, workspaces)
    return values


def run_decl_scope(
    decl: LDecl,
    env: dict,
    rng: Rng,
    workspaces: dict | None = None,
) -> tuple[tuple, dict]:
    missing = [p for p in decl.params if p not in env]
    if missing:
        raise RuntimeFailure(f"{decl.name}: missing parameters {missing}")
    scope = dict(env)
    if workspaces:
        scope.update(workspaces)
    for s in decl.body:
        exec_stmt(s, scope, rng)
    return tuple(eval_expr(r, scope, rng) for r in decl.ret), scope
