"""Source-to-source reverse-mode AD: Density IL -> Low++ (paper Fig. 8).

The translation builds an *adjoint program* that computes the gradient
of a (block) conditional's log density with respect to a set of target
variables.  Two properties from the paper are preserved:

- **No stack.**  The comprehensions of the Density IL are parallel, so
  the adjoint of a structured product is simply an ``AtmPar`` loop over
  the same generator -- order-independence lets the usual AD tape be
  optimised away (Section 4.4, "the stack can be optimized away").

- **Atomic accumulation.**  Adjoint contributions are emitted as the
  dedicated increment-and-assign statement, e.g. ``adj_mu[z[n]] +=
  adj_ll * t``, which parallel backends must execute atomically.  The
  contention this can cause is exactly what the Blk-IL summation-block
  conversion (Section 5.4) exists to fix.
"""

from __future__ import annotations

from repro.core.density.conditionals import BlockConditional
from repro.core.density.ir import Factor
from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Expr,
    Index,
    IntLit,
    RealLit,
    Var,
    mentions,
)
from repro.core.lowpp.gen_ll import _guard_expr, _needed_lets
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SIf,
    SLoop,
    Stmt,
)
from repro.errors import CodegenError
from repro.runtime.distributions import lookup


def _mentions_any(e: Expr, names: tuple[str, ...]) -> bool:
    return any(mentions(e, n) for n in names)


class _AdjointEmitter:
    """Emits adjoint statements for one gradient declaration."""

    def __init__(self, targets: tuple[str, ...]):
        self.targets = targets
        self._counter = 0

    def fresh(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    # -- expression adjoints (Figure 8a) --------------------------------

    def backprop(self, e: Expr, adj: Expr, out: list[Stmt]) -> None:
        """Accumulate ``adj`` into the adjoints of targets inside ``e``."""
        match e:
            case Var(name):
                if name in self.targets:
                    out.append(SAssign(LValue(f"adj_{name}"), AssignOp.INC, adj))
                return
            case Index():
                head, idxs = self._index_path(e)
                for i in idxs:
                    if _mentions_any(i, self.targets):
                        raise CodegenError(
                            "cannot differentiate through an index that "
                            f"depends on a target variable: {e}"
                        )
                if head in self.targets:
                    out.append(
                        SAssign(LValue(f"adj_{head}", idxs), AssignOp.INC, adj)
                    )
                return
            case Call(fn, args):
                self._backprop_call(fn, args, adj, out)
                return
            case IntLit() | RealLit():
                return
            case _:
                raise CodegenError(f"cannot differentiate expression {e!r}")

    @staticmethod
    def _index_path(e: Expr) -> tuple[str | None, tuple[Expr, ...]]:
        idxs: list[Expr] = []
        node = e
        while isinstance(node, Index):
            idxs.append(node.index)
            node = node.base
        head = node.name if isinstance(node, Var) else None
        return head, tuple(reversed(idxs))

    def _backprop_call(self, fn: str, args, adj: Expr, out: list[Stmt]) -> None:
        a = args[0]
        b = args[1] if len(args) > 1 else None
        partials: list[tuple[Expr, Expr]] = []  # (sub-expression, local adjoint)
        if fn == "+":
            partials = [(a, adj), (b, adj)]
        elif fn == "-":
            partials = [(a, adj), (b, Call("neg", (adj,)))]
        elif fn == "*":
            partials = [(a, Call("*", (adj, b))), (b, Call("*", (adj, a)))]
        elif fn == "/":
            partials = [
                (a, Call("/", (adj, b))),
                (b, Call("neg", (Call("/", (Call("*", (adj, a)), Call("*", (b, b)))),))),
            ]
        elif fn == "neg":
            partials = [(a, Call("neg", (adj,)))]
        elif fn == "exp":
            partials = [(a, Call("*", (adj, Call("exp", (a,)))))]
        elif fn == "log":
            partials = [(a, Call("/", (adj, a)))]
        elif fn == "sqrt":
            partials = [(a, Call("/", (adj, Call("*", (RealLit(2.0), Call("sqrt", (a,)))))))]
        elif fn == "sigmoid":
            s = Call("sigmoid", (a,))
            partials = [(a, Call("*", (adj, Call("*", (s, Call("-", (RealLit(1.0), s)))))))]
        elif fn == "pow":
            partials = [
                (a, Call("*", (adj, Call("*", (b, Call("pow", (a, Call("-", (b, RealLit(1.0)))))))))),
                (b, Call("*", (adj, Call("*", (Call("log", (a,)), Call("pow", (a, b))))))),
            ]
        elif fn == "dotp":
            # Vector adjoints: d dotp(a, b) / d a = b (element-wise).
            partials = [(a, Call("*", (adj, b))), (b, Call("*", (adj, a)))]
        else:
            raise CodegenError(f"no adjoint rule for operator {fn!r}")
        for sub, local in partials:
            if sub is None or not _mentions_any(sub, self.targets):
                continue
            # Bind the propagated adjoint to a temp so chains stay linear
            # (the "simple expressions" form Figure 8 assumes).
            t = self.fresh()
            out.append(SAssign(LValue(t), AssignOp.SET, local))
            self.backprop(sub, Var(t), out)

    # -- factor adjoints (Figure 8b) -------------------------------------

    def factor_stmts(self, factor: Factor) -> tuple[Stmt, ...]:
        dist = lookup(factor.dist)
        inner: list[Stmt] = []
        if _mentions_any(factor.at, self.targets):
            if not dist.supports_grad(0):
                raise CodegenError(
                    f"{factor.dist}: gradient w.r.t. the value is unavailable"
                )
            t = self.fresh()
            inner.append(
                SAssign(
                    LValue(t),
                    AssignOp.SET,
                    DistOp(factor.dist, factor.args, DistOpKind.GRAD,
                           value=factor.at, grad_index=0),
                )
            )
            self.backprop(factor.at, Var(t), inner)
        for i, arg in enumerate(factor.args, start=1):
            if not _mentions_any(arg, self.targets):
                continue
            if not dist.supports_grad(i):
                raise CodegenError(
                    f"{factor.dist}: gradient w.r.t. argument {i} is unavailable"
                )
            t = self.fresh()
            inner.append(
                SAssign(
                    LValue(t),
                    AssignOp.SET,
                    DistOp(factor.dist, factor.args, DistOpKind.GRAD,
                           value=factor.at, grad_index=i),
                )
            )
            self.backprop(arg, Var(t), inner)
        if not inner:
            return ()
        for a, b in factor.guards:
            if _mentions_any(a, self.targets) or _mentions_any(b, self.targets):
                raise CodegenError("cannot differentiate through a guard")
        cond = _guard_expr(factor.guards)
        body: tuple[Stmt, ...] = tuple(inner)
        if cond is not None:
            body = (SIf(cond, body),)
        for g in reversed(factor.gens):
            body = (SLoop(LoopKind.ATM_PAR, g, body),)
        return body


def gen_grad(
    blk: BlockConditional,
    lets: tuple[tuple[str, Expr], ...] = (),
) -> LDecl:
    """Generate the adjoint declaration for a block conditional.

    Returns ``grad_<targets>`` computing ``d log p / d target`` for every
    target, as a tuple in target order.  Adjoint buffers are zeroed with
    ``lib.zeros_like`` so their shapes always match the state.
    """
    targets = blk.targets
    emitter = _AdjointEmitter(targets)
    free: set[str] = set()
    for f in blk.factors:
        free |= f.free_names()
    body: list[Stmt] = list(_needed_lets(lets, frozenset(free)))
    for t in targets:
        body.append(
            SAssign(
                LValue(f"adj_{t}"),
                AssignOp.SET,
                Call("lib.zeros_like", (Var(t),)),
            )
        )
    for f in blk.factors:
        body.extend(emitter.factor_stmts(f))
    params = tuple(sorted(free | set(targets)))
    return LDecl(
        name="grad_" + "_".join(targets),
        params=params,
        body=tuple(body),
        ret=tuple(Var(f"adj_{t}") for t in targets),
    )
