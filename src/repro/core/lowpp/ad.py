"""Source-to-source reverse-mode AD: Density IL -> Low++ (paper Fig. 8).

The translation builds an *adjoint program* that computes the gradient
of a (block) conditional's log density with respect to a set of target
variables.  Two properties from the paper are preserved:

- **No stack.**  The comprehensions of the Density IL are parallel, so
  the adjoint of a structured product is simply an ``AtmPar`` loop over
  the same generator -- order-independence lets the usual AD tape be
  optimised away (Section 4.4, "the stack can be optimized away").

- **Atomic accumulation.**  Adjoint contributions are emitted as the
  dedicated increment-and-assign statement, e.g. ``adj_mu[z[n]] +=
  adj_ll * t``, which parallel backends must execute atomically.  The
  contention this can cause is exactly what the Blk-IL summation-block
  conversion (Section 5.4) exists to fix.
"""

from __future__ import annotations

from repro.core.density.conditionals import BlockConditional
from repro.core.density.ir import Factor
from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Expr,
    Index,
    IntLit,
    RealLit,
    Var,
    free_vars,
    map_children,
    mentions,
    walk,
)
from repro.core.lowpp.gen_ll import _LL, _guard_expr, _needed_lets
from repro.core.provenance import Provenance, merge_stmts
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SIf,
    SLoop,
    Stmt,
)
from repro.core.workspace import WorkspaceSpec
from repro.errors import CodegenError
from repro.runtime.distributions import lookup


def _mentions_any(e: Expr, names: tuple[str, ...]) -> bool:
    return any(mentions(e, n) for n in names)


class _AdjointEmitter:
    """Emits adjoint statements for one gradient declaration.

    ``prefix`` names the adjoint accumulation buffers (``adj_<target>``
    for the standalone gradient, ``_adj_<target>`` workspace buffers for
    the fused value+gradient declaration).
    """

    def __init__(self, targets: tuple[str, ...], prefix: str = "adj_"):
        self.targets = targets
        self.prefix = prefix
        self._counter = 0

    def fresh(self) -> str:
        # Leading underscore: model variables are plain identifiers, so
        # ``_t<n>`` can never shadow one (a model named ``t1`` would
        # otherwise be clobbered by the first adjoint temp).
        self._counter += 1
        return f"_t{self._counter}"

    # -- expression adjoints (Figure 8a) --------------------------------

    def backprop(self, e: Expr, adj: Expr, out: list[Stmt]) -> None:
        """Accumulate ``adj`` into the adjoints of targets inside ``e``."""
        match e:
            case Var(name):
                if name in self.targets:
                    out.append(
                        SAssign(LValue(f"{self.prefix}{name}"), AssignOp.INC, adj)
                    )
                return
            case Index():
                head, idxs = self._index_path(e)
                for i in idxs:
                    if _mentions_any(i, self.targets):
                        raise CodegenError(
                            "cannot differentiate through an index that "
                            f"depends on a target variable: {e}"
                        )
                if head in self.targets:
                    out.append(
                        SAssign(
                            LValue(f"{self.prefix}{head}", idxs), AssignOp.INC, adj
                        )
                    )
                return
            case Call(fn, args):
                self._backprop_call(fn, args, adj, out)
                return
            case IntLit() | RealLit():
                return
            case _:
                raise CodegenError(f"cannot differentiate expression {e!r}")

    @staticmethod
    def _index_path(e: Expr) -> tuple[str | None, tuple[Expr, ...]]:
        idxs: list[Expr] = []
        node = e
        while isinstance(node, Index):
            idxs.append(node.index)
            node = node.base
        head = node.name if isinstance(node, Var) else None
        return head, tuple(reversed(idxs))

    def _backprop_call(self, fn: str, args, adj: Expr, out: list[Stmt]) -> None:
        a = args[0]
        b = args[1] if len(args) > 1 else None
        partials: list[tuple[Expr, Expr]] = []  # (sub-expression, local adjoint)
        if fn == "+":
            partials = [(a, adj), (b, adj)]
        elif fn == "-":
            partials = [(a, adj), (b, Call("neg", (adj,)))]
        elif fn == "*":
            partials = [(a, Call("*", (adj, b))), (b, Call("*", (adj, a)))]
        elif fn == "/":
            partials = [
                (a, Call("/", (adj, b))),
                (b, Call("neg", (Call("/", (Call("*", (adj, a)), Call("*", (b, b)))),))),
            ]
        elif fn == "neg":
            partials = [(a, Call("neg", (adj,)))]
        elif fn == "exp":
            partials = [(a, Call("*", (adj, Call("exp", (a,)))))]
        elif fn == "log":
            partials = [(a, Call("/", (adj, a)))]
        elif fn == "sqrt":
            partials = [(a, Call("/", (adj, Call("*", (RealLit(2.0), Call("sqrt", (a,)))))))]
        elif fn == "sigmoid":
            s = Call("sigmoid", (a,))
            partials = [(a, Call("*", (adj, Call("*", (s, Call("-", (RealLit(1.0), s)))))))]
        elif fn == "pow":
            partials = [
                (a, Call("*", (adj, Call("*", (b, Call("pow", (a, Call("-", (b, RealLit(1.0)))))))))),
                (b, Call("*", (adj, Call("*", (Call("log", (a,)), Call("pow", (a, b))))))),
            ]
        elif fn == "dotp":
            # Vector adjoints: d dotp(a, b) / d a = b (element-wise).
            partials = [(a, Call("*", (adj, b))), (b, Call("*", (adj, a)))]
        else:
            raise CodegenError(f"no adjoint rule for operator {fn!r}")
        for sub, local in partials:
            if sub is None or not _mentions_any(sub, self.targets):
                continue
            # Bind the propagated adjoint to a temp so chains stay linear
            # (the "simple expressions" form Figure 8 assumes).
            t = self.fresh()
            out.append(SAssign(LValue(t), AssignOp.SET, local))
            self.backprop(sub, Var(t), out)

    # -- factor adjoints (Figure 8b) -------------------------------------

    def factor_stmts(self, factor: Factor) -> tuple[Stmt, ...]:
        inner = self.factor_inner(factor)
        if not inner:
            return ()
        for a, b in factor.guards:
            if _mentions_any(a, self.targets) or _mentions_any(b, self.targets):
                raise CodegenError("cannot differentiate through a guard")
        cond = _guard_expr(factor.guards)
        body: tuple[Stmt, ...] = inner
        if cond is not None:
            body = (SIf(cond, body),)
        for g in reversed(factor.gens):
            body = (SLoop(LoopKind.ATM_PAR, g, body),)
        return body

    def factor_inner(self, factor: Factor) -> tuple[Stmt, ...]:
        """The factor's adjoint statements, without guard or loop wrappers."""
        dist = lookup(factor.dist)
        inner: list[Stmt] = []
        if _mentions_any(factor.at, self.targets):
            if not dist.supports_grad(0):
                raise CodegenError(
                    f"{factor.dist}: gradient w.r.t. the value is unavailable"
                )
            t = self.fresh()
            inner.append(
                SAssign(
                    LValue(t),
                    AssignOp.SET,
                    DistOp(factor.dist, factor.args, DistOpKind.GRAD,
                           value=factor.at, grad_index=0),
                )
            )
            self.backprop(factor.at, Var(t), inner)
        for i, arg in enumerate(factor.args, start=1):
            if not _mentions_any(arg, self.targets):
                continue
            if not dist.supports_grad(i):
                raise CodegenError(
                    f"{factor.dist}: gradient w.r.t. argument {i} is unavailable"
                )
            t = self.fresh()
            inner.append(
                SAssign(
                    LValue(t),
                    AssignOp.SET,
                    DistOp(factor.dist, factor.args, DistOpKind.GRAD,
                           value=factor.at, grad_index=i),
                )
            )
            self.backprop(arg, Var(t), inner)
        return tuple(inner)


def gen_grad(
    blk: BlockConditional,
    lets: tuple[tuple[str, Expr], ...] = (),
) -> LDecl:
    """Generate the adjoint declaration for a block conditional.

    Returns ``grad_<targets>`` computing ``d log p / d target`` for every
    target, as a tuple in target order.  Adjoint buffers are zeroed with
    ``lib.zeros_like`` so their shapes always match the state.
    """
    targets = blk.targets
    emitter = _AdjointEmitter(targets)
    free: set[str] = set()
    for f in blk.factors:
        free |= f.free_names()
    body: list[Stmt] = list(_needed_lets(lets, frozenset(free)))
    for t in targets:
        body.append(
            SAssign(
                LValue(f"adj_{t}"),
                AssignOp.SET,
                Call("lib.zeros_like", (Var(t),)),
            )
        )
    for f in blk.factors:
        body.extend(emitter.factor_stmts(f))
    params = tuple(sorted(free | set(targets)))
    return LDecl(
        name="grad_" + "_".join(targets),
        params=params,
        body=tuple(body),
        ret=tuple(Var(f"adj_{t}") for t in targets),
        provenance=Provenance(
            stmt=targets[0],
            stmts=merge_stmts(
                targets[0], targets, (f.source for f in blk.factors)
            ),
            stage="lowpp.ad",
        ),
    )


def _merged_factor_stmts(
    factor: Factor, emitter: _AdjointEmitter
) -> tuple[Stmt, ...]:
    """One loop nest accumulating a factor's log density *and* adjoints.

    Fusing the likelihood statement into the adjoint loop puts both in
    one scope, so the CSE pass can bind the factor's argument
    expressions (the forward pass) once and share them -- the log
    density and every distribution/chain-rule partial read the same
    temps instead of re-evaluating the arguments.
    """
    adj_inner = emitter.factor_inner(factor)
    if adj_inner:
        for a, b in factor.guards:
            if _mentions_any(a, emitter.targets) or _mentions_any(b, emitter.targets):
                raise CodegenError("cannot differentiate through a guard")
    ll_inc: Stmt = SAssign(
        LValue(_LL),
        AssignOp.INC,
        DistOp(factor.dist, factor.args, DistOpKind.LL, value=factor.at),
    )
    inner: tuple[Stmt, ...] = (ll_inc,) + adj_inner
    cond = _guard_expr(factor.guards)
    if cond is not None:
        inner = (SIf(cond, inner),)
    for g in reversed(factor.gens):
        inner = (SLoop(LoopKind.ATM_PAR, g, inner),)
    return inner


# ----------------------------------------------------------------------
# Common-subexpression elimination over the fused body.
# ----------------------------------------------------------------------


def _hoistable(e: Expr) -> bool:
    """Pure, non-leaf expressions worth binding to a temp when repeated."""
    if isinstance(e, (Call, Index)):
        return True
    return isinstance(e, DistOp) and e.op is not DistOpKind.SAMP


def _assigned_names(stmts) -> set[str]:
    out: set[str] = set()
    for s in stmts:
        if isinstance(s, SAssign):
            out.add(s.lhs.name)
        elif isinstance(s, SIf):
            out |= _assigned_names(s.then)
            out |= _assigned_names(s.els)
        elif isinstance(s, SLoop):
            out |= _assigned_names(s.body)
    return out


def _count_subexprs(stmts, counts: dict) -> None:
    for s in stmts:
        exprs: tuple[Expr, ...] = ()
        if isinstance(s, SAssign):
            exprs = (s.rhs, *s.lhs.indices)
        elif isinstance(s, SIf):
            exprs = (s.cond,)
            _count_subexprs(s.then, counts)
            _count_subexprs(s.els, counts)
        elif isinstance(s, SLoop):
            _count_subexprs(s.body, counts)
        for e in exprs:
            for sub in walk(e):
                if _hoistable(sub):
                    counts[sub] = counts.get(sub, 0) + 1


class _Cse:
    """Bind repeated pure subexpressions to ``_fwd<n>`` temps.

    Statements are rewritten in order; a temp's definition is inserted
    immediately before the first statement that uses it, so evaluation
    order (and hence every floating-point result) is unchanged -- the
    shared value is simply not recomputed.  Scoping is conservative:
    temps defined inside a guard or loop body never escape it, and
    expressions mentioning names assigned within the region (the
    accumulators and adjoint-chain temps) are never hoisted.
    """

    def __init__(self, counts: dict, protect: set[str]):
        self.counts = counts
        self.protect = protect
        self._n = 0

    def _fresh(self) -> str:
        self._n += 1
        return f"_fwd{self._n}"

    def rewrite_stmts(self, stmts, memo: dict) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for s in stmts:
            defs: list[Stmt] = []
            if isinstance(s, SAssign):
                rhs = self.rewrite(s.rhs, memo, defs)
                idxs = tuple(self.rewrite(i, memo, defs) for i in s.lhs.indices)
                out.extend(defs)
                out.append(SAssign(LValue(s.lhs.name, idxs), s.op, rhs))
            elif isinstance(s, SIf):
                cond = self.rewrite(s.cond, memo, defs)
                out.extend(defs)
                out.append(
                    SIf(
                        cond,
                        self.rewrite_stmts(s.then, dict(memo)),
                        self.rewrite_stmts(s.els, dict(memo)),
                    )
                )
            elif isinstance(s, SLoop):
                out.append(
                    SLoop(s.kind, s.gen, self.rewrite_stmts(s.body, dict(memo)))
                )
            else:
                out.append(s)
        return tuple(out)

    def rewrite(self, e: Expr, memo: dict, defs: list) -> Expr:
        t = memo.get(e)
        if t is not None:
            return Var(t)
        e2 = map_children(e, lambda c: self.rewrite(c, memo, defs))
        if (
            _hoistable(e)
            and self.counts.get(e, 0) >= 2
            and not (free_vars(e) & self.protect)
        ):
            t = self._fresh()
            defs.append(SAssign(LValue(t), AssignOp.SET, e2))
            memo[e] = t
            return Var(t)
        return e2


def _cse_stmts(stmts: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
    counts: dict = {}
    _count_subexprs(stmts, counts)
    if not any(c >= 2 for c in counts.values()):
        return stmts
    cse = _Cse(counts, _assigned_names(stmts))
    return cse.rewrite_stmts(stmts, {})


def gen_ll_grad(
    blk: BlockConditional,
    lets: tuple[tuple[str, Expr], ...] = (),
) -> tuple[LDecl, tuple[WorkspaceSpec, ...]]:
    """Generate the fused value+gradient declaration for a block.

    Returns ``ll_grad_<targets>`` computing the block log density *and*
    ``d log p / d target`` for every target in one pass: each factor's
    likelihood and adjoint statements share one loop nest, and a CSE
    pass binds the repeated forward expressions (distribution arguments
    and their chain-rule reconstructions) to temps evaluated once.  The
    adjoint buffers are pre-allocated workspaces (shaped ``like`` their
    target state buffer) zeroed in place with ``lib.fill_zero`` on
    entry, so the fused call allocates nothing beyond the shared temps.

    Return order is ``(ll, adj_<t0>, adj_<t1>, ...)`` in target order.
    Raises :class:`CodegenError` exactly when :func:`gen_grad` would --
    callers fall back to the separate ``ll``/``grad`` pair.
    """
    targets = blk.targets
    emitter = _AdjointEmitter(targets, prefix="_adj_")
    free: set[str] = set()
    for f in blk.factors:
        free |= f.free_names()
    let_stmts = _needed_lets(lets, frozenset(free))
    body: list[Stmt] = list(let_stmts)
    body.append(SAssign(LValue(_LL), AssignOp.SET, RealLit(0.0)))
    adj_names = tuple(f"_adj_{t}" for t in targets)
    for a in adj_names:
        body.append(
            SAssign(LValue(a), AssignOp.SET, Call("lib.fill_zero", (Var(a),)))
        )
    factor_body: list[Stmt] = []
    for f in blk.factors:
        factor_body.extend(_merged_factor_stmts(f, emitter))
    body.extend(_cse_stmts(tuple(factor_body)))
    bound = {s.lhs.name for s in let_stmts}
    for s in let_stmts:
        free |= free_vars(s.rhs)
    params = tuple(sorted((free | set(targets)) - bound))
    decl = LDecl(
        name="ll_grad_" + "_".join(targets),
        params=params,
        body=tuple(body),
        ret=(Var(_LL),) + tuple(Var(a) for a in adj_names),
        locals_hint=adj_names,
        provenance=Provenance(
            stmt=targets[0],
            stmts=merge_stmts(
                targets[0], targets, (f.source for f in blk.factors)
            ),
            stage="lowpp.ad",
        ),
    )
    specs = tuple(
        WorkspaceSpec(a, gens=(), like=t) for a, t in zip(adj_names, targets)
    )
    return decl, specs
