"""Well-formedness checking for Low++ declarations.

Generated code is checked before lowering: every variable read must be
bound (a parameter, a workspace, a loop binder in scope, or a local
assigned earlier), loop binders must not shadow anything, and
distribution operations must match the registry (arity, gradient index
range, value presence).  Catching these at compile time turns code
generator bugs into immediate, named errors instead of runtime
``KeyError`` s inside emitted modules.
"""

from __future__ import annotations

from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Expr,
    Index,
    IntLit,
    RealLit,
    Var,
)
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    SAssign,
    SIf,
    SLoop,
    SMultiAssign,
    Stmt,
)
from repro.errors import CodegenError
from repro.runtime.distributions import is_distribution, lookup


class _Checker:
    def __init__(self, decl: LDecl):
        self.decl = decl
        self.bound: set[str] = set(decl.params) | set(decl.locals_hint)

    def fail(self, msg: str):
        raise CodegenError(f"{self.decl.name}: {msg}")

    # -- expressions -----------------------------------------------------

    def expr(self, e: Expr) -> None:
        match e:
            case Var(name):
                if name not in self.bound:
                    self.fail(f"read of unbound variable {name!r}")
            case IntLit() | RealLit():
                pass
            case Index(base, idx):
                self.expr(base)
                self.expr(idx)
            case Call(_, args):
                for a in args:
                    self.expr(a)
            case DistOp(dist, args, op, value, grad_index):
                if not is_distribution(dist):
                    self.fail(f"unknown distribution {dist!r}")
                d = lookup(dist)
                if len(args) != d.arity:
                    self.fail(
                        f"{dist} takes {d.arity} arguments, got {len(args)}"
                    )
                if op is DistOpKind.SAMP:
                    if value is not None:
                        self.fail(f"{dist}.samp takes no evaluation point")
                else:
                    if value is None:
                        self.fail(f"{dist}.{op.value} needs an evaluation point")
                    self.expr(value)
                if op is DistOpKind.GRAD:
                    if grad_index is None or not (0 <= grad_index <= d.arity):
                        self.fail(
                            f"{dist}.grad index {grad_index} out of range "
                            f"[0, {d.arity}]"
                        )
                for a in args:
                    self.expr(a)
            case _:
                self.fail(f"unknown expression node {e!r}")

    # -- statements -------------------------------------------------------

    def stmt(self, s: Stmt) -> None:
        match s:
            case SAssign(lhs, op, rhs):
                self.expr(rhs)
                for i in lhs.indices:
                    self.expr(i)
                if lhs.indices or op is AssignOp.INC:
                    # Indexed stores and increments read the target.
                    if lhs.name not in self.bound:
                        self.fail(
                            f"store into unbound buffer {lhs.name!r} "
                            "(missing workspace or parameter?)"
                        )
                else:
                    self.bound.add(lhs.name)
            case SMultiAssign(lhs, rhs):
                self.expr(rhs)
                for lv in lhs:
                    for i in lv.indices:
                        self.expr(i)
                    if lv.indices:
                        if lv.name not in self.bound:
                            self.fail(f"store into unbound buffer {lv.name!r}")
                    else:
                        self.bound.add(lv.name)
            case SIf(cond, then, els):
                self.expr(cond)
                for b in then:
                    self.stmt(b)
                for b in els:
                    self.stmt(b)
            case SLoop(_, gen, body):
                if gen.var in self.bound:
                    self.fail(f"loop binder {gen.var!r} shadows an existing name")
                self.expr(gen.lo)
                self.expr(gen.hi)
                self.bound.add(gen.var)
                for b in body:
                    self.stmt(b)
                self.bound.discard(gen.var)
            case _:
                self.fail(f"unknown statement node {s!r}")


def verify_decl(decl: LDecl) -> None:
    """Raise :class:`CodegenError` if the declaration is ill-formed."""
    checker = _Checker(decl)
    for s in decl.body:
        checker.stmt(s)
    for r in decl.ret:
        checker.expr(r)
