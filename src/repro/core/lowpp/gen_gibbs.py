"""Gibbs update code generation (paper Sections 4.4 and 7.1).

Each conjugacy relation has its own code generator ("supporting Gibbs
updates was difficult because we need to implement a separate
code-generator for each conjugacy relation").  Every generator follows
the same three-phase shape:

1. zero the sufficient-statistics buffers,
2. traverse the likelihood factors accumulating statistics -- with the
   *guard-inversion* optimisation: a factor guarded by ``z[n] == k``
   scatters into bucket ``z[n]`` instead of scanning all ``k``, so the
   traversal is a single ``AtmPar`` pass over the data,
3. sample each target element from its closed-form posterior, whose
   parameters come from a fixed ``lib.*`` routine.

Discrete variables without a conjugate prior get the enumeration
generator: score every support value into a logit table, then draw
categorically (the "finite sum" approximation of Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.density.conditionals import Conditional
from repro.core.density.ir import Factor
from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Expr,
    Gen,
    IntLit,
    RealLit,
    Var,
    mentions,
    subst,
)
from repro.core.kernel.conjugacy import ConjugacyMatch, EnumerationMatch
from repro.core.lowpp.gen_ll import _factor_provenance, _guard_expr, _needed_lets
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SIf,
    SLoop,
    SMultiAssign,
    Stmt,
)
from repro.core.workspace import WorkspaceSpec
from repro.errors import CodegenError


@dataclass(frozen=True)
class GibbsCode:
    """A generated update declaration plus the workspaces it needs."""

    decl: LDecl
    workspaces: tuple[WorkspaceSpec, ...]


# ----------------------------------------------------------------------
# Statistics-phase planning.
# ----------------------------------------------------------------------


@dataclass
class _FactorPlan:
    """How one likelihood factor contributes statistics.

    ``bucket`` gives, per target binder, the expression selecting the
    statistics cell: the binder itself when the binder is looped, or the
    guard's left-hand side when the guard was inverted into a scatter.
    ``loops`` are the generators to iterate (looped binders first, then
    the factor's own kept generators); ``residual_guards`` are guards
    that could not be inverted and remain as ``if`` checks; ``mapping``
    substitutes inverted binders inside statistic expressions.
    """

    factor: Factor
    bucket: tuple[Expr, ...]
    loops: tuple[Gen, ...]
    residual_guards: tuple[tuple[Expr, Expr], ...]
    mapping: dict[str, Expr]

    def stat_expr(self, e: Expr) -> Expr:
        return subst(e, self.mapping)


def _plan_factor(factor: Factor, cond: Conditional) -> _FactorPlan:
    binders = cond.idx_vars
    guard_of: dict[str, Expr] = {}
    residual: list[tuple[Expr, Expr]] = []
    for lhs, rhs in factor.guards:
        if isinstance(rhs, Var) and rhs.name in binders and rhs.name not in guard_of:
            guard_of[rhs.name] = lhs
        else:
            residual.append((lhs, rhs))

    bucket: list[Expr] = []
    loop_binders: list[Gen] = []
    mapping: dict[str, Expr] = {}
    for b, bgen in zip(binders, cond.gens):
        lhs = guard_of.get(b)
        bound_mentions_b = any(
            mentions(g.lo, b) or mentions(g.hi, b) for g in factor.gens
        )
        if lhs is not None and not bound_mentions_b:
            # Guard inversion: scatter by the mixture assignment.
            bucket.append(subst(lhs, mapping))
            mapping[b] = lhs
        else:
            if lhs is not None:
                residual.append((lhs, Var(b)))
            bucket.append(Var(b))
            loop_binders.append(bgen)
    return _FactorPlan(
        factor=factor,
        bucket=tuple(bucket),
        loops=tuple(loop_binders) + factor.gens,
        residual_guards=tuple(residual),
        mapping=mapping,
    )


def _wrap_loops(
    stmts: tuple[Stmt, ...],
    plan: _FactorPlan,
    kind: LoopKind = LoopKind.ATM_PAR,
) -> tuple[Stmt, ...]:
    cond = _guard_expr(plan.residual_guards)
    body = stmts
    if cond is not None:
        body = (SIf(cond, body),)
    for g in reversed(plan.loops):
        body = (SLoop(kind, g, body),)
    return body


# ----------------------------------------------------------------------
# Shared pieces.
# ----------------------------------------------------------------------


def _ws(name: str, cond: Conditional, trailing: tuple[Expr, ...] = (), dtype="f8"):
    return WorkspaceSpec(name=name, gens=cond.gens, trailing=trailing, dtype=dtype)


def _zero(ws_names: list[str], scalar: bool) -> list[Stmt]:
    if scalar:
        return [SAssign(LValue(n), AssignOp.SET, RealLit(0.0)) for n in ws_names]
    return [
        SAssign(LValue(n), AssignOp.SET, Call("lib.fill_zero", (Var(n),)))
        for n in ws_names
    ]


def _cell(name: str, idx: tuple[Expr, ...]) -> LValue:
    return LValue(name, idx)


def _cell_expr(name: str, idx: tuple[Expr, ...]) -> Expr:
    e: Expr = Var(name)
    for i in idx:
        e = e[i]
    return e


def _target_lv(cond: Conditional) -> LValue:
    return LValue(cond.target, tuple(Var(v) for v in cond.idx_vars))


def _sample_loop(cond: Conditional, body: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
    for g in reversed(cond.gens):
        body = (SLoop(LoopKind.PAR, g, body),)
    return body


def _binder_idx(cond: Conditional) -> tuple[Expr, ...]:
    return tuple(Var(v) for v in cond.idx_vars)


def _params_for(decl_body, cond, ws_names):
    """Free names of the generated body become the declaration params."""
    from repro.core.lowpp.ir import walk_stmts

    free: set[str] = set()
    bound: set[str] = set(ws_names)
    from repro.core.exprs import free_vars as fv
    from repro.core.lowpp.ir import SAssign as _SA, SIf as _SI, SLoop as _SL, SMultiAssign as _SM

    loopvars: set[str] = set()
    assigned: set[str] = set()
    for s in walk_stmts(tuple(decl_body)):
        if isinstance(s, _SL):
            loopvars.add(s.gen.var)
            free |= fv(s.gen.lo) | fv(s.gen.hi)
        elif isinstance(s, _SA):
            free |= fv(s.rhs)
            free |= {n for i in s.lhs.indices for n in fv(i)}
            if not s.lhs.indices:
                assigned.add(s.lhs.name)
            else:
                free.add(s.lhs.name)
        elif isinstance(s, _SM):
            free |= fv(s.rhs)
            for lv in s.lhs:
                if lv.indices:
                    free.add(lv.name)
                    free |= {n for i in lv.indices for n in fv(i)}
                else:
                    assigned.add(lv.name)
        elif isinstance(s, _SI):
            free |= fv(s.cond)
    return tuple(sorted(free - loopvars - assigned - bound))


def _finish(
    name: str, cond, body: list[Stmt], specs: list[WorkspaceSpec], lets=()
) -> GibbsCode:
    ws_names = [s.name for s in specs]
    params = _params_for(body, cond, ws_names)
    let_names = {n for n, _ in lets}
    if let_names & set(params):
        body = list(_needed_lets(lets, frozenset(set(params) & let_names))) + list(body)
        params = _params_for(body, cond, ws_names)
    decl = LDecl(
        name=name,
        params=params,
        body=tuple(body),
        ret=(),
        locals_hint=tuple(ws_names),
        provenance=_factor_provenance(
            cond.target, cond.all_factors, stage="lowpp.gen_gibbs"
        ),
    )
    return GibbsCode(decl=decl, workspaces=tuple(specs))


# ----------------------------------------------------------------------
# Rule generators.
# ----------------------------------------------------------------------


def _gen_dirichlet_categorical(match: ConjugacyMatch, lets) -> GibbsCode:
    cond = match.cond
    t = cond.target
    scalar = not cond.idx_vars
    cnt = f"ws_{t}_cnt"
    alpha = cond.prior.args[0]
    support = Call("len", (alpha,))

    specs: list[WorkspaceSpec] = []
    body: list[Stmt] = []
    if scalar:
        # Scalar simplex target: the counts buffer is a plain vector.
        specs.append(WorkspaceSpec(cnt, gens=(), trailing=(support,)))
        body.append(SAssign(LValue(cnt), AssignOp.SET, Call("lib.fill_zero", (Var(cnt),))))
    else:
        specs.append(_ws(cnt, cond, trailing=(support,)))
        body.extend(_zero([cnt], scalar=False))

    for f in cond.likelihood:
        plan = _plan_factor(f, cond)
        at = plan.stat_expr(f.at)
        inc = SAssign(_cell(cnt, plan.bucket + (at,)), AssignOp.INC, RealLit(1.0))
        body.extend(_wrap_loops((inc,), plan))

    post = Call("lib.dirichlet_post", (alpha, _cell_expr(cnt, _binder_idx(cond))))
    samp = SAssign(
        _target_lv(cond),
        AssignOp.SET,
        DistOp("Dirichlet", (post,), DistOpKind.SAMP),
    )
    body.extend(_sample_loop(cond, (samp,)))
    return _finish(f"gibbs_{t}", cond, body, specs, lets)


def _gen_normal_normal(match: ConjugacyMatch, lets) -> GibbsCode:
    cond = match.cond
    t = cond.target
    scalar = not cond.idx_vars
    prec, mean = f"ws_{t}_prec", f"ws_{t}_mean"
    mu0, v0 = cond.prior.args

    specs: list[WorkspaceSpec] = []
    body: list[Stmt] = []
    if scalar:
        body.extend(_zero([prec, mean], scalar=True))
    else:
        specs += [_ws(prec, cond), _ws(mean, cond)]
        body.extend(_zero([prec, mean], scalar=False))

    for f in cond.likelihood:
        plan = _plan_factor(f, cond)
        var_e = plan.stat_expr(f.args[1])
        at = plan.stat_expr(f.at)
        incs = (
            SAssign(_cell(prec, plan.bucket), AssignOp.INC,
                    Call("/", (RealLit(1.0), var_e))),
            SAssign(_cell(mean, plan.bucket), AssignOp.INC,
                    Call("/", (at, var_e))),
        )
        body.extend(_wrap_loops(incs, plan))

    idx = _binder_idx(cond)
    post = Call(
        "lib.normal_normal_post",
        (mu0, v0, _cell_expr(prec, idx), _cell_expr(mean, idx)),
    )
    pm, pv = LValue(f"pm_{t}"), LValue(f"pv_{t}")
    stmts = (
        SMultiAssign((pm, pv), post),
        SAssign(_target_lv(cond), AssignOp.SET,
                DistOp("Normal", (Var(pm.name), Var(pv.name)), DistOpKind.SAMP)),
    )
    body.extend(_sample_loop(cond, stmts))
    return _finish(f"gibbs_{t}", cond, body, specs, lets)


def _gen_mvnormal_mean(match: ConjugacyMatch, lets) -> GibbsCode:
    cond = match.cond
    t = cond.target
    if len(cond.likelihood) != 1:
        raise CodegenError(
            f"gibbs {t}: the MvNormal-mean generator supports exactly one "
            "likelihood factor"
        )
    (lik,) = cond.likelihood
    cov_e = lik.args[1]
    for g in lik.gens:
        if mentions(cov_e, g.var):
            raise CodegenError(
                f"gibbs {t}: likelihood covariance varies within the "
                "comprehension; not expressible as a count-based posterior"
            )
    mu0, sigma0 = cond.prior.args
    cnt, tot = f"ws_{t}_cnt", f"ws_{t}_sum"
    dim = Call("len", (mu0,))

    specs: list[WorkspaceSpec] = []
    body: list[Stmt] = []
    scalar = not cond.idx_vars
    if scalar:
        specs.append(WorkspaceSpec(tot, gens=(), trailing=(dim,)))
        body.append(SAssign(LValue(cnt), AssignOp.SET, RealLit(0.0)))
        body.append(SAssign(LValue(tot), AssignOp.SET, Call("lib.fill_zero", (Var(tot),))))
    else:
        specs += [_ws(cnt, cond), _ws(tot, cond, trailing=(dim,))]
        body.extend(_zero([cnt, tot], scalar=False))

    plan = _plan_factor(lik, cond)
    at = plan.stat_expr(lik.at)
    incs = (
        SAssign(_cell(cnt, plan.bucket), AssignOp.INC, RealLit(1.0)),
        SAssign(_cell(tot, plan.bucket), AssignOp.INC, at),
    )
    body.extend(_wrap_loops(incs, plan))

    idx = _binder_idx(cond)
    post = Call(
        "lib.mvnormal_post",
        (mu0, sigma0, cov_e, _cell_expr(tot, idx), _cell_expr(cnt, idx)),
    )
    pm, pc = LValue(f"pm_{t}"), LValue(f"pc_{t}")
    stmts = (
        SMultiAssign((pm, pc), post),
        SAssign(_target_lv(cond), AssignOp.SET,
                DistOp("MvNormal", (Var(pm.name), Var(pc.name)), DistOpKind.SAMP)),
    )
    body.extend(_sample_loop(cond, stmts))
    return _finish(f"gibbs_{t}", cond, body, specs, lets)


def _gen_invwishart_cov(match: ConjugacyMatch, lets) -> GibbsCode:
    cond = match.cond
    t = cond.target
    if len(cond.likelihood) != 1:
        raise CodegenError(
            f"gibbs {t}: the InvWishart generator supports exactly one "
            "likelihood factor"
        )
    (lik,) = cond.likelihood
    mean_e = lik.args[0]
    nu, psi = cond.prior.args
    cnt, scat = f"ws_{t}_cnt", f"ws_{t}_scat"
    # Scatter buffers are (d, d); take d from the prior scale matrix.
    dim = Call("len", (psi,))

    specs: list[WorkspaceSpec] = []
    body: list[Stmt] = []
    scalar = not cond.idx_vars
    if scalar:
        specs.append(WorkspaceSpec(scat, gens=(), trailing=(dim, dim)))
        body.append(SAssign(LValue(cnt), AssignOp.SET, RealLit(0.0)))
        body.append(SAssign(LValue(scat), AssignOp.SET, Call("lib.fill_zero", (Var(scat),))))
    else:
        specs += [_ws(cnt, cond), _ws(scat, cond, trailing=(dim, dim))]
        body.extend(_zero([cnt, scat], scalar=False))

    plan = _plan_factor(lik, cond)
    at = plan.stat_expr(lik.at)
    centered = Call("-", (at, plan.stat_expr(mean_e)))
    incs = (
        SAssign(_cell(cnt, plan.bucket), AssignOp.INC, RealLit(1.0)),
        SAssign(_cell(scat, plan.bucket), AssignOp.INC,
                Call("lib.outer", (centered, centered))),
    )
    body.extend(_wrap_loops(incs, plan))

    idx = _binder_idx(cond)
    post = Call(
        "lib.invwishart_post",
        (nu, psi, _cell_expr(scat, idx), _cell_expr(cnt, idx)),
    )
    pn, pp = LValue(f"pn_{t}"), LValue(f"pp_{t}")
    stmts = (
        SMultiAssign((pn, pp), post),
        SAssign(_target_lv(cond), AssignOp.SET,
                DistOp("InvWishart", (Var(pn.name), Var(pp.name)), DistOpKind.SAMP)),
    )
    body.extend(_sample_loop(cond, stmts))
    return _finish(f"gibbs_{t}", cond, body, specs, lets)


def _gen_sum_count_rule(match: ConjugacyMatch, lets, lib_post: str, out_dist: str) -> GibbsCode:
    """Shared generator for Beta-Bernoulli / Gamma-Poisson / Gamma-Exponential:
    statistics are (sum of observations, count)."""
    cond = match.cond
    t = cond.target
    a, b = cond.prior.args
    s, c = f"ws_{t}_sum", f"ws_{t}_cnt"

    specs: list[WorkspaceSpec] = []
    body: list[Stmt] = []
    scalar = not cond.idx_vars
    if scalar:
        body.extend(_zero([s, c], scalar=True))
    else:
        specs += [_ws(s, cond), _ws(c, cond)]
        body.extend(_zero([s, c], scalar=False))

    for f in cond.likelihood:
        plan = _plan_factor(f, cond)
        at = plan.stat_expr(f.at)
        incs = (
            SAssign(_cell(s, plan.bucket), AssignOp.INC, at),
            SAssign(_cell(c, plan.bucket), AssignOp.INC, RealLit(1.0)),
        )
        body.extend(_wrap_loops(incs, plan))

    idx = _binder_idx(cond)
    post = Call(lib_post, (a, b, _cell_expr(s, idx), _cell_expr(c, idx)))
    pa, pb = LValue(f"pa_{t}"), LValue(f"pb_{t}")
    stmts = (
        SMultiAssign((pa, pb), post),
        SAssign(_target_lv(cond), AssignOp.SET,
                DistOp(out_dist, (Var(pa.name), Var(pb.name)), DistOpKind.SAMP)),
    )
    body.extend(_sample_loop(cond, stmts))
    return _finish(f"gibbs_{t}", cond, body, specs, lets)


def _gen_beta_binomial(match: ConjugacyMatch, lets) -> GibbsCode:
    """Beta prior + Binomial likelihoods: statistics are (sum of
    successes, sum of trials); the trials expression is accumulated per
    factor so per-observation trial counts are supported."""
    cond = match.cond
    t = cond.target
    a, b = cond.prior.args
    s, tr = f"ws_{t}_succ", f"ws_{t}_trials"

    specs: list[WorkspaceSpec] = []
    body: list[Stmt] = []
    scalar = not cond.idx_vars
    if scalar:
        body.extend(_zero([s, tr], scalar=True))
    else:
        specs += [_ws(s, cond), _ws(tr, cond)]
        body.extend(_zero([s, tr], scalar=False))

    for f in cond.likelihood:
        plan = _plan_factor(f, cond)
        at = plan.stat_expr(f.at)
        trials_e = plan.stat_expr(f.args[0])
        incs = (
            SAssign(_cell(s, plan.bucket), AssignOp.INC, at),
            SAssign(_cell(tr, plan.bucket), AssignOp.INC, trials_e),
        )
        body.extend(_wrap_loops(incs, plan))

    idx = _binder_idx(cond)
    post = Call(
        "lib.beta_binomial_post", (a, b, _cell_expr(s, idx), _cell_expr(tr, idx))
    )
    pa, pb = LValue(f"pa_{t}"), LValue(f"pb_{t}")
    stmts = (
        SMultiAssign((pa, pb), post),
        SAssign(_target_lv(cond), AssignOp.SET,
                DistOp("Beta", (Var(pa.name), Var(pb.name)), DistOpKind.SAMP)),
    )
    body.extend(_sample_loop(cond, stmts))
    return _finish(f"gibbs_{t}", cond, body, specs, lets)


_RULE_GENERATORS = {
    "dirichlet_categorical": _gen_dirichlet_categorical,
    "normal_normal_mean": _gen_normal_normal,
    "mvnormal_mvnormal_mean": _gen_mvnormal_mean,
    "invwishart_mvnormal_cov": _gen_invwishart_cov,
    "beta_binomial": _gen_beta_binomial,
    "beta_bernoulli": lambda m, lets: _gen_sum_count_rule(
        m, lets, "lib.beta_bernoulli_post", "Beta"
    ),
    "gamma_poisson": lambda m, lets: _gen_sum_count_rule(
        m, lets, "lib.gamma_poisson_post", "Gamma"
    ),
    "gamma_exponential": lambda m, lets: _gen_sum_count_rule(
        m, lets, "lib.gamma_exponential_post", "Gamma"
    ),
}


def gen_gibbs_conjugate(match: ConjugacyMatch, lets=()) -> GibbsCode:
    """Dispatch to the per-rule generator (the Section 7.1 table)."""
    try:
        generator = _RULE_GENERATORS[match.rule]
    except KeyError:
        raise CodegenError(f"no Gibbs code generator for rule {match.rule!r}") from None
    return generator(match, lets)


# ----------------------------------------------------------------------
# Enumeration Gibbs for finite-support discrete variables.
# ----------------------------------------------------------------------


def gen_gibbs_enumeration(match: EnumerationMatch, lets=()) -> GibbsCode:
    cond = match.cond
    t = cond.target
    elem: Expr = Var(t)
    for v in cond.idx_vars:
        elem = elem[Var(v)]

    if match.probs_arg is not None:
        # Bound the support by the Categorical vector's length, with the
        # target binders pinned to their lower bounds (the vector length
        # is uniform across a fixed-structure comprehension).
        pin = {g.var: g.lo for g in cond.gens}
        support: Expr = Call("len", (subst(match.probs_arg, pin),))
    else:
        support = IntLit(2)

    ek = Var("ek0")
    logits = f"ws_{t}_logits"
    cell = LValue(logits, _binder_idx(cond) + (ek,))

    # Phase 1: score every support value.  The enumeration loop is
    # emitted OUTSIDE the parallel element loops -- the commuted form the
    # Blk optimiser would otherwise have to discover (Section 5.4).
    score: list[Stmt] = [
        SAssign(
            cell,
            AssignOp.SET,
            DistOp(cond.prior.dist, cond.prior.args, DistOpKind.LL, value=ek),
        )
    ]
    for f in cond.likelihood:
        mapping_f = lambda e: subst_expr_elem(e, elem, ek)
        args = tuple(mapping_f(a) for a in f.args)
        at = mapping_f(f.at)
        guards = tuple((mapping_f(a), mapping_f(b)) for a, b in f.guards)
        inc: Stmt = SAssign(
            cell, AssignOp.INC, DistOp(f.dist, args, DistOpKind.LL, value=at)
        )
        g_expr = _guard_expr(guards)
        if g_expr is not None:
            inc = SIf(g_expr, (inc,))
        stmts: tuple[Stmt, ...] = (inc,)
        for g in reversed(f.gens):
            stmts = (SLoop(LoopKind.ATM_PAR, g, stmts),)
        score.extend(stmts)

    inner: tuple[Stmt, ...] = tuple(score)
    for g in reversed(cond.gens):
        inner = (SLoop(LoopKind.PAR, g, inner),)
    body: list[Stmt] = [
        SLoop(LoopKind.SEQ, Gen("ek0", IntLit(0), support), inner)
    ]

    # Phase 2: draw from the normalised logits.
    row = _cell_expr(logits, _binder_idx(cond))
    draw = SAssign(
        _target_lv(cond),
        AssignOp.SET,
        DistOp("Categorical", (Call("lib.softmax", (row,)),), DistOpKind.SAMP),
    )
    body.extend(_sample_loop(cond, (draw,)))

    spec = WorkspaceSpec(logits, gens=cond.gens, trailing=(support,))
    return _finish(f"gibbs_{t}", cond, body, [spec], lets)


def subst_expr_elem(e: Expr, elem: Expr, replacement: Expr) -> Expr:
    """Replace the target element expression by structural equality."""
    from repro.core.density.conditionals import replace_expr

    return replace_expr(e, elem, replacement)
