"""Low++ IL statements and declarations (paper Figure 6).

::

    decl ::= name(x...){global: g..., body: s, ret: e}
    s    ::= e | x sk e | e[e...] sk e | s s
           | if(e){s}{s} | loop lk (i <- gen){s}
    sk   ::= = | +=
    lk   ::= Seq | Par | AtmPar

Expressions are the shared :mod:`repro.core.exprs` language extended
with distribution operations (``DistOp``).  The ``+=`` form is its own
syntactic category because parallel backends must perform it
atomically; ``AtmPar`` marks loops that are parallel *given* atomic
increments (Section 4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.exprs import Expr, Gen
from repro.core.provenance import Provenance


class LoopKind(enum.Enum):
    SEQ = "Seq"
    PAR = "Par"
    ATM_PAR = "AtmPar"


class AssignOp(enum.Enum):
    SET = "="
    INC = "+="


@dataclass(frozen=True)
class LValue:
    """A store target: a variable, optionally indexed (``e[e...]``)."""

    name: str
    indices: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        return self.name + "".join(f"[{i}]" for i in self.indices)


class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class SAssign(Stmt):
    lhs: LValue
    op: AssignOp
    rhs: Expr

    def __str__(self) -> str:
        return f"{self.lhs} {self.op.value} {self.rhs};"


@dataclass(frozen=True)
class SMultiAssign(Stmt):
    """Tuple-destructuring assignment ``(a, b) = e`` -- used for library
    calls that return several values (e.g. posterior mean and covariance)."""

    lhs: tuple[LValue, ...]
    rhs: Expr

    def __str__(self) -> str:
        return "(" + ", ".join(map(str, self.lhs)) + f") = {self.rhs};"


@dataclass(frozen=True)
class SIf(Stmt):
    cond: Expr
    then: tuple[Stmt, ...]
    els: tuple[Stmt, ...] = ()

    def __str__(self) -> str:
        out = f"if ({self.cond}) {{ " + " ".join(map(str, self.then)) + " }"
        if self.els:
            out += " else { " + " ".join(map(str, self.els)) + " }"
        return out


@dataclass(frozen=True)
class SLoop(Stmt):
    kind: LoopKind
    gen: Gen
    body: tuple[Stmt, ...]

    def __str__(self) -> str:
        inner = " ".join(map(str, self.body))
        return f"loop {self.kind.value} ({self.gen}) {{ {inner} }}"


@dataclass(frozen=True)
class LDecl:
    """A Low++ declaration.

    ``params`` are the run-time arguments (model state, hypers, data and
    index arguments); ``locals_hint`` names workspace buffers the
    declaration expects (their shapes are resolved by size inference in
    the Low-- phase); ``ret`` is a tuple of returned expressions (empty
    for in-place updates).
    """

    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    ret: tuple[Expr, ...] = ()
    locals_hint: tuple[str, ...] = field(default=())
    #: Source pointer to the model statement(s) the declaration was
    #: generated from.  Metadata only: excluded from equality/hash so
    #: structural comparisons of generated code stay provenance-blind.
    provenance: Provenance | None = field(default=None, compare=False)

    def __str__(self) -> str:
        lines = [f"{self.name}({', '.join(self.params)}) {{"]
        lines.extend(_fmt_stmt(s, 1) for s in self.body)
        if self.ret:
            lines.append("  ret " + ", ".join(map(str, self.ret)) + ";")
        lines.append("}")
        return "\n".join(lines)


def _fmt_stmt(s: Stmt, depth: int) -> str:
    pad = "  " * depth
    match s:
        case SLoop(kind, gen, body):
            head = f"{pad}loop {kind.value} ({gen}) {{"
            inner = "\n".join(_fmt_stmt(b, depth + 1) for b in body)
            return f"{head}\n{inner}\n{pad}}}"
        case SIf(cond, then, els):
            head = f"{pad}if ({cond}) {{"
            inner = "\n".join(_fmt_stmt(b, depth + 1) for b in then)
            out = f"{head}\n{inner}\n{pad}}}"
            if els:
                inner2 = "\n".join(_fmt_stmt(b, depth + 1) for b in els)
                out += f" else {{\n{inner2}\n{pad}}}"
            return out
        case _:
            return pad + str(s)


# ----------------------------------------------------------------------
# Structural helpers used by later lowering phases.
# ----------------------------------------------------------------------


def walk_stmts(stmts: tuple[Stmt, ...]):
    """Yield every statement, pre-order."""
    for s in stmts:
        yield s
        match s:
            case SLoop(_, _, body):
                yield from walk_stmts(body)
            case SIf(_, then, els):
                yield from walk_stmts(then)
                yield from walk_stmts(els)


def assigned_names(stmts: tuple[Stmt, ...]) -> frozenset[str]:
    """Names written (by = or +=) anywhere in the statements."""
    out: set[str] = set()
    for s in walk_stmts(stmts):
        if isinstance(s, SAssign):
            out.add(s.lhs.name)
        elif isinstance(s, SMultiAssign):
            out.update(lv.name for lv in s.lhs)
    return frozenset(out)


def loop_vars(stmts: tuple[Stmt, ...]) -> frozenset[str]:
    return frozenset(
        s.gen.var for s in walk_stmts(stmts) if isinstance(s, SLoop)
    )
