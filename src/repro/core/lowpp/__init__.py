"""The Low++ IL (paper Section 4.3).

An imperative language that makes parallelism explicit -- loops carry
``Seq`` / ``Par`` / ``AtmPar`` annotations and increment-and-assign is a
dedicated statement form -- while abstracting away memory management.
The update code generators (likelihood reification, conjugate Gibbs,
enumeration Gibbs, and the Figure 8 reverse-mode AD) all target this
IL.
"""

from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SIf,
    SLoop,
    SMultiAssign,
    Stmt,
)

__all__ = [
    "AssignOp",
    "LDecl",
    "LoopKind",
    "LValue",
    "SAssign",
    "SIf",
    "SLoop",
    "SMultiAssign",
    "Stmt",
]
