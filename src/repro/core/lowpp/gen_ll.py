"""Likelihood reification: Density IL -> Low++ (paper Section 4.4).

"It is straightforward to generate Low++ code that reifies a likelihood
computation from a density factorization.  It is also straightforward
to parallelize these computations as a map-reduce."  The generated
declarations accumulate ``ll`` with ``AtmPar`` loops; the Blk-IL
optimiser later converts the accumulation into summation blocks.
"""

from __future__ import annotations


from repro.core.density.conditionals import (
    BlockConditional,
    Conditional,
    lane_occurrence,
)
from repro.core.density.ir import Factor, FactorizedDensity
from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Expr,
    Gen,
    RealLit,
    Var,
    free_vars,
    mentions,
)
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SIf,
    SLoop,
    Stmt,
)
from repro.core.provenance import Provenance, merge_stmts
from repro.core.workspace import WorkspaceSpec

_LL = "ll"


def _guard_expr(guards) -> Expr | None:
    """Conjoin equality guards into one condition (via multiplication of
    0/1 indicators, which the IL represents with ``==`` and ``*``)."""
    conds = [Call("==", (a, b)) for a, b in guards]
    if not conds:
        return None
    cond = conds[0]
    for c in conds[1:]:
        cond = Call("*", (cond, c))
    return cond


def factor_ll_stmts(factor: Factor, acc: str | LValue = _LL) -> tuple[Stmt, ...]:
    """Statements accumulating a factor's log density into ``acc``."""
    lv = LValue(acc) if isinstance(acc, str) else acc
    inc: Stmt = SAssign(
        lv,
        AssignOp.INC,
        DistOp(factor.dist, factor.args, DistOpKind.LL, value=factor.at),
    )
    cond = _guard_expr(factor.guards)
    if cond is not None:
        inc = SIf(cond, (inc,))
    body: tuple[Stmt, ...] = (inc,)
    for g in reversed(factor.gens):
        body = (SLoop(LoopKind.ATM_PAR, g, body),)
    return body


def _needed_lets(
    lets: tuple[tuple[str, Expr], ...], names: frozenset[str]
) -> tuple[Stmt, ...]:
    """Let-bindings (in order) transitively needed by ``names``."""
    needed: set[str] = set(names)
    keep: list[tuple[str, Expr]] = []
    for name, e in reversed(lets):
        if name in needed:
            keep.append((name, e))
            needed |= free_vars(e)
    return tuple(
        SAssign(LValue(name), AssignOp.SET, e) for name, e in reversed(keep)
    )


def _factors_free_names(factors) -> frozenset[str]:
    out: set[str] = set()
    for f in factors:
        out |= f.free_names()
    return frozenset(out)


def _factor_provenance(
    primary: str, factors, stage: str = "lowpp.gen_ll"
) -> Provenance:
    """Provenance over a factor set: the primary statement plus every
    model statement whose factor contributes a density term."""
    return Provenance(
        stmt=primary,
        stmts=merge_stmts(primary, (f.source for f in factors)),
        stage=stage,
    )


def _ll_decl(
    name: str,
    factors: tuple[Factor, ...],
    lets: tuple[tuple[str, Expr], ...],
    extra_params: tuple[str, ...] = (),
    provenance: Provenance | None = None,
) -> LDecl:
    free = _factors_free_names(factors)
    let_stmts = _needed_lets(lets, free)
    body: list[Stmt] = list(let_stmts)
    body.append(SAssign(LValue(_LL), AssignOp.SET, RealLit(0.0)))
    for f in factors:
        body.extend(factor_ll_stmts(f))
    bound = {s.lhs.name for s in let_stmts}
    for s in let_stmts:
        free |= free_vars(s.rhs)
    free = frozenset(free - bound)
    params = tuple(sorted(free)) + tuple(p for p in extra_params if p not in free)
    return LDecl(
        name=name, params=params, body=tuple(body), ret=(Var(_LL),),
        provenance=provenance,
    )


def gen_cond_ll(
    cond: Conditional,
    lets: tuple[tuple[str, Expr], ...] = (),
    include_prior: bool = True,
    suffix: str = "",
) -> LDecl:
    """The per-element conditional log density ``p(target[i...] | rest)``.

    The declaration takes the target's index binders as parameters; the
    caller evaluates it with the candidate value already written into
    the state array, so no value substitution is required.  With
    ``include_prior=False`` only the likelihood factors are scored (the
    form elliptical slice sampling needs).
    """
    factors = cond.all_factors if include_prior else cond.likelihood
    name = f"cond_ll_{cond.target}{suffix}"
    return _ll_decl(
        name, factors, lets, extra_params=cond.idx_vars,
        provenance=_factor_provenance(cond.target, factors),
    )


def _lane_loop_nest(
    stmts: tuple[Stmt, ...], gens: tuple[Gen, ...], occ_free: frozenset[str], kind: LoopKind
) -> tuple[Stmt, ...]:
    """Wrap ``stmts`` in ``gens`` with exactly one batchable axis.

    The vectoriser collapses a single parallel loop (or a ragged pair
    whose inner bound depends on the outer variable); any further
    parallel nesting makes it decline the whole loop.  So: keep a ragged
    pair parallel, make one other generator the parallel batch axis --
    preferring a generator the lane path mentions, since that is the
    axis the scatter distributes over -- and demote the rest to
    sequential host loops.  Independent dense generators commute, so the
    chosen axis is rotated outermost.
    """
    dependent = {
        g.var
        for i, g in enumerate(gens)
        for h in gens[:i]
        if mentions(g.lo, h.var) or mentions(g.hi, h.var)
    }
    independent = all(g.var not in dependent for g in gens)
    order = list(gens)
    if independent and len(gens) > 1:
        par_pos = next(
            (i for i, g in enumerate(gens) if g.var in occ_free), 0
        )
        order = [gens[par_pos]] + [g for i, g in enumerate(gens) if i != par_pos]

    kinds: list[LoopKind] = []
    for pos, g in enumerate(order):
        if pos == 0:
            kinds.append(kind)
        elif pos == 1 and (
            mentions(g.lo, order[0].var) or mentions(g.hi, order[0].var)
        ):
            kinds.append(kind)
        else:
            kinds.append(LoopKind.SEQ)
    body = stmts
    for g, k in reversed(list(zip(order, kinds))):
        body = (SLoop(k, g, body),)
    return body


def gen_cond_ll_batch(
    cond: Conditional,
    fd: FactorizedDensity,
    include_prior: bool = True,
    suffix: str = "",
    why: list | None = None,
) -> tuple[LDecl, WorkspaceSpec] | None:
    """The batched conditional: per-lane log densities in one call.

    Where :func:`gen_cond_ll` scores ``p(target[i...] | rest)`` for one
    index tuple passed in as parameters, this declaration fills a
    workspace ``_bll_<target>`` -- shaped like the target itself -- with
    the conditional log density of *every* element lane in a single
    evaluation: each original model factor scatter-accumulates its log
    density into the lane its single target occurrence addresses.  The
    caller evaluates it with candidate values for all lanes already
    written into the state array.

    Returns ``None`` when batching is unsound (lane-coupled factors,
    imprecise or whole-vector conditionals, lets that mix lanes) --
    callers then stay on the scalar per-element path.  ``why``, when
    supplied, receives one human-readable reason per ``None`` return so
    the decision ledger can name the gate that fired.
    """

    def declined(reason: str):
        if why is not None:
            why.append(reason)
        return None

    target = cond.target
    if not cond.idx_vars:
        return declined("the target is a scalar statement with no element lanes")
    if cond.imprecise:
        return declined("the conditional approximation is imprecise")
    if cond.vector_dependence:
        return declined("a whole-vector dependence couples the element lanes")
    factors: list[Factor] = []
    for f in fd.factors:
        if f.source == target:
            if include_prior:
                factors.append(f)
        elif f.mentions(target):
            factors.append(f)
    if not factors:
        return declined("no density factor mentions the target")
    paths: list[tuple[Expr, ...]] = []
    for f in factors:
        occ = lane_occurrence(f, target, len(cond.idx_vars))
        if occ is None:
            return declined(
                f"the factor from '{f.source or f.at}' uses the target in "
                "more than one lane per term"
            )
        paths.append(occ)

    free = _factors_free_names(factors)
    let_stmts = _needed_lets(fd.lets, free)
    if any(mentions(s.rhs, target) for s in let_stmts):
        # A deterministic let reading the target would be recomputed from
        # the all-lanes-proposed state, coupling the lanes.
        return declined(
            "a deterministic let reads the target, coupling the lanes"
        )

    acc = f"_bll_{target}{suffix}"
    body: list[Stmt] = list(let_stmts)
    zero = SAssign(
        LValue(acc, tuple(Var(v) for v in cond.idx_vars)),
        AssignOp.SET,
        RealLit(0.0),
    )
    body.extend(
        _lane_loop_nest((zero,), cond.gens, frozenset(), LoopKind.PAR)
    )
    for f, occ in zip(factors, paths):
        inc: Stmt = SAssign(
            LValue(acc, occ),
            AssignOp.INC,
            DistOp(f.dist, f.args, DistOpKind.LL, value=f.at),
        )
        guard = _guard_expr(f.guards)
        if guard is not None:
            inc = SIf(guard, (inc,))
        occ_free: set[str] = set()
        for e in occ:
            occ_free |= free_vars(e)
        body.extend(
            _lane_loop_nest(
                (inc,), f.gens, frozenset(occ_free), LoopKind.ATM_PAR
            )
        )

    bound = {s.lhs.name for s in let_stmts}
    for s in let_stmts:
        free |= free_vars(s.rhs)
    for g in cond.gens:
        free |= free_vars(g.lo) | free_vars(g.hi)
    free -= {g.var for g in cond.gens}
    params = tuple(sorted(frozenset(free) - bound))
    decl = LDecl(
        name=f"batch_cond_ll_{target}{suffix}",
        params=params,
        body=tuple(body),
        ret=(Var(acc),),
        locals_hint=(acc,),
        provenance=_factor_provenance(target, factors),
    )
    return decl, WorkspaceSpec(acc, gens=cond.gens)


def gen_block_ll(
    blk: BlockConditional, lets: tuple[tuple[str, Expr], ...] = ()
) -> LDecl:
    """The joint conditional log density of a block of variables."""
    name = "block_ll_" + "_".join(blk.targets)
    prov = Provenance(
        stmt=blk.targets[0],
        stmts=merge_stmts(blk.targets[0], blk.targets,
                          (f.source for f in blk.factors)),
        stage="lowpp.gen_ll",
    )
    return _ll_decl(name, blk.factors, lets, provenance=prov)


def gen_model_ll(fd: FactorizedDensity) -> LDecl:
    """The full model log joint (used for diagnostics and MH at the top)."""
    sources = tuple(dict.fromkeys(f.source for f in fd.factors if f.source))
    prov = Provenance(
        stmt=sources[0] if sources else "model",
        stmts=sources or ("model",),
        stage="lowpp.gen_ll",
    )
    return _ll_decl("model_ll", fd.factors, fd.lets, provenance=prov)
