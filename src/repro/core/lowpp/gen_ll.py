"""Likelihood reification: Density IL -> Low++ (paper Section 4.4).

"It is straightforward to generate Low++ code that reifies a likelihood
computation from a density factorization.  It is also straightforward
to parallelize these computations as a map-reduce."  The generated
declarations accumulate ``ll`` with ``AtmPar`` loops; the Blk-IL
optimiser later converts the accumulation into summation blocks.
"""

from __future__ import annotations


from repro.core.density.conditionals import BlockConditional, Conditional
from repro.core.density.ir import Factor, FactorizedDensity
from repro.core.exprs import (
    Call,
    DistOp,
    DistOpKind,
    Expr,
    RealLit,
    Var,
    free_vars,
)
from repro.core.lowpp.ir import (
    AssignOp,
    LDecl,
    LoopKind,
    LValue,
    SAssign,
    SIf,
    SLoop,
    Stmt,
)

_LL = "ll"


def _guard_expr(guards) -> Expr | None:
    """Conjoin equality guards into one condition (via multiplication of
    0/1 indicators, which the IL represents with ``==`` and ``*``)."""
    conds = [Call("==", (a, b)) for a, b in guards]
    if not conds:
        return None
    cond = conds[0]
    for c in conds[1:]:
        cond = Call("*", (cond, c))
    return cond


def factor_ll_stmts(factor: Factor, acc: str | LValue = _LL) -> tuple[Stmt, ...]:
    """Statements accumulating a factor's log density into ``acc``."""
    lv = LValue(acc) if isinstance(acc, str) else acc
    inc: Stmt = SAssign(
        lv,
        AssignOp.INC,
        DistOp(factor.dist, factor.args, DistOpKind.LL, value=factor.at),
    )
    cond = _guard_expr(factor.guards)
    if cond is not None:
        inc = SIf(cond, (inc,))
    body: tuple[Stmt, ...] = (inc,)
    for g in reversed(factor.gens):
        body = (SLoop(LoopKind.ATM_PAR, g, body),)
    return body


def _needed_lets(
    lets: tuple[tuple[str, Expr], ...], names: frozenset[str]
) -> tuple[Stmt, ...]:
    """Let-bindings (in order) transitively needed by ``names``."""
    needed: set[str] = set(names)
    keep: list[tuple[str, Expr]] = []
    for name, e in reversed(lets):
        if name in needed:
            keep.append((name, e))
            needed |= free_vars(e)
    return tuple(
        SAssign(LValue(name), AssignOp.SET, e) for name, e in reversed(keep)
    )


def _factors_free_names(factors) -> frozenset[str]:
    out: set[str] = set()
    for f in factors:
        out |= f.free_names()
    return frozenset(out)


def _ll_decl(
    name: str,
    factors: tuple[Factor, ...],
    lets: tuple[tuple[str, Expr], ...],
    extra_params: tuple[str, ...] = (),
) -> LDecl:
    free = _factors_free_names(factors)
    let_stmts = _needed_lets(lets, free)
    body: list[Stmt] = list(let_stmts)
    body.append(SAssign(LValue(_LL), AssignOp.SET, RealLit(0.0)))
    for f in factors:
        body.extend(factor_ll_stmts(f))
    bound = {s.lhs.name for s in let_stmts}
    for s in let_stmts:
        free |= free_vars(s.rhs)
    free = frozenset(free - bound)
    params = tuple(sorted(free)) + tuple(p for p in extra_params if p not in free)
    return LDecl(name=name, params=params, body=tuple(body), ret=(Var(_LL),))


def gen_cond_ll(
    cond: Conditional,
    lets: tuple[tuple[str, Expr], ...] = (),
    include_prior: bool = True,
    suffix: str = "",
) -> LDecl:
    """The per-element conditional log density ``p(target[i...] | rest)``.

    The declaration takes the target's index binders as parameters; the
    caller evaluates it with the candidate value already written into
    the state array, so no value substitution is required.  With
    ``include_prior=False`` only the likelihood factors are scored (the
    form elliptical slice sampling needs).
    """
    factors = cond.all_factors if include_prior else cond.likelihood
    name = f"cond_ll_{cond.target}{suffix}"
    return _ll_decl(name, factors, lets, extra_params=cond.idx_vars)


def gen_block_ll(
    blk: BlockConditional, lets: tuple[tuple[str, Expr], ...] = ()
) -> LDecl:
    """The joint conditional log density of a block of variables."""
    name = "block_ll_" + "_".join(blk.targets)
    return _ll_decl(name, blk.factors, lets)


def gen_model_ll(fd: FactorizedDensity) -> LDecl:
    """The full model log joint (used for diagnostics and MH at the top)."""
    return _ll_decl("model_ll", fd.factors, fd.lets)
