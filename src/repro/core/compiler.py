"""The compiler driver: model + query -> executable MCMC (Figure 3).

Runs the full pipeline:

1. **Frontend** -- parse, type-check against the runtime values, lower
   to the Density IL, factorize.
2. **Middle-end** -- select or validate the kernel (user schedule or
   heuristic), compute symbolic conditionals, generate Low++ update
   code (conjugate Gibbs, enumeration Gibbs, likelihoods, AD
   gradients), plus state initialisation and the model log joint.
3. **Backend** -- size inference and up-front allocation, lowering to
   Low-- (and, for the GPU target, to the optimised Blk IL), Python
   source emission, ``compile()``/``exec()``, and synthesis of the
   complete MCMC algorithm by wiring generated primitives to the
   library drivers (Section 5.5).
"""

from __future__ import annotations

import time


from repro.core.backend.cpu import compile_cpu_module
from repro.core.backend.drivers import (
    ESliceDriver,
    GibbsDriver,
    GradBlockDriver,
    MHDriver,
    SliceDriver,
    UpdateDriver,
)
from repro.core.backend.gpu import compile_gpu_module
from repro.core.density.conditionals import BlockConditional, Conditional
from repro.core.density.lower import lower_and_factorize
from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import ModelInfo, analyze_model
from repro.core.frontend.typecheck import type_of_value
from repro.core.kernel.conjugacy import ConjugacyMatch, EnumerationMatch
from repro.core.kernel.heuristic import heuristic_schedule
from repro.core.kernel.ir import KBase, UpdateMethod, flatten
from repro.core.kernel.schedule import parse_schedule
from repro.core.kernel.validate import validate_schedule
from repro.core.lowmm.ir import LowDecl, lower_decl
from repro.core.lowmm.size_inference import allocate_workspaces, build_plan
from repro.core.lowpp.ad import gen_grad
from repro.core.lowpp.gen_gibbs import gen_gibbs_conjugate, gen_gibbs_enumeration
from repro.core.lowpp.gen_init import gen_forward, gen_init
from repro.core.lowpp.gen_ll import gen_block_ll, gen_cond_ll, gen_model_ll
from repro.core.lowpp.verify import verify_decl
from repro.core.options import CompileOptions
from repro.core.sampler import CompiledSampler
from repro.errors import ReproError
from repro.gpusim import Device
from repro.runtime.transforms import transform_for_support
from repro.runtime.vectors import RaggedArray


def compile_model(
    source: str,
    hyper_values: dict,
    data_values: dict,
    options: CompileOptions | None = None,
    schedule: str | None = None,
    proposals: dict | None = None,
) -> CompiledSampler:
    """Compile a model and a posterior-sampling query into a sampler.

    ``proposals`` optionally maps a variable name to a user MH proposal
    ``fn(value, rng) -> (candidate, log_q_ratio)``; the variable must be
    scheduled with the ``MH`` update (Section 4.4's "user-supplied MH
    proposals").
    """
    options = options or CompileOptions()
    t_start = time.perf_counter()

    # ---- Frontend -----------------------------------------------------
    model = parse_model(source)
    missing = [h for h in model.hypers if h not in hyper_values]
    if missing:
        raise ReproError(f"missing hyper-parameter values: {missing}")
    hyper_types = {k: type_of_value(v) for k, v in hyper_values.items()}
    info = analyze_model(model, hyper_types)
    data_names = set(info.data_names())
    missing_data = data_names - set(data_values)
    if missing_data:
        raise ReproError(f"missing data values: {sorted(missing_data)}")
    fd = lower_and_factorize(model)

    env = dict(hyper_values)
    env.update({k: v for k, v in data_values.items() if k in data_names})

    # ---- Middle-end ----------------------------------------------------
    if schedule is not None:
        kernel = validate_schedule(
            parse_schedule(schedule), fd, info,
            categorical_rule=options.categorical_rule,
        )
    else:
        kernel = heuristic_schedule(
            fd, info, categorical_rule=options.categorical_rule
        )

    decls: list[LowDecl] = []
    driver_specs: list[tuple] = []
    ws_specs: list = []

    for upd in flatten(kernel):
        decl_infos = _generate_update(upd, fd, info, options)
        for low in decl_infos["decls"]:
            decls.append(low)
        ws_specs.extend(decl_infos["workspaces"])
        driver_specs.append((upd, decl_infos))

    init_decl = gen_init(info, fd)
    forward_decl = gen_forward(info, fd)
    model_ll_decl = gen_model_ll(fd)
    decls.append(lower_decl(init_decl, writes=tuple(info.param_names())))
    decls.append(lower_decl(forward_decl, writes=tuple(info.data_names())))
    decls.append(lower_decl(model_ll_decl))

    # Well-formedness check on every generated declaration (turns code
    # generator bugs into named compile-time errors).
    for low in decls:
        verify_decl(low.decl)

    # ---- Backend --------------------------------------------------------
    plan = build_plan(info, env, tuple(ws_specs))
    workspaces = allocate_workspaces(plan)
    ragged = _ragged_names(plan, env)

    device: Device | None = None
    if options.target == "gpu":
        device = Device()
        module = compile_gpu_module(
            decls, env, ragged_names=ragged, cfg=options.blk_config()
        )
    else:
        module = compile_cpu_module(
            decls, ragged_names=ragged, vectorize=options.vectorize
        )

    def bind(name: str):
        fn = module.fn(name)
        if device is not None:
            return lambda e, w, r: fn(e, w, r, device)
        return fn

    updates: list[UpdateDriver] = []
    proposals = proposals or {}
    for upd, gen in driver_specs:
        updates.append(_make_driver(upd, gen, bind, plan, options, proposals))
    unused = set(proposals) - {
        t for upd, _ in driver_specs
        if upd.method is UpdateMethod.MH
        for t in upd.unit.names
    }
    if unused:
        raise ReproError(
            f"proposals supplied for variables without an MH update: "
            f"{sorted(unused)}"
        )

    compile_seconds = time.perf_counter() - t_start
    return CompiledSampler(
        module=module,
        plan=plan,
        workspaces=workspaces,
        updates=updates,
        init_fn=bind("init_state"),
        model_ll_fn=bind("model_ll"),
        base_env=env,
        param_names=tuple(info.param_names()),
        device=device,
        compile_seconds=compile_seconds,
        forward_fn=bind("forward_data"),
        info=info,
    )


# ----------------------------------------------------------------------
# Per-update code generation and driver wiring.
# ----------------------------------------------------------------------


def _generate_update(upd: KBase, fd, info: ModelInfo, options: CompileOptions) -> dict:
    method = upd.method
    payload = upd.payload
    out = {"decls": [], "workspaces": [], "names": {}}

    if method is UpdateMethod.GIBBS:
        if isinstance(payload, ConjugacyMatch):
            code = gen_gibbs_conjugate(payload, fd.lets)
        elif isinstance(payload, EnumerationMatch):
            code = gen_gibbs_enumeration(payload, fd.lets)
        else:
            raise ReproError(f"Gibbs update without a payload: {upd}")
        out["decls"].append(
            lower_decl(
                code.decl,
                workspaces=tuple(w.name for w in code.workspaces),
                writes=upd.unit.names,
            )
        )
        out["workspaces"].extend(code.workspaces)
        out["names"]["update"] = code.decl.name
        return out

    if method in (UpdateMethod.HMC, UpdateMethod.NUTS):
        blk: BlockConditional = payload
        ll_decl = gen_block_ll(blk, fd.lets)
        grad_decl = gen_grad(blk, fd.lets)
        out["decls"].append(lower_decl(ll_decl))
        out["decls"].append(lower_decl(grad_decl))
        out["names"]["ll"] = ll_decl.name
        out["names"]["grad"] = grad_decl.name
        return out

    cond: Conditional = payload
    include_prior = method is not UpdateMethod.ESLICE
    suffix = "" if include_prior else "_lik"
    ll_decl = gen_cond_ll(cond, fd.lets, include_prior=include_prior, suffix=suffix)
    out["decls"].append(lower_decl(ll_decl))
    out["names"]["ll"] = ll_decl.name
    return out


def _make_driver(
    upd: KBase, gen: dict, bind, plan, options: CompileOptions, proposals=None
):
    proposals = proposals or {}
    method = upd.method
    names = gen["names"]
    target_list = upd.unit.names

    if method is UpdateMethod.GIBBS:
        return GibbsDriver(names["update"], target_list, bind(names["update"]))

    if method in (UpdateMethod.HMC, UpdateMethod.NUTS):
        blk: BlockConditional = upd.payload
        transforms = {}
        for t in target_list:
            support = _support_of(t, plan, upd)
            transforms[t] = transform_for_support(support)
        return GradBlockDriver(
            name=names["ll"],
            targets=target_list,
            ll_fn=bind(names["ll"]),
            grad_fn=bind(names["grad"]),
            transforms=transforms,
            method="nuts" if method is UpdateMethod.NUTS else "hmc",
            step_size=float(upd.opt("step_size", options.hmc_step_size)),
            n_steps=int(upd.opt("steps", options.hmc_steps)),
        )

    cond: Conditional = upd.payload
    target = target_list[0]
    shape = plan.state[target]
    ll_fn = bind(names["ll"])
    if method is UpdateMethod.SLICE:
        return SliceDriver(
            names["ll"], cond, shape, ll_fn, width=float(upd.opt("width", 1.0))
        )
    if method is UpdateMethod.ESLICE:
        return ESliceDriver(names["ll"], cond, shape, ll_fn)
    if method is UpdateMethod.MH:
        proposal = proposals.get(target)
        if proposal is None and upd.opt("proposal") is not None:
            # The schedule marked this update as user-proposal MH
            # (``MH[proposal=user]``) but no callable was registered.
            raise ReproError(
                f"MH {target}: the schedule requests a user proposal; pass "
                "one via setProposal / compile_model(proposals=...)"
            )
        return MHDriver(
            names["ll"],
            cond,
            shape,
            ll_fn,
            scale=float(upd.opt("scale", 0.5)),
            proposal=proposal,
        )
    raise ReproError(f"no driver for update method {method}")


def _support_of(target: str, plan, upd: KBase) -> str:
    blk: BlockConditional = upd.payload
    for f in blk.factors:
        if f.source == target:
            from repro.runtime.distributions import lookup

            return lookup(f.dist).support
    raise ReproError(f"cannot determine the support of {target!r}")


def _ragged_names(plan, env: dict) -> frozenset[str]:
    names = {n for n, b in plan.state.items() if b.is_ragged}
    names |= {n for n, b in plan.workspaces.items() if b.is_ragged}
    names |= {n for n, v in env.items() if isinstance(v, RaggedArray)}
    return frozenset(names)
