"""The compiler driver: model + query -> executable MCMC (Figure 3).

Runs the full pipeline:

1. **Frontend** -- parse, type-check against the runtime values, lower
   to the Density IL, factorize.
2. **Middle-end** -- select or validate the kernel (user schedule or
   heuristic), compute symbolic conditionals, generate Low++ update
   code (conjugate Gibbs, enumeration Gibbs, likelihoods, AD
   gradients), plus state initialisation and the model log joint.
3. **Backend** -- size inference and up-front allocation, lowering to
   Low-- (and, for the GPU target, to the optimised Blk IL), Python
   source emission, ``compile()``/``exec()``, and synthesis of the
   complete MCMC algorithm by wiring generated primitives to the
   library drivers (Section 5.5).

A keyed **compile cache** (model source + schedule + options + runtime
value fingerprint) short-circuits steps 1-2 and the source emission of
step 3 for repeated compilations of an unchanged model: a cache hit
re-``exec``s the cached code object into a fresh namespace, allocates
fresh workspaces, and rewires drivers.  Worker processes rehydrating a
sampler from its :class:`~repro.core.chains.SamplerSpec` lean on this,
as does any serving loop that recompiles per request.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.core.backend.cpu import decl_vectorizes, emit_cpu_source, exec_cpu_module
from repro.core.backend.emitter import op_count_code
from repro.core.backend.drivers import (
    ESliceDriver,
    GibbsDriver,
    GradBlockDriver,
    MHDriver,
    SliceDriver,
    UpdateDriver,
    VectorizedESliceDriver,
    VectorizedMHDriver,
    VectorizedSliceDriver,
)
from repro.core.backend.gpu import compile_gpu_module
from repro.core.chains import SamplerSpec
from repro.core.density.conditionals import BlockConditional, Conditional
from repro.core.density.lower import lower_and_factorize
from repro.core.exprs import mentions
from repro.core.frontend.parser import parse_model
from repro.core.frontend.symbols import ModelInfo, analyze_model
from repro.core.frontend.typecheck import type_of_value
from repro.core.kernel.conjugacy import ConjugacyMatch, EnumerationMatch
from repro.core.kernel.heuristic import heuristic_schedule
from repro.core.kernel.ir import KBase, UpdateMethod, flatten
from repro.core.kernel.schedule import parse_schedule
from repro.core.kernel.validate import validate_schedule
from repro.core.lowmm.ir import LowDecl, lower_decl
from repro.core.lowmm.size_inference import (
    AllocationPlan,
    allocate_workspaces,
    build_pack_plan,
    build_plan,
)
from repro.core.lowpp.ad import gen_grad, gen_ll_grad
from repro.core.lowpp.gen_gibbs import gen_gibbs_conjugate, gen_gibbs_enumeration
from repro.core.lowpp.gen_init import gen_forward, gen_init
from repro.core.lowpp.gen_ll import (
    gen_block_ll,
    gen_cond_ll,
    gen_cond_ll_batch,
    gen_model_ll,
)
from repro.core.lowpp.verify import verify_decl
from repro.core.options import CompileOptions
from repro.core.provenance import build_source_map
from repro.core.sampler import CompiledSampler
from repro.errors import CodegenError, ReproError
from repro.gpusim import Device
from repro.runtime.transforms import transform_for_support
from repro.runtime.vectors import RaggedArray
from repro.telemetry import trace
from repro.telemetry.explain import CompileLedger


# ----------------------------------------------------------------------
# Compile cache.
# ----------------------------------------------------------------------


@dataclass
class CompileCacheStats:
    """Hit/miss counters for the keyed compile cache."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class _CacheEntry:
    """Everything reusable from one compilation: the generated source
    and its code object, the allocation plan, and the driver wiring
    recipe.  All fields are treated as immutable; per-sampler mutable
    state (namespace, workspaces, drivers) is rebuilt on every hit."""

    source_text: str
    code: object
    plan: AllocationPlan
    driver_specs: tuple
    info: ModelInfo
    param_names: tuple[str, ...]
    data_names: frozenset[str]
    #: Codegen-time decision ledger: a cache hit replays these entries
    #: (via clone) before the per-assembly wiring entries are appended.
    ledger: CompileLedger
    #: Model-statement name -> (line, source text) for rendering
    #: provenance back to what the user wrote.
    source_map: dict
    #: Generated decl name -> op-count Python expression (the profiler
    #: evaluates these against the live environment for ops/s).
    op_count_exprs: dict
    #: Generated decl name -> Provenance of its originating statements.
    decl_provenance: dict


_CACHE_CAPACITY = 64
_cache: OrderedDict[str, _CacheEntry] = OrderedDict()
_cache_stats = CompileCacheStats()


def compile_cache_stats() -> CompileCacheStats:
    """The live hit/miss counters (process-wide)."""
    return _cache_stats


def clear_compile_cache() -> None:
    """Drop every cached compilation and reset the counters."""
    _cache.clear()
    _cache_stats.hits = 0
    _cache_stats.misses = 0


def _hash_value(h, v) -> None:
    if isinstance(v, RaggedArray):
        h.update(b"ragged")
        _hash_value(h, v.flat)
        _hash_value(h, v.offsets)
    elif isinstance(v, np.ndarray):
        h.update(str(v.dtype).encode())
        h.update(str(v.shape).encode())
        h.update(np.ascontiguousarray(v).tobytes())
    else:
        h.update(repr(v).encode())


def _cache_key(
    source: str,
    hyper_values: dict,
    data_values: dict,
    options: CompileOptions,
    schedule: str | None,
) -> str:
    h = hashlib.sha256()
    for part in (source, repr(schedule), repr(options)):
        h.update(part.encode())
        h.update(b"\x00")
    for tag, values in (("hyper", hyper_values), ("data", data_values)):
        h.update(tag.encode())
        for name in sorted(values):
            h.update(name.encode())
            h.update(b"=")
            _hash_value(h, values[name])
            h.update(b";")
    return h.hexdigest()


def spec_cache_key(spec) -> str:
    """The compile-cache fingerprint of a
    :class:`repro.core.chains.SamplerSpec`.

    The warm worker pool keys its pools on this: two samplers whose
    specs fingerprint identically rebuild from the same cache entry, so
    a pool spawned for one serves repeated chain requests for the other
    without re-pickling or recompiling.
    """
    options = spec.options or CompileOptions()
    return _cache_key(
        spec.source, spec.hyper_values, spec.data_values, options,
        spec.schedule,
    )


def _hash_shape(h, v) -> None:
    """Hash a value's *shape signature* only: dtype + dimensions for
    arrays, the raw value for scalars (scalars parameterize model sizes,
    so two datasets agreeing on every scalar and every array shape
    exercise the same generated code)."""
    if isinstance(v, RaggedArray):
        h.update(b"ragged")
        h.update(str(v.flat.dtype).encode())
        h.update(str(v.flat.shape).encode())
        h.update(np.ascontiguousarray(v.offsets).tobytes())
    elif isinstance(v, np.ndarray):
        h.update(str(v.dtype).encode())
        h.update(str(v.shape).encode())
    else:
        h.update(repr(v).encode())


def shape_cache_key(
    source: str,
    hyper_values: dict,
    data_values: dict,
    options: CompileOptions | None = None,
    schedule: str | None = None,
) -> str:
    """The *data-shape* fingerprint of a compile request.

    Like :func:`_cache_key` but hashing array dtypes/shapes instead of
    their contents.  The schedule autotuner keys its verdict cache on
    this: a tuning tournament's winner depends on model structure and
    data sizes, not the observed values, so all datasets sharing a
    shape signature reuse one verdict.
    """
    options = options or CompileOptions()
    h = hashlib.sha256()
    h.update(b"shape\x00")
    for part in (source, repr(schedule), repr(options)):
        h.update(part.encode())
        h.update(b"\x00")
    for tag, values in (("hyper", hyper_values), ("data", data_values)):
        h.update(tag.encode())
        for name in sorted(values):
            h.update(name.encode())
            h.update(b"=")
            _hash_shape(h, values[name])
            h.update(b";")
    return h.hexdigest()


def _cache_get(key: str) -> _CacheEntry | None:
    entry = _cache.get(key)
    if entry is not None:
        _cache.move_to_end(key)
        _cache_stats.hits += 1
    else:
        _cache_stats.misses += 1
    return entry


def _cache_put(key: str, entry: _CacheEntry) -> None:
    _cache[key] = entry
    _cache.move_to_end(key)
    while len(_cache) > _CACHE_CAPACITY:
        _cache.popitem(last=False)


# ----------------------------------------------------------------------
# The driver.
# ----------------------------------------------------------------------


def compile_model(
    source: str,
    hyper_values: dict,
    data_values: dict,
    options: CompileOptions | None = None,
    schedule: str | None = None,
    proposals: dict | None = None,
) -> CompiledSampler:
    """Compile a model and a posterior-sampling query into a sampler.

    ``proposals`` optionally maps a variable name to a user MH proposal
    ``fn(value, rng) -> (candidate, log_q_ratio)``; the variable must be
    scheduled with the ``MH`` update (Section 4.4's "user-supplied MH
    proposals").
    """
    options = options or CompileOptions()
    t_start = time.perf_counter()

    cacheable = options.target == "cpu"
    key = None
    if cacheable:
        with trace.span("cache.lookup", cat="compile"):
            key = _cache_key(source, hyper_values, data_values, options, schedule)
            entry = _cache_get(key)
        trace.instant(
            "cache.hit" if entry is not None else "cache.miss", cat="compile",
            key=key[:16],
        )
        if entry is not None:
            return _assemble(
                entry, source, hyper_values, data_values, options, schedule,
                proposals, t_start, cache_status="hit",
            )

    # ---- Frontend -----------------------------------------------------
    with trace.span("frontend.parse", cat="compile"):
        model = parse_model(source)
    missing = [h for h in model.hypers if h not in hyper_values]
    if missing:
        raise ReproError(f"missing hyper-parameter values: {missing}")
    with trace.span("frontend.analyze", cat="compile"):
        hyper_types = {k: type_of_value(v) for k, v in hyper_values.items()}
        info = analyze_model(model, hyper_types)
    data_names = set(info.data_names())
    missing_data = data_names - set(data_values)
    if missing_data:
        raise ReproError(f"missing data values: {sorted(missing_data)}")
    with trace.span("density.extract", cat="compile"):
        fd = lower_and_factorize(model)

    env = dict(hyper_values)
    env.update({k: v for k, v in data_values.items() if k in data_names})

    # ---- Middle-end ----------------------------------------------------
    with trace.span(
        "kernel.select", cat="compile", user_schedule=schedule is not None
    ):
        if schedule is not None:
            kernel = validate_schedule(
                parse_schedule(schedule), fd, info,
                categorical_rule=options.categorical_rule,
            )
        else:
            kernel = heuristic_schedule(
                fd, info, categorical_rule=options.categorical_rule
            )

    decls: list[LowDecl] = []
    driver_specs: list[tuple] = []
    ws_specs: list = []
    ledger = CompileLedger()
    source_map = build_source_map(model)

    with trace.span("codegen.updates", cat="compile"):
        for upd in flatten(kernel):
            _record_kernel_choice(ledger, upd, user_schedule=schedule is not None)
            decl_infos = _generate_update(upd, fd, info, options, ledger)
            for low in decl_infos["decls"]:
                decls.append(low)
            ws_specs.extend(decl_infos["workspaces"])
            driver_specs.append((upd, decl_infos))

        init_decl = gen_init(info, fd)
        forward_decl = gen_forward(info, fd)
        model_ll_decl = gen_model_ll(fd)
        decls.append(lower_decl(init_decl, writes=tuple(info.param_names())))
        decls.append(lower_decl(forward_decl, writes=tuple(info.data_names())))
        decls.append(lower_decl(model_ll_decl))

    # Well-formedness check on every generated declaration (turns code
    # generator bugs into named compile-time errors).
    with trace.span("codegen.verify", cat="compile", n_decls=len(decls)):
        for low in decls:
            verify_decl(low.decl)

    # ---- Backend --------------------------------------------------------
    with trace.span("backend.plan", cat="compile"):
        plan = build_plan(info, env, tuple(ws_specs))
        ragged = _ragged_names(plan, env)

    # Probe each batched conditional: the batched driver is only wired
    # when every parallel loop of the declaration actually vectorises
    # (ragged gathers etc. fall back to the scalar per-element path).
    for _upd, gen_info in driver_specs:
        batch_low = gen_info.get("batch_low")
        if batch_low is not None:
            gen_info["batch_ok"] = decl_vectorizes(batch_low, ragged)
            if not gen_info["batch_ok"]:
                gen_info["batch_reason"] = (
                    "the generated batched conditional does not fully "
                    "vectorise (a parallel loop falls back to a Python "
                    "loop), so the scalar per-element path is faster"
                )
            trace.instant(
                "batch.vectorized" if gen_info["batch_ok"] else "batch.fallback",
                cat="compile",
                decl=batch_low.decl.name,
            )

    decl_provenance = {low.name: low.provenance for low in decls}
    op_count_exprs = {low.name: op_count_code(low.decl.body) for low in decls}

    if options.target == "gpu":
        return _assemble_gpu(
            decls, env, ragged, plan, driver_specs, info, options,
            source, hyper_values, data_values, schedule, proposals, t_start,
            ledger, source_map, op_count_exprs, decl_provenance,
        )

    with trace.span("backend.emit", cat="compile"):
        fallback_counts: dict[str, int] = {}
        source_text = emit_cpu_source(
            decls, ragged, vectorize=options.vectorize,
            fallback_counts=fallback_counts,
        )
        code = compile(source_text, "<augur_cpu>", "exec")
    for name, n_fallbacks in fallback_counts.items():
        if not options.vectorize:
            choice, why = "python-loops", (
                "whole-module vectorisation is disabled (vectorize=False)"
            )
        elif n_fallbacks:
            choice, why = "python-loops", (
                f"{n_fallbacks} parallel loop(s) fell back to interpreted "
                "Python loops (ragged gather or data-dependent indexing)"
            )
        else:
            choice, why = "vectorized", (
                "every parallel loop emitted as whole-vector NumPy"
            )
        ledger.record(
            "emit.vectorize", name, choice, why, decl_provenance.get(name)
        )
    entry = _CacheEntry(
        source_text=source_text,
        code=code,
        plan=plan,
        driver_specs=tuple(driver_specs),
        info=info,
        param_names=tuple(info.param_names()),
        data_names=frozenset(data_names),
        ledger=ledger,
        source_map=source_map,
        op_count_exprs=op_count_exprs,
        decl_provenance=decl_provenance,
    )
    if key is not None:
        _cache_put(key, entry)
    return _assemble(
        entry, source, hyper_values, data_values, options, schedule,
        proposals, t_start, cache_status="miss",
    )


def _assemble(
    entry: _CacheEntry,
    model_source: str,
    hyper_values: dict,
    data_values: dict,
    options: CompileOptions,
    schedule: str | None,
    proposals: dict | None,
    t_start: float,
    cache_status: str = "miss",
) -> CompiledSampler:
    """Turn a (possibly cached) compilation into a fresh sampler:
    re-``exec`` the code object, allocate fresh workspaces, and rewire
    the update drivers.  Nothing mutable is shared between samplers."""
    data = {k: v for k, v in data_values.items() if k in entry.data_names}
    env = dict(hyper_values)
    env.update(data)
    # Codegen-time decisions replay from the cached ledger; this
    # assembly appends its own wiring decisions to an independent clone.
    ledger = entry.ledger.clone()
    ledger.record(
        "compile.cache",
        "compilation",
        cache_status,
        (
            "an identical model+data+options compilation was served from "
            "the cache (codegen skipped; code object re-exec'd)"
            if cache_status == "hit"
            else "first compilation of this model+data+options key"
        ),
    )
    with trace.span("backend.exec", cat="compile"):
        module = exec_cpu_module(entry.source_text, code=entry.code)
        workspaces = allocate_workspaces(entry.plan)
        updates = _wire_drivers(
            entry.driver_specs, module.fn, entry.plan, options, proposals,
            ledger,
        )
    spec = SamplerSpec(
        source=model_source,
        hyper_values=dict(hyper_values),
        data_values=data,
        schedule=schedule,
        options=options,
        proposals=proposals,
    )
    return CompiledSampler(
        module=module,
        plan=entry.plan,
        workspaces=workspaces,
        updates=updates,
        init_fn=module.fn("init_state"),
        model_ll_fn=module.fn("model_ll"),
        base_env=env,
        param_names=entry.param_names,
        device=None,
        compile_seconds=time.perf_counter() - t_start,
        forward_fn=module.fn("forward_data"),
        info=entry.info,
        spec=spec,
        ledger=ledger,
        source_map=entry.source_map,
        op_count_exprs=entry.op_count_exprs,
        decl_provenance=entry.decl_provenance,
    )


def _assemble_gpu(
    decls, env, ragged, plan, driver_specs, info, options,
    model_source, hyper_values, data_values, schedule, proposals, t_start,
    ledger, source_map, op_count_exprs, decl_provenance,
) -> CompiledSampler:
    """The (uncached) GPU-target assembly: the simulated device holds
    per-sampler state, so every compilation builds a fresh module."""
    device = Device()
    module = compile_gpu_module(
        decls, env, ragged_names=ragged, cfg=options.blk_config()
    )
    ledger.record(
        "compile.cache",
        "compilation",
        "disabled",
        "the GPU target is uncacheable: the simulated device holds "
        "per-sampler state",
    )

    def bind(name: str):
        fn = module.fn(name)
        return lambda e, w, r: fn(e, w, r, device)

    workspaces = allocate_workspaces(plan)
    updates = _wire_drivers(
        tuple(driver_specs), bind, plan, options, proposals, ledger
    )
    data_names = frozenset(info.data_names())
    spec = SamplerSpec(
        source=model_source,
        hyper_values=dict(hyper_values),
        data_values={k: v for k, v in data_values.items() if k in data_names},
        schedule=schedule,
        options=options,
        proposals=proposals,
    )
    return CompiledSampler(
        module=module,
        plan=plan,
        workspaces=workspaces,
        updates=updates,
        init_fn=bind("init_state"),
        model_ll_fn=bind("model_ll"),
        base_env=env,
        param_names=tuple(info.param_names()),
        device=device,
        compile_seconds=time.perf_counter() - t_start,
        forward_fn=bind("forward_data"),
        info=info,
        spec=spec,
        ledger=ledger,
        source_map=source_map,
        op_count_exprs=op_count_exprs,
        decl_provenance=decl_provenance,
    )


def _wire_drivers(
    driver_specs: tuple, bind, plan, options: CompileOptions,
    proposals: dict | None, ledger: CompileLedger | None = None,
) -> list[UpdateDriver]:
    proposals = proposals or {}
    ledger = ledger if ledger is not None else CompileLedger()
    updates = [
        _make_driver(upd, gen, bind, plan, options, proposals, ledger)
        for upd, gen in driver_specs
    ]
    unused = set(proposals) - {
        t for upd, _ in driver_specs
        if upd.method is UpdateMethod.MH
        for t in upd.unit.names
    }
    if unused:
        raise ReproError(
            f"proposals supplied for variables without an MH update: "
            f"{sorted(unused)}"
        )
    return updates


# ----------------------------------------------------------------------
# Per-update code generation and driver wiring.
# ----------------------------------------------------------------------


def _record_kernel_choice(
    ledger: CompileLedger, upd: KBase, user_schedule: bool
) -> None:
    """One ``kernel.update`` ledger entry: which update kind this
    variable (or block) got, and the structural reason."""
    payload = upd.payload
    subject = ",".join(upd.unit.names)
    if isinstance(payload, ConjugacyMatch):
        choice = "Gibbs (conjugate)"
        reason = (
            f"the prior/likelihood pair matches the '{payload.rule}' "
            "conjugacy rule, so the conditional has closed form"
        )
    elif isinstance(payload, EnumerationMatch):
        choice = "Gibbs (enumerate)"
        reason = (
            "the discrete target has finite support, so the conditional "
            "is enumerated and normalised exactly"
        )
    elif isinstance(payload, BlockConditional):
        choice = upd.method.name
        reason = (
            "the block is continuous and differentiable, so a "
            "gradient-based update applies"
        )
    else:
        choice = upd.method.name
        reason = (
            "no closed-form conditional was found; an element-wise "
            "update targets the full conditional"
        )
    if user_schedule:
        reason = "fixed by the user schedule; " + reason
    ledger.record("kernel.update", subject, choice, reason, upd.provenance)


def _generate_update(
    upd: KBase, fd, info: ModelInfo, options: CompileOptions,
    ledger: CompileLedger,
) -> dict:
    method = upd.method
    payload = upd.payload
    out = {"decls": [], "workspaces": [], "names": {}}

    if method is UpdateMethod.GIBBS:
        if isinstance(payload, ConjugacyMatch):
            code = gen_gibbs_conjugate(payload, fd.lets)
        elif isinstance(payload, EnumerationMatch):
            code = gen_gibbs_enumeration(payload, fd.lets)
        else:
            raise ReproError(f"Gibbs update without a payload: {upd}")
        out["decls"].append(
            lower_decl(
                code.decl,
                workspaces=tuple(w.name for w in code.workspaces),
                writes=upd.unit.names,
            )
        )
        out["workspaces"].extend(code.workspaces)
        out["names"]["update"] = code.decl.name
        return out

    if method in (UpdateMethod.HMC, UpdateMethod.NUTS):
        blk: BlockConditional = payload
        subject = ",".join(upd.unit.names)
        ll_decl = gen_block_ll(blk, fd.lets)
        grad_decl = gen_grad(blk, fd.lets)
        out["decls"].append(lower_decl(ll_decl))
        out["decls"].append(lower_decl(grad_decl))
        out["names"]["ll"] = ll_decl.name
        out["names"]["grad"] = grad_decl.name
        if options.target != "cpu":
            ledger.record(
                "gradient.fusion", subject, "pair",
                "the fused value+gradient declaration is CPU-only; the "
                "GPU target evaluates the separate pair",
                upd.provenance,
            )
        elif not options.fuse_gradient:
            ledger.record(
                "gradient.fusion", subject, "pair",
                "disabled by options (fuse_gradient=False)",
                upd.provenance,
            )
        else:
            # The fused value+gradient declaration shares the forward
            # pass and accumulates adjoints into preallocated workspace
            # buffers.  Decl-level gating: any block fusion cannot
            # handle falls back to the separate pair above.
            try:
                fused_decl, fused_ws = gen_ll_grad(blk, fd.lets)
            except CodegenError as err:
                fused_decl = None
                ledger.record(
                    "gradient.fusion", subject, "pair",
                    f"fusion declined: {err}",
                    upd.provenance,
                )
            if fused_decl is not None:
                out["decls"].append(
                    lower_decl(
                        fused_decl,
                        workspaces=tuple(w.name for w in fused_ws),
                    )
                )
                out["workspaces"].extend(fused_ws)
                out["names"]["ll_grad"] = fused_decl.name
                ledger.record(
                    "gradient.fusion", subject, "fused",
                    "the log density and its gradient share one forward "
                    "pass with workspace adjoint buffers "
                    f"('{fused_decl.name}')",
                    upd.provenance,
                )
        return out

    cond: Conditional = payload
    include_prior = method is not UpdateMethod.ESLICE
    suffix = "" if include_prior else "_lik"
    ll_decl = gen_cond_ll(cond, fd.lets, include_prior=include_prior, suffix=suffix)
    out["decls"].append(lower_decl(ll_decl))
    out["names"]["ll"] = ll_decl.name
    # The first failing gate (or the batch generator's own refusal)
    # becomes the "why scalar" reason recorded when the driver is wired.
    if options.target != "cpu":
        out["batch_reason"] = "batched element updates are CPU-only"
    elif not options.vectorize:
        out["batch_reason"] = (
            "whole-module vectorisation is disabled (vectorize=False)"
        )
    elif not options.batch_elements:
        out["batch_reason"] = "disabled by options (batch_elements=False)"
    elif upd.opt("batch") == "off":
        out["batch_reason"] = (
            "disabled for this update by the schedule ([batch=off])"
        )
    else:
        why: list[str] = []
        batch = gen_cond_ll_batch(
            cond, fd, include_prior=include_prior, suffix=suffix, why=why
        )
        if batch is not None:
            batch_decl, batch_ws = batch
            batch_low = lower_decl(batch_decl, workspaces=(batch_ws.name,))
            out["decls"].append(batch_low)
            out["workspaces"].append(batch_ws)
            out["names"]["batch_ll"] = batch_decl.name
            out["batch_low"] = batch_low
        else:
            out["batch_reason"] = (
                why[0] if why
                else "the batched conditional could not be generated"
            )
    return out


def _make_driver(
    upd: KBase, gen: dict, bind, plan, options: CompileOptions,
    proposals=None, ledger: CompileLedger | None = None,
):
    proposals = proposals or {}
    ledger = ledger if ledger is not None else CompileLedger()
    method = upd.method
    names = gen["names"]
    target_list = upd.unit.names

    if method is UpdateMethod.GIBBS:
        drv = GibbsDriver(names["update"], target_list, bind(names["update"]))
        drv.profile_fns = {"_fn": names["update"]}
        return drv

    if method in (UpdateMethod.HMC, UpdateMethod.NUTS):
        blk: BlockConditional = upd.payload
        transforms = {}
        for t in target_list:
            support = _support_of(t, plan, upd)
            transforms[t] = transform_for_support(support)
        ll_grad_name = names.get("ll_grad")
        pack_plan = None
        if options.flat_state and options.target == "cpu":
            # None for ragged blocks -- the driver stays on the tree path.
            pack_plan = build_pack_plan(plan, target_list)
        drv = GradBlockDriver(
            name=names["ll"],
            targets=target_list,
            ll_fn=bind(names["ll"]),
            grad_fn=bind(names["grad"]),
            transforms=transforms,
            method="nuts" if method is UpdateMethod.NUTS else "hmc",
            step_size=float(upd.opt("step_size", options.hmc_step_size)),
            n_steps=int(upd.opt("steps", options.hmc_steps)),
            ll_grad_fn=bind(ll_grad_name) if ll_grad_name else None,
            pack_plan=pack_plan,
        )
        drv.profile_fns = {"_ll_fn": names["ll"], "_grad_fn": names["grad"]}
        if ll_grad_name:
            drv.profile_fns["_ll_grad_fn"] = ll_grad_name
        if drv._use_flat:
            choice, why = "flat", (
                f"the block packs into {pack_plan.total} contiguous slots "
                "with element-wise transforms; leapfrog integrates on the "
                "packed vector"
            )
        elif options.target != "cpu":
            choice, why = "tree", "the flat-state leapfrog path is CPU-only"
        elif not options.flat_state:
            choice, why = "tree", "disabled by options (flat_state=False)"
        elif pack_plan is None:
            choice, why = "tree", (
                "the block contains a ragged buffer, so no dense pack "
                "plan exists"
            )
        else:
            choice, why = "tree", (
                "a non-element-wise transform in the block prevents "
                "slice-wise application on the packed vector"
            )
        ledger.record("leapfrog.state", drv.label, choice, why, upd.provenance)
        drv.user_step_size = upd.opt("step_size", None) is not None
        if drv.user_step_size:
            a_choice, a_why = "fixed step size", (
                f"the schedule pins step_size={drv.step_size:g}; warmup "
                "adaptation stays off unless explicitly requested"
            )
        else:
            a_choice, a_why = "eligible", (
                "no pinned step size: dual-averaging step-size adaptation "
                "and windowed mass-matrix estimation engage when the run "
                "requests warmup sweeps"
            )
        ledger.record(
            "warmup.adaptation", drv.label, a_choice, a_why, upd.provenance
        )
        return drv

    cond: Conditional = upd.payload
    target = target_list[0]
    shape = plan.state[target]
    ll_fn = bind(names["ll"])
    # Batched drivers need the vectorisation probe to have passed; the
    # per-method guards below add the runtime-shape conditions the
    # symbolic eligibility check cannot see.
    batched = gen.get("batch_ok", False)

    def record_batch(drv, guard_reason=None):
        if drv.is_batched:
            choice, why = "batched", (
                "every element lane advances per whole-vector library "
                f"call against '{names['batch_ll']}'"
            )
        else:
            choice = "scalar"
            why = guard_reason or gen.get("batch_reason") or (
                "the batched conditional was not wired"
            )
        ledger.record("batch.elements", drv.label, choice, why, upd.provenance)
        drv.profile_fns = {"_ll_fn": names["ll"]}
        if drv.is_batched:
            drv.profile_fns["_bll_fn"] = names["batch_ll"]
        return drv

    if method is UpdateMethod.SLICE:
        width = float(upd.opt("width", 1.0))
        if batched and not shape.event:
            return record_batch(VectorizedSliceDriver(
                names["ll"], cond, shape, ll_fn, bind(names["batch_ll"]),
                width=width,
            ))
        return record_batch(
            SliceDriver(names["ll"], cond, shape, ll_fn, width=width),
            guard_reason=(
                "the target's elements are vectors (trailing event axes), "
                "which the per-lane bracketing cannot batch"
                if batched and shape.event else None
            ),
        )
    if method is UpdateMethod.ESLICE:
        lane_varying_prior = any(
            mentions(a, v) for a in cond.prior.args for v in cond.idx_vars
        )
        if batched and not lane_varying_prior:
            return record_batch(VectorizedESliceDriver(
                names["ll"], cond, shape, ll_fn, bind(names["batch_ll"])
            ))
        return record_batch(
            ESliceDriver(names["ll"], cond, shape, ll_fn),
            guard_reason=(
                "the Gaussian prior's parameters vary per lane, so one "
                "shared prior draw cannot serve every lane"
                if batched and lane_varying_prior else None
            ),
        )
    if method is UpdateMethod.MH:
        proposal = proposals.get(target)
        if proposal is None and upd.opt("proposal") is not None:
            # The schedule marked this update as user-proposal MH
            # (``MH[proposal=user]``) but no callable was registered.
            raise ReproError(
                f"MH {target}: the schedule requests a user proposal; pass "
                "one via setProposal / compile_model(proposals=...)"
            )
        scale = float(upd.opt("scale", 0.5))
        if batched and proposal is None and not shape.event:
            return record_batch(VectorizedMHDriver(
                names["ll"], cond, shape, ll_fn, bind(names["batch_ll"]),
                scale=scale,
            ))
        guard = None
        if batched and proposal is not None:
            guard = (
                "a user proposal function is registered, which the "
                "batched random-walk path cannot apply"
            )
        elif batched and shape.event:
            guard = (
                "the target's elements are vectors (trailing event axes), "
                "which the lane-wise random walk cannot batch"
            )
        return record_batch(
            MHDriver(
                names["ll"], cond, shape, ll_fn, scale=scale, proposal=proposal
            ),
            guard_reason=guard,
        )
    raise ReproError(f"no driver for update method {method}")


def _support_of(target: str, plan, upd: KBase) -> str:
    blk: BlockConditional = upd.payload
    for f in blk.factors:
        if f.source == target:
            from repro.runtime.distributions import lookup

            return lookup(f.dist).support
    raise ReproError(f"cannot determine the support of {target!r}")


def _ragged_names(plan, env: dict) -> frozenset[str]:
    names = {n for n, b in plan.state.items() if b.is_ragged}
    names |= {n for n, b in plan.workspaces.items() if b.is_ragged}
    names |= {n for n, v in env.items() if isinstance(v, RaggedArray)}
    return frozenset(names)
