"""The Low-- IL (paper Sections 5.1-5.2).

Structurally the same as Low++, but programs must manage memory
explicitly: every buffer an update touches -- model state, statistics
workspaces, enumeration tables, adjoints -- is described by an
allocation plan computed by *size inference* and allocated up front.
This is what bounds the memory of a compiled MCMC algorithm and what
makes GPU execution possible (no dynamic allocation in device code).
"""

from repro.core.lowmm.ir import LowDecl, lower_decl
from repro.core.lowmm.size_inference import (
    AllocationPlan,
    allocate,
    infer_state_layout,
)

__all__ = [
    "AllocationPlan",
    "LowDecl",
    "allocate",
    "infer_state_layout",
    "lower_decl",
]
