"""Size inference (paper Section 5.2).

"AugurV2 programs express fixed-structure models.  Consequently, we can
bound the amount of memory an inference algorithm uses and allocate it
up front."  Because compilation happens at runtime, every comprehension
bound can be evaluated against the supplied hyper-parameters and data,
giving exact shapes for:

- the **state layout**: one buffer per model parameter, shaped by its
  declaration generators plus the distribution's event shape;
- the **workspaces** requested by update code generators (statistics
  accumulators, enumeration logit tables).

Ragged comprehensions (a bound mentioning an earlier binder, e.g. LDA's
``j <- 0 until N[d]``) allocate flattened
:class:`~repro.runtime.vectors.RaggedArray` buffers, matching the
paper's flattened runtime representation of vectors of vectors
(Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.density.interp import eval_expr
from repro.core.exprs import Gen, mentions
from repro.core.frontend.symbols import ModelInfo
from repro.core.workspace import WorkspaceSpec
from repro.errors import SizeInferenceError
from repro.runtime.distributions import lookup
from repro.runtime.vectors import RaggedArray


@dataclass(frozen=True)
class BufferShape:
    """Resolved shape of one buffer.

    For dense buffers ``lead`` holds concrete dimensions; for ragged
    buffers ``row_lengths`` holds the per-row lengths of the final
    (dependent) leading dimension.
    """

    name: str
    lead: tuple[int, ...]
    row_lengths: np.ndarray | None
    event: tuple[int, ...]
    dtype: str

    @property
    def is_ragged(self) -> bool:
        return self.row_lengths is not None

    def n_elements(self) -> int:
        inner = int(np.prod(self.event, dtype=np.int64)) if self.event else 1
        if self.is_ragged:
            return int(self.row_lengths.sum()) * inner
        return int(np.prod(self.lead, dtype=np.int64)) * inner if self.lead else inner

    def nbytes(self) -> int:
        return self.n_elements() * np.dtype(self.dtype).itemsize


@dataclass
class AllocationPlan:
    """The up-front memory plan for a compiled sampler."""

    state: dict[str, BufferShape] = field(default_factory=dict)
    workspaces: dict[str, BufferShape] = field(default_factory=dict)

    def total_bytes(self) -> int:
        return sum(b.nbytes() for b in self.state.values()) + sum(
            b.nbytes() for b in self.workspaces.values()
        )

    def describe(self) -> str:
        lines = ["allocation plan:"]
        for group, bufs in (("state", self.state), ("workspace", self.workspaces)):
            for b in bufs.values():
                shape = (
                    f"ragged[{len(b.row_lengths)} rows, {int(b.row_lengths.sum())} elems]"
                    if b.is_ragged
                    else str(b.lead)
                )
                lines.append(
                    f"  {group:9s} {b.name:20s} {shape} x {b.event} {b.dtype} "
                    f"({b.nbytes()} bytes)"
                )
        lines.append(f"  total: {self.total_bytes()} bytes")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shape resolution.
# ----------------------------------------------------------------------


def _resolve_gens(gens: tuple[Gen, ...], env: dict, who: str):
    """Evaluate generator bounds -> (dense lead dims, ragged row lengths).

    Raggedness is only supported in the last generator (two-level
    vectors of vectors, the paper's ragged-array case).
    """
    binders = [g.var for g in gens]
    for i, g in enumerate(gens):
        deps = [b for b in binders[:i] if mentions(g.hi, b) or mentions(g.lo, b)]
        if deps and i != len(gens) - 1:
            raise SizeInferenceError(
                f"{who}: only the innermost comprehension may be ragged, "
                f"but generator {g.var!r} depends on {deps}"
            )
        if mentions(g.lo, g.var) or mentions(g.hi, g.var):
            raise SizeInferenceError(f"{who}: generator {g.var!r} bound mentions itself")

    lead: list[int] = []
    scope = dict(env)
    for g in gens[:-1] if gens else []:
        lo = int(eval_expr(g.lo, scope))
        hi = int(eval_expr(g.hi, scope))
        lead.append(hi - lo)
        scope[g.var] = lo
    if not gens:
        return (), None
    last = gens[-1]
    deps = [b for b in binders[:-1] if mentions(last.hi, b) or mentions(last.lo, b)]
    if not deps:
        lo = int(eval_expr(last.lo, scope))
        hi = int(eval_expr(last.hi, scope))
        return tuple(lead) + (hi - lo,), None
    if len(gens) != 2:
        raise SizeInferenceError(
            f"{who}: ragged comprehensions deeper than two levels are not supported"
        )
    outer = gens[0]
    olo = int(eval_expr(outer.lo, env))
    ohi = int(eval_expr(outer.hi, env))
    lengths = []
    for i in range(olo, ohi):
        scope = dict(env)
        scope[outer.var] = i
        lengths.append(int(eval_expr(last.hi, scope)) - int(eval_expr(last.lo, scope)))
    return (ohi - olo,), np.asarray(lengths, dtype=np.int64)


def _infer_layout(
    info: ModelInfo, env: dict, wanted: frozenset[str]
) -> dict[str, BufferShape]:
    """Shapes for the requested stochastic variables, in declaration
    order.  ``env`` must contain the hyper-parameters; every stochastic
    variable encountered is added to the scope as a zero buffer so later
    declarations can evaluate shape-relevant expressions against it.
    """
    out: dict[str, BufferShape] = {}
    scope = dict(env)
    for decl in info.model.decls:
        if not decl.is_stochastic:
            continue
        vinfo = info.info(decl.name)
        lead, row_lengths = _resolve_gens(decl.gens, scope, decl.name)
        dist = lookup(vinfo.dist_name)
        inner = dict(scope)
        for g in decl.gens:
            inner[g.var] = int(eval_expr(g.lo, inner))
        args = [eval_expr(a, inner) for a in decl.dist.args]
        event = tuple(int(s) for s in dist.event_shape(*args))
        dtype = "i8" if vinfo.is_discrete else "f8"
        shape = BufferShape(decl.name, lead, row_lengths, event, dtype)
        if decl.name in wanted:
            out[decl.name] = shape
        scope.setdefault(decl.name, _alloc_buffer(shape))
    return out


def infer_state_layout(info: ModelInfo, env: dict) -> dict[str, BufferShape]:
    """Shapes for every model parameter, in declaration order."""
    return _infer_layout(info, env, frozenset(info.param_names()))


def infer_data_layout(info: ModelInfo, env: dict) -> dict[str, BufferShape]:
    """Shapes for every observed variable (posterior-predictive output)."""
    return _infer_layout(info, env, frozenset(info.data_names()))


def _alloc_buffer(shape: BufferShape):
    if shape.is_ragged:
        return RaggedArray.full(
            shape.row_lengths, 0, dtype=np.dtype(shape.dtype), event_shape=shape.event
        )
    full = shape.lead + shape.event
    if not full:
        # Scalars live in the state dict directly, not as arrays.
        return np.dtype(shape.dtype).type(0)
    return np.zeros(full, dtype=np.dtype(shape.dtype))


def allocate_state(layout: dict[str, BufferShape]) -> dict:
    return {name: _alloc_buffer(shape) for name, shape in layout.items()}


def resolve_workspace(spec: WorkspaceSpec, env: dict) -> BufferShape:
    if spec.like is not None:
        if spec.like not in env:
            raise SizeInferenceError(
                f"{spec.name}: no buffer named {spec.like!r} to mirror"
            )
        v = env[spec.like]
        if isinstance(v, RaggedArray):
            return BufferShape(
                spec.name,
                (v.n_rows,),
                np.asarray(v.row_lengths(), dtype=np.int64),
                tuple(int(s) for s in v.flat.shape[1:]),
                spec.dtype,
            )
        shape = tuple(int(s) for s in np.shape(v))
        return BufferShape(spec.name, shape, None, (), spec.dtype)
    lead, row_lengths = _resolve_gens(spec.gens, env, spec.name)
    event = tuple(int(eval_expr(t, env)) for t in spec.trailing)
    return BufferShape(spec.name, lead, row_lengths, event, spec.dtype)


def allocate_workspaces(plan: AllocationPlan) -> dict:
    """Allocate every workspace buffer described by the plan."""
    out = {}
    for name, shape in plan.workspaces.items():
        buf = _alloc_buffer(shape)
        if not (shape.lead or shape.event or shape.is_ragged):
            buf = np.zeros((), dtype=np.dtype(shape.dtype))
        out[name] = buf
    return out


def allocate(specs, env: dict) -> dict:
    """Allocate every workspace spec against the runtime environment."""
    out = {}
    for spec in specs:
        shape = resolve_workspace(spec, env)
        buf = _alloc_buffer(shape)
        if not (shape.lead or shape.event or shape.is_ragged):
            # Degenerate scalar workspace: keep as 0-d array for in-place fills.
            buf = np.zeros((), dtype=np.dtype(shape.dtype))
        out[spec.name] = buf
    return out


# ----------------------------------------------------------------------
# Flat-state pack plans (gradient-based block updates).
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PackSlot:
    """One block variable's slice of the packed 1-D state vector."""

    name: str
    offset: int
    size: int
    shape: tuple[int, ...]

    @property
    def slice(self) -> slice:
        return slice(self.offset, self.offset + self.size)


@dataclass(frozen=True)
class PackPlan:
    """Compile-time layout mapping block variables onto one contiguous
    1-D vector.

    Built from the allocation plan's resolved shapes, so the layout is
    fixed for the sampler's lifetime; gradient-based updates integrate
    on the packed vector with whole-vector ops and unpack only at
    compiled-function boundaries (via zero-copy reshaped views).
    """

    slots: tuple[PackSlot, ...]
    total: int

    def pack(self, values: dict, out: np.ndarray | None = None) -> np.ndarray:
        """Concatenate per-variable values into the flat vector."""
        flat = np.empty(self.total, dtype=np.float64) if out is None else out
        for s in self.slots:
            flat[s.slice] = np.asarray(values[s.name], dtype=np.float64).reshape(-1)
        return flat

    def unpack_views(self, flat: np.ndarray) -> dict[str, np.ndarray]:
        """Per-variable *views* into ``flat`` (no copies), original shapes."""
        return {s.name: flat[s.slice].reshape(s.shape) for s in self.slots}


def build_pack_plan(plan: AllocationPlan, names) -> PackPlan | None:
    """The flat layout for the given state variables, in order.

    Returns ``None`` when any variable is ragged (no contiguous dense
    layout exists) -- callers then stay on the dict-of-arrays tree path.
    """
    slots: list[PackSlot] = []
    offset = 0
    for name in names:
        shape_info = plan.state.get(name)
        if shape_info is None or shape_info.is_ragged:
            return None
        shape = tuple(shape_info.lead) + tuple(shape_info.event)
        size = int(np.prod(shape, dtype=np.int64)) if shape else 1
        slots.append(PackSlot(name, offset, size, shape))
        offset += size
    return PackPlan(tuple(slots), offset)


def build_plan(
    info: ModelInfo, env: dict, specs: tuple[WorkspaceSpec, ...]
) -> AllocationPlan:
    plan = AllocationPlan()
    plan.state = infer_state_layout(info, env)
    # Workspace bounds may reference model parameters (e.g. the support
    # of a Categorical whose probability vector is itself inferred), so
    # resolve them against the state layout's zero buffers as well.
    scope = dict(env)
    for name, shape in plan.state.items():
        scope.setdefault(name, _alloc_buffer(shape))
    seen: set[str] = set()
    for spec in specs:
        if spec.name in seen:
            continue
        seen.add(spec.name)
        plan.workspaces[spec.name] = resolve_workspace(spec, scope)
    return plan
