"""Low-- declarations: Low++ plus explicit memory.

The paper: "The Low-- IL is structurally the same as the Low++ IL,
except that programs must manage memory explicitly."  We reuse the
Low++ statement forms and attach the memory information: the workspace
buffers a declaration reads and writes, resolved against an
:class:`~repro.core.lowmm.size_inference.AllocationPlan`.

The lowering step also performs the functional-primitive elimination of
Section 5.2 in a restricted form: whole-vector temporaries produced by
library calls (posterior parameters, adjoint buffers) are accounted for
in the plan so nothing inside a sampling sweep allocates unboundedly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.lowpp.ir import LDecl


@dataclass(frozen=True)
class LowDecl:
    """A Low++ declaration paired with its resolved memory requirements.

    ``workspaces`` names the buffers that must exist in the allocation
    plan before the declaration runs; ``writes`` names the state
    variables the declaration mutates (used by the synthesis step to
    maintain the dual-state invariant for rejectable updates).
    """

    decl: LDecl
    workspaces: tuple[str, ...]
    writes: tuple[str, ...]

    @property
    def name(self) -> str:
        return self.decl.name

    @property
    def provenance(self):
        """The Low++ declaration's source pointer, carried through the
        memory-explicit lowering unchanged."""
        return self.decl.provenance


def lower_decl(
    decl: LDecl,
    workspaces: tuple[str, ...] = (),
    writes: tuple[str, ...] = (),
) -> LowDecl:
    """Lower a Low++ declaration to Low--.

    The statement structure is preserved; what changes is the contract:
    from here on, every buffer the code touches must appear in the
    allocation plan (the interpreter and backends enforce this by
    refusing to create arrays implicitly).
    """
    return LowDecl(decl=decl, workspaces=tuple(workspaces), writes=tuple(writes))
