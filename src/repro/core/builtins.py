"""Compile-time metadata for the builtin operators ``opn``.

Each operator carries a typing rule (used by the frontend and IL type
checkers) and a Python spelling (used by the backends when emitting
code).  The numeric implementations live in :mod:`repro.runtime.ops`;
the adjoint rules used by the AD pass live in
:mod:`repro.core.lowpp.ad`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.types import INT, REAL, VEC_REAL, Ty, VecTy, unify_numeric
from repro.errors import TypeCheckError


@dataclass(frozen=True)
class Builtin:
    name: str
    arity: int
    type_rule: Callable[[tuple[Ty, ...]], Ty]
    #: Spelling in emitted Python code: either an infix operator string
    #: or ``None`` meaning "call ``_ops.<py_name>``".
    infix: str | None = None
    py_name: str | None = None


def _numeric_scalar(name: str, ty: Ty) -> None:
    if not ty.is_numeric_scalar():
        raise TypeCheckError(f"{name}: expected a numeric scalar, got {ty}")


def _binop_rule(name: str):
    def rule(tys: tuple[Ty, ...]) -> Ty:
        a, b = tys
        _numeric_scalar(name, a)
        _numeric_scalar(name, b)
        return unify_numeric(a, b)

    return rule


def _real_binop_rule(name: str):
    def rule(tys: tuple[Ty, ...]) -> Ty:
        for t in tys:
            _numeric_scalar(name, t)
        return REAL

    return rule


def _real_unop_rule(name: str):
    def rule(tys: tuple[Ty, ...]) -> Ty:
        _numeric_scalar(name, tys[0])
        return REAL

    return rule


def _neg_rule(tys: tuple[Ty, ...]) -> Ty:
    _numeric_scalar("neg", tys[0])
    return tys[0]


def _dotp_rule(tys: tuple[Ty, ...]) -> Ty:
    a, b = tys
    if not (isinstance(a, VecTy) and isinstance(b, VecTy)):
        raise TypeCheckError(f"dotp: expected two vectors, got {a} and {b}")
    if not (a.elem.is_numeric_scalar() and b.elem.is_numeric_scalar()):
        raise TypeCheckError("dotp: vectors must hold numeric scalars")
    return REAL


def _normalize_rule(tys: tuple[Ty, ...]) -> Ty:
    (a,) = tys
    if not isinstance(a, VecTy) or not a.elem.is_numeric_scalar():
        raise TypeCheckError(f"normalize: expected a numeric vector, got {a}")
    return VEC_REAL


def _len_rule(tys: tuple[Ty, ...]) -> Ty:
    (a,) = tys
    if not isinstance(a, VecTy):
        raise TypeCheckError(f"len: expected a vector, got {a}")
    return INT


def _eq_rule(tys: tuple[Ty, ...]) -> Ty:
    a, b = tys
    unify_numeric(a, b)
    return INT  # booleans are 0/1 integers, as in the ILs


BUILTINS: dict[str, Builtin] = {}


def _register(b: Builtin) -> None:
    BUILTINS[b.name] = b


for _name, _infix in (("+", "+"), ("-", "-"), ("*", "*")):
    _register(Builtin(_name, 2, _binop_rule(_name), infix=_infix))
_register(Builtin("/", 2, _real_binop_rule("/"), infix="/"))
_register(Builtin("neg", 1, _neg_rule, py_name="neg"))
_register(Builtin("pow", 2, _real_binop_rule("pow"), py_name="pow_"))
for _name in ("exp", "log", "sqrt", "sigmoid"):
    _register(Builtin(_name, 1, _real_unop_rule(_name), py_name=_name))
_register(Builtin("dotp", 2, _dotp_rule, py_name="dotp"))
_register(Builtin("normalize", 1, _normalize_rule, py_name="normalize"))
_register(Builtin("len", 1, _len_rule, py_name="vlen"))
_register(Builtin("==", 2, _eq_rule, infix="=="))
_register(Builtin("min", 2, _binop_rule("min"), py_name="min_"))
_register(Builtin("max", 2, _binop_rule("max"), py_name="max_"))


def lookup_builtin(name: str) -> Builtin:
    try:
        return BUILTINS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTINS))
        raise TypeCheckError(f"unknown operator {name!r}; known: {known}") from None


def is_builtin(name: str) -> bool:
    return name in BUILTINS
