"""Frontend lowering: surface AST -> Density IL (paper Section 3.1).

This step follows standard statistical practice: a model expressed with
random variables is converted into its description in terms of
densities.  Each stochastic declaration becomes a primitive density
``pdist(args)(var[idx...])`` wrapped in one structured product per
comprehension generator; the whole model is the product of these.
"""

from __future__ import annotations

from repro.core.density.ir import (
    DensityFn,
    DensityModel,
    DistPdf,
    Factor,
    FactorizedDensity,
    IndicatorD,
    LetD,
    ProdComp,
    ProdSeq,
)
from repro.core.exprs import Expr, Index, Var
from repro.core.frontend.ast import Decl, DeclKind, Model
from repro.errors import LoweringError


def _decl_at(decl: Decl) -> Expr:
    """The expression the density is evaluated at: ``name[i][j]...``."""
    e: Expr = Var(decl.name)
    for v in decl.idx_vars:
        e = Index(e, Var(v))
    return e


def _decl_density(decl: Decl) -> DensityFn:
    fn: DensityFn = DistPdf(decl.dist.dist, decl.dist.args, _decl_at(decl))
    for g in reversed(decl.gens):
        fn = ProdComp(g, fn)
    return fn


def lower_model(model: Model) -> DensityModel:
    """Lower a parsed model to the Density IL tree form.

    The binder list closes over hyper-parameters, then model parameters,
    then data, matching the paper's GMM example where the density object
    is ``lambda(K, N, mu_0, Sigma_0, pi, Sigma, mu, z, x). ...``.
    """
    binders = model.hypers + tuple(d.name for d in model.decls if d.is_stochastic)
    fns: list[DensityFn] = []
    lets: list[Decl] = []
    for d in model.decls:
        if d.kind is DeclKind.LET:
            if d.gens:
                raise LoweringError(
                    f"{d.name}: comprehension 'let' declarations are not supported; "
                    "inline the expression at its use sites"
                )
            lets.append(d)
        else:
            fns.append(_decl_density(d))
    body: DensityFn = fns[0] if len(fns) == 1 else ProdSeq(tuple(fns))
    for d in reversed(lets):
        body = LetD(d.name, d.rhs, body)
    return DensityModel(binders, body)


def factorize(dmodel: DensityModel) -> FactorizedDensity:
    """Flatten the density tree into the factor form.

    Products distribute through structured products; lets float to the
    top (they are scalar and non-recursive by construction); indicators
    become guards on the factors under them.
    """
    lets: list[tuple[str, Expr]] = []

    def go(fn: DensityFn, gens, guards) -> list[Factor]:
        match fn:
            case DistPdf(dist, args, at):
                return [
                    Factor(
                        gens=tuple(gens),
                        guards=tuple(guards),
                        dist=dist,
                        args=args,
                        at=at,
                        source=_source_name(at),
                    )
                ]
            case ProdSeq(fns):
                out: list[Factor] = []
                for f in fns:
                    out.extend(go(f, gens, guards))
                return out
            case ProdComp(gen, body):
                return go(body, gens + [gen], guards)
            case IndicatorD(body, lhs, rhs):
                return go(body, gens, guards + [(lhs, rhs)])
            case LetD(var, expr, body):
                lets.append((var, expr))
                return go(body, gens, guards)
            case _:
                raise LoweringError(f"cannot factorize density term {fn!r}")

    factors = go(dmodel.fn, [], [])
    return FactorizedDensity(
        binders=dmodel.binders, lets=tuple(lets), factors=tuple(factors)
    )


def _source_name(at: Expr) -> str:
    """The declared variable a density is attached to (head of ``at``)."""
    e = at
    while isinstance(e, Index):
        e = e.base
    if isinstance(e, Var):
        return e.name
    raise LoweringError(f"density evaluation point {at} has no head variable")


def lower_and_factorize(model: Model) -> FactorizedDensity:
    return factorize(lower_model(model))
