"""Reference interpreter for the Density IL factor form.

This is the slow, obviously-correct evaluator: it walks generators with
Python loops and sums primitive log densities.  It serves as the oracle
that generated sampler code is tested against, and as the fallback
evaluation path for updates on models the vectoriser cannot handle.
"""

from __future__ import annotations

import numpy as np

from repro.core.density.ir import Factor, FactorizedDensity
from repro.core.exprs import (
    Call,
    DistOp,
    Expr,
    Index,
    IntLit,
    RealLit,
    Var,
)
from repro.errors import RuntimeFailure
from repro.runtime import ops
from repro.runtime.distributions import lookup
from repro.runtime.vectors import RaggedArray


def eval_expr(e: Expr, env: dict):
    """Evaluate an expression against an environment of runtime values."""
    match e:
        case Var(name):
            try:
                return env[name]
            except KeyError:
                raise RuntimeFailure(f"unbound variable {name!r} at runtime") from None
        case IntLit(v):
            return v
        case RealLit(v):
            return v
        case Index(base, idx):
            b = eval_expr(base, env)
            i = int(eval_expr(idx, env))
            if isinstance(b, RaggedArray):
                return b.row(i)
            return b[i]
        case Call(fn, args):
            impl = ops.TABLE.get(fn)
            if impl is None:
                raise RuntimeFailure(f"no runtime implementation for operator {fn!r}")
            return impl(*(eval_expr(a, env) for a in args))
        case DistOp():
            raise RuntimeFailure("DistOp expressions belong to Low++, not Density IL")
        case _:
            raise RuntimeFailure(f"cannot evaluate expression {e!r}")


def _iter_gen_indices(gens, env: dict):
    """Yield environments with generator variables bound, row-major."""
    if not gens:
        yield env
        return
    g, rest = gens[0], gens[1:]
    lo = int(eval_expr(g.lo, env))
    hi = int(eval_expr(g.hi, env))
    for i in range(lo, hi):
        child = dict(env)
        child[g.var] = i
        yield from _iter_gen_indices(rest, child)


def factor_logpdf(factor: Factor, env: dict) -> float:
    """Total log density contributed by one factor."""
    dist = lookup(factor.dist)
    total = 0.0
    for scope in _iter_gen_indices(factor.gens, env):
        if any(
            int(eval_expr(a, scope)) != int(eval_expr(b, scope))
            for a, b in factor.guards
        ):
            continue
        args = [eval_expr(a, scope) for a in factor.args]
        at = eval_expr(factor.at, scope)
        lp = float(dist.logpdf(at, *args))
        if lp == -np.inf:
            return -np.inf
        total += lp
    return total


def bind_lets(fd: FactorizedDensity, env: dict) -> dict:
    """Extend ``env`` with the model's deterministic lets, in order."""
    out = dict(env)
    for name, e in fd.lets:
        out[name] = eval_expr(e, out)
    return out


def log_joint(fd: FactorizedDensity, env: dict) -> float:
    """Log joint density of the model at ``env`` (hypers + params + data)."""
    scope = bind_lets(fd, env)
    total = 0.0
    for f in fd.factors:
        lp = factor_logpdf(f, scope)
        if lp == -np.inf:
            return -np.inf
        total += lp
    return total
