"""Symbolic computation of model conditionals (paper Section 3.3).

Given the factorized density and a target variable ``v``, the compiler
computes the conditional ``p(v | everything else)`` up to a normalizing
constant by:

1. keeping only the factors with a functional dependence on ``v``
   (the cancellation step, isomorphic to conditional-independence
   computation in Bayesian networks);
2. aligning structured products with the target's own comprehension via
   the **factoring rule** -- ``prod_i fn1 prod_j fn2 -> prod_i fn1 fn2``
   when the comprehension bounds are syntactically equal;
3. rewriting mixture-indexed occurrences via the
   **categorical-indexing rule** -- ``prod_i fn -> prod_k prod_i
   [fn]_{k = z_i}`` when ``v`` is indexed through a Categorical
   variable ``z``.

The result is a :class:`Conditional`: the target's own generators form
the outer (parallel) loop structure, the prior factor and each aligned
likelihood factor are expressed *per element* of the target.  When a
factor cannot be aligned precisely the conditional is flagged
``imprecise`` and downstream phases fall back to whole-variable updates,
matching the paper's "precision in the approximation of the conditional
can be lost".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.density.ir import Factor, FactorizedDensity
from repro.core.exprs import (
    Expr,
    Gen,
    Index,
    Var,
    map_children,
)
from repro.core.frontend.symbols import ModelInfo
from repro.errors import LoweringError


@dataclass(frozen=True)
class Conditional:
    """The conditional of ``target`` up to a normalizing constant.

    ``gens``/``idx_vars`` come from the target's declaration and give
    the outer parallel structure: for an indexed target the conditional
    describes ``p(target[i...] | rest)`` with ``idx_vars`` free in the
    factors.  ``prior`` is the factor from the target's own declaration
    (generators stripped); ``likelihood`` holds every other dependent
    factor, aligned so that target generators are absorbed and only
    genuinely inner generators remain.
    """

    target: str
    gens: tuple[Gen, ...]
    idx_vars: tuple[str, ...]
    prior: Factor
    likelihood: tuple[Factor, ...]
    imprecise: bool = False
    #: True when some factor references the target as a whole vector
    #: (e.g. ``dotp(x[n], theta)``), so per-element updates are impossible.
    vector_dependence: bool = False

    @property
    def all_factors(self) -> tuple[Factor, ...]:
        return (self.prior,) + self.likelihood

    def __str__(self) -> str:
        head = self.target + "".join(f"[{v}]" for v in self.idx_vars)
        lines = [f"p({head} | rest) prop.to"]
        lines.extend(f"  {f}" for f in self.all_factors)
        if self.imprecise:
            lines.append("  (imprecise)")
        return "\n".join(lines)


@dataclass(frozen=True)
class BlockConditional:
    """Joint conditional of several variables: the union of dependent
    factors, kept in whole-model form (used by blocked/gradient updates)."""

    targets: tuple[str, ...]
    factors: tuple[Factor, ...]


# ----------------------------------------------------------------------
# Expression helpers.
# ----------------------------------------------------------------------


def _occurrences(e: Expr, name: str, out: list[tuple[Expr, ...]]) -> None:
    """Collect index paths at which ``name`` occurs in ``e``.

    ``mu[z[n]]`` contributes ``(z[n],)``; a bare ``theta`` contributes
    ``()``.  Nested indexing contributes the full path, outermost first.
    """
    path: list[Expr] = []
    node = e
    while isinstance(node, Index):
        path.append(node.index)
        node = node.base
    if isinstance(node, Var) and node.name == name:
        out.append(tuple(reversed(path)))
        # Indices may still mention the target (rare); recurse into them.
        for idx in path:
            _occurrences(idx, name, out)
        return
    from repro.core.exprs import children

    for c in children(e):
        _occurrences(c, name, out)


def occurrences_in_factor(factor: Factor, name: str) -> list[tuple[Expr, ...]]:
    out: list[tuple[Expr, ...]] = []
    for a in factor.args:
        _occurrences(a, name, out)
    _occurrences(factor.at, name, out)
    for a, b in factor.guards:
        _occurrences(a, name, out)
        _occurrences(b, name, out)
    return out


def lane_occurrence(
    factor: Factor, target: str, n_idx: int
) -> tuple[Expr, ...] | None:
    """The unique index path at which ``factor`` reads ``target``, when
    every read of a factor instance touches exactly one element lane.

    Batched element updates evaluate the conditional of *all* lanes of
    ``target`` simultaneously, which is only sound when each factor
    instance depends on a single element: the instance's contribution to
    lane ``path(gens)`` then sees the same value whether the other lanes
    hold their current or their candidate states.  Returns ``None`` when
    the factor reads the target at several distinct paths (lane
    coupling, e.g. an autoregressive prior), at a partial path (whole
    rows/vectors), or through a comprehension bound.
    """
    from repro.core.exprs import mentions

    occs = occurrences_in_factor(factor, target)
    if len(set(occs)) != 1:
        return None
    occ = occs[0]
    if len(occ) != n_idx:
        return None
    if any(
        mentions(g.lo, target) or mentions(g.hi, target) for g in factor.gens
    ):
        return None
    return occ


def replace_expr(e: Expr, old: Expr, new: Expr) -> Expr:
    """Replace every occurrence of sub-expression ``old`` (by structural
    equality) with ``new``."""
    if e == old:
        return new
    return map_children(e, lambda c: replace_expr(c, old, new))


def _replace_in_factor(factor: Factor, old: Expr, new: Expr) -> Factor:
    return Factor(
        gens=factor.gens,
        guards=tuple(
            (replace_expr(a, old, new), replace_expr(b, old, new))
            for a, b in factor.guards
        ),
        dist=factor.dist,
        args=tuple(replace_expr(a, old, new) for a in factor.args),
        at=replace_expr(factor.at, old, new),
        source=factor.source,
    )


def _head_var(e: Expr) -> str | None:
    node = e
    while isinstance(node, Index):
        node = node.base
    return node.name if isinstance(node, Var) else None


# ----------------------------------------------------------------------
# Alignment of one likelihood factor against the target declaration.
# ----------------------------------------------------------------------


@dataclass
class _AlignResult:
    factor: Factor
    imprecise: bool = False
    vector_dependence: bool = False


def _align_factor(
    factor: Factor,
    target: str,
    target_gens: tuple[Gen, ...],
    info: ModelInfo,
    categorical_rule: bool = True,
) -> _AlignResult:
    idx_vars = tuple(g.var for g in target_gens)
    occs = occurrences_in_factor(factor, target)
    if not occs:
        raise AssertionError("caller guarantees the factor mentions the target")
    distinct = set(occs)
    if len(distinct) > 1:
        return _AlignResult(factor, imprecise=True)
    occ = occs[0]
    if not idx_vars:
        # Scalar target: nothing to align; all factor generators stay inner.
        return _AlignResult(factor)
    if len(occ) == 0:
        # Whole-vector reference such as dotp(x[n], theta).
        return _AlignResult(factor, vector_dependence=True)

    result = factor
    absorbed: set[str] = set()
    for p, idx_expr in enumerate(occ[: len(idx_vars)]):
        binder = idx_vars[p]
        tgen = target_gens[p]
        if isinstance(idx_expr, Var):
            fgen = next((g for g in result.gens if g.var == idx_expr.name), None)
            if fgen is not None and fgen.bounds_equal(tgen):
                # Factoring rule: the factor's comprehension matches the
                # target's; absorb it into the conditional's outer product.
                if binder != fgen.var and any(g.var == binder for g in result.gens):
                    # Avoid capture: move the clashing generator aside first.
                    result = result.rename_gen(binder, f"_{binder}__shadow")
                result = result.rename_gen(fgen.var, binder)
                absorbed.add(binder)
                continue
        head = _head_var(idx_expr)
        head_info = info.vars.get(head) if head is not None else None
        if (
            categorical_rule
            and head_info is not None
            and head_info.dist_name == "Categorical"
        ):
            # Categorical-indexing rule: guard on k = z[...] and rewrite
            # the mixture index to the target binder under the guard.
            guard = (idx_expr, Var(binder))
            result = _replace_in_factor(result, idx_expr, Var(binder))
            result = Factor(
                gens=result.gens,
                guards=result.guards + (guard,),
                dist=result.dist,
                args=result.args,
                at=result.at,
                source=result.source,
            )
            absorbed.add(binder)
            continue
        return _AlignResult(factor, imprecise=True)

    new_gens = tuple(g for g in result.gens if g.var not in absorbed)
    result = Factor(
        gens=new_gens,
        guards=result.guards,
        dist=result.dist,
        args=result.args,
        at=result.at,
        source=result.source,
    )
    return _AlignResult(result)


# ----------------------------------------------------------------------
# Public API.
# ----------------------------------------------------------------------


def conditional(
    fd: FactorizedDensity,
    target: str,
    info: ModelInfo,
    categorical_rule: bool = True,
) -> Conditional:
    """Compute ``p(target | rest)`` up to a normalizing constant.

    ``categorical_rule=False`` disables the categorical-indexing rewrite
    (the DESIGN.md ablation): mixture-indexed factors then stay
    unfactored and the conditional is flagged imprecise.
    """
    decl_factors = fd.factors_of(target)
    if len(decl_factors) != 1:
        raise LoweringError(
            f"expected exactly one declaration factor for {target!r}, "
            f"found {len(decl_factors)}"
        )
    prior_full = decl_factors[0]
    target_gens = prior_full.gens
    idx_vars = tuple(g.var for g in target_gens)
    prior = Factor(
        gens=(),
        guards=prior_full.guards,
        dist=prior_full.dist,
        args=prior_full.args,
        at=prior_full.at,
        source=prior_full.source,
    )

    likelihood: list[Factor] = []
    imprecise = False
    vector_dependence = False
    for f in fd.factors:
        if f.source == target or not f.mentions(target):
            continue
        aligned = _align_factor(f, target, target_gens, info, categorical_rule)
        likelihood.append(aligned.factor)
        imprecise |= aligned.imprecise
        vector_dependence |= aligned.vector_dependence

    return Conditional(
        target=target,
        gens=target_gens,
        idx_vars=idx_vars,
        prior=prior,
        likelihood=tuple(likelihood),
        imprecise=imprecise,
        vector_dependence=vector_dependence,
    )


def blocked_factors(
    fd: FactorizedDensity, targets: tuple[str, ...]
) -> BlockConditional:
    """The joint conditional of ``targets``: all dependent factors, whole."""
    deps = tuple(
        f for f in fd.factors if any(f.mentions(t) or f.source == t for t in targets)
    )
    return BlockConditional(targets=tuple(targets), factors=deps)


def markov_blanket(fd: FactorizedDensity, target: str) -> frozenset[str]:
    """Names appearing in the conditional of ``target`` (excluding it)."""
    names: set[str] = set()
    for f in fd.factors:
        if f.source == target or f.mentions(target):
            names |= f.free_names()
    names.discard(target)
    return frozenset(names)
