"""Density IL terms (paper Figure 4) and their normalised factor form.

Two representations coexist:

1. The **tree form** mirrors the paper's grammar exactly::

       fn ::= pdist(e...)(e) | fn fn | prod_{x<-gen} fn
            | let x = e in fn | [fn]_{x=e}

2. The **factor form** (:class:`FactorizedDensity`) flattens the tree
   into a product of :class:`Factor` terms, each a primitive density
   under a stack of comprehension generators and equality guards.  The
   conditional-computation rewrites (Section 3.3) operate on this form;
   it is equivalent for the models the language can express, because
   the tree is always a product of comprehension-wrapped primitive
   densities (optionally under lets and indicators).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exprs import Expr, Gen, Var, free_vars, mentions, subst


class DensityFn:
    """Base class for density tree terms."""


@dataclass(frozen=True)
class DistPdf(DensityFn):
    """``pdist(args...)(at)`` -- a primitive density evaluated at ``at``."""

    dist: str
    args: tuple[Expr, ...]
    at: Expr

    def __str__(self) -> str:
        return f"p{self.dist}({', '.join(map(str, self.args))})({self.at})"


@dataclass(frozen=True)
class ProdSeq(DensityFn):
    """``fn1 fn2 ... fnN`` -- product of densities (n-ary for convenience)."""

    fns: tuple[DensityFn, ...]

    def __str__(self) -> str:
        return " ".join(f"({f})" for f in self.fns)


@dataclass(frozen=True)
class ProdComp(DensityFn):
    """``prod_{x <- gen} fn`` -- a structured product."""

    gen: Gen
    body: DensityFn

    def __str__(self) -> str:
        return f"prod[{self.gen}] ({self.body})"


@dataclass(frozen=True)
class LetD(DensityFn):
    """``let x = e in fn``."""

    var: str
    expr: Expr
    body: DensityFn

    def __str__(self) -> str:
        return f"let {self.var} = {self.expr} in ({self.body})"


@dataclass(frozen=True)
class IndicatorD(DensityFn):
    """``[fn]_{lhs = rhs}`` -- the indicator density of Section 3.1."""

    body: DensityFn
    lhs: Expr
    rhs: Expr

    def __str__(self) -> str:
        return f"[{self.body}]_{{{self.lhs} = {self.rhs}}}"


@dataclass(frozen=True)
class DensityModel:
    """Top level: ``lambda(binders...). fn`` (Figure 4 ``obj``)."""

    binders: tuple[str, ...]
    fn: DensityFn

    def __str__(self) -> str:
        return f"lambda({', '.join(self.binders)}). {self.fn}"


# ----------------------------------------------------------------------
# Factor form.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Factor:
    """One primitive density under generators and guards.

    Denotes ``prod_{gens} [ pdist(args)(at) ]_{guards}`` where each
    guard ``(a, b)`` asserts ``a == b`` (the factor contributes 1 when
    the guard fails).  ``source`` records which declaration produced the
    factor, which code generators use for naming.
    """

    gens: tuple[Gen, ...]
    guards: tuple[tuple[Expr, Expr], ...]
    dist: str
    args: tuple[Expr, ...]
    at: Expr
    source: str = ""

    @property
    def provenance(self):
        """Source pointer: the model statement this factor scores."""
        from repro.core.provenance import Provenance

        return Provenance(stmt=self.source, stage="density")

    def mentions(self, name: str) -> bool:
        if any(mentions(e, name) for e in self.args) or mentions(self.at, name):
            return True
        if any(mentions(a, name) or mentions(b, name) for a, b in self.guards):
            return True
        return any(
            mentions(g.lo, name) or mentions(g.hi, name) for g in self.gens
        )

    def free_names(self) -> frozenset[str]:
        names: set[str] = set()
        for e in self.args:
            names |= free_vars(e)
        names |= free_vars(self.at)
        for a, b in self.guards:
            names |= free_vars(a) | free_vars(b)
        for g in self.gens:
            names |= free_vars(g.lo) | free_vars(g.hi)
        return frozenset(names - {g.var for g in self.gens})

    def rename_gen(self, old: str, new: str) -> "Factor":
        """Alpha-rename a generator variable throughout the factor."""
        if old == new:
            return self
        mapping = {old: Var(new)}
        gens = tuple(
            Gen(new if g.var == old else g.var, subst(g.lo, mapping), subst(g.hi, mapping))
            for g in self.gens
        )
        return Factor(
            gens=gens,
            guards=tuple(
                (subst(a, mapping), subst(b, mapping)) for a, b in self.guards
            ),
            dist=self.dist,
            args=tuple(subst(a, mapping) for a in self.args),
            at=subst(self.at, mapping),
            source=self.source,
        )

    def __str__(self) -> str:
        s = f"p{self.dist}({', '.join(map(str, self.args))})({self.at})"
        for a, b in reversed(self.guards):
            s = f"[{s}]_{{{a}={b}}}"
        for g in reversed(self.gens):
            s = f"prod[{g}] {s}"
        return s


@dataclass(frozen=True)
class FactorizedDensity:
    """A model as a flat product of factors plus deterministic lets.

    ``lets`` bind scalar deterministic transformations, in declaration
    order; every factor may reference them.
    """

    binders: tuple[str, ...]
    lets: tuple[tuple[str, Expr], ...]
    factors: tuple[Factor, ...]

    def factors_of(self, source: str) -> tuple[Factor, ...]:
        return tuple(f for f in self.factors if f.source == source)

    def mentioning(self, name: str) -> tuple[Factor, ...]:
        return tuple(f for f in self.factors if f.mentions(name))

    def __str__(self) -> str:
        lines = [f"lambda({', '.join(self.binders)})."]
        for name, e in self.lets:
            lines.append(f"  let {name} = {e}")
        lines.extend(f"  {f}" for f in self.factors)
        return "\n".join(lines)
