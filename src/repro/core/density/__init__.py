"""The Density IL (paper Section 3).

The Density IL encodes the density factorization of a model.  The
compiler lowers the surface AST into a density *tree* (the Figure 4
grammar), normalises it into a flat product of :class:`Factor` terms,
and computes per-variable conditionals symbolically with the factoring
and categorical-indexing rewrite rules of Section 3.3.
"""

from repro.core.density.conditionals import blocked_factors, conditional
from repro.core.density.ir import (
    DensityModel,
    DistPdf,
    Factor,
    FactorizedDensity,
    IndicatorD,
    LetD,
    ProdComp,
    ProdSeq,
)
from repro.core.density.lower import factorize, lower_model

__all__ = [
    "DensityModel",
    "DistPdf",
    "Factor",
    "FactorizedDensity",
    "IndicatorD",
    "LetD",
    "ProdComp",
    "ProdSeq",
    "blocked_factors",
    "conditional",
    "factorize",
    "lower_model",
]
