"""Numeric implementations of the builtin operators ``opn``.

Generated sampler code and the IL interpreters call these.  Every
operator is vectorised: scalar arguments broadcast, so a ``Par`` loop
body that uses ``sigmoid`` works unchanged when the backend collapses
the loop into one batched call.
"""

from __future__ import annotations

import numpy as np


def add(a, b):
    return np.add(a, b)


def sub(a, b):
    return np.subtract(a, b)


def mul(a, b):
    return np.multiply(a, b)


def div(a, b):
    return np.divide(a, b)


def neg(a):
    return np.negative(a)


def pow_(a, b):
    return np.power(a, b)


def exp(a):
    return np.exp(a)


def log(a):
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.log(a)


def sqrt(a):
    return np.sqrt(a)


def sigmoid(a):
    """Numerically stable logistic function."""
    a = np.asarray(a, dtype=np.float64)
    out = np.empty_like(a)
    pos = a >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
    ea = np.exp(a[~pos])
    out[~pos] = ea / (1.0 + ea)
    return out if out.ndim else float(out)


def dotp(a, b):
    """Inner product along the last axis (batched)."""
    return np.sum(np.asarray(a) * np.asarray(b), axis=-1)


def normalize(a):
    """Scale a (batch of) non-negative vector(s) to sum to one."""
    a = np.asarray(a, dtype=np.float64)
    return a / np.sum(a, axis=-1, keepdims=True)


def vlen(a):
    """Length of a vector (the surface builtin ``len``)."""
    return np.asarray(a).shape[-1]


def eq(a, b):
    return np.equal(a, b)


def min_(a, b):
    return np.minimum(a, b)


def max_(a, b):
    return np.maximum(a, b)


def logsumexp(a, axis=-1):
    a = np.asarray(a, dtype=np.float64)
    m = np.max(a, axis=axis, keepdims=True)
    m = np.where(np.isfinite(m), m, 0.0)
    with np.errstate(divide="ignore"):
        return np.squeeze(m, axis=axis) + np.log(np.sum(np.exp(a - m), axis=axis))


#: Mapping from surface operator name to implementation; the backends
#: emit calls through this table (``ops.TABLE['sigmoid']``) so adding an
#: operator never touches the code generators.
TABLE = {
    "+": add,
    "-": sub,
    "*": mul,
    "/": div,
    "neg": neg,
    "pow": pow_,
    "exp": exp,
    "log": log,
    "sqrt": sqrt,
    "sigmoid": sigmoid,
    "dotp": dotp,
    "normalize": normalize,
    "len": vlen,
    "==": eq,
    "min": min_,
    "max": max_,
}
