"""Flattened ragged-array representation (paper Section 6.2).

AugurV2 supports vectors of vectors (ragged arrays) in its surface
syntax, but the runtime stores the data in one flat, contiguous buffer
paired with an index structure.  The flat buffer makes it possible to
map an operation over *all* elements at once (the GPU-friendly layout,
and equally the NumPy-friendly layout), while the index structure keeps
random access ``v[i][j]`` cheap.

:class:`RaggedArray` here plays the role of the paper's paired
"pointer-directed structure + flattened contiguous array".
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class RaggedArray:
    """A vector of variable-length vectors stored as one flat buffer.

    ``flat`` holds every element contiguously; ``offsets`` (length
    ``n_rows + 1``) holds the CSR-style row starts, so row ``i`` is
    ``flat[offsets[i]:offsets[i+1]]``.
    """

    __slots__ = ("flat", "offsets")

    def __init__(self, flat: np.ndarray, offsets: np.ndarray):
        flat = np.ascontiguousarray(flat)
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.ndim != 1 or offsets.size == 0 or offsets[0] != 0:
            raise ValueError("offsets must be 1-D, non-empty, and start at 0")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if offsets[-1] != flat.shape[0]:
            raise ValueError(
                f"offsets end at {offsets[-1]} but flat buffer has {flat.shape[0]} rows"
            )
        self.flat = flat
        self.offsets = offsets

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Iterable[Sequence], dtype=None) -> "RaggedArray":
        """Build from an iterable of per-row sequences (possibly ragged)."""
        rows = [np.asarray(r, dtype=dtype) for r in rows]
        lengths = np.array([r.shape[0] for r in rows], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        if rows:
            flat = np.concatenate(rows) if offsets[-1] > 0 else np.empty(
                (0,) + rows[0].shape[1:], dtype=rows[0].dtype
            )
        else:
            flat = np.empty(0, dtype=dtype or np.float64)
        return cls(flat, offsets)

    @classmethod
    def full(
        cls,
        lengths: Sequence[int],
        fill_value=0.0,
        dtype=np.float64,
        event_shape: tuple[int, ...] = (),
    ) -> "RaggedArray":
        """Allocate with the given row lengths, filled with a constant.

        ``event_shape`` appends fixed trailing dimensions to every
        element (e.g. a per-token logit vector), so row ``i`` has shape
        ``(lengths[i], *event_shape)``.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        flat = np.full((int(offsets[-1]),) + tuple(event_shape), fill_value, dtype=dtype)
        return cls(flat, offsets)

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return self.offsets.size - 1

    @property
    def n_elems(self) -> int:
        return int(self.offsets[-1])

    def row_lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    def row(self, i: int) -> np.ndarray:
        """A *view* onto row ``i`` of the flat buffer."""
        return self.flat[self.offsets[i] : self.offsets[i + 1]]

    def __getitem__(self, i: int) -> np.ndarray:
        return self.row(i)

    def __len__(self) -> int:
        return self.n_rows

    def __iter__(self):
        for i in range(self.n_rows):
            yield self.row(i)

    def row_index(self) -> np.ndarray:
        """For each flat element, the row it belongs to.

        This is the gather map that lets a map over ``v[d][j]`` run as
        one vector operation over the flat buffer -- e.g. for LDA,
        ``theta[doc_of_token]`` indexes the per-document parameters for
        every token at once.
        """
        return np.repeat(np.arange(self.n_rows), self.row_lengths())

    def position_index(self) -> np.ndarray:
        """For each flat element, its position within its row."""
        return np.arange(self.n_elems) - np.repeat(self.offsets[:-1], self.row_lengths())

    # ------------------------------------------------------------------
    # Whole-structure operations.
    # ------------------------------------------------------------------

    def copy(self) -> "RaggedArray":
        return RaggedArray(self.flat.copy(), self.offsets.copy())

    def map_flat(self, fn) -> "RaggedArray":
        """Apply a vectorised function across the flat buffer."""
        return RaggedArray(fn(self.flat), self.offsets)

    def to_rows(self) -> list[np.ndarray]:
        return [self.row(i).copy() for i in range(self.n_rows)]

    def same_shape(self, other: "RaggedArray") -> bool:
        return np.array_equal(self.offsets, other.offsets)

    def __repr__(self) -> str:
        return f"RaggedArray(n_rows={self.n_rows}, n_elems={self.n_elems})"


def as_ragged(value, dtype=None) -> RaggedArray:
    """Coerce nested lists / lists of arrays / RaggedArray to RaggedArray."""
    if isinstance(value, RaggedArray):
        return value
    return RaggedArray.from_rows(value, dtype=dtype)
