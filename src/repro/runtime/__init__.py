"""Runtime library for compiled samplers (paper Section 6.2).

The AugurV2 runtime was written in Cuda/C and provided primitive
functions, primitive distributions, MCMC library code, and vector
operations.  This package is the Python analogue:

- :mod:`repro.runtime.distributions` -- primitive distributions with
  vectorised ``logpdf`` / ``sample`` / ``grad`` operations,
- :mod:`repro.runtime.vectors` -- the flattened ragged-array
  representation used for vectors of vectors,
- :mod:`repro.runtime.mcmc` -- library code for the base MCMC updates
  (leapfrog/HMC, NUTS, slice samplers, MH acceptance machinery),
- :mod:`repro.runtime.rng` -- the random-number substrate,
- :mod:`repro.runtime.transforms` -- bijective reparameterisations used
  by gradient-based updates on constrained variables.
"""

from repro.runtime.rng import Rng

__all__ = ["Rng"]
