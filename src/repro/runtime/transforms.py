"""Bijective reparameterisations for constrained parameters.

Gradient-based updates (HMC, NUTS) operate on an unconstrained space.
When the heuristic scheduler assigns such an update to a variable with
constrained support -- e.g. ``sigma2 ~ Exponential(lam)`` in the HLR
model, which is positive -- the compiler wraps the variable in one of
these transforms.  Each transform contributes the log-Jacobian of the
inverse map to the target density, which is the standard change of
variables used by Stan.
"""

from __future__ import annotations

import numpy as np


class Transform:
    """A bijection between a constrained space and the real line."""

    name: str

    #: True when the map is element-wise and size-preserving, so a
    #: packed flat state vector can apply it slice-by-slice.  The
    #: stick-breaking transform changes dimensionality and stays False.
    elementwise: bool = False

    def to_unconstrained(self, x):
        raise NotImplementedError

    def to_constrained(self, z):
        raise NotImplementedError

    def log_jacobian(self, z):
        """``log |d constrained / d z|`` at unconstrained point ``z``."""
        raise NotImplementedError

    def grad_log_jacobian(self, z):
        """Gradient of :meth:`log_jacobian` w.r.t. ``z``."""
        raise NotImplementedError

    def grad_constrained_wrt_z(self, z):
        """``d constrained / d z`` (for chain-ruling density gradients)."""
        raise NotImplementedError


class IdentityTransform(Transform):
    name = "identity"
    elementwise = True

    def to_unconstrained(self, x):
        return np.asarray(x, dtype=np.float64)

    def to_constrained(self, z):
        return np.asarray(z, dtype=np.float64)

    def log_jacobian(self, z):
        return np.zeros_like(np.asarray(z, dtype=np.float64))

    def grad_log_jacobian(self, z):
        return np.zeros_like(np.asarray(z, dtype=np.float64))

    def grad_constrained_wrt_z(self, z):
        return np.ones_like(np.asarray(z, dtype=np.float64))


class LogTransform(Transform):
    """Positive reals <-> reals via ``x = exp(z)``."""

    name = "log"
    elementwise = True

    def to_unconstrained(self, x):
        return np.log(np.asarray(x, dtype=np.float64))

    def to_constrained(self, z):
        # A diverging leapfrog trajectory may push z to overflow; the
        # resulting inf density evaluates to -inf and gets rejected.
        with np.errstate(over="ignore"):
            return np.exp(np.asarray(z, dtype=np.float64))

    def log_jacobian(self, z):
        return np.asarray(z, dtype=np.float64)

    def grad_log_jacobian(self, z):
        return np.ones_like(np.asarray(z, dtype=np.float64))

    def grad_constrained_wrt_z(self, z):
        with np.errstate(over="ignore"):
            return np.exp(np.asarray(z, dtype=np.float64))


class LogitTransform(Transform):
    """Open unit interval <-> reals via ``x = sigmoid(z)``."""

    name = "logit"
    elementwise = True

    def to_unconstrained(self, x):
        x = np.asarray(x, dtype=np.float64)
        return np.log(x) - np.log1p(-x)

    def to_constrained(self, z):
        z = np.asarray(z, dtype=np.float64)
        return 1.0 / (1.0 + np.exp(-z))

    def log_jacobian(self, z):
        z = np.asarray(z, dtype=np.float64)
        # log sigmoid(z) + log (1 - sigmoid(z)), computed stably.  A
        # diverged trajectory may hand us nan/inf; propagate quietly and
        # let the acceptance test reject.
        with np.errstate(invalid="ignore"):
            return -np.logaddexp(0.0, z) - np.logaddexp(0.0, -z)

    def grad_log_jacobian(self, z):
        z = np.asarray(z, dtype=np.float64)
        return 1.0 - 2.0 / (1.0 + np.exp(-z))

    def grad_constrained_wrt_z(self, z):
        s = self.to_constrained(z)
        return s * (1.0 - s)


class StickBreakingTransform(Transform):
    """K-simplex <-> R^(K-1) via the stick-breaking construction.

    Used when a gradient-based update is assigned to a Dirichlet
    variable.  Follows the Stan reference construction.
    """

    name = "stick_breaking"

    def __init__(self, k: int):
        if k < 2:
            raise ValueError("simplex dimension must be at least 2")
        self.k = k

    def to_unconstrained(self, x):
        x = np.asarray(x, dtype=np.float64)
        k = self.k
        remaining = 1.0 - np.concatenate(
            [np.zeros(x.shape[:-1] + (1,)), np.cumsum(x[..., :-1], axis=-1)], axis=-1
        )
        frac = x[..., :-1] / remaining[..., :-1]
        offsets = np.log(np.arange(k - 1, 0, -1, dtype=np.float64))
        return np.log(frac) - np.log1p(-frac) + offsets

    def to_constrained(self, z):
        z = np.asarray(z, dtype=np.float64)
        k = self.k
        offsets = np.log(np.arange(k - 1, 0, -1, dtype=np.float64))
        frac = 1.0 / (1.0 + np.exp(-(z - offsets)))
        out = np.empty(z.shape[:-1] + (k,))
        remaining = np.ones(z.shape[:-1])
        for i in range(k - 1):
            out[..., i] = frac[..., i] * remaining
            remaining = remaining - out[..., i]
        out[..., -1] = remaining
        return out

    def log_jacobian(self, z):
        z = np.asarray(z, dtype=np.float64)
        k = self.k
        offsets = np.log(np.arange(k - 1, 0, -1, dtype=np.float64))
        zc = z - offsets
        log_frac = -np.logaddexp(0.0, -zc)
        log_one_minus = -np.logaddexp(0.0, zc)
        x = self.to_constrained(z)
        remaining = 1.0 - np.concatenate(
            [np.zeros(z.shape[:-1] + (1,)), np.cumsum(x[..., :-1], axis=-1)], axis=-1
        )[..., :-1]
        with np.errstate(divide="ignore"):
            log_remaining = np.log(np.maximum(remaining, 1e-300))
        return np.sum(log_frac + log_one_minus + log_remaining, axis=-1)

    def grad_log_jacobian(self, z):
        # The analytic form is unwieldy; central differences are exact
        # enough for leapfrog integration and keep this module compact.
        z = np.asarray(z, dtype=np.float64)
        eps = 1e-6
        grad = np.zeros_like(z)
        for i in range(z.shape[-1]):
            zp, zm = z.copy(), z.copy()
            zp[..., i] += eps
            zm[..., i] -= eps
            grad[..., i] = (self.log_jacobian(zp) - self.log_jacobian(zm)) / (2 * eps)
        return grad

    def grad_constrained_wrt_z(self, z):
        # Full Jacobian matrix d x / d z, shape (K, K-1).
        z = np.asarray(z, dtype=np.float64)
        eps = 1e-6
        k = self.k
        jac = np.zeros(z.shape[:-1] + (k, k - 1))
        for i in range(k - 1):
            zp, zm = z.copy(), z.copy()
            zp[..., i] += eps
            zm[..., i] -= eps
            jac[..., :, i] = (self.to_constrained(zp) - self.to_constrained(zm)) / (
                2 * eps
            )
        return jac


def transform_for_support(support: str, dim: int | None = None) -> Transform:
    """Pick the unconstraining transform for a distribution support tag."""
    if support in ("real", "real_vec"):
        return IdentityTransform()
    if support == "pos_real":
        return LogTransform()
    if support == "unit_interval":
        return LogitTransform()
    if support == "simplex":
        if dim is None:
            raise ValueError("simplex transform requires the dimension")
        return StickBreakingTransform(dim)
    raise ValueError(f"no unconstraining transform for support {support!r}")
