"""MCMC library routines called from generated code.

The paper's runtime provides "additional MCMC library code" in Cuda/C;
generated updates call into it for the algebra that is fixed per
conjugacy rule (posterior-parameter computation) and for sampling
helpers.  The generated Low++ code references these as ``lib.<name>``
calls; the statistics traversals themselves (counts, sums, scatters)
are generated per model, which is where compilation pays off.
"""

from __future__ import annotations

import numpy as np


def normal_normal_post(mu0, v0, prec_acc, mean_acc):
    """Posterior (mean, var) for a Normal mean under Normal likelihoods.

    ``prec_acc``/``mean_acc`` accumulate ``sum 1/v_i`` and ``sum y_i/v_i``
    over likelihood terms; the prior contributes analytically.
    """
    prec = 1.0 / v0 + prec_acc
    post_var = 1.0 / prec
    post_mean = post_var * (mu0 / v0 + mean_acc)
    return post_mean, post_var


def mvnormal_post(mu0, sigma0, sigma, sum_y, cnt):
    """Posterior (mean, cov) for an MvNormal mean with known covariance.

    Supports batched statistics: ``sum_y`` of shape ``(..., D)``, ``cnt``
    of shape ``(...)``, ``sigma`` of shape ``(D, D)`` or ``(..., D, D)``.
    """
    sum_y = np.asarray(sum_y, dtype=np.float64)
    cnt = np.asarray(cnt, dtype=np.float64)
    lam0 = np.linalg.inv(sigma0)
    lam = np.linalg.inv(sigma)
    lam_post = lam0 + cnt[..., None, None] * lam
    cov_post = np.linalg.inv(lam_post)
    rhs = (lam0 @ np.asarray(mu0, dtype=np.float64)) + np.einsum(
        "...ij,...j->...i", lam, sum_y
    )
    mean_post = np.einsum("...ij,...j->...i", cov_post, rhs)
    return mean_post, cov_post


def invwishart_post(nu, psi, scatter, cnt):
    """Posterior (df, scale) for an MvNormal covariance under an
    InvWishart prior; ``scatter`` is ``sum (y - mu)(y - mu)^T``."""
    return nu + cnt, psi + scatter


def dirichlet_post(alpha, counts):
    """Posterior concentration for Dirichlet-Categorical."""
    return np.asarray(alpha, dtype=np.float64) + np.asarray(counts, dtype=np.float64)


def beta_bernoulli_post(a, b, ones, total):
    return a + ones, b + (total - ones)


def beta_binomial_post(a, b, successes, trials_total):
    return a + successes, b + (trials_total - successes)


def gamma_poisson_post(a, b, sum_y, cnt):
    return a + sum_y, b + cnt


def gamma_exponential_post(a, b, sum_y, cnt):
    return a + cnt, b + sum_y


def softmax(logits):
    """Numerically stable softmax along the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    m = np.max(logits, axis=-1, keepdims=True)
    m = np.where(np.isfinite(m), m, 0.0)
    e = np.exp(logits - m)
    return e / np.sum(e, axis=-1, keepdims=True)


def outer(u, v):
    """Outer product (batched over leading axes)."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    return u[..., :, None] * v[..., None, :]


def zeros_like(x):
    return np.zeros_like(np.asarray(x, dtype=np.float64))


def fill_zero(buf):
    """Zero a pre-allocated buffer in place and return it.

    Keeps workspace allocation up-front (Section 5.2) while letting
    generated updates reset their statistics each sweep.
    """
    from repro.runtime.vectors import RaggedArray

    if isinstance(buf, RaggedArray):
        buf.flat.fill(0)
        return buf
    buf.fill(0)
    return buf


#: Dispatch table for ``lib.<name>`` calls in generated code.
TABLE = {
    "normal_normal_post": normal_normal_post,
    "mvnormal_post": mvnormal_post,
    "invwishart_post": invwishart_post,
    "dirichlet_post": dirichlet_post,
    "beta_bernoulli_post": beta_bernoulli_post,
    "beta_binomial_post": beta_binomial_post,
    "gamma_poisson_post": gamma_poisson_post,
    "gamma_exponential_post": gamma_exponential_post,
    "softmax": softmax,
    "outer": outer,
    "zeros_like": zeros_like,
    "fill_zero": fill_zero,
}
